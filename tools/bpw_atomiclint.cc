// bpw_atomiclint CLI: lock-order acyclicity proof + lock-free protocol
// discipline over the whole tree.
//
//   bpw_atomiclint [options] <file-or-dir>...
//
//   --dot FILE            write the lock-acquisition order graph (Graphviz;
//                         dashed edges are TryLock-bounded and whitelisted
//                         in the acyclicity proof)
//   --sarif FILE          write findings as SARIF 2.1.0
//   --files-from FILE     read the file list from FILE (newline separated)
//                         instead of walking the path arguments
//   --audit-allows        list stale bpw-lint-allow(...) suppressions: the
//                         named rule (bpw_lint's, bpw_holdlint's, or this
//                         tool's) no longer fires at the suppressed site
//   --check-expectations  corpus mode: analyze each file standalone as
//                         library code and require its findings to match
//                         its // bpw-atomiclint-expect(rule) markers
//                         exactly (tests/static/ runs under this)
//   --timings             print per-rule wall time (the nightly deep mode
//                         uses this to keep analyzer cost visible)
//   --all-lib             treat every input as library code (the tree run
//                         scopes atomics rules to src/ minus src/sync/)
//
// Exit status: 0 clean, 1 findings (or corpus/audit mismatch), 2 usage/IO.
//
// The analyzers live in src/analysis/ (shared with bpw_lint): a real
// tokenizer, a scope graph with cross-file declaration joins, the
// lock-order graph builder, and the atomics-discipline checker. See
// DESIGN.md "Static analysis, layer 2" for the rule semantics and how the
// four layers (TSA / bpw_lint / bpw_atomiclint / mc) divide the surface.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/atomics_check.h"
#include "analysis/call_graph.h"
#include "analysis/effects.h"
#include "analysis/hold_cost.h"
#include "analysis/lock_graph.h"
#include "analysis/sarif.h"
#include "analysis/scope_graph.h"
#include "analysis/tree_walk.h"
#include "lint/lint.h"

namespace {

using bpw::analysis::AtomicsOptions;
using bpw::analysis::BuildFileModel;
using bpw::analysis::BuildLockGraph;
using bpw::analysis::CheckAtomics;
using bpw::analysis::Finding;
using bpw::analysis::LockGraph;
using bpw::analysis::LockGraphToDot;
using bpw::analysis::TreeModel;

/// Rule ids this tool owns (SARIF metadata + the allow audit's known set).
const char* const kAtomiclintRules[] = {
    "lock-order-cycle",           "leaf-lock-acquires",
    "relaxed-unannotated",        "relaxed-publication-store",
    "unordered-publication-read", "torn-seqlock-read",
    "mc-access-unannotated",      "bad-annotation",
};

void PrintFinding(const Finding& f) {
  std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
               f.rule.c_str(), f.message.c_str());
}

struct Timings {
  double parse_ms = 0;
  double lock_graph_ms = 0;
  double atomics_ms = 0;

  void Print() const {
    std::printf("bpw_atomiclint timings: parse %.1f ms, lock-graph %.1f ms, "
                "atomics %.1f ms\n",
                parse_ms, lock_graph_ms, atomics_ms);
  }
};

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// --------------------------------------------------------------------------
// Corpus mode: every file is its own tree; findings must match the
// bpw-atomiclint-expect(rule) markers exactly.
// --------------------------------------------------------------------------

int CheckExpectations(const std::vector<std::string>& files) {
  static const std::regex kExpect(R"(bpw-atomiclint-expect\(([a-z0-9\-]+)\))");
  int failures = 0;
  for (const std::string& file : files) {
    std::string source;
    if (!bpw::analysis::ReadSource(file, &source)) {
      std::fprintf(stderr, "bpw_atomiclint: cannot read %s\n", file.c_str());
      return 2;
    }
    // Expected (rule, line) pairs; a marker covers its own line and the
    // next, so it can sit above the violating statement.
    std::vector<std::pair<std::string, int>> expected;
    {
      std::istringstream lines(source);
      std::string line;
      int lineno = 0;
      while (std::getline(lines, line)) {
        ++lineno;
        for (auto it = std::sregex_iterator(line.begin(), line.end(), kExpect);
             it != std::sregex_iterator(); ++it) {
          expected.emplace_back((*it)[1].str(), lineno);
        }
      }
    }
    TreeModel tree;
    tree.files.push_back(BuildFileModel(file, source));
    tree.Reindex();
    AtomicsOptions opts;
    opts.all_files_lib = true;
    std::vector<Finding> findings = CheckAtomics(tree, opts);
    LockGraph graph = BuildLockGraph(tree);
    findings.insert(findings.end(), graph.findings.begin(),
                    graph.findings.end());

    std::vector<bool> finding_matched(findings.size(), false);
    for (const auto& exp : expected) {
      bool hit = false;
      for (size_t i = 0; i < findings.size(); ++i) {
        if (findings[i].rule == exp.first &&
            (findings[i].line == exp.second ||
             findings[i].line == exp.second + 1)) {
          finding_matched[i] = true;
          hit = true;
        }
      }
      if (!hit) {
        std::fprintf(stderr,
                     "%s:%d: expected [%s] to fire here but it did not\n",
                     file.c_str(), exp.second, exp.first.c_str());
        ++failures;
      }
    }
    for (size_t i = 0; i < findings.size(); ++i) {
      if (!finding_matched[i]) {
        PrintFinding(findings[i]);
        std::fprintf(stderr, "%s:%d: ^ finding has no matching "
                             "bpw-atomiclint-expect marker\n",
                     findings[i].file.c_str(), findings[i].line);
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::printf("bpw_atomiclint: corpus expectations all matched (%zu "
                "files)\n",
                files.size());
    return 0;
  }
  std::fprintf(stderr, "bpw_atomiclint: %d corpus expectation failure(s)\n",
               failures);
  return 1;
}

// --------------------------------------------------------------------------
// Allow audit: compare every bpw-lint-allow site against the unsuppressed
// findings of both tools.
// --------------------------------------------------------------------------

int AuditAllows(const std::vector<std::string>& files, bool all_lib) {
  // Unsuppressed findings, whole tree, from all three analyzer layers.
  TreeModel tree;
  std::map<std::string, std::string> sources;
  for (const std::string& file : files) {
    std::string source;
    if (!bpw::analysis::ReadSource(file, &source)) {
      std::fprintf(stderr, "bpw_atomiclint: cannot read %s\n", file.c_str());
      return 2;
    }
    tree.files.push_back(BuildFileModel(file, source));
    sources[file] = std::move(source);
  }
  tree.Reindex();
  AtomicsOptions opts;
  opts.all_files_lib = all_lib;
  opts.ignore_allows = true;
  std::vector<Finding> unsuppressed = CheckAtomics(tree, opts);
  {
    LockGraph graph = BuildLockGraph(tree, /*honor_allows=*/false);
    unsuppressed.insert(unsuppressed.end(), graph.findings.begin(),
                        graph.findings.end());
  }
  {
    // Layer 3: an allow naming a holdlint rule is live iff the hold-cost
    // prover still fires there with suppressions ignored.
    const bpw::analysis::CallGraph cg = bpw::analysis::BuildCallGraph(tree);
    const bpw::analysis::EffectMap effects =
        bpw::analysis::ComputeEffects(tree, cg);
    bpw::analysis::HoldOptions hopts;
    hopts.all_files_lib = all_lib;
    hopts.ignore_allows = true;
    const bpw::analysis::HoldReport holds =
        bpw::analysis::CheckHolds(tree, cg, effects, hopts);
    unsuppressed.insert(unsuppressed.end(), holds.findings.begin(),
                        holds.findings.end());
  }
  std::set<std::string> atomiclint_rules(std::begin(kAtomiclintRules),
                                         std::end(kAtomiclintRules));
  atomiclint_rules.insert(bpw::analysis::kHoldRules,
                          bpw::analysis::kHoldRules + 9);
  std::set<std::string> lint_rules(bpw::lint::LintRuleIds().begin(),
                                   bpw::lint::LintRuleIds().end());

  // (file, line, rule) -> fired, plus (file, rule) for file-scope allows.
  std::set<std::string> fired_at;
  std::set<std::string> fired_in;
  auto record = [&](const Finding& f) {
    fired_at.insert(f.file + ":" + std::to_string(f.line) + ":" + f.rule);
    fired_in.insert(f.file + ":" + f.rule);
  };
  for (const Finding& f : unsuppressed) record(f);
  for (const auto& fm : tree.files) {
    for (const bpw::lint::Finding& f :
         bpw::lint::LintSourceUnsuppressed(fm.path, sources[fm.path])) {
      record({f.file, f.line, f.rule, f.message});
    }
  }

  int stale = 0;
  for (const auto& fm : tree.files) {
    for (const bpw::analysis::AllowSite& site : fm.lex.allow_sites) {
      const bool known = atomiclint_rules.count(site.rule) > 0 ||
                         lint_rules.count(site.rule) > 0;
      if (!known) {
        std::fprintf(stderr,
                     "%s:%d: stale allow (%s): no such rule in bpw_lint, "
                     "bpw_atomiclint, or bpw_holdlint\n",
                     fm.path.c_str(), site.line + 1, site.rule.c_str());
        ++stale;
        continue;
      }
      bool fresh;
      if (site.file_scope) {
        fresh = fired_in.count(fm.path + ":" + site.rule) > 0;
      } else {
        // A line allow covers its own line and the next (1-based lines
        // site.line+1 and site.line+2).
        fresh =
            fired_at.count(fm.path + ":" + std::to_string(site.line + 1) +
                           ":" + site.rule) > 0 ||
            fired_at.count(fm.path + ":" + std::to_string(site.line + 2) +
                           ":" + site.rule) > 0;
      }
      if (!fresh) {
        std::fprintf(stderr,
                     "%s:%d: stale allow (%s): the rule no longer fires at "
                     "this %s\n",
                     fm.path.c_str(), site.line + 1, site.rule.c_str(),
                     site.file_scope ? "file" : "site");
        ++stale;
      }
    }
  }
  if (stale == 0) {
    std::printf("bpw_atomiclint: no stale allows (%zu files)\n",
                files.size());
    return 0;
  }
  std::fprintf(stderr, "bpw_atomiclint: %d stale allow(s)\n", stale);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string dot_path;
  std::string sarif_path;
  std::string files_from;
  bool audit_allows = false;
  bool check_expectations = false;
  bool timings = false;
  bool all_lib = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dot" && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--files-from" && i + 1 < argc) {
      files_from = argv[++i];
    } else if (arg == "--audit-allows") {
      audit_allows = true;
    } else if (arg == "--check-expectations") {
      check_expectations = true;
    } else if (arg == "--timings") {
      timings = true;
    } else if (arg == "--all-lib") {
      all_lib = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bpw_atomiclint [--dot FILE] [--sarif FILE] "
          "[--files-from FILE] [--audit-allows] [--check-expectations] "
          "[--timings] [--all-lib] <file-or-dir>...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bpw_atomiclint: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  std::vector<std::string> files;
  if (!files_from.empty()) {
    if (!bpw::analysis::ReadFileList("bpw_atomiclint", files_from, &files)) {
      return 2;
    }
  } else if (paths.empty()) {
    std::fprintf(stderr, "usage: bpw_atomiclint [options] <file-or-dir>...\n");
    return 2;
  } else if (!bpw::analysis::CollectSourceFiles("bpw_atomiclint", paths,
                                                &files)) {
    return 2;
  }
  if (files.empty()) {
    std::fprintf(stderr, "bpw_atomiclint: no source files found\n");
    return 2;
  }

  if (check_expectations) return CheckExpectations(files);
  if (audit_allows) return AuditAllows(files, all_lib);

  Timings t;
  auto t0 = std::chrono::steady_clock::now();
  TreeModel tree;
  if (!bpw::analysis::BuildTreeModel("bpw_atomiclint", files, &tree)) return 2;
  t.parse_ms = MsSince(t0);

  t0 = std::chrono::steady_clock::now();
  LockGraph graph = BuildLockGraph(tree);
  t.lock_graph_ms = MsSince(t0);

  t0 = std::chrono::steady_clock::now();
  AtomicsOptions opts;
  opts.all_files_lib = all_lib;
  std::vector<Finding> findings = CheckAtomics(tree, opts);
  t.atomics_ms = MsSince(t0);

  findings.insert(findings.end(), graph.findings.begin(),
                  graph.findings.end());

  if (!dot_path.empty()) {
    std::ofstream out(dot_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bpw_atomiclint: cannot write %s\n",
                   dot_path.c_str());
      return 2;
    }
    out << LockGraphToDot(graph);
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bpw_atomiclint: cannot write %s\n",
                   sarif_path.c_str());
      return 2;
    }
    out << bpw::analysis::FindingsToSarif(
        "bpw_atomiclint",
        std::vector<std::string>(std::begin(kAtomiclintRules),
                                 std::end(kAtomiclintRules)),
        findings);
  }

  for (const Finding& f : findings) PrintFinding(f);
  if (timings) t.Print();
  if (!findings.empty()) {
    std::fprintf(stderr,
                 "bpw_atomiclint: %zu finding(s) in %zu file(s); lock graph: "
                 "%zu lock(s), %zu edge(s)\n",
                 findings.size(), files.size(), graph.locks.size(),
                 graph.edges.size());
    return 1;
  }
  std::printf("bpw_atomiclint: clean (%zu files; lock graph: %zu locks, %zu "
              "edges, acyclic)\n",
              files.size(), graph.locks.size(), graph.edges.size());
  return 0;
}
