// bpw_bench: calibrated benchmark-suite orchestrator.
//
// Runs a declarative suite (src/bench/suite.cc) with warmup and repeated
// trials and writes schema-versioned JSON with an environment fingerprint,
// per-trial wall-clock samples, and exactly-reproducible work counters.
// Pair with bench_compare to judge a candidate against bench/baselines/.
//
// Examples:
//   bpw_bench --list
//   bpw_bench --suite smoke --out BENCH_smoke.json
//   bpw_bench --suite smoke --trials 3 --out /tmp/candidate.json
//   bpw_bench --suite paper --out BENCH_paper.json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/runner.h"
#include "bench/suite.h"
#include "obs/prof_site.h"

namespace {

using namespace bpw;
using namespace bpw::bench;

void Usage() {
  std::printf(
      "bpw_bench — run a benchmark suite and emit BENCH_<suite>.json\n\n"
      "  --suite NAME    suite to run (see --list)\n"
      "  --out FILE      write the JSON document here (default:\n"
      "                  BENCH_<suite>.json in the current directory)\n"
      "  --trials N      override the suite's measured trials per wall case\n"
      "  --warmup N      override the suite's warmup (discarded) trials\n"
      "  --stdout        print the JSON to stdout instead of a file\n"
      "  --quiet         suppress per-case progress on stderr\n"
      "  --prof          enable the contention profiler for every trial\n"
      "                  (CI compares this against a --prof-less run to\n"
      "                  gate the profiler's overhead)\n"
      "  --list          list known suites and exit\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string suite_name;
  std::string out_path;
  RunnerOptions options;
  options.verbose = true;
  bool to_stdout = false;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--suite") {
      suite_name = next("--suite");
    } else if (arg == "--out") {
      out_path = next("--out");
    } else if (arg == "--trials") {
      options.trials = std::atoi(next("--trials"));
    } else if (arg == "--warmup") {
      options.warmup_trials = std::atoi(next("--warmup"));
    } else if (arg == "--stdout") {
      to_stdout = true;
    } else if (arg == "--quiet") {
      options.verbose = false;
    } else if (arg == "--prof") {
      // Work counters stay bit-identical with or without this: profiling
      // only adds clock reads and sharded accumulation, never changes what
      // the workload does. CI's prof-overhead job relies on exactly that.
      obs::SetProfilerEnabled(true);
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  if (list) {
    for (const std::string& name : KnownSuiteNames()) {
      const BenchSuite* suite = FindSuite(name);
      std::printf("%-8s %zu cases, %d trials — %s\n", name.c_str(),
                  suite->cases.size(), suite->trials,
                  suite->description.c_str());
    }
    return 0;
  }
  if (suite_name.empty()) {
    std::fprintf(stderr, "need --suite NAME (try --list)\n");
    return 2;
  }
  const BenchSuite* suite = FindSuite(suite_name);
  if (suite == nullptr) {
    std::fprintf(stderr, "unknown suite '%s' (try --list)\n",
                 suite_name.c_str());
    return 2;
  }

  auto result = RunSuite(*suite, options);
  if (!result.ok()) {
    std::fprintf(stderr, "suite failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const std::string json = SuiteResultToJson(result.value());

  if (to_stdout) {
    std::fwrite(json.data(), 1, json.size(), stdout);
    return 0;
  }
  if (out_path.empty()) out_path = "BENCH_" + suite_name + ".json";
  Status s = WriteStringToFile(json, out_path);
  if (!s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[bpw_bench] wrote %s (%zu cases)\n", out_path.c_str(),
               result.value().cases.size());
  return 0;
}
