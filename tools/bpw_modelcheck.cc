// bpw_modelcheck: systematic bounded exploration of the buffer-pool stack.
//
// Explore a scenario:
//   bpw_modelcheck --scenario eviction --bound 2
// Record and minimize a violation:
//   bpw_modelcheck --scenario eviction --mutation skip_victim_revalidation \
//       --bound 2 --replay-out eviction.replay
// Re-execute a recorded trace:
//   bpw_modelcheck --replay eviction.replay
//
// Exit codes: 0 = explored clean (or replay reproduced nothing), 1 =
// violation found (or replay reproduced one), 2 = usage/config error.
//
// Requires a build with schedule points (the default). Under
// -DBPW_SCHEDULE_POINTS=0 the binary reports that and exits 0, so script
// pipelines degrade loudly but gracefully.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>

#include "mc/explorer.h"
#include "mc/replay.h"
#include "mc/scenario.h"
#include "testing/schedule_point.h"

namespace {

void PrintUsage() {
  std::cout <<
      "usage: bpw_modelcheck --scenario NAME [options]\n"
      "       bpw_modelcheck --replay FILE [--minimize]\n"
      "       bpw_modelcheck --list\n"
      "\n"
      "exploration options:\n"
      "  --scenario NAME        preset scenario (see --list)\n"
      "  --bound N              preemption bound (default 2)\n"
      "  --coordinator NAME     override: serialized|shared-queue|\n"
      "                         bp-wrapper|combining|sharded\n"
      "  --policy NAME          override: lru|fifo|clock|gclock|...\n"
      "  --threads N            override worker count\n"
      "  --pages N --frames N   override working set / buffer size\n"
      "  --queue N --threshold N  override BP-Wrapper S and T\n"
      "  --shards N             override policy shard count (sharded)\n"
      "  --rebalance N          override rebalance cadence (sharded)\n"
      "  --ops N                override ops per thread\n"
      "  --budget N             per-execution decision cap (default 10000)\n"
      "  --max-execs N          stop after N executions (0 = unlimited)\n"
      "  --time-limit-ms N      stop after N ms (0 = unlimited)\n"
      "  --mutation NAME        seed a known bug: skip_victim_revalidation |\n"
      "                         skip_commit_before_victim | commit_without_lock |\n"
      "                         combine_skip_release | combine_drain_twice |\n"
      "                         combine_clear_ready | shard_double_track |\n"
      "                         shard_stale_eviction\n"
      "  --no-dpor              disable sleep-set pruning\n"
      "  --no-state-dedup       disable visited-state dedup\n"
      "  --replay-out FILE      write (and minimize) the violating trace\n"
      "\n"
      "replay options:\n"
      "  --replay FILE          re-execute a recorded trace\n"
      "  --minimize             shrink the trace first, print the result\n";
}

struct Args {
  std::string scenario;
  std::string replay_path;
  std::string replay_out;
  std::string mutation;
  std::string coordinator;
  std::string policy;
  int bound = 2;
  int threads = 0;
  int pages = 0;
  int frames = 0;
  int ops = 0;
  size_t queue = 0;
  size_t threshold = 0;
  size_t shards = 0;
  size_t rebalance = SIZE_MAX;  // SIZE_MAX = keep the preset's cadence
  uint64_t budget = 0;
  uint64_t max_execs = 0;
  uint64_t time_limit_ms = 0;
  bool list = false;
  bool minimize = false;
  bool no_dpor = false;
  bool no_state_dedup = false;
};

bool ParseArgs(int argc, char** argv, Args& args) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "bpw_modelcheck: " << argv[i] << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = nullptr;
    try {
      if (flag == "--help" || flag == "-h") {
        PrintUsage();
        std::exit(0);
      } else if (flag == "--list") {
        args.list = true;
      } else if (flag == "--minimize") {
        args.minimize = true;
      } else if (flag == "--no-dpor") {
        args.no_dpor = true;
      } else if (flag == "--no-state-dedup") {
        args.no_state_dedup = true;
      } else if (flag == "--scenario") {
        if ((value = need_value(i)) == nullptr) return false;
        args.scenario = value;
      } else if (flag == "--replay") {
        if ((value = need_value(i)) == nullptr) return false;
        args.replay_path = value;
      } else if (flag == "--replay-out") {
        if ((value = need_value(i)) == nullptr) return false;
        args.replay_out = value;
      } else if (flag == "--mutation") {
        if ((value = need_value(i)) == nullptr) return false;
        args.mutation = value;
      } else if (flag == "--coordinator") {
        if ((value = need_value(i)) == nullptr) return false;
        args.coordinator = value;
      } else if (flag == "--policy") {
        if ((value = need_value(i)) == nullptr) return false;
        args.policy = value;
      } else if (flag == "--bound") {
        if ((value = need_value(i)) == nullptr) return false;
        args.bound = std::stoi(value);
      } else if (flag == "--threads") {
        if ((value = need_value(i)) == nullptr) return false;
        args.threads = std::stoi(value);
      } else if (flag == "--pages") {
        if ((value = need_value(i)) == nullptr) return false;
        args.pages = std::stoi(value);
      } else if (flag == "--frames") {
        if ((value = need_value(i)) == nullptr) return false;
        args.frames = std::stoi(value);
      } else if (flag == "--ops") {
        if ((value = need_value(i)) == nullptr) return false;
        args.ops = std::stoi(value);
      } else if (flag == "--queue") {
        if ((value = need_value(i)) == nullptr) return false;
        args.queue = std::stoull(value);
      } else if (flag == "--threshold") {
        if ((value = need_value(i)) == nullptr) return false;
        args.threshold = std::stoull(value);
      } else if (flag == "--shards") {
        if ((value = need_value(i)) == nullptr) return false;
        args.shards = std::stoull(value);
      } else if (flag == "--rebalance") {
        if ((value = need_value(i)) == nullptr) return false;
        args.rebalance = std::stoull(value);
      } else if (flag == "--budget") {
        if ((value = need_value(i)) == nullptr) return false;
        args.budget = std::stoull(value);
      } else if (flag == "--max-execs") {
        if ((value = need_value(i)) == nullptr) return false;
        args.max_execs = std::stoull(value);
      } else if (flag == "--time-limit-ms") {
        if ((value = need_value(i)) == nullptr) return false;
        args.time_limit_ms = std::stoull(value);
      } else {
        std::cerr << "bpw_modelcheck: unknown flag '" << flag << "'\n";
        return false;
      }
    } catch (...) {
      std::cerr << "bpw_modelcheck: bad value for " << flag << ": '"
                << (value != nullptr ? value : "") << "'\n";
      return false;
    }
  }
  return true;
}

}  // namespace

#if BPW_SCHEDULE_POINTS

namespace {

using bpw::mc::CooperativeScheduler;
using bpw::mc::ExploreOptions;
using bpw::mc::ExploreResult;
using bpw::mc::Explorer;
using bpw::mc::MinimizeReplay;
using bpw::mc::MinimizeStats;
using bpw::mc::ReplayFile;
using bpw::mc::ReplayOutcome;
using bpw::mc::RunReplay;
using bpw::mc::Scenario;
using bpw::mc::ScenarioConfig;
using bpw::mc::ViolationKindName;

bool ApplyMutation(const std::string& name, ScenarioConfig& config) {
  if (name.empty()) return true;
  if (name == "skip_victim_revalidation") {
    config.mutate_skip_victim_revalidation = true;
    return true;
  }
  if (name == "skip_commit_before_victim") {
    config.mutate_skip_commit_before_victim = true;
    return true;
  }
  if (name == "commit_without_lock") {
    config.mutate_commit_without_lock = true;
    return true;
  }
  if (name == "combine_skip_release") {
    config.mutate_combine_skip_release = true;
    return true;
  }
  if (name == "combine_drain_twice") {
    config.mutate_combine_drain_twice = true;
    return true;
  }
  if (name == "combine_clear_ready") {
    config.mutate_combine_clear_ready = true;
    return true;
  }
  if (name == "shard_double_track") {
    config.mutate_shard_double_track = true;
    return true;
  }
  if (name == "shard_stale_eviction") {
    config.mutate_shard_stale_eviction = true;
    return true;
  }
  std::cerr << "bpw_modelcheck: unknown mutation '" << name << "'\n";
  return false;
}

/// RAII install of the cooperative scheduler as the global controller.
struct InstallScope {
  explicit InstallScope(CooperativeScheduler& sched) : sched_(sched) {
    sched_.Install();
  }
  ~InstallScope() { sched_.Uninstall(); }
  CooperativeScheduler& sched_;
};

int RunReplayMode(const Args& args) {
  auto replay = bpw::mc::ReadReplayFile(args.replay_path);
  if (!replay.ok()) {
    std::cerr << "bpw_modelcheck: " << replay.status().ToString() << "\n";
    return 2;
  }
  CooperativeScheduler sched;
  InstallScope scope(sched);

  ReplayFile file = std::move(replay).value();
  if (args.minimize) {
    MinimizeStats stats;
    file = MinimizeReplay(file, sched, &stats);
    std::cout << "minimize: " << stats.shrunk_from << " -> " << stats.shrunk_to
              << " choices in " << stats.attempts << " attempts\n";
    std::cout << bpw::mc::SerializeReplay(file);
    if (!args.replay_out.empty()) {
      bpw::Status status = bpw::mc::WriteReplayFile(file, args.replay_out);
      if (!status.ok()) {
        std::cerr << "bpw_modelcheck: " << status.ToString() << "\n";
        return 2;
      }
    }
  }

  const ReplayOutcome outcome = RunReplay(file, sched);
  if (outcome.result.violated) {
    std::cout << "replay reproduced: "
              << ViolationKindName(outcome.result.violation.kind) << "\n"
              << outcome.result.violation.message << "\n";
    return 1;
  }
  std::cout << "replay completed clean (" << outcome.result.decisions.size()
            << " decisions, " << outcome.fallbacks << " default choices)\n";
  return 0;
}

int RunExploreMode(const Args& args) {
  auto preset = Scenario::Preset(args.scenario);
  if (!preset.ok()) {
    std::cerr << "bpw_modelcheck: " << preset.status().ToString() << "\n";
    return 2;
  }
  ScenarioConfig config = std::move(preset).value();
  if (!args.coordinator.empty()) config.coordinator = args.coordinator;
  if (!args.policy.empty()) config.policy = args.policy;
  if (args.threads > 0) config.threads = args.threads;
  if (args.pages > 0) config.pages = args.pages;
  if (args.frames > 0) config.frames = args.frames;
  if (args.ops > 0) config.ops_per_thread = args.ops;
  if (args.queue > 0) config.queue_size = args.queue;
  if (args.threshold > 0) config.batch_threshold = args.threshold;
  if (args.shards > 0) config.policy_shards = args.shards;
  if (args.rebalance != SIZE_MAX) config.rebalance_interval = args.rebalance;
  if (args.budget > 0) config.max_decisions = args.budget;
  if (!ApplyMutation(args.mutation, config)) return 2;

  ExploreOptions options;
  options.preemption_bound = args.bound;
  options.max_executions = args.max_execs;
  options.time_limit_ms = args.time_limit_ms;
  options.use_sleep_sets = !args.no_dpor;
  options.use_state_dedup = !args.no_state_dedup;

  CooperativeScheduler sched;
  InstallScope scope(sched);
  Explorer explorer(Scenario(config), options);
  const ExploreResult result = explorer.Run(sched);

  std::cout << "scenario " << config.name << " (" << config.coordinator << "/"
            << config.policy << ", " << config.threads << " threads, "
            << config.pages << " pages, " << config.frames
            << " frames), bound " << args.bound << "\n";
  std::cout << "explored " << result.stats.executions << " executions, "
            << result.stats.decision_points << " decision points, max depth "
            << result.stats.max_depth << "\n";
  std::cout << "pruned: " << result.stats.sleep_set_pruned << " sleep-set, "
            << result.stats.state_dedup_pruned << " state-dedup, "
            << result.stats.budget_skipped << " bound-limited branches\n";
  std::cout << "certified " << result.stats.races_checked
            << " guarded accesses race-free\n";

  if (!result.found_violation) {
    std::cout << (result.stats.complete
                      ? "bounded space exhausted: no violations\n"
                      : "no violations (search capped before exhaustion)\n");
    return 0;
  }

  std::cout << "VIOLATION (" << ViolationKindName(result.violation.kind)
            << "): " << result.violation.message << "\n";
  std::cout << "trace: " << result.violating_choices.size() << " decisions\n";

  if (!args.replay_out.empty()) {
    ReplayFile file;
    file.config = config;
    file.violation_kind = ViolationKindName(result.violation.kind);
    file.choices = result.violating_choices;
    MinimizeStats stats;
    file = MinimizeReplay(file, sched, &stats);
    bpw::Status status = bpw::mc::WriteReplayFile(file, args.replay_out);
    if (!status.ok()) {
      std::cerr << "bpw_modelcheck: " << status.ToString() << "\n";
      return 2;
    }
    std::cout << "replay written to " << args.replay_out << " (minimized "
              << stats.shrunk_from << " -> " << stats.shrunk_to
              << " choices)\n";
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    return 2;
  }
  if (args.list) {
    for (const std::string& name : Scenario::PresetNames()) {
      auto config = Scenario::Preset(name);
      std::cout << name << ": " << config.value().coordinator << "/"
                << config.value().policy << ", " << config.value().threads
                << " threads\n";
    }
    return 0;
  }
  if (!args.replay_path.empty()) return RunReplayMode(args);
  if (args.scenario.empty()) {
    PrintUsage();
    return 2;
  }
  return RunExploreMode(args);
}

#else  // !BPW_SCHEDULE_POINTS

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, args)) return 2;
  std::cout << "bpw_modelcheck: this build has schedule points compiled out "
               "(-DBPW_SCHEDULE_POINTS=0); systematic exploration needs "
               "them. Reconfigure with schedule points on.\n";
  return 0;
}

#endif  // BPW_SCHEDULE_POINTS
