#include "lint/lint.h"

#include <fstream>
#include <regex>
#include <sstream>

#include "analysis/lexer.h"

namespace bpw {
namespace lint {

namespace {

// Lexing lives in the shared src/analysis library now (PR 4's hand-rolled
// blanking pass moved there and grew raw-string / line-continuation /
// preprocessor handling); this file keeps only the rule layer, which runs
// over analysis::LexedSource::cleaned_lines.
using analysis::LexedSource;

// ---------------------------------------------------------------------------
// Scope tracking.
// ---------------------------------------------------------------------------

enum class ScopeKind { kNamespace, kType, kFunction, kBlock };

struct Scope {
  ScopeKind kind = ScopeKind::kBlock;
  bool cs = false;            // inside a contention-lock critical section
  std::string manual_lock;    // receiver of an open manual X.Lock() span
  // Function-scope bookkeeping (kFunction only):
  std::string name;
  bool has_fallback = false;  // blocking Lock() or ContentionLockGuard seen
  std::vector<int> trylock_lines;
  bool has_schedule_point = false;  // any BPW_SCHEDULE_* / BPW_MC_* marker
  std::vector<int> lock_call_lines;
};

bool MatchesAny(const std::string& line, const std::regex& re) {
  return std::regex_search(line, re);
}

/// True if `path` contains directory component(s) `dir` ("src/",
/// "src/sync/"), anchored at the start or at a '/' so "mysrc/" never
/// matches.
bool PathInDir(const std::string& path, const std::string& dir) {
  size_t pos = path.find(dir);
  while (pos != std::string::npos) {
    if (pos == 0 || path[pos - 1] == '/') return true;
    pos = path.find(dir, pos + 1);
  }
  return false;
}

std::vector<Finding> LintImpl(const std::string& path,
                              const std::string& source, bool honor_allows) {
  const LexedSource src = analysis::Lex(source);
  std::vector<Finding> findings;

  // Patterns. All run on cleaned lines (no comments, no literals).
  static const std::regex kAlloc(
      R"((\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|make_unique\s*<|make_shared\s*<|\.reserve\s*\(|\.resize\s*\(|\.push_back\s*\(|\.emplace_back\s*\())");
  static const std::regex kClock(
      R"((\bNowNanos\s*\(|steady_clock|system_clock|high_resolution_clock|\bclock_gettime\s*\())");
  // Contention-profiler spellings. The BPW_PROF_* macros are the sanctioned
  // way to measure time inside a critical section — the clock reads they
  // imply ARE the measurement and vanish under -DBPW_PROF=0 — so a line
  // using them is exempt from the clock rule (scoped to that line, not the
  // file). The raw primitives behind the macros imply the same clock reads
  // but cannot compile out at the call site, so inside a CS they are
  // flagged like any other clock read.
  static const std::regex kProfMacro(R"(\bBPW_PROF_[A-Z_]+\s*\()");
  static const std::regex kProfRaw(
      R"(\bScopedProfPhase\b|\b(ProfRecordAcquire|ProfRecordHold|ProfWaiterEnter|ProfWaiterExit)\s*\()");
  static const std::regex kLog(R"(\bBPW_LOG_[A-Z]+)");
  // Post-commit bookkeeping: relaxed statistics counters and trace
  // emission. Both are lock-free by construction (that is what
  // memory_order_relaxed and the SPSC trace ring mean), so holding the
  // contention lock across them is pure critical-section stretch — the
  // exact nanoseconds the combining coordinator's early-release split
  // moves out of the lock.
  static const std::regex kRelaxedCounter(R"(\.fetch_(add|sub)\s*\()");
  static const std::regex kTraceEmit(R"(\bTraceEmit\s*\()");
  static const std::regex kPrefetch(
      R"(\bPrefetch(Read|Write|Range|Hint|ForCommit)\s*\()");
  static const std::regex kGuardDecl(
      R"(\bContentionLock(Adopt)?Guard\s+\w+\s*[({])");
  static const std::regex kManualLock(R"(^\s*([\w\->\.\[\]]+)\.Lock\s*\(\s*\)\s*;)");
  static const std::regex kManualUnlock(
      R"(^\s*([\w\->\.\[\]]+)\.Unlock\s*\(\s*\)\s*;)");
  static const std::regex kTryLock(R"(\bTryLock\s*\()");
  static const std::regex kTryLockDiscarded(
      R"(^\s*[\w\->\.\[\]]*\.?TryLock\s*\(\s*\)\s*;)");
  static const std::regex kBlockingLock(R"(\.Lock\s*\()");
  static const std::regex kControlKw(
      R"(\b(if|for|while|switch|catch|do|else|return)\b)");
  static const std::regex kTypeKw(R"(\b(class|struct|enum|union)\s+\w)");
  static const std::regex kNamespaceKw(R"(\bnamespace\b)");
  static const std::regex kLambdaIntro(R"(\[[^\]]*\]\s*\()");
  static const std::regex kRawMutex(
      R"(\bstd\s*::\s*(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock)\b)");
  static const std::regex kLockCall(R"((\.|->)\s*(Lock|TryLock)\s*\()");
  static const std::regex kSchedulePoint(
      R"(\bBPW_(SCHEDULE_POINT(_OBJ)?|SCHEDULE_YIELD|MC_ACCESS_(READ|WRITE))\s*\()");

  // The two path-scoped rules apply to library code only: everything under
  // src/ except src/sync/ (the annotated wrappers and the instrumentation
  // they carry are exactly what the rules push callers toward).
  const bool lib_code = PathInDir(path, "src/") && !PathInDir(path, "src/sync/");

  std::vector<Scope> stack;
  stack.push_back(Scope{ScopeKind::kNamespace, false, "", "", false, {}});
  std::string pending;  // statement text since the last ; { or }

  auto cs_active = [&]() -> bool {
    return !stack.empty() && stack.back().cs;
  };
  auto enclosing_function = [&]() -> Scope* {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == ScopeKind::kFunction) return &*it;
    }
    return nullptr;
  };
  auto report = [&](int line_index, const std::string& rule,
                    const std::string& message) {
    if (honor_allows && src.Allowed(line_index, rule)) return;
    findings.push_back(Finding{path, line_index + 1, rule, message});
  };

  for (int li = 0; li < static_cast<int>(src.cleaned_lines.size()); ++li) {
    const std::string& line = src.cleaned_lines[li];

    // ---- Per-line rule checks (before scope updates: a guard declared on
    // this line opens the CS for *subsequent* lines).
    if (cs_active()) {
      if (MatchesAny(line, kAlloc)) {
        report(li, "critical-section-alloc",
               "heap allocation while the contention lock is held");
      }
      const bool prof_macro_line = MatchesAny(line, kProfMacro);
      if (MatchesAny(line, kClock) && !prof_macro_line) {
        report(li, "clock-read-in-critical-section",
               "clock read while the contention lock is held");
      }
      if (MatchesAny(line, kProfRaw) && !prof_macro_line) {
        report(li, "clock-read-in-critical-section",
               "raw contention-profiler call under the lock implies clock "
               "reads that cannot compile out; use BPW_PROF_PHASE / "
               "BindProfSite instead");
      }
      if (MatchesAny(line, kLog)) {
        report(li, "logging-in-critical-section",
               "logging while the contention lock is held");
      }
      if (MatchesAny(line, kPrefetch)) {
        report(li, "prefetch-in-critical-section",
               "prefetch under the lock defeats its purpose; issue it "
               "before Lock()/TryLock() (paper SIII-B)");
      }
      if (lib_code && MatchesAny(line, kRelaxedCounter)) {
        report(li, "post-commit-under-lock",
               "statistics counter updated while the contention lock is "
               "held; relaxed counters need no lock — apply, Unlock(), "
               "then count (the early-release split)");
      }
      if (lib_code && MatchesAny(line, kTraceEmit)) {
        report(li, "post-commit-under-lock",
               "trace emitted while the contention lock is held; the trace "
               "ring is lock-free — apply, Unlock(), then emit (the "
               "early-release split)");
      }
    }
    if (MatchesAny(line, kTryLockDiscarded)) {
      report(li, "trylock-unchecked",
             "TryLock() result discarded; branch on it or use Lock()");
    }
    if (MatchesAny(line, kTryLock)) {
      if (Scope* fn = enclosing_function()) {
        if (!honor_allows || !src.Allowed(li, "trylock-no-fallback")) {
          fn->trylock_lines.push_back(li);
        }
      }
    }
    if (MatchesAny(line, kBlockingLock) || MatchesAny(line, kGuardDecl)) {
      if (Scope* fn = enclosing_function()) fn->has_fallback = true;
    }
    if (lib_code && MatchesAny(line, kRawMutex)) {
      report(li, "raw-mutex",
             "raw std::mutex/lock types outside src/sync/; use bpw::Mutex, "
             "SpinLock or ContentionLock (annotated and schedule-point "
             "instrumented)");
    }
    if (lib_code) {
      if (Scope* fn = enclosing_function()) {
        if (MatchesAny(line, kSchedulePoint)) fn->has_schedule_point = true;
        if (MatchesAny(line, kLockCall) &&
            (!honor_allows || !src.Allowed(li, "lock-no-schedule-point"))) {
          fn->lock_call_lines.push_back(li);
        }
      }
    }

    // ---- Scope / CS-state updates, character by character.
    for (size_t ci = 0; ci < line.size(); ++ci) {
      const char c = line[ci];
      if (c == '{') {
        Scope scope;
        scope.cs = cs_active();
        const bool in_function = enclosing_function() != nullptr;
        if (MatchesAny(pending, kNamespaceKw)) {
          scope.kind = ScopeKind::kNamespace;
        } else if (!in_function && MatchesAny(pending, kTypeKw)) {
          scope.kind = ScopeKind::kType;
        } else if (in_function) {
          // Control blocks, lambdas, plain blocks: inherit CS state. A
          // lambda is analyzed as part of its enclosing function — good
          // enough for a heuristic tool.
          scope.kind = ScopeKind::kBlock;
        } else if (pending.find('(') != std::string::npos) {
          scope.kind = ScopeKind::kFunction;
          // Function name: identifier directly before the first '('.
          static const std::regex kName(R"(([A-Za-z_]\w*)\s*\()");
          std::smatch m;
          if (std::regex_search(pending, m, kName) &&
              !MatchesAny(pending, kLambdaIntro)) {
            scope.name = m[1].str();
          }
          // The repo convention: FooLocked() runs with the lock held.
          if (scope.name.size() > 6 &&
              scope.name.rfind("Locked") == scope.name.size() - 6) {
            scope.cs = true;
          }
        } else {
          scope.kind = ScopeKind::kBlock;
        }
        stack.push_back(scope);
        pending.clear();
      } else if (c == '}') {
        if (stack.size() > 1) {
          const Scope closing = stack.back();
          if (closing.kind == ScopeKind::kFunction && !closing.has_fallback) {
            for (int tl : closing.trylock_lines) {
              report(tl, "trylock-no-fallback",
                     "function '" + closing.name +
                         "' TryLock()s but has no bounded blocking fallback "
                         "(Lock() or ContentionLockGuard)");
            }
          }
          if (closing.kind == ScopeKind::kFunction &&
              !closing.has_schedule_point) {
            for (int ll : closing.lock_call_lines) {
              report(ll, "lock-no-schedule-point",
                     "function '" + closing.name +
                         "' takes Lock()/TryLock() but declares no "
                         "BPW_SCHEDULE_POINT; the model checker and stress "
                         "scheduler get no decision point here");
            }
          }
          stack.pop_back();
        }
        pending.clear();
      } else if (c == ';') {
        pending.clear();
      } else {
        pending += c;
      }
    }
    pending += ' ';  // keep tokens on adjacent lines from merging

    // Guard declaration => the rest of this scope is a critical section.
    if (MatchesAny(line, kGuardDecl) && !stack.empty()) {
      stack.back().cs = true;
    }
    // Manual spans: x.Lock(); ... x.Unlock(); within one scope.
    std::smatch m;
    if (std::regex_search(line, m, kManualLock) && !stack.empty()) {
      stack.back().cs = true;
      stack.back().manual_lock = m[1].str();
    } else if (std::regex_search(line, m, kManualUnlock) && !stack.empty()) {
      if (stack.back().manual_lock == m[1].str()) {
        stack.back().cs = false;
        stack.back().manual_lock.clear();
      }
    }
  }
  return findings;
}

}  // namespace

std::vector<Finding> LintSource(const std::string& path,
                                const std::string& source) {
  return LintImpl(path, source, /*honor_allows=*/true);
}

std::vector<Finding> LintSourceUnsuppressed(const std::string& path,
                                            const std::string& source) {
  return LintImpl(path, source, /*honor_allows=*/false);
}

const std::vector<std::string>& LintRuleIds() {
  static const std::vector<std::string> kRules = {
      "critical-section-alloc",  "clock-read-in-critical-section",
      "logging-in-critical-section", "prefetch-in-critical-section",
      "trylock-unchecked",       "trylock-no-fallback",
      "raw-mutex",               "lock-no-schedule-point",
      "post-commit-under-lock",
  };
  return kRules;
}

bool LintFile(const std::string& path, std::vector<Finding>* findings) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::vector<Finding> file_findings = LintSource(path, buf.str());
  findings->insert(findings->end(), file_findings.begin(),
                   file_findings.end());
  return true;
}

std::string FormatFinding(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ':' << finding.line << ": [" << finding.rule << "] "
      << finding.message;
  return out.str();
}

}  // namespace lint
}  // namespace bpw
