#include "lint/lint.h"

#include <cctype>
#include <fstream>
#include <regex>
#include <sstream>

namespace bpw {
namespace lint {

namespace {

// ---------------------------------------------------------------------------
// Lexing: blank out comments and literals, preserving line structure, and
// collect bpw-lint-allow() comments.
// ---------------------------------------------------------------------------

struct CleanSource {
  std::vector<std::string> lines;  // code with comments/literals blanked
  // allow[i] holds the rule names suppressed on line i+1 (from a comment on
  // that line or the line above).
  std::vector<std::vector<std::string>> allow;
};

void CollectAllows(const std::string& comment_text, int line_index,
                   CleanSource* out) {
  static const std::regex kAllow(R"(bpw-lint-allow\(([a-z\-]+)\))");
  auto begin = std::sregex_iterator(comment_text.begin(), comment_text.end(),
                                    kAllow);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string rule = (*it)[1].str();
    out->allow[line_index].push_back(rule);
    if (line_index + 1 < static_cast<int>(out->allow.size())) {
      out->allow[line_index + 1].push_back(rule);
    }
  }
}

CleanSource Clean(const std::string& source) {
  CleanSource out;
  {
    // Pre-size the per-line containers.
    size_t n = 1;
    for (char c : source) n += (c == '\n');
    out.lines.reserve(n);
    out.allow.assign(n, {});
  }

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string cur;            // current cleaned line
  std::string comment;        // text of the comment being scanned
  std::string raw_delim;      // delimiter of the raw string being scanned
  int line_index = 0;
  const size_t n = source.size();

  auto end_line = [&] {
    out.lines.push_back(cur);
    cur.clear();
    ++line_index;
  };

  for (size_t i = 0; i < n; ++i) {
    const char c = source[i];
    const char next = i + 1 < n ? source[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) {
        CollectAllows(comment, line_index, &out);
        comment.clear();
        state = State::kCode;
      }
      end_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment.clear();
          cur += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment.clear();
          cur += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   source[i - 1])) &&
                               source[i - 1] != '_'))) {
          // Raw string: R"delim( ... )delim"
          size_t j = i + 2;
          raw_delim.clear();
          while (j < n && source[j] != '(') raw_delim += source[j++];
          state = State::kRawString;
          cur += ' ';
          i = j;  // at '(' (or end)
        } else if (c == '"') {
          state = State::kString;
          cur += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          cur += ' ';
        } else {
          cur += c;
        }
        break;
      case State::kLineComment:
        comment += c;
        cur += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          CollectAllows(comment, line_index, &out);
          comment.clear();
          state = State::kCode;
          cur += "  ";
          ++i;
        } else {
          comment += c;
          cur += ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          cur += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          cur += ' ';
        } else {
          cur += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          cur += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          cur += ' ';
        } else {
          cur += ' ';
        }
        break;
      case State::kRawString: {
        // Look for )delim"
        if (c == ')' && source.compare(i + 1, raw_delim.size(), raw_delim) ==
                            0 &&
            i + 1 + raw_delim.size() < n &&
            source[i + 1 + raw_delim.size()] == '"') {
          i += 1 + raw_delim.size();
          state = State::kCode;
        }
        cur += ' ';
        break;
      }
    }
  }
  end_line();
  return out;
}

// ---------------------------------------------------------------------------
// Scope tracking.
// ---------------------------------------------------------------------------

enum class ScopeKind { kNamespace, kType, kFunction, kBlock };

struct Scope {
  ScopeKind kind = ScopeKind::kBlock;
  bool cs = false;            // inside a contention-lock critical section
  std::string manual_lock;    // receiver of an open manual X.Lock() span
  // Function-scope bookkeeping (kFunction only):
  std::string name;
  bool has_fallback = false;  // blocking Lock() or ContentionLockGuard seen
  std::vector<int> trylock_lines;
};

bool MatchesAny(const std::string& line, const std::regex& re) {
  return std::regex_search(line, re);
}

bool Allowed(const CleanSource& src, int line_index, const std::string& rule) {
  for (const std::string& r : src.allow[line_index]) {
    if (r == rule) return true;
  }
  return false;
}

}  // namespace

std::vector<Finding> LintSource(const std::string& path,
                                const std::string& source) {
  const CleanSource src = Clean(source);
  std::vector<Finding> findings;

  // Patterns. All run on cleaned lines (no comments, no literals).
  static const std::regex kAlloc(
      R"((\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|make_unique\s*<|make_shared\s*<|\.reserve\s*\(|\.resize\s*\(|\.push_back\s*\(|\.emplace_back\s*\())");
  static const std::regex kClock(
      R"((\bNowNanos\s*\(|steady_clock|system_clock|high_resolution_clock|\bclock_gettime\s*\())");
  static const std::regex kLog(R"(\bBPW_LOG_[A-Z]+)");
  static const std::regex kPrefetch(
      R"(\bPrefetch(Read|Write|Range|Hint|ForCommit)\s*\()");
  static const std::regex kGuardDecl(
      R"(\bContentionLock(Adopt)?Guard\s+\w+\s*[({])");
  static const std::regex kManualLock(R"(^\s*([\w\->\.\[\]]+)\.Lock\s*\(\s*\)\s*;)");
  static const std::regex kManualUnlock(
      R"(^\s*([\w\->\.\[\]]+)\.Unlock\s*\(\s*\)\s*;)");
  static const std::regex kTryLock(R"(\bTryLock\s*\()");
  static const std::regex kTryLockDiscarded(
      R"(^\s*[\w\->\.\[\]]*\.?TryLock\s*\(\s*\)\s*;)");
  static const std::regex kBlockingLock(R"(\.Lock\s*\()");
  static const std::regex kControlKw(
      R"(\b(if|for|while|switch|catch|do|else|return)\b)");
  static const std::regex kTypeKw(R"(\b(class|struct|enum|union)\s+\w)");
  static const std::regex kNamespaceKw(R"(\bnamespace\b)");
  static const std::regex kLambdaIntro(R"(\[[^\]]*\]\s*\()");

  std::vector<Scope> stack;
  stack.push_back(Scope{ScopeKind::kNamespace, false, "", "", false, {}});
  std::string pending;  // statement text since the last ; { or }

  auto cs_active = [&]() -> bool {
    return !stack.empty() && stack.back().cs;
  };
  auto enclosing_function = [&]() -> Scope* {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == ScopeKind::kFunction) return &*it;
    }
    return nullptr;
  };
  auto report = [&](int line_index, const std::string& rule,
                    const std::string& message) {
    if (Allowed(src, line_index, rule)) return;
    findings.push_back(Finding{path, line_index + 1, rule, message});
  };

  for (int li = 0; li < static_cast<int>(src.lines.size()); ++li) {
    const std::string& line = src.lines[li];

    // ---- Per-line rule checks (before scope updates: a guard declared on
    // this line opens the CS for *subsequent* lines).
    if (cs_active()) {
      if (MatchesAny(line, kAlloc)) {
        report(li, "critical-section-alloc",
               "heap allocation while the contention lock is held");
      }
      if (MatchesAny(line, kClock)) {
        report(li, "clock-read-in-critical-section",
               "clock read while the contention lock is held");
      }
      if (MatchesAny(line, kLog)) {
        report(li, "logging-in-critical-section",
               "logging while the contention lock is held");
      }
      if (MatchesAny(line, kPrefetch)) {
        report(li, "prefetch-in-critical-section",
               "prefetch under the lock defeats its purpose; issue it "
               "before Lock()/TryLock() (paper SIII-B)");
      }
    }
    if (MatchesAny(line, kTryLockDiscarded)) {
      report(li, "trylock-unchecked",
             "TryLock() result discarded; branch on it or use Lock()");
    }
    if (MatchesAny(line, kTryLock)) {
      if (Scope* fn = enclosing_function()) {
        if (!Allowed(src, li, "trylock-no-fallback")) {
          fn->trylock_lines.push_back(li);
        }
      }
    }
    if (MatchesAny(line, kBlockingLock) || MatchesAny(line, kGuardDecl)) {
      if (Scope* fn = enclosing_function()) fn->has_fallback = true;
    }

    // ---- Scope / CS-state updates, character by character.
    for (size_t ci = 0; ci < line.size(); ++ci) {
      const char c = line[ci];
      if (c == '{') {
        Scope scope;
        scope.cs = cs_active();
        const bool in_function = enclosing_function() != nullptr;
        if (MatchesAny(pending, kNamespaceKw)) {
          scope.kind = ScopeKind::kNamespace;
        } else if (!in_function && MatchesAny(pending, kTypeKw)) {
          scope.kind = ScopeKind::kType;
        } else if (in_function) {
          // Control blocks, lambdas, plain blocks: inherit CS state. A
          // lambda is analyzed as part of its enclosing function — good
          // enough for a heuristic tool.
          scope.kind = ScopeKind::kBlock;
        } else if (pending.find('(') != std::string::npos) {
          scope.kind = ScopeKind::kFunction;
          // Function name: identifier directly before the first '('.
          static const std::regex kName(R"(([A-Za-z_]\w*)\s*\()");
          std::smatch m;
          if (std::regex_search(pending, m, kName) &&
              !MatchesAny(pending, kLambdaIntro)) {
            scope.name = m[1].str();
          }
          // The repo convention: FooLocked() runs with the lock held.
          if (scope.name.size() > 6 &&
              scope.name.rfind("Locked") == scope.name.size() - 6) {
            scope.cs = true;
          }
        } else {
          scope.kind = ScopeKind::kBlock;
        }
        stack.push_back(scope);
        pending.clear();
      } else if (c == '}') {
        if (stack.size() > 1) {
          const Scope closing = stack.back();
          if (closing.kind == ScopeKind::kFunction && !closing.has_fallback) {
            for (int tl : closing.trylock_lines) {
              report(tl, "trylock-no-fallback",
                     "function '" + closing.name +
                         "' TryLock()s but has no bounded blocking fallback "
                         "(Lock() or ContentionLockGuard)");
            }
          }
          stack.pop_back();
        }
        pending.clear();
      } else if (c == ';') {
        pending.clear();
      } else {
        pending += c;
      }
    }
    pending += ' ';  // keep tokens on adjacent lines from merging

    // Guard declaration => the rest of this scope is a critical section.
    if (MatchesAny(line, kGuardDecl) && !stack.empty()) {
      stack.back().cs = true;
    }
    // Manual spans: x.Lock(); ... x.Unlock(); within one scope.
    std::smatch m;
    if (std::regex_search(line, m, kManualLock) && !stack.empty()) {
      stack.back().cs = true;
      stack.back().manual_lock = m[1].str();
    } else if (std::regex_search(line, m, kManualUnlock) && !stack.empty()) {
      if (stack.back().manual_lock == m[1].str()) {
        stack.back().cs = false;
        stack.back().manual_lock.clear();
      }
    }
  }
  return findings;
}

bool LintFile(const std::string& path, std::vector<Finding>* findings) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::vector<Finding> file_findings = LintSource(path, buf.str());
  findings->insert(findings->end(), file_findings.begin(),
                   file_findings.end());
  return true;
}

std::string FormatFinding(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ':' << finding.line << ": [" << finding.rule << "] "
      << finding.message;
  return out.str();
}

}  // namespace lint
}  // namespace bpw
