// bpw_lint: a repo-specific lock-discipline linter.
//
// Clang's thread-safety analysis proves *who* may touch guarded state; it
// says nothing about *what* a critical section is allowed to do. This tool
// enforces the BP-Wrapper-specific half of the discipline — the rules that
// make the paper's numbers reproducible because the lock hold time stays
// minimal and constant:
//
//   critical-section-alloc          no heap allocation while the contention
//                                   lock is held (malloc under the lock can
//                                   page-fault or take the allocator's own
//                                   locks, stretching the hold time the
//                                   whole system is built to shrink)
//   clock-read-in-critical-section  no clock reads under the lock (a vDSO
//                                   call on the fast path; worse, a syscall
//                                   on some clocksources)
//   logging-in-critical-section     no BPW_LOG_* under the lock (formats
//                                   and takes the global log mutex)
//   prefetch-in-critical-section    prefetching inside the lock defeats
//                                   §III-B: the point is to overlap memory
//                                   latency with *other* threads' work,
//                                   so it must precede Lock()/TryLock()
//   trylock-unchecked               a TryLock() whose result is discarded
//                                   leaves the lock state unknown
//   trylock-no-fallback             a function that TryLock()s must also
//                                   have a bounded blocking fallback
//                                   (Lock() or a ContentionLockGuard),
//                                   Fig. 4's queue-full path
//   raw-mutex                       no raw std::mutex / std::lock_guard /
//                                   std::unique_lock (and friends) in
//                                   library code outside src/sync/ — the
//                                   annotated, schedule-point-instrumented
//                                   wrappers exist so the thread-safety
//                                   analysis and the model checker see
//                                   every lock; a raw mutex is invisible
//                                   to both
//   lock-no-schedule-point          a src/ function (outside src/sync/)
//                                   that calls Lock()/TryLock() must carry
//                                   a BPW_SCHEDULE_POINT (or another
//                                   BPW_SCHEDULE_* / BPW_MC_* marker): a
//                                   lock acquisition with no decision
//                                   point is a blind spot for both the
//                                   model checker and the stress scheduler
//
// What counts as a critical section (heuristics, by design — this is a
// regex-class tool, not a compiler):
//   - the rest of the scope after a ContentionLockGuard / AdoptGuard
//     declaration,
//   - between `x.Lock();` and `x.Unlock();` in the same scope,
//   - the whole body of a function whose name ends in "Locked" (the repo
//     convention for "caller holds the lock", e.g. CommitLocked).
//
// Suppression: a `// bpw-lint-allow(...)` comment naming a rule on the
// same line or the line directly above silences that rule there; a
// `// bpw-lint-allow-file(...)` comment anywhere in the file
// silences the rule for the whole file (for the rare translation unit
// whose exemption is structural, e.g. the model checker's own monitor).
// Every allow should carry a justification comment.
#pragma once

#include <string>
#include <vector>

namespace bpw {
namespace lint {

struct Finding {
  std::string file;
  int line = 0;           // 1-based
  std::string rule;       // kebab-case rule id, e.g. "critical-section-alloc"
  std::string message;
};

/// Lints one translation unit given as a string. `path` is used only for
/// reporting.
std::vector<Finding> LintSource(const std::string& path,
                                const std::string& source);

/// Same, but ignores every bpw-lint-allow comment. The --audit-allows mode
/// compares this against the allow sites to spot suppressions whose rule no
/// longer fires.
std::vector<Finding> LintSourceUnsuppressed(const std::string& path,
                                            const std::string& source);

/// The rule ids this linter can emit (for allow-audit coverage).
const std::vector<std::string>& LintRuleIds();

/// Reads and lints one file. Returns false (and leaves `findings` alone) if
/// the file cannot be read.
bool LintFile(const std::string& path, std::vector<Finding>* findings);

/// Renders "file:line: [rule] message".
std::string FormatFinding(const Finding& finding);

}  // namespace lint
}  // namespace bpw
