// bpw_profile: re-render saved contention reports.
//
// Reads the JSON written by `bpw_run --contention-report=FILE` (or a full
// `bpw_run --json` document — the report is found under "contention") and
// prints it as folded flamegraph stacks or as the human table, without
// re-running the experiment.
//
// Examples:
//   bpw_run --system=pgBatPre --threads=16 --contention-report=prof.json
//   bpw_profile --fold prof.json | flamegraph.pl > contention.svg
//   bpw_profile --fold prof.json | inferno-flamegraph > contention.svg
//   bpw_profile --table prof.json
//
// Folded output is `stack_frame;...;frame weight` per line, weights in
// nanoseconds: phases contribute their exclusive time under their nesting
// path, lock sites contribute `<site>;wait` and `<site>;hold` leaves.
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/profile_export.h"
#include "util/status.h"

namespace {

using namespace bpw;

void Usage() {
  std::printf(
      "bpw_profile — render a saved contention report\n\n"
      "  bpw_profile [--fold|--table|--json] [--out=FILE] REPORT.json\n"
      "  bpw_profile --reconcile --costs=COSTS.json [--out=FILE] "
      "REPORT.json\n\n"
      "  --fold        folded flamegraph stacks (default); pipe into\n"
      "                flamegraph.pl / inferno / speedscope\n"
      "  --table       aligned per-site table\n"
      "  --json        normalized report JSON (round-tripped)\n"
      "  --reconcile   static-vs-measured hold-time table: joins the\n"
      "                static hold costs from `bpw_holdlint --costs` with\n"
      "                the report's measured hold distributions, ranks\n"
      "                both, and flags sites whose ranks diverge\n"
      "  --costs=FILE  the bpw_holdlint --costs JSON (--reconcile only)\n"
      "  --out=FILE    write to FILE instead of stdout\n\n"
      "REPORT.json is the output of bpw_run --contention-report=FILE or a\n"
      "full bpw_run --json document (\"-\" reads stdin).\n");
}

bool ReadAll(const std::string& path, std::string* out) {
  std::FILE* f = path == "-" ? stdin : std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  if (f != stdin) std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kFold, kTable, kJson, kReconcile };
  Mode mode = Mode::kFold;
  std::string out_path = "-";
  std::string in_path;
  std::string costs_path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--fold") == 0) {
      mode = Mode::kFold;
    } else if (std::strcmp(arg, "--table") == 0) {
      mode = Mode::kTable;
    } else if (std::strcmp(arg, "--json") == 0) {
      mode = Mode::kJson;
    } else if (std::strcmp(arg, "--reconcile") == 0) {
      mode = Mode::kReconcile;
    } else if (std::strncmp(arg, "--costs=", 8) == 0) {
      costs_path = arg + 8;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      Usage();
      return 0;
    } else if (arg[0] == '-' && std::strcmp(arg, "-") != 0) {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg);
      return 2;
    } else if (in_path.empty()) {
      in_path = arg;
    } else {
      std::fprintf(stderr, "more than one input file (try --help)\n");
      return 2;
    }
  }
  if (in_path.empty()) {
    Usage();
    return 2;
  }

  std::string text;
  if (!ReadAll(in_path, &text)) {
    std::fprintf(stderr, "failed to read %s\n", in_path.c_str());
    return 1;
  }
  StatusOr<obs::ProfSnapshot> snapshot = obs::ProfSnapshotFromJson(text);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s: %s\n", in_path.c_str(),
                 snapshot.status().ToString().c_str());
    return 1;
  }

  std::string rendered;
  switch (mode) {
    case Mode::kFold:
      rendered = obs::ProfSnapshotToFolded(snapshot.value());
      break;
    case Mode::kTable:
      rendered = obs::ProfSnapshotToTable(snapshot.value());
      break;
    case Mode::kJson:
      rendered = obs::ProfSnapshotToJson(snapshot.value()) + "\n";
      break;
    case Mode::kReconcile: {
      if (costs_path.empty()) {
        std::fprintf(stderr,
                     "--reconcile needs --costs=FILE (the JSON written by "
                     "bpw_holdlint --costs)\n");
        return 2;
      }
      std::string costs;
      if (!ReadAll(costs_path, &costs)) {
        std::fprintf(stderr, "failed to read %s\n", costs_path.c_str());
        return 1;
      }
      StatusOr<std::string> table =
          obs::ReconcileHoldCosts(costs, snapshot.value());
      if (!table.ok()) {
        std::fprintf(stderr, "%s: %s\n", costs_path.c_str(),
                     table.status().ToString().c_str());
        return 1;
      }
      rendered = std::move(table).value();
      break;
    }
  }
  if (!obs::WriteTextFile(out_path, rendered)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
