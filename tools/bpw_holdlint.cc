// bpw_holdlint CLI: interprocedural critical-section cost prover.
//
//   bpw_holdlint [options] <file-or-dir>...
//
//   --costs FILE          write per-hold-site static cost ranks as JSON
//                         (the input to `bpw_profile --reconcile`)
//   --sarif FILE          write findings as SARIF 2.1.0
//   --check-expectations  corpus mode: analyze each file standalone as
//                         library code and require its findings to match
//                         its // bpw-holdlint-expect(rule) markers exactly
//                         (tests/static/ runs under this)
//   --all-lib             treat every input as library code (the tree run
//                         scopes hold rules to src/ minus src/sync/ and
//                         src/analysis/)
//   --files-from FILE     read the file list from FILE (newline separated)
//                         instead of walking the path arguments
//   --timings             print per-phase wall time
//
// Exit status: 0 clean, 1 findings (or corpus mismatch), 2 usage/IO.
//
// What it proves, on top of bpw_lint's line-local critical-section rules:
// every ContentionLock/SpinLock hold region — lexical guards, manual
// Lock/Unlock spans, TryLock branches, BPW_REQUIRES'd and Locked()-suffix
// bodies — is TRANSITIVELY free of allocation, blocking, IO, logging,
// clock reads, unbounded loops, and statically-unresolvable (indirect)
// calls, through any chain of helpers and through virtual dispatch on the
// ReplacementPolicy/Coordinator interfaces. CAS retry loops must be
// bounded (BPW_BOUNDED_BY or structure) and lock-free. See DESIGN.md
// "Static analysis, layer 3".
#include <chrono>
#include <cstdio>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/call_graph.h"
#include "analysis/effects.h"
#include "analysis/hold_cost.h"
#include "analysis/sarif.h"
#include "analysis/tree_walk.h"

namespace {

using bpw::analysis::BuildCallGraph;
using bpw::analysis::BuildFileModel;
using bpw::analysis::CallGraph;
using bpw::analysis::CheckHolds;
using bpw::analysis::ComputeEffects;
using bpw::analysis::EffectMap;
using bpw::analysis::Finding;
using bpw::analysis::HoldOptions;
using bpw::analysis::HoldReport;
using bpw::analysis::kHoldRules;
using bpw::analysis::TreeModel;

void PrintFinding(const Finding& f) {
  std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
               f.rule.c_str(), f.message.c_str());
}

std::vector<std::string> HoldRuleIds() {
  return std::vector<std::string>(kHoldRules, kHoldRules + 9);
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "bpw_holdlint: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

HoldReport Analyze(const TreeModel& tree, const HoldOptions& opts) {
  const CallGraph cg = BuildCallGraph(tree);
  const EffectMap effects = ComputeEffects(tree, cg);
  return CheckHolds(tree, cg, effects, opts);
}

// Corpus mode: every file is its own tree; findings must match the
// bpw-holdlint-expect(rule) markers exactly, in both directions.
int CheckExpectations(const std::vector<std::string>& files) {
  static const std::regex kExpect(R"(bpw-holdlint-expect\(([a-z0-9\-]+)\))");
  int failures = 0;
  for (const std::string& file : files) {
    std::string source;
    if (!bpw::analysis::ReadSource(file, &source)) {
      std::fprintf(stderr, "bpw_holdlint: cannot read %s\n", file.c_str());
      return 2;
    }
    // Expected (rule, line) pairs; a marker covers its own line and the
    // next, so it can sit above the violating statement.
    std::vector<std::pair<std::string, int>> expected;
    {
      std::istringstream lines(source);
      std::string line;
      int lineno = 0;
      while (std::getline(lines, line)) {
        ++lineno;
        for (auto it = std::sregex_iterator(line.begin(), line.end(), kExpect);
             it != std::sregex_iterator(); ++it) {
          expected.emplace_back((*it)[1].str(), lineno);
        }
      }
    }
    TreeModel tree;
    tree.files.push_back(BuildFileModel(file, source));
    tree.Reindex();
    HoldOptions opts;
    opts.all_files_lib = true;
    const HoldReport report = Analyze(tree, opts);

    std::vector<bool> matched(report.findings.size(), false);
    for (const auto& exp : expected) {
      bool hit = false;
      for (size_t i = 0; i < report.findings.size(); ++i) {
        if (report.findings[i].rule == exp.first &&
            (report.findings[i].line == exp.second ||
             report.findings[i].line == exp.second + 1)) {
          matched[i] = true;
          hit = true;
        }
      }
      if (!hit) {
        std::fprintf(stderr,
                     "%s:%d: expected [%s] to fire here but it did not\n",
                     file.c_str(), exp.second, exp.first.c_str());
        ++failures;
      }
    }
    for (size_t i = 0; i < report.findings.size(); ++i) {
      if (!matched[i]) {
        PrintFinding(report.findings[i]);
        std::fprintf(stderr,
                     "%s:%d: ^ finding has no matching bpw-holdlint-expect "
                     "marker\n",
                     report.findings[i].file.c_str(), report.findings[i].line);
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::printf("bpw_holdlint: corpus expectations all matched (%zu files)\n",
                files.size());
    return 0;
  }
  std::fprintf(stderr, "bpw_holdlint: %d corpus expectation failure(s)\n",
               failures);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string costs_path, sarif_path, files_from;
  bool check_expectations = false;
  bool all_lib = false;
  bool timings = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--costs" && i + 1 < argc) {
      costs_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--files-from" && i + 1 < argc) {
      files_from = argv[++i];
    } else if (arg == "--check-expectations") {
      check_expectations = true;
    } else if (arg == "--all-lib") {
      all_lib = true;
    } else if (arg == "--timings") {
      timings = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bpw_holdlint [--costs FILE] [--sarif FILE] "
          "[--check-expectations] [--all-lib] [--files-from FILE] "
          "[--timings] <file-or-dir>...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bpw_holdlint: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  std::vector<std::string> files;
  if (!files_from.empty()) {
    if (!bpw::analysis::ReadFileList("bpw_holdlint", files_from, &files)) {
      return 2;
    }
  } else if (paths.empty()) {
    std::fprintf(stderr, "usage: bpw_holdlint [options] <file-or-dir>...\n");
    return 2;
  } else if (!bpw::analysis::CollectSourceFiles("bpw_holdlint", paths,
                                                &files)) {
    return 2;
  }
  if (files.empty()) {
    std::fprintf(stderr, "bpw_holdlint: no source files found\n");
    return 2;
  }

  if (check_expectations) return CheckExpectations(files);

  auto t0 = std::chrono::steady_clock::now();
  TreeModel tree;
  if (!bpw::analysis::BuildTreeModel("bpw_holdlint", files, &tree)) return 2;
  const double parse_ms = MsSince(t0);

  t0 = std::chrono::steady_clock::now();
  const CallGraph cg = BuildCallGraph(tree);
  const double graph_ms = MsSince(t0);

  t0 = std::chrono::steady_clock::now();
  const EffectMap effects = ComputeEffects(tree, cg);
  HoldOptions opts;
  opts.all_files_lib = all_lib;
  const HoldReport report = CheckHolds(tree, cg, effects, opts);
  const double check_ms = MsSince(t0);

  if (!costs_path.empty() &&
      !WriteFile(costs_path, bpw::analysis::HoldCostsToJson(report))) {
    return 2;
  }
  if (!sarif_path.empty() &&
      !WriteFile(sarif_path,
                 bpw::analysis::FindingsToSarif("bpw_holdlint", HoldRuleIds(),
                                                report.findings))) {
    return 2;
  }

  for (const Finding& f : report.findings) PrintFinding(f);
  if (timings) {
    std::printf(
        "bpw_holdlint timings: parse %.1f ms, call-graph %.1f ms, "
        "effects+holds %.1f ms\n",
        parse_ms, graph_ms, check_ms);
  }
  if (!report.findings.empty()) {
    std::fprintf(stderr,
                 "bpw_holdlint: %zu finding(s) in %zu file(s); %zu hold "
                 "site(s), %zu call-graph node(s)\n",
                 report.findings.size(), files.size(), report.sites.size(),
                 cg.nodes.size());
    return 1;
  }
  std::printf(
      "bpw_holdlint: clean (%zu files; %zu hold sites proven "
      "transitively effect-free and loop-bounded; call graph: %zu nodes)\n",
      files.size(), report.sites.size(), cg.nodes.size());
  return 0;
}
