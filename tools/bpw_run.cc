// bpw_run: command-line experiment runner.
//
// Runs one (workload x system x concurrency) experiment on the host driver
// or the multiprocessor simulator and prints every metric the library
// collects. Intended for interactive exploration beyond the canned paper
// benches.
//
// Examples:
//   bpw_run --system=pgBatPre --workload=dbt2 --threads=8
//   bpw_run --policy=lirs --coordinator=bp-wrapper --queue=64 --threshold=32
//   bpw_run --simulate --threads=16 --workload=tablescan --pages=2048
//   bpw_run --workload=dbt1 --frames=1024 --io-us=250 --duration-ms=500
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/driver.h"
#include "obs/json.h"
#include "obs/profile_export.h"
#include "obs/trace_recorder.h"
#include "policy/policy_factory.h"
#include "harness/systems.h"
#include "sim/sim_driver.h"

namespace {

using namespace bpw;

struct Args {
  std::string system;  // paper system name; overrides policy/coordinator
  std::string policy = "2q";
  std::string coordinator = "bp-wrapper";
  std::string workload = "dbt2";
  uint64_t pages = 8192;
  uint32_t threads = 4;
  size_t frames = 0;  // 0 = footprint
  size_t queue = 64;
  size_t threshold = 32;
  size_t policy_shards = 0;  // 0 = keep the system/coordinator default
  bool prefetch = false;
  bool simulate = false;
  uint64_t duration_ms = 400;
  uint64_t warmup_ms = 100;
  uint64_t io_us = 0;
  uint64_t think = 64;
  uint64_t seed = 42;
  bool no_prewarm = false;
  bool json = false;
  std::string trace_out;
  uint64_t metrics_interval_ms = 0;
  bool contention_report = false;
  std::string contention_report_out;  // empty = stdout table / inline JSON
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

bool ParseFlag(const char* arg, const char* name, uint64_t* out) {
  std::string value;
  if (!ParseFlag(arg, name, &value)) return false;
  *out = std::strtoull(value.c_str(), nullptr, 10);
  return true;
}

void Usage() {
  std::printf(
      "bpw_run — run one buffer-management experiment\n\n"
      "  --system=NAME        paper system (pgClock|pg2Q|pgPre|pgBat|\n"
      "                       pgBatPre) or this repo's pgBat++ / pgShard\n"
      "  --policy=NAME        replacement policy (default 2q); see below\n"
      "  --coordinator=KIND   serialized | shared-queue | bp-wrapper |\n"
      "                       combining | clock-lockfree | sharded\n"
      "  --prefetch           enable the paper's prefetch technique\n"
      "  --queue=N            BP-Wrapper queue size (default 64)\n"
      "  --threshold=N        BP-Wrapper batch threshold (default 32)\n"
      "  --policy-shards=N    sharded coordinator: policy shard count\n"
      "                       (default: the system's, pgShard = 8)\n"
      "  --workload=NAME      dbt1 | dbt2 | tablescan | zipfian | uniform |\n"
      "                       seqloop (default dbt2)\n"
      "  --pages=N            workload footprint in pages (default 8192)\n"
      "  --threads=N          worker threads / simulated processors\n"
      "  --frames=N           buffer frames (default: footprint => no misses)\n"
      "  --io-us=N            per-I/O latency in microseconds (default 0)\n"
      "  --think=N            non-critical work per access (host: SpinWork\n"
      "                       iters; sim: ~16ns each)\n"
      "  --duration-ms=N      measurement window (default 400)\n"
      "  --warmup-ms=N        warm-up window (default 100)\n"
      "  --seed=N             workload seed (default 42)\n"
      "  --no-prewarm         skip the sequential pre-warm\n"
      "  --simulate           run on the multiprocessor simulator\n"
      "  --json               print the result as one JSON document\n"
      "  --trace-out=FILE     record lock/commit/eviction events and write\n"
      "                       a Chrome trace (chrome://tracing, Perfetto)\n"
      "  --metrics-interval-ms=N  sample all metrics every N ms; the series\n"
      "                       is included in the --json output\n"
      "  --contention-report[=FILE]  profile per-site lock wait/hold and\n"
      "                       commit phases over the measurement window\n"
      "                       (forces timing instrumentation). Prints a\n"
      "                       table, or writes the report JSON to FILE;\n"
      "                       with --json the report is embedded under\n"
      "                       \"contention\". Feed the JSON to bpw_profile\n"
      "                       for folded flamegraph stacks.\n");
  std::printf("\npolicies: ");
  for (const auto& name : KnownPolicies()) std::printf("%s ", name.c_str());
  std::printf("\n");
}

/// The --json document: config echo, every scalar the run measured, the
/// metrics-registry delta over the measurement window, and the sampler
/// series (when --metrics-interval-ms was given).
std::string ResultJson(const Args& args, const DriverConfig& config,
                       const DriverResult& r) {
  using obs::JsonNumber;
  using obs::JsonString;
  std::string out = "{";

  out += "\"config\":{";
  out += "\"mode\":" + JsonString(args.simulate ? "simulated" : "host");
  if (!args.system.empty()) out += ",\"system\":" + JsonString(args.system);
  out += ",\"policy\":" + JsonString(config.system.policy);
  out += ",\"coordinator\":" + JsonString(config.system.coordinator);
  out += ",\"prefetch\":" + std::string(config.system.prefetch ? "true"
                                                               : "false");
  out += ",\"workload\":" + JsonString(config.workload.name);
  out += ",\"pages\":" + JsonNumber(static_cast<double>(args.pages));
  out += ",\"threads\":" + JsonNumber(args.threads);
  out += ",\"frames\":" + JsonNumber(static_cast<double>(config.num_frames));
  out += ",\"queue\":" + JsonNumber(static_cast<double>(
                             config.system.queue_size));
  out += ",\"threshold\":" + JsonNumber(static_cast<double>(
                                 config.system.batch_threshold));
  out += ",\"policy_shards\":" + JsonNumber(static_cast<double>(
                                     config.system.policy_shards));
  out += ",\"seed\":" + JsonNumber(static_cast<double>(args.seed));
  out += "},";

  out += "\"result\":{";
  out += "\"measure_seconds\":" + JsonNumber(r.measure_seconds);
  out += ",\"transactions\":" + JsonNumber(static_cast<double>(r.transactions));
  out += ",\"throughput_tps\":" + JsonNumber(r.throughput_tps);
  out += ",\"accesses\":" + JsonNumber(static_cast<double>(r.accesses));
  out += ",\"accesses_per_sec\":" + JsonNumber(r.accesses_per_sec);
  out += ",\"hits\":" + JsonNumber(static_cast<double>(r.hits));
  out += ",\"misses\":" + JsonNumber(static_cast<double>(r.misses));
  out += ",\"hit_ratio\":" + JsonNumber(r.hit_ratio);
  out += ",\"avg_response_us\":" + JsonNumber(r.avg_response_us);
  out += ",\"p95_response_us\":" + JsonNumber(r.p95_response_us);
  out += ",\"evictions\":" + JsonNumber(static_cast<double>(r.evictions));
  out += ",\"writebacks\":" + JsonNumber(static_cast<double>(r.writebacks));
  out += ",\"contentions_per_million\":" + JsonNumber(r.contentions_per_million);
  out += ",\"lock_nanos_per_access\":" + JsonNumber(r.lock_nanos_per_access);
  out += ",\"lock\":{";
  out += "\"acquisitions\":" + JsonNumber(static_cast<double>(
                                   r.lock.acquisitions));
  out += ",\"contentions\":" + JsonNumber(static_cast<double>(
                                   r.lock.contentions));
  out += ",\"trylock_failures\":" + JsonNumber(static_cast<double>(
                                        r.lock.trylock_failures));
  out += ",\"hold_nanos\":" + JsonNumber(static_cast<double>(
                                  r.lock.hold_nanos));
  out += ",\"wait_nanos\":" + JsonNumber(static_cast<double>(
                                  r.lock.wait_nanos));
  out += "}},";

  // Registry delta over the measurement window (lock/commit/buffer/storage).
  out += "\"metrics\":{";
  bool first = true;
  for (const auto& [name, value] : r.metrics.values) {
    if (!first) out += ',';
    first = false;
    out += JsonString(name) + ":" + JsonNumber(value);
  }
  out += "},";

  out += "\"samples\":[";
  for (size_t i = 0; i < r.metrics_samples.size(); ++i) {
    if (i > 0) out += ',';
    out += r.metrics_samples[i].ToJson();
  }
  out += "],";

  // Observability health: how trustworthy the trace / sampler series are.
  // A nonzero dropped or skipped count means the corresponding output
  // under-represents the run.
  const obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
  out += "\"obs\":{";
  out += "\"trace_total_events\":" +
         JsonNumber(static_cast<double>(recorder.total_events()));
  out += ",\"trace_dropped_events\":" +
         JsonNumber(static_cast<double>(recorder.dropped_events()));
  out += ",\"sampler_overruns\":" +
         JsonNumber(static_cast<double>(r.sampler_overruns));
  out += ",\"sampler_skipped_ticks\":" +
         JsonNumber(static_cast<double>(r.sampler_skipped_ticks));
  out += "}";

  if (args.contention_report) {
    out += ",\"contention\":" + obs::ProfSnapshotToJson(r.contention);
  }
  out += "}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t u64 = 0;
    if (ParseFlag(arg, "--system", &args.system) ||
        ParseFlag(arg, "--policy", &args.policy) ||
        ParseFlag(arg, "--coordinator", &args.coordinator) ||
        ParseFlag(arg, "--workload", &args.workload)) {
      continue;
    }
    if (ParseFlag(arg, "--pages", &args.pages) ||
        ParseFlag(arg, "--duration-ms", &args.duration_ms) ||
        ParseFlag(arg, "--warmup-ms", &args.warmup_ms) ||
        ParseFlag(arg, "--io-us", &args.io_us) ||
        ParseFlag(arg, "--think", &args.think) ||
        ParseFlag(arg, "--seed", &args.seed) ||
        ParseFlag(arg, "--metrics-interval-ms", &args.metrics_interval_ms) ||
        ParseFlag(arg, "--trace-out", &args.trace_out)) {
      continue;
    }
    if (ParseFlag(arg, "--threads", &u64)) {
      args.threads = static_cast<uint32_t>(u64);
      continue;
    }
    if (ParseFlag(arg, "--frames", &u64)) {
      args.frames = u64;
      continue;
    }
    if (ParseFlag(arg, "--queue", &u64)) {
      args.queue = u64;
      continue;
    }
    if (ParseFlag(arg, "--threshold", &u64)) {
      args.threshold = u64;
      continue;
    }
    if (ParseFlag(arg, "--policy-shards", &u64)) {
      args.policy_shards = u64;
      continue;
    }
    if (std::strcmp(arg, "--prefetch") == 0) {
      args.prefetch = true;
      continue;
    }
    if (std::strcmp(arg, "--simulate") == 0) {
      args.simulate = true;
      continue;
    }
    if (std::strcmp(arg, "--no-prewarm") == 0) {
      args.no_prewarm = true;
      continue;
    }
    if (std::strcmp(arg, "--json") == 0) {
      args.json = true;
      continue;
    }
    if (std::strcmp(arg, "--contention-report") == 0 ||
        ParseFlag(arg, "--contention-report", &args.contention_report_out)) {
      args.contention_report = true;
      continue;
    }
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      Usage();
      return 0;
    }
    std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg);
    return 2;
  }

  DriverConfig config;
  config.workload.name = args.workload;
  config.workload.num_pages = args.pages;
  config.workload.seed = args.seed;
  config.num_threads = args.threads;
  config.duration_ms = args.duration_ms;
  config.warmup_ms = args.warmup_ms;
  config.num_frames = args.frames;
  config.prewarm = !args.no_prewarm;
  config.think_work = args.think;
  if (!args.system.empty()) {
    auto system = PaperSystemConfig(args.system);
    if (!system.ok()) {
      std::fprintf(stderr, "%s\n", system.status().ToString().c_str());
      return 2;
    }
    config.system = system.value();
  } else {
    config.system.policy = args.policy;
    config.system.coordinator = args.coordinator;
    config.system.prefetch = args.prefetch;
  }
  config.system.queue_size = args.queue;
  config.system.batch_threshold = args.threshold;
  if (args.policy_shards > 0) config.system.policy_shards = args.policy_shards;
  config.metrics_interval_ms = args.metrics_interval_ms;
  if (args.contention_report) {
    if (args.simulate) {
      std::fprintf(stderr,
                   "--contention-report profiles host locks and is not "
                   "meaningful under --simulate\n");
      return 2;
    }
    config.profile_contention = true;
    // The profiler's wait/hold totals share kTiming's clock reads; forcing
    // timing keeps the per-site report and the aggregate LockStats
    // measuring the same acquisitions the same way.
    config.system.instrumentation = LockInstrumentation::kTiming;
  }

  if (!args.trace_out.empty()) {
    obs::TraceRecorder::Default().SetEnabled(true);
  }

  StatusOr<DriverResult> result = Status::Internal("not run");
  if (args.simulate) {
    SimCosts costs;
    costs.access_work = args.think * 16;  // rough host<->sim equivalence
    costs.io_read = args.io_us * 1000;
    costs.io_write = args.io_us * 1000;
    result = RunSimulation(config, costs);
  } else {
    config.storage_latency =
        StorageLatencyModel::SleepingMicros(args.io_us, args.io_us);
    result = RunDriver(config);
  }
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const DriverResult& r = result.value();

  if (!args.trace_out.empty()) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
    recorder.SetEnabled(false);
    if (!recorder.WriteChromeTrace(args.trace_out)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   args.trace_out.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "trace: %llu events -> %s (open in chrome://tracing)\n",
                 static_cast<unsigned long long>(recorder.total_events()),
                 args.trace_out.c_str());
  }

  if (args.contention_report && !args.contention_report_out.empty()) {
    if (!obs::WriteTextFile(args.contention_report_out,
                            obs::ProfSnapshotToJson(r.contention) + "\n")) {
      std::fprintf(stderr, "failed to write contention report to %s\n",
                   args.contention_report_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "contention report: %s (bpw_profile --fold turns "
                 "it into flamegraph stacks)\n",
                 args.contention_report_out.c_str());
  }

  if (args.json) {
    std::printf("%s\n", ResultJson(args, config, r).c_str());
    return 0;
  }

  std::printf("mode:            %s\n", args.simulate ? "simulated" : "host");
  std::printf("system:          %s / %s%s\n", config.system.policy.c_str(),
              config.system.coordinator.c_str(),
              config.system.prefetch ? " +prefetch" : "");
  std::printf("workload:        %s (%llu pages, seed %llu)\n",
              args.workload.c_str(),
              static_cast<unsigned long long>(args.pages),
              static_cast<unsigned long long>(args.seed));
  std::printf("concurrency:     %u\n", args.threads);
  std::printf("window:          %.3f s\n", r.measure_seconds);
  std::printf("transactions:    %llu (%.0f tx/s)\n",
              static_cast<unsigned long long>(r.transactions),
              r.throughput_tps);
  std::printf("accesses:        %llu (%.0f/s)\n",
              static_cast<unsigned long long>(r.accesses),
              r.accesses_per_sec);
  std::printf("hit ratio:       %.2f%% (%llu hits / %llu misses)\n",
              r.hit_ratio * 100, static_cast<unsigned long long>(r.hits),
              static_cast<unsigned long long>(r.misses));
  std::printf("response:        avg %.1f us, p95 %.1f us\n",
              r.avg_response_us, r.p95_response_us);
  std::printf("lock:            %llu acquisitions, %llu contentions "
              "(%.1f /1M accesses), %llu TryLock failures\n",
              static_cast<unsigned long long>(r.lock.acquisitions),
              static_cast<unsigned long long>(r.lock.contentions),
              r.contentions_per_million,
              static_cast<unsigned long long>(r.lock.trylock_failures));
  if (r.lock_nanos_per_access > 0) {
    std::printf("lock time:       %.3f us per access\n",
                r.lock_nanos_per_access / 1000.0);
  }
  std::printf("evictions:       %llu (%llu write-backs)\n",
              static_cast<unsigned long long>(r.evictions),
              static_cast<unsigned long long>(r.writebacks));
  {
    const obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
    const bool traced = !args.trace_out.empty();
    const bool sampled = args.metrics_interval_ms > 0;
    if (traced || sampled) {
      std::printf("obs:            ");
      if (traced) {
        std::printf(" trace %llu events (%llu dropped)",
                    static_cast<unsigned long long>(recorder.total_events()),
                    static_cast<unsigned long long>(
                        recorder.dropped_events()));
      }
      if (sampled) {
        std::printf("%s sampler %zu samples (%llu overruns, %llu skipped "
                    "ticks)",
                    traced ? "," : "", r.metrics_samples.size(),
                    static_cast<unsigned long long>(r.sampler_overruns),
                    static_cast<unsigned long long>(r.sampler_skipped_ticks));
      }
      std::printf("\n");
    }
  }
  if (args.contention_report && args.contention_report_out.empty()) {
    std::printf("\ncontention profile (measurement window):\n%s",
                obs::ProfSnapshotToTable(r.contention).c_str());
  }
  return 0;
}
