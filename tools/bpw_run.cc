// bpw_run: command-line experiment runner.
//
// Runs one (workload x system x concurrency) experiment on the host driver
// or the multiprocessor simulator and prints every metric the library
// collects. Intended for interactive exploration beyond the canned paper
// benches.
//
// Examples:
//   bpw_run --system=pgBatPre --workload=dbt2 --threads=8
//   bpw_run --policy=lirs --coordinator=bp-wrapper --queue=64 --threshold=32
//   bpw_run --simulate --threads=16 --workload=tablescan --pages=2048
//   bpw_run --workload=dbt1 --frames=1024 --io-us=250 --duration-ms=500
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/driver.h"
#include "policy/policy_factory.h"
#include "harness/systems.h"
#include "sim/sim_driver.h"

namespace {

using namespace bpw;

struct Args {
  std::string system;  // paper system name; overrides policy/coordinator
  std::string policy = "2q";
  std::string coordinator = "bp-wrapper";
  std::string workload = "dbt2";
  uint64_t pages = 8192;
  uint32_t threads = 4;
  size_t frames = 0;  // 0 = footprint
  size_t queue = 64;
  size_t threshold = 32;
  bool prefetch = false;
  bool simulate = false;
  uint64_t duration_ms = 400;
  uint64_t warmup_ms = 100;
  uint64_t io_us = 0;
  uint64_t think = 64;
  uint64_t seed = 42;
  bool no_prewarm = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

bool ParseFlag(const char* arg, const char* name, uint64_t* out) {
  std::string value;
  if (!ParseFlag(arg, name, &value)) return false;
  *out = std::strtoull(value.c_str(), nullptr, 10);
  return true;
}

void Usage() {
  std::printf(
      "bpw_run — run one buffer-management experiment\n\n"
      "  --system=NAME        paper system (pgClock|pg2Q|pgPre|pgBat|pgBatPre)\n"
      "  --policy=NAME        replacement policy (default 2q); see below\n"
      "  --coordinator=KIND   serialized | bp-wrapper | clock-lockfree\n"
      "  --prefetch           enable the paper's prefetch technique\n"
      "  --queue=N            BP-Wrapper queue size (default 64)\n"
      "  --threshold=N        BP-Wrapper batch threshold (default 32)\n"
      "  --workload=NAME      dbt1 | dbt2 | tablescan | zipfian | uniform |\n"
      "                       seqloop (default dbt2)\n"
      "  --pages=N            workload footprint in pages (default 8192)\n"
      "  --threads=N          worker threads / simulated processors\n"
      "  --frames=N           buffer frames (default: footprint => no misses)\n"
      "  --io-us=N            per-I/O latency in microseconds (default 0)\n"
      "  --think=N            non-critical work per access (host: SpinWork\n"
      "                       iters; sim: ~16ns each)\n"
      "  --duration-ms=N      measurement window (default 400)\n"
      "  --warmup-ms=N        warm-up window (default 100)\n"
      "  --seed=N             workload seed (default 42)\n"
      "  --no-prewarm         skip the sequential pre-warm\n"
      "  --simulate           run on the multiprocessor simulator\n");
  std::printf("\npolicies: ");
  for (const auto& name : KnownPolicies()) std::printf("%s ", name.c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t u64 = 0;
    if (ParseFlag(arg, "--system", &args.system) ||
        ParseFlag(arg, "--policy", &args.policy) ||
        ParseFlag(arg, "--coordinator", &args.coordinator) ||
        ParseFlag(arg, "--workload", &args.workload)) {
      continue;
    }
    if (ParseFlag(arg, "--pages", &args.pages) ||
        ParseFlag(arg, "--duration-ms", &args.duration_ms) ||
        ParseFlag(arg, "--warmup-ms", &args.warmup_ms) ||
        ParseFlag(arg, "--io-us", &args.io_us) ||
        ParseFlag(arg, "--think", &args.think) ||
        ParseFlag(arg, "--seed", &args.seed)) {
      continue;
    }
    if (ParseFlag(arg, "--threads", &u64)) {
      args.threads = static_cast<uint32_t>(u64);
      continue;
    }
    if (ParseFlag(arg, "--frames", &u64)) {
      args.frames = u64;
      continue;
    }
    if (ParseFlag(arg, "--queue", &u64)) {
      args.queue = u64;
      continue;
    }
    if (ParseFlag(arg, "--threshold", &u64)) {
      args.threshold = u64;
      continue;
    }
    if (std::strcmp(arg, "--prefetch") == 0) {
      args.prefetch = true;
      continue;
    }
    if (std::strcmp(arg, "--simulate") == 0) {
      args.simulate = true;
      continue;
    }
    if (std::strcmp(arg, "--no-prewarm") == 0) {
      args.no_prewarm = true;
      continue;
    }
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      Usage();
      return 0;
    }
    std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg);
    return 2;
  }

  DriverConfig config;
  config.workload.name = args.workload;
  config.workload.num_pages = args.pages;
  config.workload.seed = args.seed;
  config.num_threads = args.threads;
  config.duration_ms = args.duration_ms;
  config.warmup_ms = args.warmup_ms;
  config.num_frames = args.frames;
  config.prewarm = !args.no_prewarm;
  config.think_work = args.think;
  if (!args.system.empty()) {
    auto system = PaperSystemConfig(args.system);
    if (!system.ok()) {
      std::fprintf(stderr, "%s\n", system.status().ToString().c_str());
      return 2;
    }
    config.system = system.value();
  } else {
    config.system.policy = args.policy;
    config.system.coordinator = args.coordinator;
    config.system.prefetch = args.prefetch;
  }
  config.system.queue_size = args.queue;
  config.system.batch_threshold = args.threshold;

  StatusOr<DriverResult> result = Status::Internal("not run");
  if (args.simulate) {
    SimCosts costs;
    costs.access_work = args.think * 16;  // rough host<->sim equivalence
    costs.io_read = args.io_us * 1000;
    costs.io_write = args.io_us * 1000;
    result = RunSimulation(config, costs);
  } else {
    config.storage_latency =
        StorageLatencyModel::SleepingMicros(args.io_us, args.io_us);
    result = RunDriver(config);
  }
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const DriverResult& r = result.value();
  std::printf("mode:            %s\n", args.simulate ? "simulated" : "host");
  std::printf("system:          %s / %s%s\n", config.system.policy.c_str(),
              config.system.coordinator.c_str(),
              config.system.prefetch ? " +prefetch" : "");
  std::printf("workload:        %s (%llu pages, seed %llu)\n",
              args.workload.c_str(),
              static_cast<unsigned long long>(args.pages),
              static_cast<unsigned long long>(args.seed));
  std::printf("concurrency:     %u\n", args.threads);
  std::printf("window:          %.3f s\n", r.measure_seconds);
  std::printf("transactions:    %llu (%.0f tx/s)\n",
              static_cast<unsigned long long>(r.transactions),
              r.throughput_tps);
  std::printf("accesses:        %llu (%.0f/s)\n",
              static_cast<unsigned long long>(r.accesses),
              r.accesses_per_sec);
  std::printf("hit ratio:       %.2f%% (%llu hits / %llu misses)\n",
              r.hit_ratio * 100, static_cast<unsigned long long>(r.hits),
              static_cast<unsigned long long>(r.misses));
  std::printf("response:        avg %.1f us, p95 %.1f us\n",
              r.avg_response_us, r.p95_response_us);
  std::printf("lock:            %llu acquisitions, %llu contentions "
              "(%.1f /1M accesses), %llu TryLock failures\n",
              static_cast<unsigned long long>(r.lock.acquisitions),
              static_cast<unsigned long long>(r.lock.contentions),
              r.contentions_per_million,
              static_cast<unsigned long long>(r.lock.trylock_failures));
  if (r.lock_nanos_per_access > 0) {
    std::printf("lock time:       %.3f us per access\n",
                r.lock_nanos_per_access / 1000.0);
  }
  std::printf("evictions:       %llu (%llu write-backs)\n",
              static_cast<unsigned long long>(r.evictions),
              static_cast<unsigned long long>(r.writebacks));
  return 0;
}
