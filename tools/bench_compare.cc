// bench_compare: variance-aware perf-regression gate.
//
// Judges a candidate BENCH_*.json against a baseline:
//  - deterministic work counters and workload fingerprints: exact
//    equality. Any drift exits 1 — these signals cannot be blamed on a
//    noisy runner.
//  - wall-clock metrics: bootstrap confidence interval on the difference
//    of trial means; regressions are report-only unless --gate-wall.
//
// Exit codes: 0 pass, 1 gated drift/regression, 2 usage or parse error.
//
// Examples:
//   bench_compare bench/baselines/BENCH_smoke.json BENCH_smoke.json
//   bench_compare base.json cand.json --gate-wall --min-rel-delta 0.08
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/compare.h"
#include "bench/json_reader.h"

namespace {

using namespace bpw;
using namespace bpw::bench;

void Usage() {
  std::printf(
      "bench_compare — judge candidate vs baseline bench JSON\n\n"
      "  bench_compare BASELINE.json CANDIDATE.json [flags]\n\n"
      "  --gate-wall           fail (exit 1) on wall-clock regressions too;\n"
      "                        default gates only deterministic counters\n"
      "  --confidence P        bootstrap CI confidence (default 0.95)\n"
      "  --resamples N         bootstrap resamples (default 4000)\n"
      "  --min-rel-delta F     min |relative delta| to flag (default 0.05)\n"
      "  --seed N              bootstrap RNG seed (default fixed)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string candidate_path;
  CompareOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--gate-wall") {
      options.gate_wall = true;
    } else if (arg == "--confidence") {
      options.confidence = std::atof(next("--confidence"));
    } else if (arg == "--resamples") {
      options.resamples = std::atoi(next("--resamples"));
    } else if (arg == "--min-rel-delta") {
      options.min_rel_delta = std::atof(next("--min-rel-delta"));
    } else if (arg == "--seed") {
      options.bootstrap_seed =
          std::strtoull(next("--seed"), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 2;
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      std::fprintf(stderr, "too many positional arguments\n");
      return 2;
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) {
    Usage();
    return 2;
  }

  auto baseline = ParseJsonFile(baseline_path);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline: %s\n",
                 baseline.status().ToString().c_str());
    return 2;
  }
  auto candidate = ParseJsonFile(candidate_path);
  if (!candidate.ok()) {
    std::fprintf(stderr, "candidate: %s\n",
                 candidate.status().ToString().c_str());
    return 2;
  }

  auto report = CompareBenchResults(baseline.value(), candidate.value(),
                                    options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 2;
  }
  const std::string text = RenderCompareReport(report.value(), options);
  std::fwrite(text.data(), 1, text.size(), stdout);
  return report.value().ShouldFail(options) ? 1 : 0;
}
