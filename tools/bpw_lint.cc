// bpw_lint CLI: lock-discipline lint over the source tree.
//
//   bpw_lint [--self-test] [--sarif FILE] [--files-from FILE]
//            <file-or-dir>...
//
// Directories are walked recursively for *.h / *.cc / *.cpp; --files-from
// reads a newline-separated list instead (CI walks the tree once and feeds
// the same list to every linter). --sarif additionally writes the findings
// as SARIF 2.1.0 for code-scanning ingestion. Exit status: 0 when clean,
// 1 when findings were reported, 2 on usage/IO errors.
//
// --self-test runs the linter against embedded snippets seeded with the
// two canonical violations (prefetch after Lock(), allocation inside the
// critical section) plus a clean control and a suppressed control, and
// fails unless exactly the seeded violations are flagged. It proves the
// tool still detects what it exists to detect — a lint that silently
// stopped matching would otherwise look like a clean tree.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/finding.h"
#include "analysis/sarif.h"
#include "analysis/tree_walk.h"
#include "lint/lint.h"

namespace {

int RunSelfTest() {
  using bpw::lint::Finding;
  using bpw::lint::LintSource;

  int failures = 0;
  auto expect = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "bpw_lint self-test FAILED: %s\n", what);
      ++failures;
    }
  };

  // Seeded violation 1: prefetch issued after the lock is taken.
  const char* kPrefetchAfterLock = R"cpp(
void Commit(AccessQueue& queue) {
  ContentionLockGuard guard(lock_);
  PrefetchForCommit(queue);
  Replay(queue);
}
)cpp";
  std::vector<Finding> f = LintSource("seed1.cc", kPrefetchAfterLock);
  expect(f.size() == 1 && f[0].rule == "prefetch-in-critical-section",
         "seeded prefetch-after-lock must be flagged");

  // Seeded violation 2: heap allocation inside the critical section.
  const char* kAllocInCs = R"cpp(
void SharedQueue::CommitLocked() {
  std::vector<Entry> batch;
  batch.reserve(64);
  Replay(batch);
}
)cpp";
  f = LintSource("seed2.cc", kAllocInCs);
  expect(f.size() == 1 && f[0].rule == "critical-section-alloc",
         "seeded in-critical-section allocation must be flagged");

  // Clean control: prefetch before the lock, allocation outside it.
  const char* kClean = R"cpp(
void Commit(AccessQueue& queue) {
  std::vector<Entry> batch;
  batch.reserve(64);
  PrefetchForCommit(queue);
  ContentionLockGuard guard(lock_);
  Replay(queue);
}
)cpp";
  f = LintSource("clean.cc", kClean);
  expect(f.empty(), "clean control must not be flagged");

  // Suppressed control: an explicit allow silences the rule.
  const char* kSuppressed = R"cpp(
void CommitLocked() {
  // bpw-lint-allow(clock-read-in-critical-section)
  const uint64_t start = NowNanos();
  Replay(start);
}
)cpp";
  f = LintSource("suppressed.cc", kSuppressed);
  expect(f.empty(), "bpw-lint-allow must suppress the finding");

  // TryLock discipline: discarded result and missing fallback.
  const char* kTryLock = R"cpp(
void Broken() {
  lock_.TryLock();
}
)cpp";
  f = LintSource("trylock.cc", kTryLock);
  bool saw_unchecked = false;
  bool saw_no_fallback = false;
  for (const Finding& finding : f) {
    saw_unchecked |= finding.rule == "trylock-unchecked";
    saw_no_fallback |= finding.rule == "trylock-no-fallback";
  }
  expect(saw_unchecked, "discarded TryLock() must be flagged");
  expect(saw_no_fallback, "TryLock() without fallback must be flagged");

  // Raw std::mutex in library code: flagged under src/, exempt in
  // src/sync/ and outside src/ entirely.
  const char* kRawMutex = R"cpp(
class Pool {
  std::mutex mu_;
};
)cpp";
  f = LintSource("src/buffer/pool.h", kRawMutex);
  expect(f.size() == 1 && f[0].rule == "raw-mutex",
         "raw std::mutex under src/ must be flagged");
  f = LintSource("src/sync/mutex.h", kRawMutex);
  expect(f.empty(), "src/sync/ may use raw std::mutex");
  f = LintSource("tools/helper.h", kRawMutex);
  expect(f.empty(), "raw-mutex only applies to src/");

  // Lock()/TryLock() with no schedule point in the enclosing function.
  const char* kBlindLock = R"cpp(
void Coordinator::Drain() {
  ContentionLockGuard guard(lock_);
  lock_.Lock();
  Replay();
  lock_.Unlock();
}
)cpp";
  f = LintSource("src/core/coordinator.cc", kBlindLock);
  bool saw_blind = false;
  for (const Finding& finding : f) {
    saw_blind |= finding.rule == "lock-no-schedule-point";
  }
  expect(saw_blind, "Lock() without a schedule point must be flagged");
  const char* kCoveredLock = R"cpp(
void Coordinator::Drain(AccessQueue& queue) {
  BPW_SCHEDULE_POINT("drain.before_trylock");
  if (lock_.TryLock()) {
    ContentionLockAdoptGuard guard(lock_);
    CommitLocked(queue);
    return;
  }
  ContentionLockGuard guard(lock_);
  CommitLocked(queue);
}
)cpp";
  f = LintSource("src/core/coordinator.cc", kCoveredLock);
  expect(f.empty(), "a schedule point in the function satisfies the rule");

  if (failures == 0) std::printf("bpw_lint self-test: all checks passed\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string sarif_path;
  std::string files_from;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--files-from" && i + 1 < argc) {
      files_from = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bpw_lint [--self-test] [--sarif FILE] [--files-from FILE] "
          "<file-or-dir>...\n");
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (self_test) {
    const int rc = RunSelfTest();
    if (rc != 0 || (paths.empty() && files_from.empty())) return rc;
  }

  std::vector<std::string> files;
  if (!files_from.empty()) {
    if (!bpw::analysis::ReadFileList("bpw_lint", files_from, &files)) {
      return 2;
    }
  } else if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: bpw_lint [--self-test] [--sarif FILE] "
                 "[--files-from FILE] <file-or-dir>...\n");
    return 2;
  } else if (!bpw::analysis::CollectSourceFiles("bpw_lint", paths, &files)) {
    return 2;
  }

  std::vector<bpw::lint::Finding> findings;
  for (const std::string& file : files) {
    if (!bpw::lint::LintFile(file, &findings)) {
      std::fprintf(stderr, "bpw_lint: cannot read %s\n", file.c_str());
      return 2;
    }
  }
  for (const auto& finding : findings) {
    std::fprintf(stderr, "%s\n", bpw::lint::FormatFinding(finding).c_str());
  }
  if (!sarif_path.empty()) {
    std::vector<bpw::analysis::Finding> converted;
    converted.reserve(findings.size());
    for (const auto& f : findings) {
      converted.push_back({f.file, f.line, f.rule, f.message});
    }
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bpw_lint: cannot write %s\n", sarif_path.c_str());
      return 2;
    }
    out << bpw::analysis::FindingsToSarif("bpw_lint", bpw::lint::LintRuleIds(),
                                          converted);
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "bpw_lint: %zu finding(s) in %zu file(s) scanned\n",
                 findings.size(), files.size());
    return 1;
  }
  std::printf("bpw_lint: clean (%zu files scanned)\n", files.size());
  return 0;
}
