#!/usr/bin/env bash
# Run clang-tidy over the tree with the repo's pinned configuration.
#
#   tools/run_clang_tidy.sh [build-dir] [source ...]
#
# build-dir defaults to ./build and must contain compile_commands.json
# (the root CMakeLists sets CMAKE_EXPORT_COMPILE_COMMANDS ON, so any
# configured build dir works). With no explicit sources, lints every .cc
# under src/ and tools/ that appears in the compilation database.
#
# The clang-tidy major version is pinned: check behavior drifts between
# releases, so an unpinned run is not comparable to CI. If the pinned
# binary is absent (e.g. a gcc-only dev box), exits 0 with a notice —
# the static-analysis CI job is the gate, not local machines.
set -euo pipefail

TIDY_VERSION=18
BUILD_DIR="${1:-build}"
[[ $# -gt 0 ]] && shift

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

TIDY=""
for candidate in "clang-tidy-${TIDY_VERSION}" clang-tidy; do
  if command -v "${candidate}" >/dev/null 2>&1; then
    TIDY="${candidate}"
    break
  fi
done
if [[ -z "${TIDY}" ]]; then
  echo "run_clang_tidy: clang-tidy-${TIDY_VERSION} not installed; skipping" \
       "(the static-analysis CI job is the gate)"
  exit 0
fi
if ! "${TIDY}" --version | grep -q "version ${TIDY_VERSION}\."; then
  echo "run_clang_tidy: need clang-tidy major version ${TIDY_VERSION}," \
       "found: $("${TIDY}" --version | tr '\n' ' ')"
  echo "run_clang_tidy: skipping (unpinned runs are not comparable to CI)"
  exit 0
fi

DB="${BUILD_DIR}/compile_commands.json"
if [[ ! -f "${DB}" ]]; then
  echo "run_clang_tidy: ${DB} not found; configure the build first:" >&2
  echo "  cmake -B ${BUILD_DIR}" >&2
  exit 2
fi

if [[ $# -gt 0 ]]; then
  FILES=("$@")
else
  # Production code only: tests/bench get the same compile flags but their
  # gtest/benchmark macro expansions drown the signal.
  mapfile -t FILES < <(grep -o '"file": *"[^"]*"' "${DB}" |
    sed 's/.*"file": *"//; s/"$//' |
    grep -E "^${REPO_ROOT}/(src|tools)/.*\.cc$" | sort -u)
fi
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "run_clang_tidy: no files to lint" >&2
  exit 2
fi

echo "run_clang_tidy: ${TIDY} over ${#FILES[@]} files (db: ${DB})"
"${TIDY}" -p "${BUILD_DIR}" --quiet "${FILES[@]}"
echo "run_clang_tidy: clean"
