// Shared diagnostic record for the analysis library's checkers.
#pragma once

#include <string>

namespace bpw {
namespace analysis {

struct Finding {
  std::string file;
  int line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

}  // namespace analysis
}  // namespace bpw
