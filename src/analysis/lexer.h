// Shared lexer for the repo's static-analysis tools (bpw_lint,
// bpw_atomiclint).
//
// bpw_lint started life on a hand-rolled comment/string blanking pass
// (PR 4). That regex core mishandled exactly the constructs C++ uses to
// hide code from line-oriented scanners:
//
//   - line continuations: a backslash-newline inside a string literal or a
//     // comment spliced physical lines together, so every line number
//     after it drifted and allow-comments landed on the wrong line;
//   - preprocessor directives: a multi-line #define kept its body visible
//     as "code", so macro implementations (the schedule-point and MC hooks
//     among them) produced phantom lock/alloc sites;
//   - digit separators: 1'000'000 opened a bogus char literal that
//     swallowed real code until the next apostrophe;
//   - raw strings: R"delim(...)delim" containing quotes, `/*`, or code-like
//     text leaked into the cleaned stream.
//
// This lexer is the single tokenization pass both tools now share. It
// produces, in one scan that never loses physical line structure:
//
//   - `tokens`: identifiers / numbers / punctuation with 1-based line and
//     column (string and char literals are single tokens carrying their
//     contents, so annotation args like BPW_LOCK_CLASS("shard") survive);
//   - `cleaned_lines`: the source with comments, string/char contents, and
//     preprocessor directives blanked to spaces — one output line per
//     physical input line, always — for the line-regex rule layer;
//   - `line_allows` / `file_allows`: the `bpw-lint-allow(...)` /
//     `bpw-lint-allow-file(...)` suppressions collected from comments,
//     plus the raw `allow_sites` list the --audit-allows mode consumes.
#pragma once

#include <string>
#include <vector>

namespace bpw {
namespace analysis {

enum class TokKind {
  kIdent,   ///< identifier or keyword
  kNumber,  ///< pp-number (handles 0x1F, 1'000'000, 1.5e9f)
  kPunct,   ///< punctuation; multi-char for `::` and `->`
  kString,  ///< a whole string literal (ordinary or raw)
  kChar,    ///< a char literal
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;  // literal contents (unquoted) for kString/kChar
  int line = 0;      // 1-based physical line the token starts on
  int col = 0;       // 0-based column on that line
};

/// One bpw-lint-allow comment, for staleness auditing: `line` is the
/// 0-based line index the suppression anchors to (the line the comment ends
/// on; it also covers the following line).
struct AllowSite {
  int line = 0;
  std::string rule;
  bool file_scope = false;
};

struct LexedSource {
  std::vector<Token> tokens;
  std::vector<std::string> cleaned_lines;
  /// line_allows[i] holds the rules suppressed on 0-based line i.
  std::vector<std::vector<std::string>> line_allows;
  std::vector<std::string> file_allows;
  std::vector<AllowSite> allow_sites;

  /// True if `rule` is suppressed on 0-based line index `line_index`.
  bool Allowed(int line_index, const std::string& rule) const;
};

/// Lexes one translation unit. Never fails: unterminated constructs are
/// closed at end of input.
LexedSource Lex(const std::string& source);

}  // namespace analysis
}  // namespace bpw
