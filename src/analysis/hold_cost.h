// Hold-region prover + static hold-cost model (the bpw_holdlint engine).
//
// A hold region is every token range over which a ContentionLock or
// SpinLock is held: lexical guards (ContentionLockGuard / SpinLockGuard /
// ContentionLockAdoptGuard), manual Lock()/Unlock() spans, the branch
// body of a TryLock, and whole bodies entered holding — BPW_REQUIRES on a
// lock member, BPW_REQUIRES(this) capability functions (the policy
// convention), and the FooLocked() suffix convention when the enclosing
// class owns such a lock. Mutex and MutexGuard are deliberately NOT hold
// regions: Mutex is the condvar-user wrapper and blocking under it is the
// intended behaviour (BufferPool::BeginLoad waits under one).
//
// Inside every hold region the checker proves, using the transitive
// effect summaries (effects.h) over the call graph, that nothing
// allocates, blocks, does IO, logs, reads clocks, loops unboundedly, or
// escapes through an indirect call — transitively, through any chain of
// helpers and virtual dispatch. bpw_lint enforces the same contract one
// line at a time; this layer is what closes the "hide it in a helper"
// hole. Two extra rules cover the lock-free hit path: a CAS retry loop
// must be bounded (structurally or via BPW_BOUNDED_BY) and must not
// block, which together prove bounded lock-free retry.
//
// Alongside the proof, every hold region gets a static cost: a weighted
// statement count over its transitive extent (loop bodies multiply by 8
// per nesting level, callee costs land at their call sites, recursion
// doubles once). The absolute number is meaningless; the RANK is the
// point — `bpw_profile --reconcile` joins these ranks against the runtime
// profiler's measured per-site hold histograms and flags sites whose
// static and measured ranks diverge, which is how a stale annotation or
// an unmodelled workload effect surfaces.
#pragma once

#include <string>
#include <vector>

#include "analysis/call_graph.h"
#include "analysis/effects.h"
#include "analysis/finding.h"

namespace bpw {
namespace analysis {

/// One lock-hold region, with its static cost.
struct HoldSite {
  std::string function;   ///< qualified enclosing function
  std::string lock_text;  ///< the lock expression as spelled
  std::string lock_class; ///< BPW_LOCK_CLASS (or owner::field) of the lock
  std::string prof_label; ///< BindProfSite label, "" when unbound
  std::string file;
  int line = 0;           ///< line the hold opens on
  std::string kind;       ///< guard|adopt|manual|trylock|requires|capability|locked-suffix
  double cost = 0;        ///< static weighted cost of the region
};

struct HoldOptions {
  /// Treat every file as library code (corpus runs) instead of the
  /// default scope: under src/, excluding src/sync/ and src/analysis/.
  bool all_files_lib = false;
  /// Report findings even where a bpw-lint-allow comment suppresses them
  /// (the --audit-allows accounting needs the unsuppressed set).
  bool ignore_allows = false;
};

struct HoldReport {
  std::vector<Finding> findings;
  std::vector<HoldSite> sites;
};

extern const char* const kHoldRules[9];

HoldReport CheckHolds(const TreeModel& tree, const CallGraph& cg,
                      const EffectMap& effects, const HoldOptions& opts);

/// {"sites": [{label, lock, lock_class, file, line, function, kind,
/// weight}, ...]} sorted by descending weight — the input to
/// `bpw_profile --reconcile`.
std::string HoldCostsToJson(const HoldReport& report);

}  // namespace analysis
}  // namespace bpw
