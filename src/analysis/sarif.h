// SARIF 2.1.0 writer shared by bpw_lint, bpw_atomiclint, and bpw_holdlint.
//
// GitHub code scanning ingests SARIF, so CI can surface linter findings as
// inline pull-request annotations instead of buried job logs. The writer
// emits the minimal valid document: one run, the tool driver with its rule
// ids, and one result per finding at error level with a single physical
// location. File paths are emitted as given (repo-relative when the
// linters are invoked from the repo root, which is how CI runs them).
#pragma once

#include <string>
#include <vector>

#include "analysis/finding.h"

namespace bpw {
namespace analysis {

/// Renders findings as a SARIF 2.1.0 document. `rule_ids` lists every rule
/// the tool can emit (they become reportingDescriptors so code scanning
/// can group by rule even when a rule currently has zero findings).
std::string FindingsToSarif(const std::string& tool_name,
                            const std::vector<std::string>& rule_ids,
                            const std::vector<Finding>& findings);

}  // namespace analysis
}  // namespace bpw
