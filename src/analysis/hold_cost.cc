#include "analysis/hold_cost.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <set>

#include "analysis/resolve.h"

namespace bpw {
namespace analysis {

const char* const kHoldRules[9] = {
    "hold-alloc",          "hold-block",         "hold-io",
    "hold-log",            "hold-clock",         "hold-unbounded-loop",
    "hold-indirect-call",  "cas-retry-unbounded", "cas-retry-blocks"};

namespace {

constexpr double kCostCap = 1e12;

bool WordIn(const std::string& text, const std::string& word) {
  std::string cur;
  for (size_t i = 0; i <= text.size(); ++i) {
    const char c = i < text.size() ? text[i] : ' ';
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '_') {
      cur += c;
      continue;
    }
    if (cur == word) return true;
    cur.clear();
  }
  return false;
}

/// Locks whose holds are proven critical sections. Mutex is excluded by
/// design: it is the condvar wrapper and blocks on purpose.
bool IsHoldLockType(const std::string& type_text) {
  return WordIn(type_text, "ContentionLock") || WordIn(type_text, "SpinLock");
}

bool IsBlockingHoldGuard(const std::string& t) {
  return t == "ContentionLockGuard" || t == "SpinLockGuard";
}

bool IsAdoptHoldGuard(const std::string& t) {
  return t == "ContentionLockAdoptGuard";
}

/// Any guard that acquires by blocking, for the CAS no-blocking rule
/// (there MutexGuard counts too: a CAS loop must not wait on anything).
bool IsAnyBlockingGuard(const std::string& t) {
  return t == "ContentionLockGuard" || t == "SpinLockGuard" ||
         t == "MutexGuard";
}

bool IsLibPath(const std::string& path) {
  return path.find("src/") != std::string::npos &&
         path.find("src/sync/") == std::string::npos &&
         path.find("src/analysis/") == std::string::npos;
}

std::string StripQuotes(const std::string& s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

bool NextIs(const std::vector<Token>& toks, size_t i, const char* text) {
  return i + 1 < toks.size() && toks[i + 1].kind == TokKind::kPunct &&
         toks[i + 1].text == text;
}

bool IsControlKeyword(const std::string& t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" ||
         t == "return" || t == "sizeof" || t == "catch" || t == "do" ||
         t == "else";
}

/// Loop-nesting multiplier per token of a definition: 8 per enclosing
/// loop body, capped at 512 (deeper nesting adds no ranking signal).
std::vector<double> NestingMult(const FileModel& fm, const FunctionDecl& fn) {
  const size_t n = fm.lex.tokens.size();
  std::vector<int> nest(n, 0);
  for (const LoopInfo& l : ScanLoops(fm, fn)) {
    for (size_t i = l.body_begin; i < l.body_end && i < n; ++i) ++nest[i];
  }
  std::vector<double> mult(n, 1.0);
  for (size_t i = 0; i < n; ++i) {
    mult[i] = nest[i] >= 3 ? 512.0 : (nest[i] == 2 ? 64.0
                                                   : (nest[i] == 1 ? 8.0 : 1.0));
  }
  return mult;
}

std::vector<std::string> SplitArgs(const std::string& args) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (char c : args) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
      continue;
    }
    if (c != ' ') cur += c;
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

const char* BitNoun(unsigned bit) {
  switch (bit) {
    case kEffAlloc:
      return "allocation";
    case kEffBlock:
      return "blocking call";
    case kEffIo:
      return "IO";
    case kEffLog:
      return "logging";
    case kEffClock:
      return "clock read";
  }
  return "effect";
}

const char* BitVerb(unsigned bit) {
  switch (bit) {
    case kEffAlloc:
      return "allocate";
    case kEffBlock:
      return "block";
    case kEffIo:
      return "perform IO";
    case kEffLog:
      return "log";
    case kEffClock:
      return "read the clock";
  }
  return "?";
}

const char* BitRule(unsigned bit) {
  switch (bit) {
    case kEffAlloc:
      return "hold-alloc";
    case kEffBlock:
      return "hold-block";
    case kEffIo:
      return "hold-io";
    case kEffLog:
      return "hold-log";
    case kEffClock:
      return "hold-clock";
    case kEffLoop:
      return "hold-unbounded-loop";
    case kEffIndirect:
      return "hold-indirect-call";
  }
  return "?";
}

class HoldChecker {
 public:
  HoldChecker(const TreeModel& tree, const CallGraph& cg,
              const EffectMap& effects, const HoldOptions& opts)
      : tree_(tree), cg_(cg), effects_(effects), opts_(opts) {}

  HoldReport Run() {
    CollectLocks();
    CollectProfLabels();
    ComputeCosts();
    for (const FileModel& fm : tree_.files) {
      if (!opts_.all_files_lib && !IsLibPath(fm.path)) continue;
      for (const FunctionDecl& fn : fm.functions) {
        if (!fn.has_body) continue;
        ScanFunction(fm, fn);
        RunCasRules(fm, fn);
      }
    }
    std::sort(report_.sites.begin(), report_.sites.end(),
              [](const HoldSite& a, const HoldSite& b) {
                return a.cost > b.cost;
              });
    return std::move(report_);
  }

 private:
  struct HoldLock {
    std::string lock_class;
    std::string prof_label;
  };

  void CollectLocks() {
    auto add = [&](const FieldDecl& f) {
      if (!IsHoldLockType(f.type_text)) return;
      HoldLock d;
      const Annotation* cls = f.FindAnnotation("BPW_LOCK_CLASS");
      d.lock_class = cls != nullptr
                         ? StripQuotes(cls->args)
                         : (f.owner.empty() ? "::" + f.name
                                            : f.owner + "::" + f.name);
      locks_[&f] = d;
    };
    for (const FileModel& fm : tree_.files) {
      for (const TypeDecl& t : fm.types) {
        for (const FieldDecl& f : t.fields) add(f);
      }
      for (const FieldDecl& f : fm.globals) add(f);
    }
  }

  /// Finds every `X.BindProfSite(BPW_PROF_SITE("label"))` — including the
  /// two-step spelling through a local `ProfSiteId site = BPW_PROF_SITE(...)`
  /// — and records the label on the lock field X resolves to.
  void CollectProfLabels() {
    for (const FileModel& fm : tree_.files) {
      const std::vector<Token>& toks = fm.lex.tokens;
      for (const FunctionDecl& fn : fm.functions) {
        if (!fn.has_body) continue;
        // local site variable -> label
        std::map<std::string, std::string> site_vars;
        for (size_t i = fn.body_begin;
             i + 3 < fn.body_end && i + 3 < toks.size(); ++i) {
          if (toks[i].kind != TokKind::kIdent ||
              toks[i].text != "BPW_PROF_SITE" || !NextIs(toks, i, "(")) {
            continue;
          }
          if (toks[i + 2].kind != TokKind::kString) continue;
          const std::string label = toks[i + 2].text;
          // `name = BPW_PROF_SITE(...)` binds the label to the local.
          if (i >= 2 && toks[i - 1].kind == TokKind::kPunct &&
              toks[i - 1].text == "=" && toks[i - 2].kind == TokKind::kIdent) {
            site_vars[toks[i - 2].text] = label;
          }
        }
        for (size_t i = fn.body_begin; i < fn.body_end && i < toks.size();
             ++i) {
          if (toks[i].kind != TokKind::kIdent ||
              toks[i].text != "BindProfSite" || !NextIs(toks, i, "(") ||
              i < 2 || toks[i - 1].kind != TokKind::kPunct ||
              (toks[i - 1].text != "." && toks[i - 1].text != "->") ||
              toks[i - 2].kind != TokKind::kIdent) {
            continue;
          }
          std::string label;
          if (i + 2 < toks.size() && toks[i + 2].kind == TokKind::kIdent) {
            if (toks[i + 2].text == "BPW_PROF_SITE" && i + 4 < toks.size() &&
                toks[i + 4].kind == TokKind::kString) {
              label = toks[i + 4].text;
            } else {
              auto it = site_vars.find(toks[i + 2].text);
              if (it != site_vars.end()) label = it->second;
            }
          }
          if (label.empty()) continue;
          const std::string member = toks[i - 2].text;
          std::string receiver;
          if (i >= 4 && toks[i - 3].kind == TokKind::kPunct &&
              (toks[i - 3].text == "." || toks[i - 3].text == "->") &&
              toks[i - 4].kind == TokKind::kIdent) {
            receiver = toks[i - 4].text;
          }
          const FieldDecl* f =
              ResolveFieldRef(tree_, &fn, fn.qualifier, receiver, member);
          auto it = f != nullptr ? locks_.find(f) : locks_.end();
          if (it != locks_.end()) it->second.prof_label = label;
        }
      }
    }
  }

  // ---- static cost model -------------------------------------------------

  /// Direct weight of one definition: 1 per statement (`;`), 2 per
  /// call-shaped token, both scaled by the loop-nesting multiplier.
  double DirectWeight(const FileModel& fm, const FunctionDecl& fn,
                      const std::vector<double>& mult) {
    const std::vector<Token>& toks = fm.lex.tokens;
    double w = 0;
    for (size_t i = fn.body_begin; i < fn.body_end && i < toks.size(); ++i) {
      if (toks[i].kind == TokKind::kPunct && toks[i].text == ";") {
        w += mult[i];
      } else if (toks[i].kind == TokKind::kIdent && NextIs(toks, i, "(") &&
                 !IsControlKeyword(toks[i].text)) {
        w += 2 * mult[i];
      }
    }
    return std::min(w, kCostCap);
  }

  void ComputeCosts() {
    const size_t n = cg_.nodes.size();
    std::vector<double> direct(n, 0.0);
    line_mult_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      for (const auto& d : cg_.nodes[i].defs) {
        const std::vector<double> mult = NestingMult(*d.second, *d.first);
        direct[i] += DirectWeight(*d.second, *d.first, mult);
        const std::vector<Token>& toks = d.second->lex.tokens;
        for (size_t t = d.first->body_begin;
             t < d.first->body_end && t < toks.size(); ++t) {
          double& m = line_mult_[i][toks[t].line];
          if (mult[t] > m) m = mult[t];
        }
      }
    }

    // Reverse-topological totals via Tarjan SCC (emission order is
    // callees-first). A recursion cycle doubles its combined weight once:
    // the model only needs recursion to rank above a single pass, not to
    // guess depth.
    std::vector<int> comp(n, -1), low(n, 0), num(n, -1);
    std::vector<size_t> stack;
    std::vector<char> on_stack(n, 0);
    std::vector<std::vector<size_t>> sccs;
    int counter = 0;
    std::function<void(size_t)> strongconnect = [&](size_t v) {
      num[v] = low[v] = counter++;
      stack.push_back(v);
      on_stack[v] = 1;
      for (const CallEdge& e : cg_.nodes[v].edges) {
        if (num[e.callee] < 0) {
          strongconnect(e.callee);
          if (low[e.callee] < low[v]) low[v] = low[e.callee];
        } else if (on_stack[e.callee]) {
          if (num[e.callee] < low[v]) low[v] = num[e.callee];
        }
      }
      if (low[v] == num[v]) {
        std::vector<size_t> scc;
        for (;;) {
          const size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          comp[w] = static_cast<int>(sccs.size());
          scc.push_back(w);
          if (w == v) break;
        }
        sccs.push_back(std::move(scc));
      }
    };
    for (size_t v = 0; v < n; ++v) {
      if (num[v] < 0) strongconnect(v);
    }

    totals_.assign(n, 0.0);
    for (const std::vector<size_t>& scc : sccs) {
      double sum = 0;
      for (size_t m : scc) {
        sum += direct[m];
        // Per call-site line: sequential callees add, a virtual fan-out
        // contributes the costliest override (the dispatch takes ONE of
        // them, not all).
        std::map<int, std::pair<double, double>> per_line;  // {sum, vmax}
        for (const CallEdge& e : cg_.nodes[m].edges) {
          if (comp[e.callee] == comp[m]) continue;
          auto& slot = per_line[e.line];
          if (e.virtual_dispatch) {
            if (totals_[e.callee] > slot.second) slot.second = totals_[e.callee];
          } else {
            slot.first += totals_[e.callee];
          }
        }
        for (const auto& entry : per_line) {
          double lm = 1.0;
          auto lit = line_mult_[m].find(entry.first);
          if (lit != line_mult_[m].end() && lit->second > lm) lm = lit->second;
          sum += lm * (entry.second.first + entry.second.second);
        }
      }
      if (scc.size() > 1) sum *= 2;
      sum = std::min(sum, kCostCap);
      for (size_t m : scc) totals_[m] = sum;
    }

    // Per-node, per-line transitive callee contribution, consumed once per
    // line while accumulating hold-region costs.
    call_contrib_.resize(n);
    for (size_t m = 0; m < n; ++m) {
      std::map<int, std::pair<double, double>> per_line;
      for (const CallEdge& e : cg_.nodes[m].edges) {
        auto& slot = per_line[e.line];
        if (e.virtual_dispatch) {
          if (totals_[e.callee] > slot.second) slot.second = totals_[e.callee];
        } else {
          slot.first += totals_[e.callee];
        }
      }
      for (const auto& entry : per_line) {
        double lm = 1.0;
        auto lit = line_mult_[m].find(entry.first);
        if (lit != line_mult_[m].end() && lit->second > lm) lm = lit->second;
        call_contrib_[m][entry.first] =
            lm * (entry.second.first + entry.second.second);
      }
    }
  }

  // ---- lock resolution ---------------------------------------------------

  const HoldLock* ResolveLock(const FunctionDecl* fn,
                              const std::string& context,
                              const std::string& receiver,
                              const std::string& member) const {
    const FieldDecl* f = ResolveFieldRef(tree_, fn, context, receiver, member);
    if (f == nullptr) {
      // Same unique-lock-class fallback the lock-order layer uses: a name
      // that is hold-lock-typed everywhere it appears and always means one
      // class resolves (every coordinator calls its lock "lock_").
      const FieldDecl* found = nullptr;
      std::set<std::string> classes;
      auto range = tree_.fields_by_name.equal_range(member);
      for (auto it = range.first; it != range.second; ++it) {
        auto lf = locks_.find(it->second);
        if (lf == locks_.end()) return nullptr;
        classes.insert(lf->second.lock_class);
        found = it->second;
      }
      if (found == nullptr || classes.size() != 1) return nullptr;
      f = found;
    }
    auto it = locks_.find(f);
    return it == locks_.end() ? nullptr : &it->second;
  }

  /// First constructor argument starting at '(' -> lock + spelled text.
  const HoldLock* ResolveArgExpr(const std::vector<Token>& toks, size_t open,
                                 const FunctionDecl* fn,
                                 std::string* spelled) const {
    int depth = 0;
    std::string member, receiver, text;
    bool prev_was_sep = false;
    for (size_t i = open; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(") {
          ++depth;
          continue;
        }
        if (t.text == ")" && --depth == 0) break;
        if (t.text == "," && depth == 1) break;
        prev_was_sep = t.text == "." || t.text == "->";
        if (depth == 1) text += t.text;
        continue;
      }
      if (depth == 1) text += t.text;
      if (t.kind == TokKind::kIdent) {
        receiver = prev_was_sep ? member : "";
        member = t.text;
        prev_was_sep = false;
      }
    }
    if (member.empty()) return nullptr;
    *spelled = text;
    return ResolveLock(fn, fn != nullptr ? fn->qualifier : "", receiver,
                       member);
  }

  // ---- the scan ----------------------------------------------------------

  void AddFinding(const FileModel& fm, int line, const std::string& rule,
                  const std::string& message) {
    if (!opts_.ignore_allows && fm.lex.Allowed(line - 1, rule)) return;
    const std::string key =
        fm.path + ":" + std::to_string(line) + ":" + rule;
    if (!finding_keys_.insert(key).second) return;
    report_.findings.push_back({fm.path, line, rule, message});
  }

  size_t NodeOf(const FunctionDecl& fn) const {
    auto it = cg_.index.find(fn.qualified);
    return it == cg_.index.end() ? cg_.nodes.size() : it->second;
  }

  void ScanFunction(const FileModel& fm, const FunctionDecl& fn) {
    const std::vector<Token>& toks = fm.lex.tokens;
    if (fn.body_begin >= fn.body_end || fn.body_end > toks.size()) return;
    const size_t node = NodeOf(fn);
    const unsigned exonerated =
        node < effects_.per_node.size() ? effects_.per_node[node].exonerated
                                        : 0;

    struct Active {
      size_t site = 0;  ///< index into report_.sites
      int depth = 0;
    };
    std::vector<Active> active;
    auto open_hold = [&](const HoldLock* lock, const std::string& lock_text,
                         const std::string& kind, int line, int depth) {
      HoldSite s;
      s.function = fn.qualified;
      s.lock_text = lock_text;
      if (lock != nullptr) {
        s.lock_class = lock->lock_class;
        s.prof_label = lock->prof_label;
      } else {
        s.lock_class = lock_text;
      }
      s.file = fm.path;
      s.line = line;
      s.kind = kind;
      active.push_back(Active{report_.sites.size(), depth});
      report_.sites.push_back(std::move(s));
    };
    auto lock_display = [&]() -> std::string {
      const HoldSite& s = report_.sites[active.back().site];
      return s.lock_class.empty() ? s.lock_text : s.lock_class;
    };

    // Whole-body holds: REQUIRES on a lock member, REQUIRES(this)
    // capability functions, and the Locked() suffix convention (bound to
    // the enclosing class's unique hold lock).
    auto ann_it = tree_.function_annotations.find(fn.qualified);
    if (ann_it != tree_.function_annotations.end()) {
      for (const Annotation& a : ann_it->second) {
        if (a.name != "BPW_REQUIRES" && a.name != "BPW_RELEASE") continue;
        for (const std::string& arg : SplitArgs(a.args)) {
          if (arg == "this") {
            open_hold(nullptr, fn.qualifier.empty() ? "this"
                                                    : fn.qualifier + "::this",
                      "capability", fn.line, -1);
            continue;
          }
          std::string t = arg;
          if (!t.empty() && t[0] == '!') continue;
          if (!t.empty() && t[0] == '&') t = t.substr(1);
          const MemberRef ref = SplitMemberText(t);
          const HoldLock* lock =
              ResolveLock(&fn, fn.qualifier, ref.receiver, ref.member);
          if (lock != nullptr) open_hold(lock, t, "requires", fn.line, -1);
        }
      }
    }
    if (active.empty() && fn.LockedSuffix() && !fn.qualifier.empty()) {
      // FooLocked() runs under the class's lock; bind it when the class
      // owns exactly one hold-lock field.
      const FieldDecl* unique = nullptr;
      int count = 0;
      auto range = tree_.types_by_name.equal_range(fn.qualifier);
      for (auto it = range.first; it != range.second; ++it) {
        for (const FieldDecl& f : it->second->fields) {
          if (locks_.count(&f) == 0) continue;
          ++count;
          unique = &f;
        }
      }
      if (count == 1) {
        open_hold(&locks_.at(unique), unique->name, "locked-suffix", fn.line,
                  -1);
      }
    }

    const std::vector<double> mult = NestingMult(fm, fn);
    std::map<int, double> contrib =
        node < call_contrib_.size() ? call_contrib_[node]
                                    : std::map<int, double>();
    std::map<size_t, EffectSite> direct_sites;
    for (const EffectSite& s : ScanDirectEffects(fm, fn)) {
      direct_sites.emplace(s.tok, s);
    }
    std::map<size_t, const LoopInfo*> loops_by_kw;
    const std::vector<LoopInfo> loops = ScanLoops(fm, fn);
    for (const LoopInfo& l : loops) loops_by_kw[l.kw_tok] = &l;
    std::multimap<int, const CallEdge*> edges_by_line;
    std::multimap<int, const IndirectCall*> indirect_by_line;
    if (node < cg_.nodes.size()) {
      for (const CallEdge& e : cg_.nodes[node].edges) {
        edges_by_line.emplace(e.line, &e);
      }
      for (const IndirectCall& ic : cg_.nodes[node].indirect_calls) {
        indirect_by_line.emplace(ic.line, &ic);
      }
    }

    auto charge = [&](double w) {
      for (const Active& a : active) {
        double& c = report_.sites[a.site].cost;
        c = std::min(c + w, kCostCap);
      }
    };

    int depth = 0;
    for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
      const Token& t = toks[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "{") ++depth;
        if (t.text == "}") {
          --depth;
          active.erase(std::remove_if(active.begin(), active.end(),
                                      [&](const Active& a) {
                                        return a.depth > depth;
                                      }),
                       active.end());
        }
        if (t.text == ";") charge(mult[i]);
        continue;
      }
      if (t.kind != TokKind::kIdent) continue;

      // Hold open/close, mirroring the lock-order layer's scanner.
      if ((IsBlockingHoldGuard(t.text) || IsAdoptHoldGuard(t.text)) &&
          i + 2 < fn.body_end && toks[i + 1].kind == TokKind::kIdent &&
          toks[i + 2].kind == TokKind::kPunct && toks[i + 2].text == "(") {
        std::string spelled;
        const HoldLock* lock = ResolveArgExpr(toks, i + 2, &fn, &spelled);
        if (lock != nullptr) {
          open_hold(lock, spelled, IsAdoptHoldGuard(t.text) ? "adopt" : "guard",
                    t.line, depth);
        }
        continue;
      }
      const bool is_lock = t.text == "Lock" || t.text == "lock";
      const bool is_try = t.text == "TryLock" || t.text == "try_lock";
      const bool is_unlock = t.text == "Unlock" || t.text == "unlock";
      if ((is_lock || is_try || is_unlock) && i >= 2 && i + 1 < fn.body_end &&
          toks[i + 1].kind == TokKind::kPunct && toks[i + 1].text == "(" &&
          toks[i - 1].kind == TokKind::kPunct &&
          (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
          toks[i - 2].kind == TokKind::kIdent) {
        const std::string member = toks[i - 2].text;
        std::string receiver;
        if (i >= 4 && toks[i - 3].kind == TokKind::kPunct &&
            (toks[i - 3].text == "." || toks[i - 3].text == "->") &&
            toks[i - 4].kind == TokKind::kIdent) {
          receiver = toks[i - 4].text;
        }
        const HoldLock* lock =
            ResolveLock(&fn, fn.qualifier, receiver, member);
        if (lock != nullptr) {
          const std::string spelled =
              receiver.empty() ? member : receiver + "." + member;
          if (is_unlock) {
            active.erase(
                std::remove_if(active.begin(), active.end(),
                               [&](const Active& a) {
                                 const HoldSite& s = report_.sites[a.site];
                                 return s.lock_text == spelled &&
                                        (s.kind == "manual" ||
                                         s.kind == "trylock");
                               }),
                active.end());
          } else {
            open_hold(lock, spelled, is_try ? "trylock" : "manual", t.line,
                      is_try ? depth + 1 : depth);
          }
          continue;
        }
      }

      // Cost: calls charge 2 plus the callee's transitive total, once per
      // call-site line.
      const bool call_shaped = NextIs(toks, i, "(") &&
                               !IsControlKeyword(t.text);
      if (call_shaped) {
        double w = 2 * mult[i];
        auto cit = contrib.find(t.line);
        if (cit != contrib.end()) {
          w += cit->second;
          contrib.erase(cit);
        }
        charge(w);
      }

      if (active.empty()) continue;

      // Proof obligations inside the hold region.
      auto ds = direct_sites.find(i);
      if (ds != direct_sites.end() && !(ds->second.bit & exonerated)) {
        const unsigned bit = ds->second.bit;
        AddFinding(fm, t.line, BitRule(bit),
                   std::string(BitNoun(bit)) + " under '" + lock_display() +
                       "': " + ds->second.what + " in " + fn.qualified);
      }
      auto lp = loops_by_kw.find(i);
      if (lp != loops_by_kw.end() && !lp->second->bounded &&
          !lp->second->annotated && !(exonerated & kEffLoop)) {
        AddFinding(fm, t.line, "hold-unbounded-loop",
                   "unbounded loop under '" + lock_display() + "' in " +
                       fn.qualified +
                       " (bound it structurally or annotate BPW_BOUNDED_BY)");
      }
      if (call_shaped) {
        auto er = edges_by_line.equal_range(t.line);
        for (auto it = er.first; it != er.second; ++it) {
          const CallEdge& e = *it->second;
          unsigned bits = effects_.BitsOf(e.callee) & ~exonerated;
          for (unsigned bit = 1; bit <= kEffIndirect; bit <<= 1) {
            if (!(bits & bit)) continue;
            const std::string witness = effects_.Witness(cg_, e.callee, bit);
            if (bit == kEffIndirect) {
              AddFinding(fm, t.line, "hold-indirect-call",
                         "call under '" + lock_display() +
                             "' reaches an indirect call (targets unknown): " +
                             witness);
            } else if (bit == kEffLoop) {
              AddFinding(fm, t.line, "hold-unbounded-loop",
                         "call under '" + lock_display() +
                             "' reaches an unbounded loop: " + witness);
            } else {
              AddFinding(fm, t.line, BitRule(bit),
                         std::string("call under '") + lock_display() +
                             "' may " + BitVerb(bit) + ": " + witness);
            }
          }
        }
        auto ir = indirect_by_line.equal_range(t.line);
        for (auto it = ir.first; it != ir.second; ++it) {
          if (exonerated & kEffIndirect) continue;
          AddFinding(fm, t.line, "hold-indirect-call",
                     "indirect call of '" + it->second->expr + "' under '" +
                         lock_display() + "' in " + fn.qualified +
                         " (targets unknown — may do anything)");
        }
      }
    }
  }

  // ---- CAS retry rules ---------------------------------------------------

  void RunCasRules(const FileModel& fm, const FunctionDecl& fn) {
    const std::vector<Token>& toks = fm.lex.tokens;
    const std::vector<LoopInfo> loops = ScanLoops(fm, fn);
    for (size_t i = fn.body_begin; i < fn.body_end && i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      if (toks[i].text != "compare_exchange_weak" &&
          toks[i].text != "compare_exchange_strong") {
        continue;
      }
      // Innermost loop containing the CAS; a CAS outside any loop is a
      // single attempt and needs no bound.
      const LoopInfo* inner = nullptr;
      for (const LoopInfo& l : loops) {
        if (i < l.body_begin || i >= l.body_end) continue;
        if (inner == nullptr ||
            l.body_end - l.body_begin < inner->body_end - inner->body_begin) {
          inner = &l;
        }
      }
      if (inner == nullptr) continue;
      if (!inner->bounded && !inner->annotated) {
        AddFinding(fm, toks[i].line, "cas-retry-unbounded",
                   "CAS retry loop in " + fn.qualified +
                       " has no bound; annotate BPW_BOUNDED_BY with the "
                       "bounding argument or bound the loop structurally");
      }
      for (size_t j = inner->body_begin;
           j < inner->body_end && j < toks.size(); ++j) {
        if (toks[j].kind != TokKind::kIdent) continue;
        const bool guard = IsAnyBlockingGuard(toks[j].text) &&
                           j + 2 < toks.size() &&
                           toks[j + 1].kind == TokKind::kIdent &&
                           toks[j + 2].kind == TokKind::kPunct &&
                           toks[j + 2].text == "(";
        const bool manual =
            (toks[j].text == "Lock" || toks[j].text == "lock") && j >= 1 &&
            toks[j - 1].kind == TokKind::kPunct &&
            (toks[j - 1].text == "." || toks[j - 1].text == "->") &&
            NextIs(toks, j, "(");
        if (guard || manual) {
          AddFinding(fm, toks[j].line, "cas-retry-blocks",
                     "CAS retry loop in " + fn.qualified +
                         " acquires a blocking lock; a lock-free retry path "
                         "must stay lock-free (use TryLock + fallback "
                         "outside the loop)");
        }
      }
    }
  }

  const TreeModel& tree_;
  const CallGraph& cg_;
  const EffectMap& effects_;
  const HoldOptions opts_;
  HoldReport report_;
  std::set<std::string> finding_keys_;
  std::map<const FieldDecl*, HoldLock> locks_;
  std::vector<double> totals_;
  std::vector<std::map<int, double>> line_mult_;
  std::vector<std::map<int, double>> call_contrib_;
};

}  // namespace

HoldReport CheckHolds(const TreeModel& tree, const CallGraph& cg,
                      const EffectMap& effects, const HoldOptions& opts) {
  return HoldChecker(tree, cg, effects, opts).Run();
}

std::string HoldCostsToJson(const HoldReport& report) {
  auto esc = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };
  std::string out = "{\n  \"sites\": [\n";
  bool first = true;
  for (const HoldSite& s : report.sites) {
    if (!first) out += ",\n";
    first = false;
    char num[32];
    std::snprintf(num, sizeof(num), "%.1f", s.cost);
    out += "    {\"label\": \"" + esc(s.prof_label) + "\", \"lock\": \"" +
           esc(s.lock_text) + "\", \"lock_class\": \"" + esc(s.lock_class) +
           "\", \"file\": \"" + esc(s.file) +
           "\", \"line\": " + std::to_string(s.line) + ", \"function\": \"" +
           esc(s.function) + "\", \"kind\": \"" + esc(s.kind) +
           "\", \"weight\": " + num + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace analysis
}  // namespace bpw
