#include "analysis/lexer.h"

#include <cctype>
#include <regex>

namespace bpw {
namespace analysis {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// True if `text` is a string-literal prefix whose literal is raw (ends in
/// R): R, uR, u8R, UR, LR.
bool IsRawPrefix(const std::string& text) {
  return !text.empty() && text.back() == 'R' &&
         (text == "R" || text == "uR" || text == "u8R" || text == "UR" ||
          text == "LR");
}

/// True if `text` is an ordinary string/char prefix: u, u8, U, L.
bool IsEncodingPrefix(const std::string& text) {
  return text == "u" || text == "u8" || text == "U" || text == "L";
}

void CollectAllows(const std::string& comment_text, int end_line_index,
                   LexedSource* out) {
  static const std::regex kAllow(R"(bpw-lint-allow\(([a-z0-9\-]+)\))");
  static const std::regex kAllowFile(R"(bpw-lint-allow-file\(([a-z0-9\-]+)\))");
  for (auto it = std::sregex_iterator(comment_text.begin(),
                                      comment_text.end(), kAllow);
       it != std::sregex_iterator(); ++it) {
    const std::string rule = (*it)[1].str();
    // Does the file-scoped spelling also match the plain pattern with
    // rule "file"? No: the '(' anchors after "allow", so "allow-file(" does
    // not match kAllow. Attach to the comment's end line and the next line.
    out->line_allows[end_line_index].push_back(rule);
    if (end_line_index + 1 < static_cast<int>(out->line_allows.size())) {
      out->line_allows[end_line_index + 1].push_back(rule);
    }
    out->allow_sites.push_back(AllowSite{end_line_index, rule, false});
  }
  for (auto it = std::sregex_iterator(comment_text.begin(),
                                      comment_text.end(), kAllowFile);
       it != std::sregex_iterator(); ++it) {
    out->file_allows.push_back((*it)[1].str());
    out->allow_sites.push_back(AllowSite{end_line_index, (*it)[1].str(), true});
  }
}

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {
    size_t n = 1;
    for (char c : src_) n += (c == '\n');
    out_.line_allows.assign(n, {});
    out_.cleaned_lines.reserve(n);
  }

  LexedSource Run() {
    while (pos_ < src_.size()) {
      Step();
    }
    // Close any open construct at EOF.
    if (state_ == State::kLineComment || state_ == State::kBlockComment) {
      CollectAllows(comment_, line_index_, &out_);
    }
    FlushIdent();
    EndLine();
    return std::move(out_);
  }

 private:
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
    kDirective,       // a # preprocessor line (plus continuations)
  };

  char Cur() const { return src_[pos_]; }
  char Peek(size_t ahead = 1) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  /// True when a backslash-newline splice starts at pos_. Handles \r\n.
  bool AtSplice() const {
    if (src_[pos_] != '\\') return false;
    const char n = Peek();
    return n == '\n' || (n == '\r' && Peek(2) == '\n');
  }

  /// Consumes a backslash-newline splice: blanks nothing, ends the physical
  /// line, and continues the current lexical state on the next line.
  void ConsumeSplice() {
    ++pos_;                       // backslash
    if (Cur() == '\r') ++pos_;    // optional CR
    ++pos_;                       // newline
    EndLine();
  }

  void EndLine() {
    out_.cleaned_lines.push_back(cur_line_);
    cur_line_.clear();
    ++line_index_;
  }

  void Emit(char c) { cur_line_ += c; }
  void Blank() { cur_line_ += ' '; }

  void FlushIdent() {
    if (ident_.empty()) return;
    out_.tokens.push_back(Token{ident_is_number_ ? TokKind::kNumber
                                                 : TokKind::kIdent,
                                ident_, ident_line_ + 1, ident_col_});
    ident_.clear();
    ident_is_number_ = false;
  }

  void StartIdent(bool number) {
    ident_line_ = line_index_;
    ident_col_ = static_cast<int>(cur_line_.size());
    ident_is_number_ = number;
  }

  void PushPunct(const std::string& text) {
    out_.tokens.push_back(
        Token{TokKind::kPunct, text, line_index_ + 1,
              static_cast<int>(cur_line_.size())});
  }

  void PushLiteralToken(TokKind kind) {
    out_.tokens.push_back(Token{kind, "", line_index_ + 1,
                                static_cast<int>(cur_line_.size())});
  }

  /// Literal contents are blanked out of cleaned_lines (so they can't fake
  /// code for the regex rules) but kept on the token: annotation string
  /// args (`BPW_LOCK_CLASS("shard")`) need the text.
  void AppendToLiteral(char c) {
    if (out_.tokens.empty()) return;
    Token& t = out_.tokens.back();
    if (t.kind == TokKind::kString || t.kind == TokKind::kChar) t.text += c;
  }

  void Step() {
    const char c = Cur();
    switch (state_) {
      case State::kCode:
        StepCode(c);
        break;
      case State::kLineComment:
        if (AtSplice()) {  // a line comment continued by backslash-newline
          comment_ += ' ';
          ConsumeSplice();
          return;
        }
        if (c == '\n') {
          CollectAllows(comment_, line_index_, &out_);
          comment_.clear();
          state_ = State::kCode;
          EndLine();
          ++pos_;
          return;
        }
        comment_ += c;
        Blank();
        ++pos_;
        break;
      case State::kBlockComment:
        if (c == '\n') {
          comment_ += '\n';
          EndLine();
          ++pos_;
          return;
        }
        if (c == '*' && Peek() == '/') {
          CollectAllows(comment_, line_index_, &out_);
          comment_.clear();
          state_ = return_to_directive_ ? State::kDirective : State::kCode;
          Blank();
          Blank();
          pos_ += 2;
          return;
        }
        comment_ += c;
        Blank();
        ++pos_;
        break;
      case State::kString:
      case State::kChar: {
        const char close = state_ == State::kString ? '"' : '\'';
        if (AtSplice()) {  // literal spliced across a physical line
          ConsumeSplice();
          return;
        }
        if (c == '\\') {  // escaped char (may be the closing quote)
          Blank();
          ++pos_;
          if (pos_ < src_.size() && Cur() != '\n') {
            AppendToLiteral(Cur());
            Blank();
            ++pos_;
          }
          return;
        }
        if (c == '\n') {  // unterminated literal: recover at the newline
          state_ = State::kCode;
          EndLine();
          ++pos_;
          return;
        }
        if (c == close) {
          state_ = return_to_directive_ ? State::kDirective : State::kCode;
          Blank();
          ++pos_;
          ConsumeUdlSuffix();
          return;
        }
        AppendToLiteral(c);
        Blank();
        ++pos_;
        break;
      }
      case State::kRawString:
        // No escapes, no splices: content is literal until )delim".
        if (c == '\n') {
          EndLine();
          ++pos_;
          return;
        }
        if (c == ')' &&
            src_.compare(pos_ + 1, raw_delim_.size(), raw_delim_) == 0 &&
            pos_ + 1 + raw_delim_.size() < src_.size() &&
            src_[pos_ + 1 + raw_delim_.size()] == '"') {
          pos_ += 2 + raw_delim_.size();
          state_ = return_to_directive_ ? State::kDirective : State::kCode;
          Blank();
          ConsumeUdlSuffix();
          return;
        }
        AppendToLiteral(c);
        Blank();
        ++pos_;
        break;
      case State::kDirective:
        if (AtSplice()) {  // the directive continues on the next line
          ConsumeSplice();
          return;
        }
        if (c == '\n') {
          state_ = State::kCode;
          return_to_directive_ = false;
          EndLine();
          ++pos_;
          return;
        }
        if (c == '/' && Peek() == '/') {
          state_ = State::kLineComment;
          return_to_directive_ = false;  // line comment ends the directive
          comment_.clear();
          Blank();
          Blank();
          pos_ += 2;
          return;
        }
        if (c == '/' && Peek() == '*') {
          state_ = State::kBlockComment;
          return_to_directive_ = true;
          comment_.clear();
          Blank();
          Blank();
          pos_ += 2;
          return;
        }
        // Strings inside directives (#include "x", #define S "y") are
        // consumed here so their quotes cannot open a literal that leaks
        // past the directive.
        if (c == '"') {
          state_ = State::kString;
          return_to_directive_ = true;
          Blank();
          ++pos_;
          return;
        }
        Blank();
        ++pos_;
        break;
    }
  }

  /// A user-defined-literal suffix glued to the closing quote ("abc"sv,
  /// 'x'_c, R"(p)"_path) belongs to the literal: consuming it here keeps
  /// it from surfacing as a spurious identifier token.
  void ConsumeUdlSuffix() {
    while (pos_ < src_.size() && IsIdentChar(Cur())) {
      Blank();
      ++pos_;
    }
  }

  void StepCode(char c) {
    if (AtSplice()) {
      // A splice inside an identifier or pp-number joins the halves
      // (translation phase 2 runs before tokenization): keep the token
      // open across the physical line break.
      ConsumeSplice();
      return;
    }
    if (c == '\n') {
      FlushIdent();
      EndLine();
      ++pos_;
      return;
    }
    // Inside an identifier/number in progress?
    if (!ident_.empty()) {
      if (ident_is_number_) {
        // pp-number: digits, letters, dots, digit separators, exponent
        // signs. `1'000'000`, `0x1Fu`, `1.5e-9` are single tokens.
        if (IsIdentChar(c) || c == '.' ||
            (c == '\'' && IsIdentChar(Peek())) ||
            ((c == '+' || c == '-') &&
             (ident_.back() == 'e' || ident_.back() == 'E' ||
              ident_.back() == 'p' || ident_.back() == 'P'))) {
          ident_ += c;
          Emit(c);
          ++pos_;
          return;
        }
        FlushIdent();
        // fall through to re-dispatch c below
      } else if (IsIdentChar(c)) {
        ident_ += c;
        Emit(c);
        ++pos_;
        return;
      } else if (c == '"') {
        // String prefix: R"..." raw, u8"..." ordinary.
        if (IsRawPrefix(ident_)) {
          ident_.clear();
          ident_is_number_ = false;
          PushLiteralToken(TokKind::kString);
          Blank();  // the quote
          ++pos_;
          raw_delim_.clear();
          while (pos_ < src_.size() && Cur() != '(' && Cur() != '\n') {
            raw_delim_ += Cur();
            Blank();
            ++pos_;
          }
          if (pos_ < src_.size() && Cur() == '(') {
            Blank();
            ++pos_;
          }
          state_ = State::kRawString;
          return;
        }
        if (IsEncodingPrefix(ident_)) {
          ident_.clear();
          ident_is_number_ = false;
          PushLiteralToken(TokKind::kString);
          Blank();
          ++pos_;
          state_ = State::kString;
          return;
        }
        FlushIdent();
        // fall through: plain string start
      } else if (c == '\'' && IsEncodingPrefix(ident_)) {
        ident_.clear();
        ident_is_number_ = false;
        PushLiteralToken(TokKind::kChar);
        Blank();
        ++pos_;
        state_ = State::kChar;
        return;
      } else {
        FlushIdent();
        // fall through to dispatch c
      }
    }

    if (c == '/' && Peek() == '/') {
      state_ = State::kLineComment;
      comment_.clear();
      Blank();
      Blank();
      pos_ += 2;
      return;
    }
    if (c == '/' && Peek() == '*') {
      state_ = State::kBlockComment;
      return_to_directive_ = false;
      comment_.clear();
      Blank();
      Blank();
      pos_ += 2;
      return;
    }
    if (c == '#' && LineBlankSoFar()) {
      state_ = State::kDirective;
      Blank();
      ++pos_;
      return;
    }
    if (c == '"') {
      PushLiteralToken(TokKind::kString);
      state_ = State::kString;
      return_to_directive_ = false;
      Blank();
      ++pos_;
      return;
    }
    if (c == '\'') {
      PushLiteralToken(TokKind::kChar);
      state_ = State::kChar;
      return_to_directive_ = false;
      Blank();
      ++pos_;
      return;
    }
    if (IsIdentStart(c)) {
      StartIdent(/*number=*/false);
      ident_ += c;
      Emit(c);
      ++pos_;
      return;
    }
    if (IsDigit(c)) {
      StartIdent(/*number=*/true);
      ident_ += c;
      Emit(c);
      ++pos_;
      return;
    }
    // Punctuation. `::` and `->` matter to the scope graph; everything
    // else is single-char.
    if (c == ':' && Peek() == ':') {
      PushPunct("::");
      Emit(':');
      Emit(':');
      pos_ += 2;
      return;
    }
    if (c == '-' && Peek() == '>') {
      PushPunct("->");
      Emit('-');
      Emit('>');
      pos_ += 2;
      return;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) {
      PushPunct(std::string(1, c));
    }
    Emit(c);
    ++pos_;
  }

  /// True if everything emitted on the current physical line so far is
  /// whitespace (a `#` here starts a directive).
  bool LineBlankSoFar() const {
    for (char c : cur_line_) {
      if (!std::isspace(static_cast<unsigned char>(c))) return false;
    }
    return true;
  }

  const std::string& src_;
  size_t pos_ = 0;
  State state_ = State::kCode;
  bool return_to_directive_ = false;
  int line_index_ = 0;
  std::string cur_line_;
  std::string comment_;
  std::string raw_delim_;
  std::string ident_;
  bool ident_is_number_ = false;
  int ident_line_ = 0;
  int ident_col_ = 0;
  LexedSource out_;
};

}  // namespace

bool LexedSource::Allowed(int line_index, const std::string& rule) const {
  if (line_index >= 0 && line_index < static_cast<int>(line_allows.size())) {
    for (const std::string& r : line_allows[line_index]) {
      if (r == rule) return true;
    }
  }
  for (const std::string& r : file_allows) {
    if (r == rule) return true;
  }
  return false;
}

LexedSource Lex(const std::string& source) { return Lexer(source).Run(); }

}  // namespace analysis
}  // namespace bpw
