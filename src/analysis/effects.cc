#include "analysis/effects.h"

#include <functional>
#include <set>

namespace bpw {
namespace analysis {

namespace {

// The direct-effect name tables. These mirror bpw_lint's line-regex
// tables (tools/lint/lint.cc) where the two overlap, then widen where a
// token scan can afford to be more precise than a line regex (member
// calls require an actual `.`/`->` receiver here, so `insert`/`emplace`
// can be classified without false-firing on declarations).
const std::set<std::string>& AllocFreeCalls() {
  static const std::set<std::string> s = {
      "malloc", "calloc", "realloc", "strdup", "make_unique", "make_shared"};
  return s;
}
const std::set<std::string>& AllocMemberCalls() {
  static const std::set<std::string> s = {
      "reserve",      "resize",  "push_back", "emplace_back",
      "emplace",      "insert",  "try_emplace"};
  return s;
}
const std::set<std::string>& BlockMemberCalls() {
  static const std::set<std::string> s = {"wait", "wait_for", "wait_until",
                                          "join"};
  return s;
}
const std::set<std::string>& BlockAnyCalls() {
  static const std::set<std::string> s = {"sleep_for", "sleep_until", "usleep",
                                          "nanosleep"};
  return s;
}
const std::set<std::string>& IoCalls() {
  static const std::set<std::string> s = {
      "fopen", "fread", "fwrite", "fclose", "fprintf", "fputs", "fgets",
      "fflush", "fscanf", "fseek", "fsync", "pread", "pwrite"};
  return s;
}
const std::set<std::string>& ClockCalls() {
  static const std::set<std::string> s = {"NowNanos", "clock_gettime",
                                          "gettimeofday", "rdtsc"};
  return s;
}
const std::set<std::string>& ClockIdents() {
  static const std::set<std::string> s = {"steady_clock", "system_clock",
                                          "high_resolution_clock"};
  return s;
}

bool NextIs(const std::vector<Token>& toks, size_t i, const char* text) {
  return i + 1 < toks.size() && toks[i + 1].kind == TokKind::kPunct &&
         toks[i + 1].text == text;
}

bool IsMemberAccess(const std::vector<Token>& toks, size_t i) {
  return i > 0 && toks[i - 1].kind == TokKind::kPunct &&
         (toks[i - 1].text == "." || toks[i - 1].text == "->");
}

/// 1-based lines carrying a BPW_PROF_* macro token: the sanctioned way to
/// read clocks in a critical section (the reads vanish under -DBPW_PROF=0),
/// so clock classification skips these lines — same exemption bpw_lint's
/// clock rule grants, scoped to the line.
std::set<int> ProfExemptLines(const FileModel& fm) {
  std::set<int> lines;
  for (const Token& t : fm.lex.tokens) {
    if (t.kind == TokKind::kIdent && t.text.rfind("BPW_PROF_", 0) == 0) {
      lines.insert(t.line);
    }
  }
  return lines;
}

/// Index of the matching close token, scanning only `open_c`/`close_c`
/// nesting. Returns `limit` when unbalanced.
size_t MatchClose(const std::vector<Token>& toks, size_t open, size_t limit,
                  const char* open_c, const char* close_c) {
  int depth = 0;
  for (size_t i = open; i < limit; ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == open_c) ++depth;
    if (toks[i].text == close_c && --depth == 0) return i;
  }
  return limit;
}

std::string TrimCopy(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

}  // namespace

const char* EffectName(unsigned bit) {
  switch (bit) {
    case kEffAlloc:
      return "alloc";
    case kEffBlock:
      return "block";
    case kEffIo:
      return "io";
    case kEffLog:
      return "log";
    case kEffClock:
      return "clock";
    case kEffLoop:
      return "loop";
    case kEffIndirect:
      return "indirect";
  }
  return "?";
}

unsigned EffectBitByName(const std::string& name) {
  for (unsigned bit = 1; bit <= kEffIndirect; bit <<= 1) {
    if (name == EffectName(bit)) return bit;
  }
  return 0;
}

std::vector<EffectSite> ScanDirectEffects(const FileModel& fm,
                                          const FunctionDecl& fn) {
  std::vector<EffectSite> sites;
  if (!fn.has_body) return sites;
  const std::vector<Token>& toks = fm.lex.tokens;
  const std::set<int> prof_lines = ProfExemptLines(fm);

  auto add = [&](unsigned bit, size_t i, const std::string& what) {
    sites.push_back(EffectSite{bit, i, toks[i].line, what});
  };

  for (size_t i = fn.body_begin; i < fn.body_end && i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const bool member = IsMemberAccess(toks, i);
    const bool call = NextIs(toks, i, "(");

    if (t.text == "new" && !member) {
      add(kEffAlloc, i, "new");
      continue;
    }
    // make_unique<T>(...) has `<` after the name, not `(`.
    const bool tmpl_call = NextIs(toks, i, "<");
    if (!member && (call || tmpl_call) && AllocFreeCalls().count(t.text)) {
      add(kEffAlloc, i, t.text);
      continue;
    }
    if (member && call && AllocMemberCalls().count(t.text)) {
      add(kEffAlloc, i, "." + t.text + "()");
      continue;
    }
    if (member && call && BlockMemberCalls().count(t.text)) {
      add(kEffBlock, i, "." + t.text + "()");
      continue;
    }
    if (call && BlockAnyCalls().count(t.text)) {
      add(kEffBlock, i, t.text);
      continue;
    }
    if (call && !member && IoCalls().count(t.text)) {
      add(kEffIo, i, t.text);
      continue;
    }
    if (t.text.rfind("BPW_LOG_", 0) == 0) {
      add(kEffLog, i, t.text);
      continue;
    }
    if (prof_lines.count(t.line)) continue;
    if (call && ClockCalls().count(t.text)) {
      add(kEffClock, i, t.text);
      continue;
    }
    if (ClockIdents().count(t.text)) {
      add(kEffClock, i, t.text);
      continue;
    }
  }
  return sites;
}

std::vector<LoopInfo> ScanLoops(const FileModel& fm, const FunctionDecl& fn) {
  std::vector<LoopInfo> loops;
  if (!fn.has_body) return loops;
  const std::vector<Token>& toks = fm.lex.tokens;
  const size_t limit = fn.body_end < toks.size() ? fn.body_end : toks.size();

  std::set<int> bounded_lines;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kIdent && t.text == "BPW_BOUNDED_BY") {
      bounded_lines.insert(t.line);
    }
  }
  auto annotated = [&](int line) {
    return bounded_lines.count(line) != 0 || bounded_lines.count(line - 1) != 0;
  };
  /// Statement body starting at `from`: a `{...}` block or a single
  /// statement up to its `;`. Returns [begin, end) token range.
  auto body_range = [&](size_t from, size_t* begin, size_t* end) {
    if (from < limit && toks[from].kind == TokKind::kPunct &&
        toks[from].text == "{") {
      *begin = from + 1;
      *end = MatchClose(toks, from, limit, "{", "}");
      return;
    }
    *begin = from;
    int paren = 0, brace = 0;
    size_t i = from;
    for (; i < limit; ++i) {
      if (toks[i].kind != TokKind::kPunct) continue;
      if (toks[i].text == "(") ++paren;
      if (toks[i].text == ")") --paren;
      if (toks[i].text == "{") ++brace;
      if (toks[i].text == "}") --brace;
      if (toks[i].text == ";" && paren == 0 && brace <= 0) break;
    }
    *end = i;
  };

  std::set<size_t> do_while_tails;
  for (size_t i = fn.body_begin; i < limit; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;

    if (t.text == "do") {
      LoopInfo li;
      li.kw_tok = i;
      li.line = t.line;
      li.annotated = annotated(t.line);
      body_range(i + 1, &li.body_begin, &li.body_end);
      // The trailing `while (cond)` is part of this loop, not a new one.
      size_t after = li.body_end;
      if (after < limit && toks[after].kind == TokKind::kPunct &&
          toks[after].text == "}") {
        ++after;
      }
      if (after < limit && toks[after].kind == TokKind::kIdent &&
          toks[after].text == "while") {
        do_while_tails.insert(after);
      }
      loops.push_back(li);
      continue;
    }

    if (t.text == "while") {
      if (do_while_tails.count(i)) continue;
      if (!NextIs(toks, i, "(")) continue;
      const size_t close = MatchClose(toks, i + 1, limit, "(", ")");
      LoopInfo li;
      li.kw_tok = i;
      li.line = t.line;
      li.annotated = annotated(t.line);
      body_range(close + 1, &li.body_begin, &li.body_end);
      loops.push_back(li);
      continue;
    }

    if (t.text == "for") {
      if (!NextIs(toks, i, "(")) continue;
      const size_t open = i + 1;
      const size_t close = MatchClose(toks, open, limit, "(", ")");
      LoopInfo li;
      li.kw_tok = i;
      li.line = t.line;
      li.annotated = annotated(t.line);
      // Classify the header: top-level `;` makes it a classic for (bounded
      // iff the condition slot is non-empty); a top-level `:` with no `;`
      // is a range-for (bounded by the container). The lexer emits `::` as
      // one token, so a bare `:` really is a range or ternary colon.
      int depth = 0;
      size_t first_semi = 0, second_semi = 0;
      bool has_colon = false;
      for (size_t j = open + 1; j < close; ++j) {
        if (toks[j].kind != TokKind::kPunct) continue;
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")") --depth;
        if (depth != 0) continue;
        if (toks[j].text == ";") {
          if (!first_semi) {
            first_semi = j;
          } else if (!second_semi) {
            second_semi = j;
          }
        }
        if (toks[j].text == ":") has_colon = true;
      }
      if (first_semi) {
        li.bounded = second_semi > first_semi + 1;
      } else {
        li.bounded = has_colon;
      }
      body_range(close + 1, &li.body_begin, &li.body_end);
      loops.push_back(li);
      continue;
    }
  }
  return loops;
}

std::string EffectMap::Witness(const CallGraph& cg, size_t node,
                               unsigned bit) const {
  std::string out;
  std::set<size_t> seen;
  size_t cur = node;
  for (int depth = 0; depth < 32; ++depth) {
    if (cur >= cg.nodes.size() || cur >= per_node.size()) break;
    if (!out.empty()) out += " -> ";
    out += cg.nodes[cur].qualified;
    if (!seen.insert(cur).second) break;
    const FunctionEffects& fe = per_node[cur];
    auto it = fe.origins.find(bit);
    if (it == fe.origins.end()) break;
    const EffectOrigin& o = it->second;
    if (o.direct) {
      out += " -> " + o.what;
      if (!cg.nodes[cur].defs.empty()) {
        out += " (" + cg.nodes[cur].defs[0].second->path + ":" +
               std::to_string(o.line) + ")";
      }
      break;
    }
    cur = o.callee;
  }
  return out;
}

EffectMap ComputeEffects(const TreeModel& tree, const CallGraph& cg) {
  EffectMap em;
  const size_t n = cg.nodes.size();
  em.per_node.resize(n);
  std::vector<unsigned> direct(n, 0);
  std::vector<char> forced_pure(n, 0);

  for (size_t i = 0; i < n; ++i) {
    const CallNode& node = cg.nodes[i];
    FunctionEffects& fe = em.per_node[i];
    for (const auto& d : node.defs) {
      if (d.second->path.find("src/sync/") != std::string::npos) {
        forced_pure[i] = 1;
      }
    }
    if (forced_pure[i]) continue;

    auto ann_it = tree.function_annotations.find(node.qualified);
    if (ann_it != tree.function_annotations.end()) {
      for (const Annotation& a : ann_it->second) {
        if (a.name != "BPW_HOLD_EFFECT_OK") continue;
        fe.exonerated |=
            EffectBitByName(TrimCopy(a.args.substr(0, a.args.find(','))));
      }
    }

    for (const auto& d : node.defs) {
      for (const EffectSite& s : ScanDirectEffects(*d.second, *d.first)) {
        direct[i] |= s.bit;
        if (!fe.origins.count(s.bit)) {
          fe.origins[s.bit] = EffectOrigin{true, s.what, s.line, 0};
        }
      }
      for (const LoopInfo& l : ScanLoops(*d.second, *d.first)) {
        if (l.bounded || l.annotated) continue;
        direct[i] |= kEffLoop;
        if (!fe.origins.count(kEffLoop)) {
          fe.origins[kEffLoop] = EffectOrigin{true, "unbounded loop", l.line, 0};
        }
      }
    }
    if (!node.indirect_calls.empty()) {
      direct[i] |= kEffIndirect;
      const IndirectCall& ic = node.indirect_calls.front();
      if (!fe.origins.count(kEffIndirect)) {
        fe.origins[kEffIndirect] =
            EffectOrigin{true, "indirect call of " + ic.expr, ic.line, 0};
      }
    }
    direct[i] &= ~fe.exonerated;
  }

  // Tarjan SCC condensation. SCCs are emitted callees-first (an SCC pops
  // only after everything reachable from it has been assigned), so one
  // pass over the emission order sees every external callee summary
  // already final.
  std::vector<int> comp(n, -1), low(n, 0), num(n, -1);
  std::vector<size_t> stack;
  std::vector<char> on_stack(n, 0);
  std::vector<std::vector<size_t>> sccs;
  int counter = 0;
  std::function<void(size_t)> strongconnect = [&](size_t v) {
    num[v] = low[v] = counter++;
    stack.push_back(v);
    on_stack[v] = 1;
    for (const CallEdge& e : cg.nodes[v].edges) {
      const size_t w = e.callee;
      if (num[w] < 0) {
        strongconnect(w);
        if (low[w] < low[v]) low[v] = low[w];
      } else if (on_stack[w]) {
        if (num[w] < low[v]) low[v] = num[w];
      }
    }
    if (low[v] == num[v]) {
      std::vector<size_t> scc;
      for (;;) {
        const size_t w = stack.back();
        stack.pop_back();
        on_stack[w] = 0;
        comp[w] = static_cast<int>(sccs.size());
        scc.push_back(w);
        if (w == v) break;
      }
      sccs.push_back(std::move(scc));
    }
  };
  for (size_t v = 0; v < n; ++v) {
    if (num[v] < 0) strongconnect(v);
  }

  for (const std::vector<size_t>& scc : sccs) {
    unsigned u = 0;
    for (size_t m : scc) {
      if (forced_pure[m]) continue;
      u |= direct[m];
      for (const CallEdge& e : cg.nodes[m].edges) {
        if (comp[e.callee] != comp[m]) u |= em.per_node[e.callee].bits;
      }
    }
    for (size_t m : scc) {
      FunctionEffects& fe = em.per_node[m];
      if (forced_pure[m]) {
        fe.bits = 0;
        continue;
      }
      fe.bits = u & ~fe.exonerated;
      // Bits inherited without a direct site need a witness edge: find a
      // callee whose final summary carries the bit.
      for (unsigned bit = 1; bit <= kEffIndirect; bit <<= 1) {
        if (!(fe.bits & bit) || fe.origins.count(bit)) continue;
        for (const CallEdge& e : cg.nodes[m].edges) {
          const FunctionEffects& ce = em.per_node[e.callee];
          const unsigned cb =
              comp[e.callee] == comp[m] ? (u & ~ce.exonerated) : ce.bits;
          if (cb & bit) {
            fe.origins[bit] = EffectOrigin{false, "", e.line, e.callee};
            break;
          }
        }
      }
    }
  }
  return em;
}

}  // namespace analysis
}  // namespace bpw
