// Atomics discipline for the lock-free fast paths.
//
// The annotations (src/util/thread_annotations.h) declare the protocol;
// this checker makes the declarations binding:
//
//   relaxed-unannotated       — a memory_order_relaxed access whose field
//                               carries no BPW_RELAXED_OK / BPW_PUBLISHED_BY
//                               / BPW_SEQLOCK_STAMP / BPW_GUARDED_BY and
//                               whose site has no BPW_RELAXED_OK(reason)
//                               statement or allow comment.
//   relaxed-publication-store — a function writes a BPW_PUBLISHED_BY(stamp)
//                               payload but never publishes the stamp with
//                               a release-or-stronger store/RMW.
//   unordered-publication-read— a function reads a published payload but
//                               never acquire-loads (or fences on) the
//                               stamp.
//   torn-seqlock-read         — a reader of a BPW_SEQLOCK_STAMP payload
//                               lacks the seqlock shape: at least two stamp
//                               loads and an odd-test (& 1) re-check.
//   mc-access-unannotated     — a BPW_MC_ACCESS_* site whose object has
//                               neither a TSA capability annotation nor a
//                               publication annotation: the race certifier
//                               watches it but static analysis promises
//                               nothing.
#pragma once

#include <vector>

#include "analysis/finding.h"
#include "analysis/scope_graph.h"

namespace bpw {
namespace analysis {

struct AtomicsOptions {
  /// Treat every file as library code (the seeded-violation corpus runs
  /// with this; the tree run scopes to src/ minus src/sync/).
  bool all_files_lib = false;
  /// Report findings even at bpw-lint-allow sites (--audit-allows needs
  /// the unsuppressed set to spot stale allows).
  bool ignore_allows = false;
};

std::vector<Finding> CheckAtomics(const TreeModel& tree,
                                  const AtomicsOptions& opts = {});

}  // namespace analysis
}  // namespace bpw
