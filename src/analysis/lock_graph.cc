#include "analysis/lock_graph.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "analysis/resolve.h"

namespace bpw {
namespace analysis {

namespace {

bool IsLockTypeWord(const std::string& w) {
  return w == "ContentionLock" || w == "SpinLock" || w == "Mutex";
}

/// The declarator text names a lock type as a whole word.
bool IsLockTyped(const std::string& type_text) {
  std::string word;
  for (size_t i = 0; i <= type_text.size(); ++i) {
    const char c = i < type_text.size() ? type_text[i] : ' ';
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '_') {
      word += c;
      continue;
    }
    if (IsLockTypeWord(word)) return true;
    word.clear();
  }
  return false;
}

std::string StripQuotes(const std::string& s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

bool IsBlockingGuard(const std::string& t) {
  return t == "ContentionLockGuard" || t == "MutexGuard" ||
         t == "SpinLockGuard";
}

bool IsAdoptGuard(const std::string& t) {
  return t == "ContentionLockAdoptGuard";
}

struct Held {
  size_t lock = 0;  // index into graph.locks
  int depth = 0;
};

class GraphBuilder {
 public:
  GraphBuilder(const TreeModel& tree, bool honor_allows)
      : tree_(tree), honor_allows_(honor_allows) {}

  LockGraph Build() {
    CollectLocks();
    CollectAcquireFunctions();
    for (const FileModel& fm : tree_.files) {
      for (const FunctionDecl& fn : fm.functions) {
        if (fn.has_body) ScanFunction(fm, fn);
      }
    }
    RunCycleRule();
    RunLeafRule();
    return std::move(graph_);
  }

 private:
  void CollectLocks() {
    auto add = [&](const FieldDecl& f) {
      if (!IsLockTyped(f.type_text)) return;
      LockDecl d;
      d.field = &f;
      d.id = f.owner.empty() ? "::" + f.name : f.owner + "::" + f.name;
      const Annotation* cls = f.FindAnnotation("BPW_LOCK_CLASS");
      d.lock_class = cls != nullptr ? StripQuotes(cls->args) : d.id;
      d.leaf = f.HasAnnotation("BPW_LOCK_LEAF");
      by_field_[&f] = graph_.locks.size();
      graph_.locks.push_back(d);
    };
    for (const FileModel& fm : tree_.files) {
      for (const TypeDecl& t : fm.types) {
        for (const FieldDecl& f : t.fields) add(f);
      }
      for (const FieldDecl& f : fm.globals) add(f);
    }
    // Leaf-ness is a property of the class: one annotated member marks
    // every lock merged into that class.
    std::set<std::string> leaf_classes;
    for (const LockDecl& d : graph_.locks) {
      if (d.leaf) leaf_classes.insert(d.lock_class);
    }
    for (LockDecl& d : graph_.locks) {
      d.leaf = leaf_classes.count(d.lock_class) > 0;
    }
  }

  /// Functions annotated BPW_ACQUIRE acquire their capability on behalf of
  /// the caller; a call to one while holding a lock is an edge. Indexed by
  /// unqualified name, used only when unambiguous.
  void CollectAcquireFunctions() {
    for (const auto& entry : tree_.function_annotations) {
      const std::string& qualified = entry.first;
      std::string args;
      for (const Annotation& a : entry.second) {
        if (a.name != "BPW_ACQUIRE" || a.args.empty()) continue;
        if (!args.empty()) args += ",";
        args += a.args;
      }
      if (args.empty()) continue;
      const size_t cut = qualified.rfind("::");
      const std::string name =
          cut == std::string::npos ? qualified : qualified.substr(cut + 2);
      if (IsBlockingGuard(name) || IsAdoptGuard(name) || IsLockTypeWord(name)) {
        continue;  // guard ctors are recognised structurally
      }
      const std::string context =
          cut == std::string::npos ? "" : qualified.substr(0, cut);
      auto& slot = acquire_fns_[name];
      slot.push_back({context, args});
    }
  }

  const LockDecl* Lock(size_t idx) const { return &graph_.locks[idx]; }

  bool ResolveLock(const FunctionDecl* fn, const std::string& context,
                   const std::string& receiver, const std::string& member,
                   size_t* out) const {
    const FieldDecl* f =
        ResolveFieldRef(tree_, fn, context, receiver, member);
    if (f == nullptr) {
      // ResolveMember refuses ambiguous names; for locks, a name that is
      // lock-typed everywhere it appears and maps to ONE lock class is
      // still usable (every coordinator calls its own lock "lock_").
      const FieldDecl* found = nullptr;
      std::set<std::string> classes;
      auto range = tree_.fields_by_name.equal_range(member);
      for (auto it = range.first; it != range.second; ++it) {
        auto bf = by_field_.find(it->second);
        if (bf == by_field_.end()) return false;
        classes.insert(graph_.locks[bf->second].lock_class);
        found = it->second;
      }
      if (found == nullptr || classes.size() != 1) return false;
      f = found;
    }
    auto it = by_field_.find(f);
    if (it == by_field_.end()) return false;
    *out = it->second;
    return true;
  }

  /// Resolves a REQUIRES/RELEASE/ACQUIRE annotation argument like
  /// "shard.lock" or "lock_".
  bool ResolveLockText(const FunctionDecl* fn, const std::string& context,
                       const std::string& text, size_t* out) const {
    std::string t = text;
    if (!t.empty() && t[0] == '!') return false;  // negative capability
    if (!t.empty() && t[0] == '&') t = t.substr(1);
    const MemberRef ref = SplitMemberText(t);
    return ResolveLock(fn, context, ref.receiver, ref.member, out);
  }

  static std::vector<std::string> SplitArgs(const std::string& args) {
    std::vector<std::string> out;
    int depth = 0;
    std::string cur;
    for (char c : args) {
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == ',' && depth == 0) {
        out.push_back(cur);
        cur.clear();
        continue;
      }
      if (c != ' ') cur += c;
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
  }

  void AddAcquisition(std::vector<Held>* held, size_t lock, bool try_edge,
                      const std::string& file, int line,
                      const std::string& note, int depth) {
    for (const Held& h : *held) {
      // Same-class edges are kept: two instances of one class (two shards)
      // acquired together is exactly the deadlock shape the class
      // collapse is meant to expose.
      LockEdge e;
      e.from_class = graph_.locks[h.lock].lock_class;
      e.to_class = Lock(lock)->lock_class;
      e.file = file;
      e.line = line;
      e.try_edge = try_edge;
      e.note = note;
      graph_.edges.push_back(std::move(e));
    }
    held->push_back({lock, depth});
  }

  void ScanFunction(const FileModel& fm, const FunctionDecl& fn) {
    const std::vector<Token>& toks = fm.lex.tokens;
    if (fn.body_begin >= fn.body_end || fn.body_end > toks.size()) return;
    std::vector<Held> held;
    // Entry-held set from REQUIRES (caller holds) and RELEASE (entered
    // holding, released inside — still held at the top).
    auto ann_it = tree_.function_annotations.find(fn.qualified);
    if (ann_it != tree_.function_annotations.end()) {
      for (const Annotation& a : ann_it->second) {
        if (a.name != "BPW_REQUIRES" && a.name != "BPW_RELEASE") continue;
        for (const std::string& arg : SplitArgs(a.args)) {
          size_t lock;
          if (ResolveLockText(&fn, fn.qualifier, arg, &lock)) {
            held.push_back({lock, -1});
          }
        }
      }
    }
    int depth = 0;
    for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
      const Token& t = toks[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "{") ++depth;
        if (t.text == "}") {
          --depth;
          held.erase(std::remove_if(held.begin(), held.end(),
                                    [&](const Held& h) {
                                      return h.depth > depth;
                                    }),
                     held.end());
        }
        continue;
      }
      if (t.kind != TokKind::kIdent) continue;
      // Guard construction: `Guard name(expr[, ...])`.
      if ((IsBlockingGuard(t.text) || IsAdoptGuard(t.text)) &&
          i + 2 < fn.body_end && toks[i + 1].kind == TokKind::kIdent &&
          toks[i + 2].kind == TokKind::kPunct && toks[i + 2].text == "(") {
        size_t lock;
        if (ResolveArgExpr(toks, i + 2, &fn, &lock)) {
          if (IsAdoptGuard(t.text)) {
            held.push_back({lock, depth});
          } else {
            AddAcquisition(&held, lock, /*try_edge=*/false, fm.path, t.line,
                           fn.qualified + " guard", depth);
          }
        }
        continue;
      }
      // Manual calls: `expr.Lock()` / `.TryLock()` / `.Unlock()` and the
      // lowercase spellings.
      const bool is_lock = t.text == "Lock" || t.text == "lock";
      const bool is_try = t.text == "TryLock" || t.text == "try_lock";
      const bool is_unlock = t.text == "Unlock" || t.text == "unlock";
      if ((is_lock || is_try || is_unlock) && i >= 2 &&
          i + 1 < fn.body_end && toks[i + 1].kind == TokKind::kPunct &&
          toks[i + 1].text == "(" && toks[i - 1].kind == TokKind::kPunct &&
          (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
          toks[i - 2].kind == TokKind::kIdent) {
        const std::string member = toks[i - 2].text;
        std::string receiver;
        if (i >= 4 && toks[i - 3].kind == TokKind::kPunct &&
            (toks[i - 3].text == "." || toks[i - 3].text == "->") &&
            toks[i - 4].kind == TokKind::kIdent) {
          receiver = toks[i - 4].text;
        }
        size_t lock;
        if (!ResolveLock(&fn, fn.qualifier, receiver, member, &lock)) {
          continue;
        }
        if (is_unlock) {
          held.erase(std::remove_if(held.begin(), held.end(),
                                    [&](const Held& h) {
                                      return h.lock == lock;
                                    }),
                     held.end());
          continue;
        }
        // A TryLock in an `if` condition holds the lock only inside the
        // guarded block, which opens at depth+1; scoping the held entry
        // there under-approximates the `bool ok = TryLock()` spelling
        // (degrades by omission) but never leaks a try-hold past its
        // branch into the blocking fallback.
        AddAcquisition(&held, lock, is_try, fm.path, t.line,
                       fn.qualified + (is_try ? " TryLock" : " Lock"),
                       is_try ? depth + 1 : depth);
        continue;
      }
      // Call to a BPW_ACQUIRE-annotated function while holding locks.
      if (!held.empty() && i + 1 < fn.body_end &&
          toks[i + 1].kind == TokKind::kPunct && toks[i + 1].text == "(") {
        auto fit = acquire_fns_.find(t.text);
        if (fit != acquire_fns_.end() && fit->second.size() == 1 &&
            fit->second[0].first != fn.qualifier) {
          for (const std::string& arg : SplitArgs(fit->second[0].second)) {
            size_t lock;
            if (ResolveLockText(nullptr, fit->second[0].first, arg, &lock)) {
              AddAcquisition(&held, lock, /*try_edge=*/false, fm.path,
                             t.line, fn.qualified + " calls " + t.text,
                             depth);
            }
          }
        }
      }
    }
  }

  /// Resolves the first constructor argument starting at the '(' token.
  bool ResolveArgExpr(const std::vector<Token>& toks, size_t open,
                      const FunctionDecl* fn, size_t* out) const {
    int depth = 0;
    std::string member, receiver;
    bool prev_was_sep = false;
    for (size_t i = open; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(") {
          ++depth;
          continue;
        }
        if (t.text == ")" && --depth == 0) break;
        if (t.text == "," && depth == 1) break;
        prev_was_sep = t.text == "." || t.text == "->";
        continue;
      }
      if (t.kind == TokKind::kIdent) {
        // Walk the access chain: the last ident is the member, the one
        // before the final separator its receiver.
        receiver = prev_was_sep ? member : "";
        member = t.text;
        prev_was_sep = false;
      }
    }
    if (member.empty()) return false;
    return ResolveLock(fn, fn != nullptr ? fn->qualifier : "", receiver,
                       member, out);
  }

  void AddFinding(const std::string& file, int line, const std::string& rule,
                  const std::string& message) {
    if (honor_allows_) {
      for (const FileModel& fm : tree_.files) {
        if (fm.path == file && fm.lex.Allowed(line - 1, rule)) return;
      }
    }
    graph_.findings.push_back({file, line, rule, message});
  }

  void RunCycleRule() {
    // Adjacency over blocking edges, collapsed to classes.
    std::map<std::string, std::vector<const LockEdge*>> adj;
    std::set<std::string> self_reported;
    for (const LockEdge& e : graph_.edges) {
      if (e.try_edge) continue;
      if (e.from_class == e.to_class) {
        // A blocking same-class edge is already a two-thread deadlock:
        // each holds one instance and blocks on the other's.
        if (self_reported.insert(e.from_class).second) {
          AddFinding(e.file, e.line, "lock-order-cycle",
                     "lock-order cycle " + e.from_class + " -> " +
                         e.to_class + " (same-class blocking acquisition, " +
                         e.note + ")");
        }
        continue;
      }
      adj[e.from_class].push_back(&e);
    }
    std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
    std::vector<const LockEdge*> path;
    std::set<std::string> reported;
    std::function<void(const std::string&)> dfs =
        [&](const std::string& node) {
          color[node] = 1;
          for (const LockEdge* e : adj[node]) {
            if (color[e->to_class] == 1) {
              // Reconstruct the cycle from the path tail.
              std::string desc = e->to_class;
              std::string sites = e->file + ":" + std::to_string(e->line);
              bool in_cycle = false;
              for (const LockEdge* p : path) {
                if (p->from_class == e->to_class) in_cycle = true;
                if (in_cycle) {
                  desc += " -> " + p->to_class;
                  sites += ", " + p->file + ":" + std::to_string(p->line);
                }
              }
              desc += " -> " + e->to_class;
              if (reported.insert(desc).second) {
                AddFinding(e->file, e->line, "lock-order-cycle",
                           "lock-order cycle " + desc + " (acquire sites: " +
                               sites + ")");
              }
              continue;
            }
            if (color[e->to_class] == 0) {
              path.push_back(e);
              dfs(e->to_class);
              path.pop_back();
            }
          }
          color[node] = 2;
        };
    for (const LockDecl& d : graph_.locks) {
      if (color[d.lock_class] == 0) dfs(d.lock_class);
    }
  }

  void RunLeafRule() {
    std::set<std::string> leaf_classes;
    for (const LockDecl& d : graph_.locks) {
      if (d.leaf) leaf_classes.insert(d.lock_class);
    }
    for (const LockEdge& e : graph_.edges) {
      if (e.try_edge || leaf_classes.count(e.from_class) == 0) continue;
      AddFinding(e.file, e.line, "leaf-lock-acquires",
                 "blocking acquisition of '" + e.to_class +
                     "' while holding leaf lock class '" + e.from_class +
                     "' (" + e.note +
                     "); leaf classes must have zero blocking out-degree — "
                     "use TryLock with a fallback");
    }
  }

  const TreeModel& tree_;
  const bool honor_allows_;
  LockGraph graph_;
  std::map<const FieldDecl*, size_t> by_field_;
  /// unqualified name -> [(context class, ACQUIRE args)]
  std::map<std::string, std::vector<std::pair<std::string, std::string>>>
      acquire_fns_;
};

}  // namespace

LockGraph BuildLockGraph(const TreeModel& tree, bool honor_allows) {
  return GraphBuilder(tree, honor_allows).Build();
}

std::string LockGraphToDot(const LockGraph& graph) {
  std::string out = "digraph lock_order {\n  rankdir=LR;\n"
                    "  node [shape=box, fontname=\"Helvetica\"];\n";
  std::set<std::string> emitted;
  for (const LockDecl& d : graph.locks) {
    if (!emitted.insert(d.lock_class).second) continue;
    out += "  \"" + d.lock_class + "\"";
    if (d.leaf) out += " [peripheries=2, color=\"#2b6cb0\"]";
    out += ";\n";
  }
  // Merge duplicate (from, to, kind) edges, keep one example site.
  std::map<std::string, std::pair<const LockEdge*, int>> merged;
  for (const LockEdge& e : graph.edges) {
    const std::string key =
        e.from_class + "\x01" + e.to_class + "\x01" + (e.try_edge ? "t" : "b");
    auto it = merged.find(key);
    if (it == merged.end()) {
      merged[key] = {&e, 1};
    } else {
      ++it->second.second;
    }
  }
  for (const auto& entry : merged) {
    const LockEdge& e = *entry.second.first;
    const int count = entry.second.second;
    std::string label = e.file + ":" + std::to_string(e.line);
    const size_t slash = label.rfind('/');
    if (slash != std::string::npos) label = label.substr(slash + 1);
    if (count > 1) label += " (+" + std::to_string(count - 1) + ")";
    out += "  \"" + e.from_class + "\" -> \"" + e.to_class + "\" [label=\"" +
           label + "\"";
    if (e.try_edge) out += ", style=dashed";
    out += "];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace analysis
}  // namespace bpw
