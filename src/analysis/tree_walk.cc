#include "analysis/tree_walk.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace bpw {
namespace analysis {

bool IsSourceFilePath(const std::string& path) {
  const std::string ext = std::filesystem::path(path).extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

bool ReadSource(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool CollectSourceFiles(const std::string& tool,
                        const std::vector<std::string>& paths,
                        std::vector<std::string>* files) {
  for (const std::string& p : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file() &&
            IsSourceFilePath(entry.path().string())) {
          files->push_back(entry.path().string());
        }
      }
    } else if (std::filesystem::is_regular_file(p, ec)) {
      files->push_back(p);
    } else {
      std::fprintf(stderr, "%s: cannot read %s\n", tool.c_str(), p.c_str());
      return false;
    }
  }
  std::sort(files->begin(), files->end());
  return true;
}

bool ReadFileList(const std::string& tool, const std::string& list_path,
                  std::vector<std::string>* files) {
  std::string text;
  if (!ReadSource(list_path, &text)) {
    std::fprintf(stderr, "%s: cannot read file list %s\n", tool.c_str(),
                 list_path.c_str());
    return false;
  }
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    files->push_back(line);
  }
  std::sort(files->begin(), files->end());
  return true;
}

bool BuildTreeModel(const std::string& tool,
                    const std::vector<std::string>& files, TreeModel* tree) {
  for (const std::string& file : files) {
    std::string source;
    if (!ReadSource(file, &source)) {
      std::fprintf(stderr, "%s: cannot read %s\n", tool.c_str(),
                   file.c_str());
      return false;
    }
    tree->files.push_back(BuildFileModel(file, source));
  }
  tree->Reindex();
  return true;
}

}  // namespace analysis
}  // namespace bpw
