// Lock-acquisition order graph over the whole tree.
//
// Nodes are *lock classes*: every field of a sync capability type
// (ContentionLock / SpinLock / Mutex) forms a class named by its
// declaration ("Owner::name"), unless BPW_LOCK_CLASS("name") merges it
// into a shared class (e.g. every per-shard lock is one "shard" class —
// instances are interchangeable for ordering purposes, which is exactly
// the approximation under which a shard→shard edge means a real deadlock
// risk).
//
// Edges are acquisition sites observed while another lock is held: guard
// constructions, manual .Lock()/.lock() calls, and calls to functions
// annotated BPW_ACQUIRE. Held sets seed from BPW_REQUIRES / BPW_RELEASE
// annotations (merged across declaration and definition). TryLock sites
// produce *try edges*: bounded waits cannot complete a cycle, so they are
// whitelisted in the acyclicity proof and rendered dashed in the DOT
// export.
//
// Rules:
//   lock-order-cycle    — a cycle among blocking edges.
//   leaf-lock-acquires  — a blocking edge out of a BPW_LOCK_LEAF class
//                         (the pgShard "never two shard locks" invariant
//                         is encoded as leaf-ness of the shard class).
#pragma once

#include <string>
#include <vector>

#include "analysis/finding.h"
#include "analysis/scope_graph.h"

namespace bpw {
namespace analysis {

/// One lock-typed declaration.
struct LockDecl {
  const FieldDecl* field = nullptr;
  std::string id;          ///< "Owner::name" or "::name" for globals
  std::string lock_class;  ///< BPW_LOCK_CLASS arg, else id
  bool leaf = false;       ///< BPW_LOCK_LEAF present
};

struct LockEdge {
  std::string from_class;
  std::string to_class;
  std::string file;
  int line = 0;
  bool try_edge = false;
  std::string note;  ///< human context: function + acquisition kind
};

struct LockGraph {
  std::vector<LockDecl> locks;
  std::vector<LockEdge> edges;
  std::vector<Finding> findings;
};

/// Builds the graph and runs the cycle / leaf rules. Findings honour
/// bpw-lint-allow comments in the underlying sources unless
/// `honor_allows` is false (the allow audit wants the unsuppressed set).
LockGraph BuildLockGraph(const TreeModel& tree, bool honor_allows = true);

/// Graphviz rendering: one node per lock class (doubled border for leaf
/// classes), solid blocking edges, dashed try edges.
std::string LockGraphToDot(const LockGraph& graph);

}  // namespace analysis
}  // namespace bpw
