// Scope graph: the structural model the static analyzers reason over.
//
// Built from the shared lexer's token stream, per translation unit:
//
//   - every type scope (class/struct/union/enum), with its qualified name
//     and the member fields declared in it — each field carrying the
//     analysis annotations attached to its declarator (BPW_GUARDED_BY,
//     BPW_PUBLISHED_BY, BPW_SEQLOCK_STAMP, BPW_RELAXED_OK, BPW_LOCK_CLASS,
//     BPW_LOCK_LEAF, ...);
//   - every function declaration and definition, with its qualifier
//     (enclosing class or A::B:: spelling), trailing annotation macros
//     (BPW_REQUIRES, BPW_ACQUIRE, BPW_EXCLUDES, ...), and — for
//     definitions — the token range of the body;
//   - a per-function local-variable type map (parameters and `Type& x`
//     declarations) good enough to resolve `x.field` member accesses to
//     the declaring type.
//
// The model is deliberately lint-grade, not compiler-grade: it tracks the
// declarations and scopes this repo actually writes (see the engine tests
// for the supported shapes) and degrades by *omitting* what it cannot
// parse, never by inventing structure. Checkers are written so an omitted
// declaration produces a diagnostic ("unannotated"), not silence.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/lexer.h"

namespace bpw {
namespace analysis {

/// One BPW_* annotation macro attached to a declaration, e.g.
/// name="BPW_REQUIRES", args="shard.lock".
struct Annotation {
  std::string name;
  std::string args;
  int line = 0;
};

/// A member-field declaration inside a type scope.
struct FieldDecl {
  std::string name;
  std::string type_text;   ///< joined declarator tokens before the name
  std::string owner;       ///< qualified enclosing type, e.g. "A::B"
  std::string file;
  int line = 0;
  std::vector<Annotation> annotations;

  const Annotation* FindAnnotation(const std::string& macro) const;
  bool HasAnnotation(const std::string& macro) const {
    return FindAnnotation(macro) != nullptr;
  }
};

/// A type scope (class/struct/union/enum).
struct TypeDecl {
  std::string name;
  std::string qualified;  ///< outer::inner chain, no namespaces
  std::string file;
  int line = 0;
  std::vector<FieldDecl> fields;
  /// Base class names from the base-specifier list, as their terminal
  /// identifier (`public core::ReplacementPolicy` records
  /// "ReplacementPolicy"). Empty for enums (their colon introduces an
  /// underlying type, not a base).
  std::vector<std::string> bases;
};

/// A function declaration or definition.
struct FunctionDecl {
  std::string name;       ///< unqualified
  std::string qualifier;  ///< enclosing class or the A::B of A::B::name
  std::string qualified;  ///< qualifier::name (or just name)
  std::string file;
  int line = 0;
  bool has_body = false;
  size_t body_begin = 0;  ///< token index just after the opening '{'
  size_t body_end = 0;    ///< token index of the closing '}'
  std::vector<Annotation> annotations;
  /// Local variable name -> declared type name (params + `Type& x` locals,
  /// unqualified terminal type name). Populated for definitions only.
  std::map<std::string, std::string> local_types;
  /// Range-for loop variable -> the container member it iterates
  /// (`for (auto& tag : frame_tags_)` maps tag -> frame_tags_), so accesses
  /// through the element inherit the container field's annotations.
  std::map<std::string, std::string> local_aliases;

  const Annotation* FindAnnotation(const std::string& macro) const;
  /// All annotations with the given macro name (REQUIRES may repeat).
  std::vector<const Annotation*> FindAll(const std::string& macro) const;
  /// True for the repo convention that FooLocked() runs under a lock.
  bool LockedSuffix() const;
};

/// The per-file model: lexed source plus the scopes parsed out of it.
struct FileModel {
  std::string path;
  LexedSource lex;
  std::vector<TypeDecl> types;
  std::vector<FunctionDecl> functions;
  /// Namespace-scope variable declarations (owner == ""), so globals like a
  /// file-local mutex or counter can carry annotations too.
  std::vector<FieldDecl> globals;
};

/// The whole-tree model with cross-file indexes. Declarations in headers
/// carry the annotations; definitions in .cc files carry the bodies — the
/// indexes join them by qualified name.
struct TreeModel {
  std::vector<FileModel> files;

  /// field name -> every declaration of a member with that name.
  std::multimap<std::string, const FieldDecl*> fields_by_name;
  /// qualified type name AND unqualified name -> type.
  std::multimap<std::string, const TypeDecl*> types_by_name;
  /// qualified function name -> merged annotations from every declaration
  /// and definition of that function.
  std::map<std::string, std::vector<Annotation>> function_annotations;

  void AddFile(FileModel file);
  /// Rebuilds the indexes (AddFile calls it; call manually after mutating
  /// files directly).
  void Reindex();

  /// Resolves a member named `member` accessed from a function of class
  /// `context_class` (may be ""): enclosing class fields first, then
  /// types nested inside it, then a unique global match. Returns nullptr
  /// if nothing (or something ambiguous) matched.
  const FieldDecl* ResolveMember(const std::string& context_class,
                                 const std::string& member) const;
};

/// Parses one file into its model. `path` is used for reporting only.
FileModel BuildFileModel(const std::string& path, const std::string& source);

}  // namespace analysis
}  // namespace bpw
