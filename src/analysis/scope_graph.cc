#include "analysis/scope_graph.h"

#include <algorithm>
#include <set>

namespace bpw {
namespace analysis {

namespace {

bool IsTypeKeyword(const std::string& t) {
  return t == "class" || t == "struct" || t == "union" || t == "enum";
}

bool IsAnnotationMacro(const std::string& t) {
  return t.rfind("BPW_", 0) == 0;
}

/// Joins tokens [begin, end) into readable text: no spaces around member
/// punctuation so "shard.lock" round-trips.
std::string JoinTokens(const std::vector<Token>& toks, size_t begin,
                       size_t end) {
  std::string out;
  for (size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    const bool tight = t.kind == TokKind::kPunct;
    if (!out.empty() && !tight) {
      const char last = out.back();
      if (last != '.' && last != ':' && last != '>' && last != '(') {
        out += ' ';
      }
    }
    out += t.kind == TokKind::kString ? '"' + t.text + '"' : t.text;
  }
  return out;
}

/// Index of the token matching the opener at `open` ('(' -> ')',
/// '{' -> '}'), or `toks.size()` if unbalanced.
size_t MatchingClose(const std::vector<Token>& toks, size_t open,
                     const char* open_c, const char* close_c) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == open_c) ++depth;
    if (toks[i].text == close_c) {
      if (--depth == 0) return i;
    }
  }
  return toks.size();
}

struct Scope {
  enum Kind { kNamespace, kType, kFunction, kBlock };
  Kind kind = kBlock;
  std::string name;       // type name for kType
  size_t function_index = static_cast<size_t>(-1);  // into model.functions
};

class Parser {
 public:
  Parser(const std::string& path, const std::string& source) {
    model_.path = path;
    model_.lex = Lex(source);
  }

  FileModel Run() {
    const std::vector<Token>& toks = model_.lex.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == TokKind::kPunct && t.text == "{") {
        if (IsBracedInitializer() || PendingHasOpenParen()) {
          // `std::atomic<uint64_t> version{0};` — consume the initializer,
          // keep the declarator pending for the ';' that follows. The
          // open-paren case is a lambda body inside an argument list (a
          // member-initializer constructing a callback, say): that brace
          // must not open the enclosing function's body.
          const size_t close = MatchingClose(toks, i, "{", "}");
          i = close == toks.size() ? toks.size() - 1 : close;
          continue;
        }
        OpenBrace(i);
        pending_.clear();
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == "}") {
        CloseBrace(i);
        pending_.clear();
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == ";") {
        EndStatement();
        pending_.clear();
        continue;
      }
      // Access specifiers do not end with ';'; drop `public:` etc. so they
      // never merge into the statement that follows them.
      if (t.kind == TokKind::kPunct && t.text == ":" &&
          pending_.size() == 1 &&
          (toks[pending_[0]].text == "public" ||
           toks[pending_[0]].text == "private" ||
           toks[pending_[0]].text == "protected")) {
        pending_.clear();
        continue;
      }
      pending_.push_back(i);
    }
    return std::move(model_);
  }

 private:
  const std::vector<Token>& Toks() const { return model_.lex.tokens; }

  bool InFunction() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Scope::kFunction) return true;
    }
    return false;
  }

  const Scope* EnclosingType() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Scope::kType) return &*it;
    }
    return nullptr;
  }

  std::string QualifiedTypeName() const {
    std::string out;
    for (const Scope& s : stack_) {
      if (s.kind != Scope::kType) continue;
      if (!out.empty()) out += "::";
      out += s.name;
    }
    return out;
  }

  bool PendingHas(const char* kw) const {
    for (size_t idx : pending_) {
      const Token& t = Toks()[idx];
      if (t.kind == TokKind::kIdent && t.text == kw) return true;
    }
    return false;
  }

  bool PendingHasTypeKeyword() const {
    for (size_t idx : pending_) {
      const Token& t = Toks()[idx];
      if (t.kind == TokKind::kIdent && IsTypeKeyword(t.text)) return true;
    }
    return false;
  }

  /// Position (into pending_) of the first '(' that is not part of a
  /// BPW_* annotation or alignas() clause, or pending_.size().
  size_t FirstStructuralParen() const {
    const std::vector<Token>& toks = Toks();
    for (size_t p = 0; p < pending_.size(); ++p) {
      const Token& t = toks[pending_[p]];
      if (t.kind == TokKind::kIdent &&
          (IsAnnotationMacro(t.text) || t.text == "alignas" ||
           t.text == "decltype") &&
          p + 1 < pending_.size() &&
          toks[pending_[p + 1]].kind == TokKind::kPunct &&
          toks[pending_[p + 1]].text == "(") {
        // Skip the macro's argument list.
        int depth = 0;
        size_t q = p + 1;
        for (; q < pending_.size(); ++q) {
          const Token& u = toks[pending_[q]];
          if (u.kind != TokKind::kPunct) continue;
          if (u.text == "(") ++depth;
          if (u.text == ")" && --depth == 0) break;
        }
        p = q;
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == "(") return p;
    }
    return pending_.size();
  }

  /// Collects BPW_* annotation macros among pending_[from..): name plus
  /// joined argument text.
  std::vector<Annotation> CollectAnnotations(size_t from) const {
    const std::vector<Token>& toks = Toks();
    std::vector<Annotation> out;
    for (size_t p = from; p < pending_.size(); ++p) {
      const Token& t = toks[pending_[p]];
      if (t.kind != TokKind::kIdent || !IsAnnotationMacro(t.text)) continue;
      Annotation a;
      a.name = t.text;
      a.line = t.line;
      if (p + 1 < pending_.size() &&
          toks[pending_[p + 1]].kind == TokKind::kPunct &&
          toks[pending_[p + 1]].text == "(") {
        int depth = 0;
        size_t q = p + 1;
        size_t args_begin = p + 2;
        for (; q < pending_.size(); ++q) {
          const Token& u = toks[pending_[q]];
          if (u.kind != TokKind::kPunct) continue;
          if (u.text == "(") ++depth;
          if (u.text == ")" && --depth == 0) break;
        }
        if (q < pending_.size()) {
          a.args = JoinTokens(toks, pending_[args_begin - 1] + 1,
                              pending_[q]);
          p = q;
        }
      }
      out.push_back(std::move(a));
    }
    return out;
  }

  /// Parses pending_ as a function declarator. Returns false if no
  /// structural '(' exists.
  bool ParseFunctionDeclarator(FunctionDecl* fn) const {
    const std::vector<Token>& toks = Toks();
    const size_t paren = FirstStructuralParen();
    if (paren == pending_.size() || paren == 0) return false;
    // Name: identifier chain immediately before the '('.
    size_t k = paren;
    std::string name;
    if (k >= 1 && toks[pending_[k - 1]].kind == TokKind::kIdent) {
      name = toks[pending_[k - 1]].text;
      --k;
      if (k >= 1 && toks[pending_[k - 1]].kind == TokKind::kPunct &&
          toks[pending_[k - 1]].text == "~") {
        name = "~" + name;
        --k;
      }
    } else {
      // operator+=( ... ) and friends: join back to `operator`.
      size_t j = k;
      std::string ops;
      while (j >= 1 && toks[pending_[j - 1]].kind == TokKind::kPunct &&
             toks[pending_[j - 1]].text != ")" &&
             toks[pending_[j - 1]].text != "(") {
        ops = toks[pending_[j - 1]].text + ops;
        --j;
      }
      if (j >= 1 && toks[pending_[j - 1]].kind == TokKind::kIdent &&
          toks[pending_[j - 1]].text == "operator") {
        name = "operator" + ops;
        k = j - 1;
      } else {
        return false;
      }
    }
    if (name.empty()) return false;
    // Qualifier: walk back over `Ident ::` pairs.
    std::vector<std::string> quals;
    while (k >= 2 && toks[pending_[k - 1]].kind == TokKind::kPunct &&
           toks[pending_[k - 1]].text == "::" &&
           toks[pending_[k - 2]].kind == TokKind::kIdent) {
      quals.insert(quals.begin(), toks[pending_[k - 2]].text);
      k -= 2;
    }
    fn->name = name;
    fn->line = toks[pending_[paren]].line;
    if (!quals.empty()) {
      std::string q;
      for (const std::string& s : quals) {
        if (!q.empty()) q += "::";
        q += s;
      }
      fn->qualifier = q;
    } else {
      fn->qualifier = QualifiedTypeName();
    }
    fn->qualified =
        fn->qualifier.empty() ? fn->name : fn->qualifier + "::" + fn->name;
    // Trailing annotations: everything after the param list's close paren.
    int depth = 0;
    size_t close = paren;
    for (; close < pending_.size(); ++close) {
      const Token& u = toks[pending_[close]];
      if (u.kind != TokKind::kPunct) continue;
      if (u.text == "(") ++depth;
      if (u.text == ")" && --depth == 0) break;
    }
    fn->annotations = CollectAnnotations(close);
    // Parameter types: split the param list at top-level commas; in each
    // piece, the last identifier is the variable, the previous one its
    // (terminal) type name.
    size_t piece_start = paren + 1;
    for (size_t p = paren + 1; p <= close && p < pending_.size(); ++p) {
      const Token& u = toks[pending_[p]];
      const bool at_split =
          p == close || (u.kind == TokKind::kPunct && u.text == "," &&
                         ParenDepthAt(paren, p) == 1);
      if (!at_split) continue;
      std::string var, type;
      // Function-pointer declarator `Ret (*name)(Args...)`: the variable
      // is the ident inside `(*...)`, and the "type" is the pointer shape
      // itself — calls through it are indirect by construction.
      for (size_t q = piece_start; q + 2 < p; ++q) {
        const Token& a = toks[pending_[q]];
        const Token& b = toks[pending_[q + 1]];
        const Token& c = toks[pending_[q + 2]];
        if (a.kind == TokKind::kPunct && a.text == "(" &&
            b.kind == TokKind::kPunct && b.text == "*" &&
            c.kind == TokKind::kIdent) {
          var = c.text;
          type = "(*)";
          break;
        }
      }
      if (var.empty()) {
        for (size_t q = p; q > piece_start; --q) {
          const Token& w = toks[pending_[q - 1]];
          if (w.kind != TokKind::kIdent) continue;
          if (w.text == "const") continue;
          if (var.empty()) {
            var = w.text;
          } else {
            type = w.text;
            break;
          }
        }
      }
      if (!var.empty() && !type.empty()) fn->local_types[var] = type;
      piece_start = p + 1;
    }
    return true;
  }

  int ParenDepthAt(size_t open_pos, size_t at) const {
    const std::vector<Token>& toks = Toks();
    int depth = 0;
    for (size_t p = open_pos; p < at; ++p) {
      const Token& u = toks[pending_[p]];
      if (u.kind != TokKind::kPunct) continue;
      if (u.text == "(") ++depth;
      if (u.text == ")") --depth;
    }
    return depth;
  }

  /// True when pending_ carries more '(' than ')': the statement is still
  /// inside an argument list, so a '{' here is a lambda (or aggregate)
  /// expression, not a scope.
  bool PendingHasOpenParen() const {
    const std::vector<Token>& toks = Toks();
    int depth = 0;
    for (size_t idx : pending_) {
      const Token& u = toks[idx];
      if (u.kind != TokKind::kPunct) continue;
      if (u.text == "(") ++depth;
      if (u.text == ")") --depth;
    }
    return depth > 0;
  }

  /// A '{' that is a member/global initializer rather than a new scope:
  /// at type or namespace scope, with a declarator pending that has no
  /// structural paren and names no new type.
  bool IsBracedInitializer() const {
    if (pending_.empty() || InFunction()) return false;
    if (PendingHas("namespace") || PendingHasTypeKeyword()) return false;
    return FirstStructuralParen() == pending_.size();
  }

  void OpenBrace(size_t brace_tok) {
    Scope scope;
    if (PendingHas("namespace")) {
      scope.kind = Scope::kNamespace;
      stack_.push_back(scope);
      return;
    }
    if (InFunction()) {
      scope.kind = Scope::kBlock;
      stack_.push_back(scope);
      return;
    }
    if (PendingHasTypeKeyword()) {
      scope.kind = Scope::kType;
      scope.name = TypeNameFromPending();
      stack_.push_back(scope);
      TypeDecl type;
      type.name = scope.name;
      type.qualified = QualifiedTypeName();
      type.file = model_.path;
      type.line = Toks()[brace_tok].line;
      if (!PendingHas("enum")) ParseBases(&type);
      model_.types.push_back(std::move(type));
      type_stack_.push_back(model_.types.size() - 1);
      return;
    }
    FunctionDecl fn;
    if (ParseFunctionDeclarator(&fn)) {
      fn.file = model_.path;
      fn.has_body = true;
      fn.body_begin = brace_tok + 1;
      model_.functions.push_back(std::move(fn));
      scope.kind = Scope::kFunction;
      scope.function_index = model_.functions.size() - 1;
      stack_.push_back(scope);
      return;
    }
    scope.kind = Scope::kBlock;  // braced init at namespace scope, etc.
    stack_.push_back(scope);
  }

  void CloseBrace(size_t brace_tok) {
    if (stack_.empty()) return;
    const Scope closing = stack_.back();
    stack_.pop_back();
    if (closing.kind == Scope::kFunction &&
        closing.function_index < model_.functions.size()) {
      FunctionDecl& fn = model_.functions[closing.function_index];
      fn.body_end = brace_tok;
      AddBodyLocals(&fn);
    }
    if (closing.kind == Scope::kType && !type_stack_.empty()) {
      type_stack_.pop_back();
    }
  }

  /// Parses the base-specifier list out of the pending class head:
  /// `class Name : public A, private B<T>` records {"A", "B"} — the
  /// terminal identifier of each specifier, at template-argument depth
  /// zero, skipping access keywords. Annotation-macro and alignas parens
  /// are skipped by paren-depth tracking (the `:` must sit at depth 0).
  void ParseBases(TypeDecl* type) const {
    const std::vector<Token>& toks = Toks();
    size_t colon = pending_.size();
    int paren = 0;
    for (size_t p = 0; p < pending_.size(); ++p) {
      const Token& t = toks[pending_[p]];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(") ++paren;
      if (t.text == ")") --paren;
      if (t.text == ":" && paren == 0) {
        colon = p;
        break;
      }
    }
    if (colon == pending_.size()) return;
    int angle = 0;
    std::string base;
    auto flush = [&]() {
      if (!base.empty()) type->bases.push_back(base);
      base.clear();
    };
    for (size_t p = colon + 1; p < pending_.size(); ++p) {
      const Token& t = toks[pending_[p]];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "<") ++angle;
        if (t.text == ">") --angle;
        if (t.text == "," && angle == 0) flush();
        continue;
      }
      if (t.kind != TokKind::kIdent || angle != 0) continue;
      if (t.text == "public" || t.text == "private" || t.text == "protected" ||
          t.text == "virtual" || t.text == "final") {
        continue;
      }
      base = t.text;
    }
    flush();
  }

  std::string TypeNameFromPending() const {
    const std::vector<Token>& toks = Toks();
    bool saw_kw = false;
    for (size_t p = 0; p < pending_.size(); ++p) {
      const Token& t = toks[pending_[p]];
      if (t.kind == TokKind::kIdent && IsTypeKeyword(t.text)) {
        saw_kw = true;
        continue;
      }
      if (!saw_kw || t.kind != TokKind::kIdent) continue;
      if (IsAnnotationMacro(t.text) || t.text == "alignas") {
        // Skip the macro call's parens.
        if (p + 1 < pending_.size() &&
            toks[pending_[p + 1]].kind == TokKind::kPunct &&
            toks[pending_[p + 1]].text == "(") {
          int depth = 0;
          size_t q = p + 1;
          for (; q < pending_.size(); ++q) {
            const Token& u = toks[pending_[q]];
            if (u.kind != TokKind::kPunct) continue;
            if (u.text == "(") ++depth;
            if (u.text == ")" && --depth == 0) break;
          }
          p = q;
        }
        continue;
      }
      if (t.text == "final") continue;
      return t.text;
    }
    return "<anon>";
  }

  void EndStatement() {
    if (pending_.empty()) return;
    const bool in_type = !stack_.empty() && stack_.back().kind == Scope::kType;
    const bool in_ns =
        !stack_.empty() && stack_.back().kind == Scope::kNamespace;
    if (InFunction()) return;  // body statements are the checkers' domain
    if (PendingHasTypeKeyword()) return;  // forward decl / friend class
    const std::string& first = Toks()[pending_.front()].text;
    if (first == "using" || first == "typedef" || first == "template" ||
        first == "friend" || first == "public" || first == "private" ||
        first == "protected") {
      return;
    }
    const size_t paren = FirstStructuralParen();
    if (paren != pending_.size()) {
      // Method/function declaration (no body): keep it for its annotations.
      FunctionDecl fn;
      if (ParseFunctionDeclarator(&fn)) {
        fn.file = model_.path;
        model_.functions.push_back(std::move(fn));
      }
      return;
    }
    if (in_type && !type_stack_.empty()) {
      ParseField(&model_.types[type_stack_.back()].fields,
                 QualifiedTypeName());
    } else if (in_ns && pending_.size() >= 2) {
      ParseField(&model_.globals, "");
    }
  }

  void ParseField(std::vector<FieldDecl>* sink, const std::string& owner) {
    const std::vector<Token>& toks = Toks();
    FieldDecl field;
    field.annotations = CollectAnnotations(0);
    // Name: last plain identifier before the first annotation, '=',
    // or '{' marker. (Braced initializers open a Block scope, so pending_
    // at ';' normally ends at the declarator; '=' initializers keep their
    // tail here.)
    size_t limit = pending_.size();
    for (size_t p = 0; p < pending_.size(); ++p) {
      const Token& t = toks[pending_[p]];
      if (t.kind == TokKind::kIdent && IsAnnotationMacro(t.text)) {
        limit = p;
        break;
      }
      if (t.kind == TokKind::kPunct && t.text == "=") {
        limit = p;
        break;
      }
    }
    std::string name;
    size_t name_pos = limit;
    size_t p = limit;
    while (p > 0) {
      const Token& t = toks[pending_[p - 1]];
      if (t.kind == TokKind::kPunct && t.text == "]") {
        // Array declarator: skip the whole balanced subscript so a named
        // bound (`buckets[kNumBuckets]`) cannot pose as the field name.
        int depth = 0;
        do {
          const Token& s = toks[pending_[p - 1]];
          if (s.kind == TokKind::kPunct && s.text == "]") ++depth;
          if (s.kind == TokKind::kPunct && s.text == "[") --depth;
          --p;
        } while (p > 0 && depth > 0);
        continue;
      }
      if (t.kind == TokKind::kIdent && !IsTypeKeyword(t.text)) {
        name = t.text;
        name_pos = p - 1;
        break;
      }
      if ((t.kind == TokKind::kPunct && t.text == ">") ||
          t.kind == TokKind::kNumber) {
        --p;
        continue;
      }
      break;
    }
    if (name.empty()) return;
    field.name = name;
    field.type_text = JoinTokens(toks, pending_.front(),
                                 name_pos > 0 ? pending_[name_pos] : 0);
    field.owner = owner;
    field.file = model_.path;
    field.line = toks[pending_[name_pos]].line;
    sink->push_back(std::move(field));
  }

  /// Local declarations of the form `Type[&*] name =` / `Type[&*] name(`
  /// inside the body: enough to type `shard.lock` and `stamp.version`.
  /// Plain value locals (`PageId page = ...`) are recorded too so they
  /// shadow same-named fields; a keyword before the name (`return x =`)
  /// is not a type.
  void AddBodyLocals(FunctionDecl* fn) {
    static const std::set<std::string> kNotATypeName = {
        "return", "else",   "delete", "throw",     "new",      "case",
        "goto",   "using",  "typedef", "sizeof",   "co_return", "co_yield",
        "struct", "class",  "enum",   "union",     "namespace", "operator",
        "break",  "continue"};
    const std::vector<Token>& toks = Toks();
    for (size_t i = fn->body_begin;
         i + 2 < fn->body_end && i + 2 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      if (kNotATypeName.count(toks[i].text) > 0) continue;
      size_t j = i + 1;
      while (j < fn->body_end && toks[j].kind == TokKind::kPunct &&
             (toks[j].text == "&" || toks[j].text == "*")) {
        ++j;
      }
      if (j >= fn->body_end) continue;
      if (toks[j].kind != TokKind::kIdent) continue;
      if (j + 1 >= fn->body_end) continue;
      const Token& after = toks[j + 1];
      if (after.kind == TokKind::kPunct &&
          (after.text == "=" || after.text == "(" || after.text == "{")) {
        if (fn->local_types.find(toks[j].text) == fn->local_types.end()) {
          fn->local_types[toks[j].text] = toks[i].text;
        }
      }
    }
    // Template-typed locals (`std::atomic<int> phase{0}`): the name
    // follows the closing '>'; the type head is the identifier before the
    // matching '<'. A comparison (`a > b`) never has `= ( {` right after
    // its right operand, so the shape does not fire on expressions.
    for (size_t i = fn->body_begin + 1;
         i + 2 < fn->body_end && i + 2 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kPunct || toks[i].text != ">") continue;
      if (toks[i + 1].kind != TokKind::kIdent) continue;
      const Token& after = toks[i + 2];
      if (after.kind != TokKind::kPunct ||
          (after.text != "=" && after.text != "(" && after.text != "{")) {
        continue;
      }
      int depth = 1;
      size_t k = i;
      while (k > fn->body_begin && depth > 0) {
        --k;
        if (toks[k].kind != TokKind::kPunct) continue;
        if (toks[k].text == ">") ++depth;
        if (toks[k].text == "<") --depth;
      }
      if (depth != 0 || k == fn->body_begin) continue;
      if (toks[k - 1].kind != TokKind::kIdent) continue;
      if (fn->local_types.find(toks[i + 1].text) == fn->local_types.end()) {
        fn->local_types[toks[i + 1].text] = toks[k - 1].text;
      }
    }
    // `auto p = std::make_unique<T>(...)`: refine the recorded `auto` to
    // the factory's element type so member accesses through p resolve.
    for (size_t i = fn->body_begin;
         i + 4 < fn->body_end && i + 4 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent ||
          (toks[i].text != "make_unique" && toks[i].text != "make_shared")) {
        continue;
      }
      if (toks[i + 1].kind != TokKind::kPunct || toks[i + 1].text != "<") {
        continue;
      }
      // Terminal identifier of the element type (depth-1 of the angle
      // list, last one wins: `obs::Thing` -> Thing).
      std::string elem;
      int depth = 1;
      size_t k = i + 2;
      for (; k < fn->body_end && depth > 0; ++k) {
        if (toks[k].kind == TokKind::kPunct) {
          if (toks[k].text == "<") ++depth;
          if (toks[k].text == ">") --depth;
          continue;
        }
        if (depth == 1 && toks[k].kind == TokKind::kIdent) {
          elem = toks[k].text;
        }
      }
      if (elem.empty()) continue;
      // Walk back over `var = [std ::]` to the declared name.
      size_t b = i;
      while (b > fn->body_begin && toks[b - 1].kind == TokKind::kPunct &&
             toks[b - 1].text == "::") {
        b -= (b >= 2 && toks[b - 2].text == "std") ? 2 : 1;
      }
      if (b < 2 || toks[b - 1].kind != TokKind::kPunct ||
          toks[b - 1].text != "=" || toks[b - 2].kind != TokKind::kIdent) {
        continue;
      }
      auto lt = fn->local_types.find(toks[b - 2].text);
      if (lt != fn->local_types.end() && lt->second == "auto") {
        lt->second = elem;
      }
    }
    AddRangeForAliases(fn);
    AddPointerAliases(fn);
  }

  /// `w = &buf->words[...]` — a pointer into a member's storage aliases
  /// that member, so accesses through `w` inherit its annotations.
  void AddPointerAliases(FunctionDecl* fn) {
    const std::vector<Token>& toks = Toks();
    for (size_t i = fn->body_begin;
         i + 2 < fn->body_end && i + 2 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      if (toks[i + 1].kind != TokKind::kPunct || toks[i + 1].text != "=") {
        continue;
      }
      if (toks[i + 2].kind != TokKind::kPunct || toks[i + 2].text != "&") {
        continue;
      }
      std::string target;
      for (size_t j = i + 3; j < fn->body_end; ++j) {
        const Token& t = toks[j];
        if (t.kind == TokKind::kIdent) {
          target = t.text;
          continue;
        }
        if (t.kind == TokKind::kPunct &&
            (t.text == "." || t.text == "->" || t.text == "::")) {
          continue;
        }
        break;  // subscript, call, ';' — the chain ends here
      }
      if (!target.empty() && target != toks[i].text &&
          fn->local_aliases.find(toks[i].text) == fn->local_aliases.end()) {
        fn->local_aliases[toks[i].text] = target;
      }
    }
  }

  /// `for ( <decl> : <container> )` — the loop variable is the last ident
  /// before the ':', the container the last ident before the closing ')'
  /// (good enough for the member / plain-variable spellings that matter).
  void AddRangeForAliases(FunctionDecl* fn) {
    const std::vector<Token>& toks = Toks();
    for (size_t i = fn->body_begin;
         i + 1 < fn->body_end && i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent || toks[i].text != "for") continue;
      if (toks[i + 1].kind != TokKind::kPunct || toks[i + 1].text != "(") {
        continue;
      }
      int depth = 0;
      size_t colon = 0;
      std::string var, container;
      for (size_t j = i + 1; j < fn->body_end; ++j) {
        const Token& t = toks[j];
        if (t.kind == TokKind::kPunct) {
          if (t.text == "(") ++depth;
          if (t.text == ")" && --depth == 0) break;
          if (t.text == ";") break;  // a classic for, not a range-for
          if (t.text == ":" && depth == 1 && colon == 0) colon = j;
          continue;
        }
        if (t.kind != TokKind::kIdent) continue;
        if (colon == 0) {
          var = t.text;
        } else {
          container = t.text;
        }
      }
      if (colon != 0 && !var.empty() && !container.empty() &&
          fn->local_aliases.find(var) == fn->local_aliases.end()) {
        fn->local_aliases[var] = container;
      }
    }
  }

  FileModel model_;
  std::vector<Scope> stack_{Scope{Scope::kNamespace, "", static_cast<size_t>(-1)}};
  std::vector<size_t> pending_;     // token indices since last boundary
  std::vector<size_t> type_stack_;  // indices into model_.types
};

}  // namespace

const Annotation* FieldDecl::FindAnnotation(const std::string& macro) const {
  for (const Annotation& a : annotations) {
    if (a.name == macro) return &a;
  }
  return nullptr;
}

const Annotation* FunctionDecl::FindAnnotation(
    const std::string& macro) const {
  for (const Annotation& a : annotations) {
    if (a.name == macro) return &a;
  }
  return nullptr;
}

std::vector<const Annotation*> FunctionDecl::FindAll(
    const std::string& macro) const {
  std::vector<const Annotation*> out;
  for (const Annotation& a : annotations) {
    if (a.name == macro) out.push_back(&a);
  }
  return out;
}

bool FunctionDecl::LockedSuffix() const {
  return name.size() > 6 && name.rfind("Locked") == name.size() - 6;
}

void TreeModel::AddFile(FileModel file) {
  files.push_back(std::move(file));
  Reindex();
}

void TreeModel::Reindex() {
  fields_by_name.clear();
  types_by_name.clear();
  function_annotations.clear();
  for (const FileModel& fm : files) {
    for (const TypeDecl& type : fm.types) {
      types_by_name.emplace(type.qualified, &type);
      if (type.qualified != type.name) types_by_name.emplace(type.name, &type);
      for (const FieldDecl& field : type.fields) {
        fields_by_name.emplace(field.name, &field);
      }
    }
    for (const FieldDecl& field : fm.globals) {
      fields_by_name.emplace(field.name, &field);
    }
    for (const FunctionDecl& fn : fm.functions) {
      auto& anns = function_annotations[fn.qualified];
      for (const Annotation& a : fn.annotations) {
        const bool dup =
            std::any_of(anns.begin(), anns.end(), [&](const Annotation& b) {
              return b.name == a.name && b.args == a.args;
            });
        if (!dup) anns.push_back(a);
      }
    }
  }
}

const FieldDecl* TreeModel::ResolveMember(const std::string& context_class,
                                          const std::string& member) const {
  if (!context_class.empty()) {
    // Exact owner, then outer classes. Deliberately NOT the other nesting
    // direction: a bare `page` in an Outer method is never a non-static
    // field of Outer::Nested, so resolving into nested types would invent
    // references (it attributed locals named like StampSlot payloads).
    const FieldDecl* outer_match = nullptr;
    auto range = fields_by_name.equal_range(member);
    for (auto it = range.first; it != range.second; ++it) {
      const FieldDecl* f = it->second;
      if (f->owner == context_class) return f;
      // The context may itself be nested: A::B resolving a member of A.
      if (context_class.rfind(f->owner + "::", 0) == 0) {
        if (outer_match == nullptr) outer_match = f;
      }
    }
    if (outer_match != nullptr) return outer_match;
  }
  // Unique global match.
  auto range = fields_by_name.equal_range(member);
  if (range.first == range.second) return nullptr;
  auto it = range.first;
  const FieldDecl* only = it->second;
  ++it;
  return it == range.second ? only : nullptr;
}

FileModel BuildFileModel(const std::string& path, const std::string& source) {
  return Parser(path, source).Run();
}

}  // namespace analysis
}  // namespace bpw
