#include "analysis/call_graph.h"

#include <algorithm>

#include "analysis/resolve.h"

namespace bpw {
namespace analysis {

namespace {

/// Identifiers that look like calls in token form but are not.
bool IsCallKeyword(const std::string& t) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",       "switch",   "return",
      "sizeof",   "alignof",  "decltype",    "noexcept", "static_assert",
      "catch",    "new",      "delete",      "throw",    "typeid",
      "co_await", "co_yield", "co_return",   "assert",   "defined",
      "alignas",  "operator", "reinterpret_cast", "static_cast",
      "const_cast", "dynamic_cast"};
  return kKeywords.count(t) > 0;
}

class Builder {
 public:
  explicit Builder(const TreeModel& tree) : tree_(tree) {}

  CallGraph Build() {
    CollectNodes();
    CollectBases();
    // NodeFor may append synthesized nodes mid-scan, so nodes (and any
    // reference into it) can move: iterate by index and copy the def list.
    const size_t scanned = graph_.nodes.size();
    for (size_t n = 0; n < scanned; ++n) {
      const auto defs = graph_.nodes[n].defs;
      for (const auto& def : defs) {
        ScanBody(n, *def.second, *def.first);
      }
      DedupeEdges(&graph_.nodes[n]);
    }
    return std::move(graph_);
  }

 private:
  void CollectNodes() {
    for (const FileModel& fm : tree_.files) {
      for (const FunctionDecl& fn : fm.functions) {
        auto it = graph_.index.find(fn.qualified);
        if (it == graph_.index.end()) {
          it = graph_.index.emplace(fn.qualified, graph_.nodes.size()).first;
          graph_.nodes.push_back(CallNode{fn.qualified, {}, {}, {}});
        }
        if (fn.has_body) {
          graph_.nodes[it->second].defs.emplace_back(&fn, &fm);
        }
        if (!fn.qualifier.empty()) {
          methods_[fn.qualifier].insert(fn.name);
        }
        by_name_.emplace(fn.name, fn.qualified);
      }
    }
  }

  void CollectBases() {
    for (const FileModel& fm : tree_.files) {
      for (const TypeDecl& t : fm.types) {
        for (const std::string& base : t.bases) {
          graph_.derived.emplace(base, t.qualified);
        }
      }
    }
  }

  static std::string TerminalName(const std::string& qualified) {
    const size_t cut = qualified.rfind("::");
    return cut == std::string::npos ? qualified : qualified.substr(cut + 2);
  }

  /// The base list of a class, looked up by any of its name spellings.
  const TypeDecl* FindType(const std::string& name) const {
    auto range = tree_.types_by_name.equal_range(name);
    if (range.first == range.second) return nullptr;
    return range.first->second;
  }

  bool ClassHasMethod(const std::string& cls, const std::string& m) const {
    auto it = methods_.find(cls);
    if (it != methods_.end() && it->second.count(m) > 0) return true;
    // Method tables are keyed by the qualifier as spelled; a nested class
    // may be indexed under its qualified name only.
    const TypeDecl* t = FindType(cls);
    if (t != nullptr && t->qualified != cls) {
      auto it2 = methods_.find(t->qualified);
      if (it2 != methods_.end() && it2->second.count(m) > 0) return true;
    }
    return false;
  }

  std::string MethodQualified(const std::string& cls,
                              const std::string& m) const {
    auto it = methods_.find(cls);
    if (it != methods_.end() && it->second.count(m) > 0) {
      return cls + "::" + m;
    }
    const TypeDecl* t = FindType(cls);
    if (t != nullptr && t->qualified != cls &&
        ClassHasMethod(t->qualified, m)) {
      return t->qualified + "::" + m;
    }
    return "";
  }

  /// Walks up the base-class chain from `cls` looking for method `m`;
  /// returns the declaring class name ("" if none found).
  std::string FindDeclaringClass(const std::string& cls, const std::string& m,
                                 int depth = 0) const {
    if (cls.empty() || depth > 8) return "";
    if (ClassHasMethod(cls, m)) return cls;
    const TypeDecl* t = FindType(cls);
    if (t == nullptr) return "";
    for (const std::string& base : t->bases) {
      const std::string found = FindDeclaringClass(base, m, depth + 1);
      if (!found.empty()) return found;
    }
    return "";
  }

  size_t NodeFor(const std::string& qualified) {
    auto it = graph_.index.find(qualified);
    if (it != graph_.index.end()) return it->second;
    // Synthesize a body-less node (a declared-only method reached through
    // a base pointer whose declaration we indexed by class+name).
    graph_.index.emplace(qualified, graph_.nodes.size());
    graph_.nodes.push_back(CallNode{qualified, {}, {}, {}});
    return graph_.nodes.size() - 1;
  }

  void AddEdge(size_t node, const std::string& qualified, int line,
               bool virt) {
    const size_t callee = NodeFor(qualified);  // may reallocate nodes
    graph_.nodes[node].edges.push_back(CallEdge{callee, line, virt});
  }

  /// Adds the direct edge to `declaring::m` plus fan-out edges to every
  /// override in classes transitively derived from the declaring class.
  void AddVirtualEdges(size_t node, const std::string& declaring,
                       const std::string& m, int line) {
    const std::string direct = MethodQualified(declaring, m);
    if (!direct.empty()) AddEdge(node, direct, line, /*virt=*/false);
    const TypeDecl* t = FindType(declaring);
    const std::string terminal =
        t != nullptr ? TerminalName(t->qualified) : declaring;
    for (const std::string& d : graph_.TransitiveDerived(terminal)) {
      const std::string target = MethodQualified(d, m);
      if (!target.empty() && target != direct) {
        AddEdge(node, target, line, /*virt=*/true);
      }
    }
  }

  /// Resolves the static type name of `recv` inside `fn`: local/param
  /// declared type, else the declared type of a same-named field of the
  /// enclosing class (first known type named in its declarator text).
  std::string ReceiverType(const FileModel& fm, const FunctionDecl& fn,
                           const std::string& recv,
                           bool* function_typed) const {
    (void)fm;
    *function_typed = false;
    if (recv == "this") return fn.qualifier;
    auto it = fn.local_types.find(recv);
    if (it != fn.local_types.end()) {
      if (it->second == "function") *function_typed = true;
      return it->second;
    }
    std::string as_field = recv;
    auto alias = fn.local_aliases.find(recv);
    if (alias != fn.local_aliases.end()) as_field = alias->second;
    const FieldDecl* f = tree_.ResolveMember(fn.qualifier, as_field);
    if (f == nullptr) return "";
    if (f->type_text.find("function") != std::string::npos) {
      *function_typed = true;
    }
    // First known type named in the declarator, right to left (the
    // element type of unique_ptr<ReplacementPolicy> wins over the
    // smart-pointer template).
    std::string word;
    std::string found;
    for (size_t i = 0; i <= f->type_text.size(); ++i) {
      const char c = i < f->type_text.size() ? f->type_text[i] : ' ';
      if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
          (c >= '0' && c <= '9') || c == '_') {
        word += c;
        continue;
      }
      if (!word.empty() && FindType(word) != nullptr) found = word;
      word.clear();
    }
    return found;
  }

  void ScanBody(size_t node, const FileModel& fm, const FunctionDecl& fn) {
    const std::vector<Token>& toks = fm.lex.tokens;
    if (fn.body_begin >= fn.body_end || fn.body_end > toks.size()) return;
    for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      if (i + 1 >= fn.body_end || toks[i + 1].kind != TokKind::kPunct ||
          toks[i + 1].text != "(") {
        continue;
      }
      const std::string& name = t.text;
      if (IsCallKeyword(name) || name.rfind("BPW_", 0) == 0) continue;

      const bool has_prev = i >= 1 && i - 1 >= fn.body_begin;
      const std::string prev =
          has_prev && toks[i - 1].kind == TokKind::kPunct ? toks[i - 1].text
                                                          : "";
      if (prev == "." || prev == "->") {
        ResolveMemberCall(node, fm, fn, toks, i, name, t.line);
        continue;
      }
      if (prev == "::") {
        ResolveQualifiedCall(node, toks, fn, i, name, t.line);
        continue;
      }
      const std::string prev_ident =
          has_prev && toks[i - 1].kind == TokKind::kIdent ? toks[i - 1].text
                                                          : "";
      ResolveBareCall(node, fn, name, prev_ident, t.line);
    }
  }

  void ResolveMemberCall(size_t node, const FileModel& fm,
                         const FunctionDecl& fn,
                         const std::vector<Token>& toks, size_t i,
                         const std::string& name, int line) {
    std::string recv;
    if (i >= 2 && toks[i - 2].kind == TokKind::kIdent) {
      recv = toks[i - 2].text;
    }
    if (recv.empty()) {
      // `foo().bar(` / `arr[j].bar(` — unknown receiver; only a
      // tree-unique method name still resolves.
      ResolveUniqueName(node, name, line);
      return;
    }
    bool function_typed = false;
    const std::string cls = ReceiverType(fm, fn, recv, &function_typed);
    if (function_typed && cls.empty()) {
      graph_.nodes[node].indirect_calls.push_back({line, recv + "." + name});
      return;
    }
    if (cls.empty()) {
      ResolveUniqueName(node, name, line);
      return;
    }
    const std::string declaring = FindDeclaringClass(cls, name);
    if (declaring.empty()) {
      // A container/std type method (push_back, find, ...) — the effect
      // layer classifies these by name; no edge.
      return;
    }
    AddVirtualEdges(node, declaring, name, line);
  }

  void ResolveQualifiedCall(size_t node, const std::vector<Token>& toks,
                            const FunctionDecl& fn, size_t i,
                            const std::string& name, int line) {
    // Walk back over `Ident ::` pairs to build the full scope chain.
    std::vector<std::string> scopes;
    size_t k = i - 1;  // the "::" token
    while (k >= 1 && k - 1 >= fn.body_begin &&
           toks[k].kind == TokKind::kPunct && toks[k].text == "::" &&
           toks[k - 1].kind == TokKind::kIdent) {
      scopes.insert(scopes.begin(), toks[k - 1].text);
      if (k < 2) break;
      k -= 2;
    }
    if (scopes.empty()) return;
    std::string qual;
    for (const std::string& s : scopes) {
      if (!qual.empty()) qual += "::";
      qual += s;
    }
    // `std::move(...)`, `std::max(...)` etc. resolve nowhere — fine.
    const std::string target = MethodQualified(qual, name);
    if (!target.empty()) {
      AddEdge(node, target, line, /*virt=*/false);
      return;
    }
    // A namespace qualifier we did not model (`lint::LintSource`): fall
    // back to the unqualified unique-name lookup.
    ResolveUniqueName(node, name, line);
  }

  /// True when `prev_ident Ident(` can only be a use site, not the type
  /// position of a declaration (`return evictable(f)` vs
  /// `SpinLockGuard guard(mu_)`).
  static bool IsStatementKeyword(const std::string& t) {
    static const std::set<std::string> kStmt = {"else", "do",    "case",
                                                "goto", "break", "continue"};
    return IsCallKeyword(t) || kStmt.count(t) > 0;
  }

  void ResolveBareCall(size_t node, const FunctionDecl& fn,
                       const std::string& name, const std::string& prev_ident,
                       int line) {
    // A callable local or parameter: `evictable(frame)` through a
    // std::function — the canonical indirect call. But the declaration
    // site itself — `SpinLockGuard guard(mu_)`, where the preceding token
    // is the type identifier — constructs the variable, it does not call
    // it; resolve it as a constructor of the spelled type instead.
    if (fn.local_types.count(name) > 0) {
      if (!prev_ident.empty() && !IsStatementKeyword(prev_ident)) {
        const TypeDecl* decl_type = FindType(prev_ident);
        if (decl_type != nullptr) {
          const std::string ctor =
              MethodQualified(decl_type->qualified, prev_ident);
          if (!ctor.empty()) AddEdge(node, ctor, line, /*virt=*/false);
        }
        return;
      }
      graph_.nodes[node].indirect_calls.push_back({line, name});
      return;
    }
    // A method of the enclosing class or an ancestor (virtual through
    // `this`, so fan out).
    if (!fn.qualifier.empty()) {
      const std::string declaring = FindDeclaringClass(fn.qualifier, name);
      if (!declaring.empty()) {
        AddVirtualEdges(node, declaring, name, line);
        return;
      }
    }
    // A uniquely named function anywhere in the tree.
    if (ResolveUniqueName(node, name, line)) return;
    // A known type: constructor call (`Node()`, guard types are handled
    // structurally by the hold scanner but an edge to a modeled ctor body
    // is still correct).
    const TypeDecl* t = FindType(name);
    if (t != nullptr) {
      const std::string ctor = MethodQualified(t->qualified, name);
      if (!ctor.empty()) AddEdge(node, ctor, line, /*virt=*/false);
    }
  }

  bool ResolveUniqueName(size_t node, const std::string& name, int line) {
    auto range = by_name_.equal_range(name);
    if (range.first == range.second) return false;
    std::set<std::string> targets;
    for (auto it = range.first; it != range.second; ++it) {
      targets.insert(it->second);
    }
    if (targets.size() != 1) return false;  // ambiguous: degrade by omission
    AddEdge(node, *targets.begin(), line, /*virt=*/false);
    return true;
  }

  static void DedupeEdges(CallNode* node) {
    std::sort(node->edges.begin(), node->edges.end(),
              [](const CallEdge& a, const CallEdge& b) {
                if (a.callee != b.callee) return a.callee < b.callee;
                return a.line < b.line;
              });
    node->edges.erase(
        std::unique(node->edges.begin(), node->edges.end(),
                    [](const CallEdge& a, const CallEdge& b) {
                      return a.callee == b.callee && a.line == b.line;
                    }),
        node->edges.end());
  }

  const TreeModel& tree_;
  CallGraph graph_;
  /// class qualifier (as spelled on its functions) -> method names.
  std::map<std::string, std::set<std::string>> methods_;
  /// unqualified function name -> qualified names.
  std::multimap<std::string, std::string> by_name_;
};

}  // namespace

std::vector<std::string> CallGraph::TransitiveDerived(
    const std::string& base) const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  std::vector<std::string> frontier = {base};
  while (!frontier.empty()) {
    const std::string cur = frontier.back();
    frontier.pop_back();
    auto range = derived.equal_range(cur);
    for (auto it = range.first; it != range.second; ++it) {
      if (!seen.insert(it->second).second) continue;
      out.push_back(it->second);
      const size_t cut = it->second.rfind("::");
      frontier.push_back(cut == std::string::npos
                             ? it->second
                             : it->second.substr(cut + 2));
    }
  }
  return out;
}

CallGraph BuildCallGraph(const TreeModel& tree) {
  return Builder(tree).Build();
}

}  // namespace analysis
}  // namespace bpw
