// Shared tree-walk setup for the three linter CLIs (bpw_lint,
// bpw_atomiclint, bpw_holdlint): expanding file/directory arguments into
// the sorted source list, reading files, and parsing them into one
// TreeModel. Before this existed each CLI carried its own copy of the
// walk; CI additionally re-walked the tree once per linter. The
// `--files-from` support lets CI enumerate the tree once and feed the
// same list to every tool.
#pragma once

#include <string>
#include <vector>

#include "analysis/scope_graph.h"

namespace bpw {
namespace analysis {

/// True for the extensions the linters consume (.h / .cc / .cpp).
bool IsSourceFilePath(const std::string& path);

/// Reads one file into `out`. Returns false if it cannot be read.
bool ReadSource(const std::string& path, std::string* out);

/// Expands `paths` (files and directories, walked recursively) into a
/// sorted list of source files. Prints a `tool`-prefixed error and
/// returns false on an unreadable path.
bool CollectSourceFiles(const std::string& tool,
                        const std::vector<std::string>& paths,
                        std::vector<std::string>* files);

/// Reads a newline-separated file list (the --files-from spelling; CI
/// walks the tree once and shares the list across linters). Blank lines
/// and lines starting with '#' are skipped.
bool ReadFileList(const std::string& tool, const std::string& list_path,
                  std::vector<std::string>* files);

/// Parses every file into `tree` and reindexes it. Prints a
/// `tool`-prefixed error and returns false on an unreadable file.
bool BuildTreeModel(const std::string& tool,
                    const std::vector<std::string>& files, TreeModel* tree);

}  // namespace analysis
}  // namespace bpw
