#include "analysis/sarif.h"

#include <cstdio>
#include <set>

namespace bpw {
namespace analysis {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// SARIF wants a URI; a bare relative path is a valid relative URI
/// reference once backslashes are gone (we never produce them, but a
/// defensive normalization costs nothing).
std::string PathToUri(const std::string& path) {
  std::string out = path;
  for (char& c : out) {
    if (c == '\\') c = '/';
  }
  // Strip a leading "./" so the same file dedupes with its plain spelling.
  if (out.rfind("./", 0) == 0) out = out.substr(2);
  return out;
}

}  // namespace

std::string FindingsToSarif(const std::string& tool_name,
                            const std::vector<std::string>& rule_ids,
                            const std::vector<Finding>& findings) {
  std::string out;
  out += "{\n";
  out +=
      "  \"$schema\": "
      "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n";
  out += "    {\n";
  out += "      \"tool\": {\n";
  out += "        \"driver\": {\n";
  out += "          \"name\": \"" + JsonEscape(tool_name) + "\",\n";
  out += "          \"rules\": [\n";
  // Every rule the tool knows, plus any rule id that appears in a finding
  // but is missing from the list (SARIF requires results to reference a
  // declared rule for grouping to work).
  std::set<std::string> ids(rule_ids.begin(), rule_ids.end());
  for (const Finding& f : findings) ids.insert(f.rule);
  bool first = true;
  for (const std::string& id : ids) {
    if (!first) out += ",\n";
    first = false;
    out += "            {\"id\": \"" + JsonEscape(id) + "\"}";
  }
  out += "\n          ]\n";
  out += "        }\n";
  out += "      },\n";
  out += "      \"results\": [\n";
  first = true;
  for (const Finding& f : findings) {
    if (!first) out += ",\n";
    first = false;
    out += "        {\n";
    out += "          \"ruleId\": \"" + JsonEscape(f.rule) + "\",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": {\"text\": \"" + JsonEscape(f.message) +
           "\"},\n";
    out += "          \"locations\": [\n";
    out += "            {\n";
    out += "              \"physicalLocation\": {\n";
    out += "                \"artifactLocation\": {\"uri\": \"" +
           JsonEscape(PathToUri(f.file)) + "\"},\n";
    out += "                \"region\": {\"startLine\": " +
           std::to_string(f.line > 0 ? f.line : 1) + "}\n";
    out += "              }\n";
    out += "            }\n";
    out += "          ]\n";
    out += "        }";
  }
  out += "\n      ]\n";
  out += "    }\n";
  out += "  ]\n";
  out += "}\n";
  return out;
}

}  // namespace analysis
}  // namespace bpw
