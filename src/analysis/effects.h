// Transitive effect summaries over the call graph.
//
// The effect lattice is a bitset per function: may-allocate, may-block,
// may-do-IO, may-log, may-read-clocks, may-loop-unbounded, plus the
// conservative "indirect call" bit for targets the call graph cannot
// enumerate (function pointers / std::function — treated as
// may-everything). Direct effects come from the same name tables
// bpw_lint's line-local rules use, so the prover is exactly "bpw_lint's
// rules, made transitive"; summaries then propagate caller-ward over the
// call graph: Tarjan SCC condensation, processed callees-first, with
// every member of a recursion cycle receiving the union of the cycle's
// effects.
//
// Two escape hatches, both explicit in the source:
//   - BPW_HOLD_EFFECT_OK(effect, reason) on a function declaration
//     removes that effect from the function's summary (direct and
//     inherited): the effect is deliberate, the reason is on record, and
//     callers prove clean against the cleansed summary.
//   - BPW_BOUNDED_BY(expr) on (or directly above) a loop that is not
//     structurally bounded records the bounding argument and removes the
//     unbounded-loop effect for that loop.
//
// Functions defined under src/sync/ are the trusted base (the lock
// implementations themselves read clocks when profiling is enabled and
// spin by design); their summaries are forced empty, mirroring how the
// atomics checker scopes its rules.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/call_graph.h"

namespace bpw {
namespace analysis {

enum Effect : unsigned {
  kEffAlloc = 1u << 0,
  kEffBlock = 1u << 1,
  kEffIo = 1u << 2,
  kEffLog = 1u << 3,
  kEffClock = 1u << 4,
  kEffLoop = 1u << 5,      ///< contains an unbounded, unannotated loop
  kEffIndirect = 1u << 6,  ///< calls through a statically unknown target
};

constexpr unsigned kAllEffects = kEffAlloc | kEffBlock | kEffIo | kEffLog |
                                 kEffClock | kEffLoop | kEffIndirect;

/// "alloc", "block", "io", "log", "clock", "loop", "indirect".
const char* EffectName(unsigned bit);
/// Inverse of EffectName; 0 for unknown names.
unsigned EffectBitByName(const std::string& name);

/// One direct effect site in a function body.
struct EffectSite {
  unsigned bit = 0;
  size_t tok = 0;  ///< token index into the file's stream
  int line = 0;
  std::string what;  ///< "make_unique", "unbounded while", ...
};

/// How a function acquired an effect bit (for witness paths).
struct EffectOrigin {
  bool direct = false;
  std::string what;  ///< direct site description
  int line = 0;      ///< direct site line, or call-site line
  size_t callee = 0; ///< contributing callee node when !direct
};

struct FunctionEffects {
  unsigned bits = 0;        ///< transitive summary, after exoneration
  unsigned exonerated = 0;  ///< bits cleared by BPW_HOLD_EFFECT_OK
  std::map<unsigned, EffectOrigin> origins;
};

struct EffectMap {
  std::vector<FunctionEffects> per_node;  ///< parallel to CallGraph.nodes

  unsigned BitsOf(size_t node) const {
    return node < per_node.size() ? per_node[node].bits : 0;
  }
  /// Renders "A -> B -> make_unique (file.cc:12)" for the bit's witness.
  std::string Witness(const CallGraph& cg, size_t node, unsigned bit) const;
};

/// Loop structure of one function body (shared with the hold checker).
struct LoopInfo {
  size_t kw_tok = 0;     ///< token index of for/while/do
  size_t body_begin = 0; ///< first token of the loop body
  size_t body_end = 0;   ///< one past the last body token
  int line = 0;
  bool bounded = false;   ///< classic for with a condition, or range-for
  bool annotated = false; ///< BPW_BOUNDED_BY on this or the previous line
};
std::vector<LoopInfo> ScanLoops(const FileModel& fm, const FunctionDecl& fn);

/// Direct (line-local) effect sites of one body. Loop effects are not
/// included — pair with ScanLoops.
std::vector<EffectSite> ScanDirectEffects(const FileModel& fm,
                                          const FunctionDecl& fn);

EffectMap ComputeEffects(const TreeModel& tree, const CallGraph& cg);

}  // namespace analysis
}  // namespace bpw
