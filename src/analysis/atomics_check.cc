#include "analysis/atomics_check.h"

#include <map>
#include <set>
#include <string>

#include "analysis/resolve.h"

namespace bpw {
namespace analysis {

namespace {

bool PathContains(const std::string& path, const std::string& piece) {
  return path.find(piece) != std::string::npos;
}

bool IsLibFile(const std::string& path, const AtomicsOptions& opts) {
  if (opts.all_files_lib) return true;
  if (!PathContains(path, "src/")) return false;
  return !PathContains(path, "src/sync/") &&
         !PathContains(path, "src/analysis/");
}

bool FieldAllowsRelaxed(const FieldDecl& f) {
  return f.HasAnnotation("BPW_RELAXED_OK") ||
         f.HasAnnotation("BPW_PUBLISHED_BY") ||
         f.HasAnnotation("BPW_SEQLOCK_STAMP") ||
         f.HasAnnotation("BPW_GUARDED_BY") ||
         f.HasAnnotation("BPW_PT_GUARDED_BY");
}

bool FieldHasConcurrencyAnnotation(const FieldDecl& f) {
  return FieldAllowsRelaxed(f);
}

bool IsReleaseOrder(const std::string& t) {
  return t == "memory_order_release" || t == "memory_order_acq_rel" ||
         t == "memory_order_seq_cst";
}

bool IsAcquireOrder(const std::string& t) {
  return t == "memory_order_acquire" || t == "memory_order_acq_rel" ||
         t == "memory_order_seq_cst";
}

bool IsStoreOp(const std::string& t) {
  return t == "store" || t == "exchange" || t == "fetch_add" ||
         t == "fetch_sub" || t == "fetch_or" || t == "fetch_and" ||
         t == "fetch_xor";
}

bool IsCasOp(const std::string& t) {
  return t.rfind("compare_exchange", 0) == 0;
}

/// Mutating container/atomic member calls count as writes; everything
/// else reached through '.' is a read.
bool IsMutatingCall(const std::string& t) {
  return IsStoreOp(t) || IsCasOp(t) || t == "push_back" ||
         t == "emplace_back" || t == "assign" || t == "resize" ||
         t == "clear" || t == "insert" || t == "pop_back";
}

struct PayloadUse {
  int first_write_line = 0;
  int first_read_line = 0;
  std::string field_name;
};

class Checker {
 public:
  Checker(const TreeModel& tree, const AtomicsOptions& opts)
      : tree_(tree), opts_(opts) {}

  std::vector<Finding> Run() {
    IndexAnnotations();
    for (const FileModel& fm : tree_.files) {
      if (!IsLibFile(fm.path, opts_)) continue;
      CollectSiteWhitelist(fm);
      CheckRelaxed(fm);
      CheckPublication(fm);
      CheckMcAccess(fm);
    }
    return std::move(findings_);
  }

 private:
  void Report(const FileModel& fm, int line, const std::string& rule,
              const std::string& message) {
    if (!opts_.ignore_allows && fm.lex.Allowed(line - 1, rule)) return;
    findings_.push_back({fm.path, line, rule, message});
  }

  void IndexAnnotations() {
    auto index_field = [&](const FieldDecl& f) {
      const Annotation* pub = f.FindAnnotation("BPW_PUBLISHED_BY");
      if (pub != nullptr) {
        const FieldDecl* stamp =
            ResolveFieldRef(tree_, nullptr, f.owner, "", pub->args);
        if (stamp == nullptr) {
          findings_.push_back(
              {f.file, f.line, "bad-annotation",
               "BPW_PUBLISHED_BY(" + pub->args + ") on '" + f.name +
                   "': stamp field not found in " +
                   (f.owner.empty() ? "file scope" : f.owner)});
        } else {
          payload_stamp_[&f] = stamp;
          payload_by_name_.emplace(f.name, &f);
        }
      }
      if (f.HasAnnotation("BPW_SEQLOCK_STAMP")) seqlock_stamps_.insert(&f);
    };
    for (const FileModel& fm : tree_.files) {
      for (const TypeDecl& t : fm.types) {
        for (const FieldDecl& f : t.fields) index_field(f);
      }
      for (const FieldDecl& f : fm.globals) index_field(f);
    }
  }

  /// Lines covered by a standalone BPW_RELAXED_OK("reason") statement
  /// (the macro's own line and the next, so it can sit above the access).
  void CollectSiteWhitelist(const FileModel& fm) {
    site_ok_.clear();
    for (const Token& t : fm.lex.tokens) {
      if (t.kind == TokKind::kIdent && t.text == "BPW_RELAXED_OK") {
        site_ok_.insert(t.line);
        site_ok_.insert(t.line + 1);
      }
    }
  }

  const FunctionDecl* EnclosingFunction(const FileModel& fm,
                                        size_t tok_index) const {
    for (const FunctionDecl& fn : fm.functions) {
      if (fn.has_body && fn.body_begin <= tok_index &&
          tok_index < fn.body_end) {
        return &fn;
      }
    }
    return nullptr;
  }

  /// Walks back from an argument token to the '(' of its enclosing call
  /// and extracts `receiver.member.op(` — returns false on no match.
  bool CallContext(const std::vector<Token>& toks, size_t arg_index,
                   std::string* receiver, std::string* member,
                   std::string* op) const {
    int depth = 0;
    size_t k = arg_index;
    size_t steps = 0;
    while (k > 0 && steps++ < 96) {
      const Token& t = toks[k - 1];
      if (t.kind == TokKind::kPunct) {
        if (t.text == ")") ++depth;
        if (t.text == "(") {
          if (depth == 0) break;
          --depth;
        }
      }
      --k;
    }
    if (k < 3) return false;
    const size_t open = k - 1;  // toks[open] == "("
    if (toks[open - 1].kind != TokKind::kIdent) return false;
    *op = toks[open - 1].text;
    if (open < 3 || toks[open - 2].kind != TokKind::kPunct ||
        (toks[open - 2].text != "." && toks[open - 2].text != "->")) {
      return false;
    }
    const size_t m = IdentBeforeSubscript(toks, open - 2);
    if (m == kNoTok) return false;
    *member = toks[m].text;
    if (m >= 2 && toks[m - 1].kind == TokKind::kPunct &&
        (toks[m - 1].text == "." || toks[m - 1].text == "->")) {
      const size_t r = IdentBeforeSubscript(toks, m - 1);
      if (r != kNoTok) *receiver = toks[r].text;
    }
    return true;
  }

  static constexpr size_t kNoTok = static_cast<size_t>(-1);

  /// Index of the identifier ending the expression whose last token is
  /// toks[end - 1], looking through one balanced subscript:
  /// `words[i * 4]` -> the `words` token. kNoTok if the shape is anything
  /// else.
  static size_t IdentBeforeSubscript(const std::vector<Token>& toks,
                                     size_t end) {
    size_t j = end;
    if (j >= 2 && toks[j - 1].kind == TokKind::kPunct &&
        toks[j - 1].text == "]") {
      int depth = 0;
      while (j > 0) {
        const Token& t = toks[j - 1];
        if (t.kind == TokKind::kPunct) {
          if (t.text == "]") ++depth;
          if (t.text == "[" && --depth == 0) {
            --j;
            break;
          }
        }
        --j;
      }
    }
    if (j >= 1 && toks[j - 1].kind == TokKind::kIdent) return j - 1;
    return kNoTok;
  }

  void CheckRelaxed(const FileModel& fm) {
    const std::vector<Token>& toks = fm.lex.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent || t.text != "memory_order_relaxed") {
        continue;
      }
      if (site_ok_.count(t.line) > 0) continue;
      std::string receiver, member, op;
      if (CallContext(toks, i, &receiver, &member, &op)) {
        const FunctionDecl* fn = EnclosingFunction(fm, i);
        const FieldDecl* f = ResolveFieldRef(
            tree_, fn, fn != nullptr ? fn->qualifier : "", receiver, member);
        if (f != nullptr && FieldAllowsRelaxed(*f)) continue;
        // A local atomic (incl. a reference parameter): the discipline
        // macros attach to field/global declarations, so locals are out of
        // scope — the declaring function owns their ordering story.
        if (f == nullptr && fn != nullptr && receiver.empty() &&
            fn->local_types.count(member) > 0) {
          continue;
        }
        Report(fm, t.line, "relaxed-unannotated",
               f != nullptr
                   ? "relaxed " + op + " of '" + f->owner +
                         (f->owner.empty() ? "" : "::") + f->name +
                         "' which has no BPW_RELAXED_OK / publication / "
                         "capability annotation"
                   : "relaxed " + op + " of '" + member +
                         "' which resolves to no annotated field; annotate "
                         "the field or mark the site BPW_RELAXED_OK(reason)");
        continue;
      }
      Report(fm, t.line, "relaxed-unannotated",
             "memory_order_relaxed at a site the analyzer cannot attribute "
             "to an annotated field; mark the site BPW_RELAXED_OK(reason)");
    }
  }

  /// True if `fn`'s body publishes `stamp` with release-or-stronger
  /// semantics (explicit release order, default-seq_cst store/RMW, or any
  /// compare_exchange claim).
  bool HasReleasePublish(const FileModel& fm, const FunctionDecl& fn,
                         const FieldDecl* stamp) const {
    return ScanStampOps(fm, fn, stamp, /*want_release=*/true);
  }

  bool HasAcquireObserve(const FileModel& fm, const FunctionDecl& fn,
                         const FieldDecl* stamp) const {
    if (ScanStampOps(fm, fn, stamp, /*want_release=*/false)) return true;
    // An explicit acquire fence in the body also orders the payload reads.
    const std::vector<Token>& toks = fm.lex.tokens;
    for (size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
      if (toks[i].kind == TokKind::kIdent &&
          toks[i].text == "atomic_thread_fence") {
        for (size_t j = i + 1; j < fn.body_end && j < i + 8; ++j) {
          if (toks[j].kind == TokKind::kIdent &&
              IsAcquireOrder(toks[j].text)) {
            return true;
          }
        }
      }
    }
    return false;
  }

  bool ScanStampOps(const FileModel& fm, const FunctionDecl& fn,
                    const FieldDecl* stamp, bool want_release) const {
    const std::vector<Token>& toks = fm.lex.tokens;
    for (size_t i = fn.body_begin; i + 2 < fn.body_end; ++i) {
      if (toks[i].kind != TokKind::kIdent || toks[i].text != stamp->name) {
        continue;
      }
      std::string receiver;
      if (i >= 2 && toks[i - 1].kind == TokKind::kPunct &&
          (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
          toks[i - 2].kind == TokKind::kIdent) {
        receiver = toks[i - 2].text;
      }
      const FieldDecl* f =
          ResolveFieldRef(tree_, &fn, fn.qualifier, receiver, stamp->name);
      if (f != stamp) continue;
      if (toks[i + 1].kind != TokKind::kPunct ||
          (toks[i + 1].text != "." && toks[i + 1].text != "->")) {
        continue;
      }
      const std::string& op = toks[i + 2].text;
      if (IsCasOp(op)) return true;  // claim/publish RMW, >= acq_rel here
      const bool relevant = want_release ? IsStoreOp(op) : op == "load";
      if (!relevant) continue;
      // Inspect the call's order argument; none means seq_cst.
      bool explicit_order = false;
      bool strong_enough = false;
      if (i + 3 < fn.body_end && toks[i + 3].kind == TokKind::kPunct &&
          toks[i + 3].text == "(") {
        int depth = 0;
        for (size_t j = i + 3; j < fn.body_end; ++j) {
          if (toks[j].kind == TokKind::kPunct) {
            if (toks[j].text == "(") ++depth;
            if (toks[j].text == ")" && --depth == 0) break;
          }
          if (toks[j].kind == TokKind::kIdent &&
              toks[j].text.rfind("memory_order_", 0) == 0) {
            explicit_order = true;
            strong_enough = want_release ? IsReleaseOrder(toks[j].text)
                                         : IsAcquireOrder(toks[j].text);
          }
        }
      }
      if (!explicit_order || strong_enough) return true;
    }
    return false;
  }

  int CountStampLoads(const FileModel& fm, const FunctionDecl& fn,
                      const FieldDecl* stamp) const {
    const std::vector<Token>& toks = fm.lex.tokens;
    int loads = 0;
    for (size_t i = fn.body_begin; i + 2 < fn.body_end; ++i) {
      if (toks[i].kind != TokKind::kIdent || toks[i].text != stamp->name) {
        continue;
      }
      if (toks[i + 1].kind == TokKind::kPunct &&
          (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
          toks[i + 2].kind == TokKind::kIdent &&
          (toks[i + 2].text == "load" || IsCasOp(toks[i + 2].text))) {
        ++loads;
      }
    }
    return loads;
  }

  bool HasOddTest(const FileModel& fm, const FunctionDecl& fn) const {
    const std::vector<Token>& toks = fm.lex.tokens;
    for (size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
      // `& 1` with any integer suffix (`1u`, `1UL`) counts.
      const std::string& num = toks[i + 1].text;
      const bool is_one = !num.empty() && num[0] == '1' &&
                          num.find_first_not_of("uUlL", 1) == std::string::npos;
      if (toks[i].kind == TokKind::kPunct && toks[i].text == "&" &&
          toks[i + 1].kind == TokKind::kNumber && is_one &&
          i > fn.body_begin &&
          (toks[i - 1].kind == TokKind::kIdent ||
           (toks[i - 1].kind == TokKind::kPunct && toks[i - 1].text == ")"))) {
        return true;
      }
    }
    return false;
  }

  void CheckPublication(const FileModel& fm) {
    if (payload_stamp_.empty()) return;
    const std::vector<Token>& toks = fm.lex.tokens;
    for (const FunctionDecl& fn : fm.functions) {
      if (!fn.has_body) continue;
      // stamp -> usage of its payload inside this function
      std::map<const FieldDecl*, PayloadUse> uses;
      for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
        const Token& t = toks[i];
        if (t.kind != TokKind::kIdent) continue;
        auto range = payload_by_name_.equal_range(t.text);
        if (range.first == range.second) continue;
        std::string receiver;
        if (i >= 2 && toks[i - 1].kind == TokKind::kPunct &&
            (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
            toks[i - 2].kind == TokKind::kIdent) {
          receiver = toks[i - 2].text;
        }
        const FieldDecl* f =
            ResolveFieldRef(tree_, &fn, fn.qualifier, receiver, t.text);
        auto ps = payload_stamp_.find(f);
        if (ps == payload_stamp_.end()) continue;
        const bool write = ClassifyWrite(toks, i, fn.body_end);
        PayloadUse& use = uses[ps->second];
        use.field_name = f->name;
        if (write && use.first_write_line == 0) use.first_write_line = t.line;
        if (!write && use.first_read_line == 0) use.first_read_line = t.line;
      }
      for (const auto& entry : uses) {
        const FieldDecl* stamp = entry.first;
        const PayloadUse& use = entry.second;
        if (use.first_write_line != 0 &&
            !HasReleasePublish(fm, fn, stamp)) {
          Report(fm, use.first_write_line, "relaxed-publication-store",
                 fn.qualified + " writes published payload '" +
                     use.field_name +
                     "' but never publishes stamp '" + stamp->name +
                     "' with a release-or-stronger store");
        }
        if (use.first_read_line != 0) {
          if (!HasAcquireObserve(fm, fn, stamp)) {
            Report(fm, use.first_read_line, "unordered-publication-read",
                   fn.qualified + " reads published payload '" +
                       use.field_name + "' without an acquire-or-stronger "
                       "load of stamp '" + stamp->name + "'");
          } else if (seqlock_stamps_.count(stamp) > 0) {
            const int loads = CountStampLoads(fm, fn, stamp);
            const bool odd = HasOddTest(fm, fn);
            if (loads < 2 || !odd) {
              Report(fm, use.first_read_line, "torn-seqlock-read",
                     fn.qualified + " reads seqlock payload '" +
                         use.field_name + "' without the full seqlock "
                         "shape (needs >= 2 loads of '" + stamp->name +
                         "' and an odd-test re-check; saw " +
                         std::to_string(loads) + " load(s), odd-test " +
                         (odd ? "present" : "missing") + ")");
            }
          }
        }
      }
    }
  }

  /// Is the payload access at token i a write?
  bool ClassifyWrite(const std::vector<Token>& toks, size_t i,
                     size_t end) const {
    size_t j = i + 1;
    // Skip subscripts: entries[k] = ...
    while (j < end && toks[j].kind == TokKind::kPunct && toks[j].text == "[") {
      int depth = 0;
      for (; j < end; ++j) {
        if (toks[j].kind != TokKind::kPunct) continue;
        if (toks[j].text == "[") ++depth;
        if (toks[j].text == "]" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    if (j >= end || toks[j].kind != TokKind::kPunct) return false;
    if (toks[j].text == "." || toks[j].text == "->") {
      return j + 1 < end && toks[j + 1].kind == TokKind::kIdent &&
             IsMutatingCall(toks[j + 1].text);
    }
    if (toks[j].text == "=") {
      // '==' lexes as two '=' puncts; '<=' '>=' '!=' put theirs first.
      const bool eq_after = j + 1 < end &&
                            toks[j + 1].kind == TokKind::kPunct &&
                            toks[j + 1].text == "=";
      const bool cmp_before =
          toks[j - 1].kind == TokKind::kPunct &&
          (toks[j - 1].text == "=" || toks[j - 1].text == "!" ||
           toks[j - 1].text == "<" || toks[j - 1].text == ">");
      return !eq_after && !cmp_before;
    }
    // Compound assignment: += -= |= &= ^=
    if ((toks[j].text == "+" || toks[j].text == "-" || toks[j].text == "|" ||
         toks[j].text == "&" || toks[j].text == "^") &&
        j + 1 < end && toks[j + 1].kind == TokKind::kPunct &&
        toks[j + 1].text == "=") {
      return true;
    }
    // ++/--
    if ((toks[j].text == "+" || toks[j].text == "-") && j + 1 < end &&
        toks[j + 1].kind == TokKind::kPunct &&
        toks[j + 1].text == toks[j].text) {
      return true;
    }
    return false;
  }

  void CheckMcAccess(const FileModel& fm) {
    const std::vector<Token>& toks = fm.lex.tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent ||
          (t.text != "BPW_MC_ACCESS_READ" && t.text != "BPW_MC_ACCESS_WRITE")) {
        continue;
      }
      if (toks[i + 1].kind != TokKind::kPunct || toks[i + 1].text != "(") {
        continue;
      }
      // Second macro argument: the watched object expression.
      int depth = 0;
      size_t arg_begin = 0;
      size_t close = i + 1;
      for (size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].kind != TokKind::kPunct) continue;
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == "," && depth == 1 && arg_begin == 0) {
          arg_begin = j + 1;
        }
        if (toks[j].text == ")" && --depth == 0) {
          close = j;
          break;
        }
      }
      if (arg_begin == 0 || arg_begin >= close) continue;
      std::string member, receiver;
      bool prev_sep = false;
      for (size_t j = arg_begin; j < close; ++j) {
        if (toks[j].kind == TokKind::kPunct) {
          prev_sep = toks[j].text == "." || toks[j].text == "->";
          continue;
        }
        if (toks[j].kind == TokKind::kIdent) {
          receiver = prev_sep ? member : "";
          member = toks[j].text;
          prev_sep = false;
        }
      }
      if (member.empty()) continue;
      // `this` names the whole object whose discipline is declared on its
      // fields at their own access sites; nothing further to check here.
      if (member == "this") continue;
      const FunctionDecl* fn = EnclosingFunction(fm, i);
      // A whole object passed by name (e.g. `&pub` with `PubSlot& pub` in
      // scope) is checked type-wide below; a local must never fall through
      // to field-name resolution, which it would shadow.
      std::string type_name;
      if (fn != nullptr && receiver.empty()) {
        auto lt = fn->local_types.find(member);
        if (lt != fn->local_types.end()) type_name = lt->second;
      }
      const FieldDecl* f =
          type_name.empty()
              ? ResolveFieldRef(tree_, fn,
                                fn != nullptr ? fn->qualifier : "", receiver,
                                member)
              : nullptr;
      if (f != nullptr) {
        if (!FieldHasConcurrencyAnnotation(*f)) {
          Report(fm, t.line, "mc-access-unannotated",
                 "race certifier watches '" + f->owner +
                     (f->owner.empty() ? "" : "::") + f->name +
                     "' but the field has no capability or publication "
                     "annotation");
        }
        continue;
      }
      // Whole-object case: require every field of its type to carry an
      // annotation.
      bool checked = false;
      if (!type_name.empty()) {
        auto range = tree_.types_by_name.equal_range(type_name);
        for (auto it = range.first; it != range.second; ++it) {
          checked = true;
          for (const FieldDecl& tf : it->second->fields) {
            if (!FieldHasConcurrencyAnnotation(tf)) {
              Report(fm, t.line, "mc-access-unannotated",
                     "race certifier watches a " + type_name + " but field '" +
                         tf.name + "' has no capability or publication "
                         "annotation");
            }
          }
          break;
        }
      }
      if (!checked) {
        Report(fm, t.line, "mc-access-unannotated",
               "race certifier watches '" + member +
                   "' which resolves to no annotated field or known type");
      }
    }
  }

  const TreeModel& tree_;
  const AtomicsOptions& opts_;
  std::vector<Finding> findings_;
  std::map<const FieldDecl*, const FieldDecl*> payload_stamp_;
  std::multimap<std::string, const FieldDecl*> payload_by_name_;
  std::set<const FieldDecl*> seqlock_stamps_;
  std::set<int> site_ok_;
};

}  // namespace

std::vector<Finding> CheckAtomics(const TreeModel& tree,
                                  const AtomicsOptions& opts) {
  return Checker(tree, opts).Run();
}

}  // namespace analysis
}  // namespace bpw
