// Member-reference resolution shared by the checkers: maps a
// `receiver.member` access observed in a function body to the FieldDecl
// it names, using the function's local-variable types first, then the
// enclosing class, then a unique whole-tree match.
#pragma once

#include <string>
#include <vector>

#include "analysis/scope_graph.h"

namespace bpw {
namespace analysis {

/// Splits "a.b" / "a->b" / "b" into receiver ("a" or "") + member ("b").
struct MemberRef {
  std::string receiver;
  std::string member;
};

inline MemberRef SplitMemberText(const std::string& text) {
  MemberRef ref;
  size_t dot = text.rfind('.');
  const size_t arrow = text.rfind("->");
  size_t cut = std::string::npos;
  size_t skip = 1;
  if (dot != std::string::npos) cut = dot;
  if (arrow != std::string::npos &&
      (cut == std::string::npos || arrow > cut)) {
    cut = arrow;
    skip = 2;
  }
  if (cut == std::string::npos) {
    ref.member = text;
    return ref;
  }
  ref.member = text.substr(cut + skip);
  // Receiver: trailing identifier before the separator (drop subscripts
  // and call chains — an unresolvable receiver just weakens resolution).
  size_t end = cut;
  size_t begin = end;
  while (begin > 0) {
    const char c = text[begin - 1];
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '_') {
      --begin;
    } else {
      break;
    }
  }
  if (begin < end && begin == 0) ref.receiver = text.substr(begin, end - begin);
  if (begin < end && begin > 0) {
    // Only trust the receiver when the full prefix is that identifier
    // (so `shards_[i].lock` does not pretend its receiver is `i`).
    ref.receiver = "";
  }
  return ref;
}

/// Looks for `member` among the fields of any type named inside
/// `type_text` (right-to-left, so the element type of `vector<Node>` or
/// `unique_ptr<ProfCell[]>` wins over the container template). Prefers a
/// type nested in `context_class` when several share a name.
inline const FieldDecl* FindMemberOfTypeText(const TreeModel& tree,
                                             const std::string& context_class,
                                             const std::string& type_text,
                                             const std::string& member) {
  std::vector<std::string> idents;
  std::string cur;
  for (char c : type_text) {
    const bool ident_char = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '_';
    if (ident_char) {
      cur += c;
    } else if (!cur.empty()) {
      idents.push_back(cur);
      cur.clear();
    }
  }
  if (!cur.empty()) idents.push_back(cur);
  for (auto it = idents.rbegin(); it != idents.rend(); ++it) {
    auto range = tree.types_by_name.equal_range(*it);
    const FieldDecl* any = nullptr;
    for (auto t = range.first; t != range.second; ++t) {
      for (const FieldDecl& f : t->second->fields) {
        if (f.name != member) continue;
        if (!context_class.empty() &&
            t->second->qualified.rfind(context_class + "::", 0) == 0) {
          return &f;
        }
        if (any == nullptr) any = &f;
      }
    }
    if (any != nullptr) return any;
  }
  return nullptr;
}

/// Resolves `receiver.member` from inside `fn` (fn may be nullptr for
/// annotation args resolved in a bare class context `context_class`).
inline const FieldDecl* ResolveFieldRef(const TreeModel& tree,
                                        const FunctionDecl* fn,
                                        const std::string& context_class,
                                        const std::string& receiver,
                                        const std::string& member) {
  if (member.empty()) return nullptr;
  if (fn != nullptr) {
    if (!receiver.empty() && receiver != "this") {
      auto it = fn->local_types.find(receiver);
      if (it != fn->local_types.end()) {
        auto range = tree.types_by_name.equal_range(it->second);
        // Same-named types are common (every policy has a Node): prefer
        // the one nested in the enclosing class over an arbitrary match.
        const FieldDecl* any = nullptr;
        for (auto t = range.first; t != range.second; ++t) {
          for (const FieldDecl& f : t->second->fields) {
            if (f.name != member) continue;
            if (!context_class.empty() &&
                t->second->qualified.rfind(context_class + "::", 0) == 0) {
              return &f;
            }
            if (any == nullptr) any = &f;
          }
        }
        if (any != nullptr) return any;
      }
    }
    // The receiver may be a range-for element (`n` over `nodes_`) or a
    // field reached through another field (`path.cells[s]`): resolve the
    // container/receiver as a field, then find `member` in the element
    // type its declared type text names.
    if (!receiver.empty() && receiver != "this" &&
        fn->local_types.count(receiver) == 0) {
      std::string as_field = receiver;
      auto alias = fn->local_aliases.find(receiver);
      if (alias != fn->local_aliases.end()) as_field = alias->second;
      const FieldDecl* rf = tree.ResolveMember(context_class, as_field);
      if (rf != nullptr) {
        const FieldDecl* f =
            FindMemberOfTypeText(tree, context_class, rf->type_text, member);
        if (f != nullptr) return f;
      }
    }
    // A range-for element aliases its container: resolve the container
    // member so the element access inherits that field's annotations.
    if (receiver.empty()) {
      auto alias = fn->local_aliases.find(member);
      if (alias != fn->local_aliases.end() && alias->second != member) {
        return ResolveFieldRef(tree, fn, context_class, "", alias->second);
      }
    }
  }
  // A local/param of the same name shadows any field (ResolveMember's
  // unique-across-the-tree fallback must not see through it).
  if (fn != nullptr && receiver.empty() &&
      fn->local_types.count(member) > 0) {
    return nullptr;
  }
  return tree.ResolveMember(context_class, member);
}

}  // namespace analysis
}  // namespace bpw
