// Interprocedural call graph over the scope graph.
//
// bpw_lint's critical-section rules are line-local: a helper call hides
// an allocation or an unbounded loop from every rule. This layer gives
// the hold-region prover (tools/bpw_holdlint) the call structure it needs
// to close that hole.
//
// Nodes are functions keyed by qualified name (declaration and definition
// join exactly as in TreeModel::function_annotations; overloads share a
// node and their effects merge — a sound over-approximation). Edges come
// from a token scan of every body:
//
//   - `recv.M(` / `recv->M(`: the receiver is typed through the
//     function's locals/params, then the enclosing class's fields (via
//     the declarator text), then `this`. If the named class (or an
//     ancestor) declares M, the call resolves there — and, because calls
//     through the `ReplacementPolicy` / `Coordinator` interfaces dispatch
//     virtually, it fans out to every override of M in types derived from
//     the declaring class (base lists are parsed by the scope graph).
//   - `Scope::M(`: exact qualified lookup, no fan-out.
//   - bare `M(`: a method of the enclosing class (or an ancestor, with
//     virtual fan-out), else a uniquely-named free function, else a known
//     type's constructor.
//   - a call of a local, parameter, or std::function-typed field
//     (`evictable(frame)`, `cb_.on_evict(...)`) is an *indirect call*:
//     the target set is statically unknown, so effect analysis treats it
//     as conservatively may-everything.
//
// Unresolved names (std::, libc, ...) produce no edge; the effect layer
// classifies the known-impure ones (make_unique, push_back, NowNanos, ...)
// by name. The model degrades by omission everywhere except indirect
// calls, which degrade by conservatism — the direction that keeps the
// hold-region proof sound.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/scope_graph.h"

namespace bpw {
namespace analysis {

struct CallEdge {
  size_t callee = 0;  ///< node index
  int line = 0;       ///< 1-based call-site line
  bool virtual_dispatch = false;  ///< a fan-out edge to an override
};

/// A call whose target set is statically unknown (function pointer,
/// std::function, or any callable local/param/field).
struct IndirectCall {
  int line = 0;
  std::string expr;  ///< the called name, for diagnostics
};

struct CallNode {
  std::string qualified;
  /// Every definition of this name that has a body, with its file.
  std::vector<std::pair<const FunctionDecl*, const FileModel*>> defs;
  std::vector<CallEdge> edges;
  std::vector<IndirectCall> indirect_calls;
};

struct CallGraph {
  std::vector<CallNode> nodes;
  std::map<std::string, size_t> index;  ///< qualified name -> node

  const CallNode* Find(const std::string& qualified) const {
    auto it = index.find(qualified);
    return it == index.end() ? nullptr : &nodes[it->second];
  }

  /// Transitively derived type names (qualified) of `base` (matched by
  /// unqualified terminal name, the spelling base lists use).
  std::vector<std::string> TransitiveDerived(const std::string& base) const;

  /// base terminal name -> directly derived qualified type names.
  std::multimap<std::string, std::string> derived;
};

CallGraph BuildCallGraph(const TreeModel& tree);

}  // namespace analysis
}  // namespace bpw
