#include "buffer/partitioned_pool.h"

#include <cassert>

namespace bpw {

PartitionedPool::PartitionedPool(const BufferPoolConfig& config,
                                 size_t num_partitions,
                                 const SystemConfig& system,
                                 StorageEngine* storage) {
  assert(num_partitions > 0);
  num_partitions = std::max<size_t>(1, num_partitions);
  const size_t base = config.num_frames / num_partitions;
  assert(base > 0);
  pools_.reserve(num_partitions);
  for (size_t i = 0; i < num_partitions; ++i) {
    BufferPoolConfig sub_config = config;
    sub_config.num_frames =
        i + 1 == num_partitions ? config.num_frames - base * i : base;
    // Fewer table shards per partition: lookups already spread over
    // partitions.
    sub_config.table_shards = std::max<size_t>(8, config.table_shards / 8);
    auto coordinator = CreateCoordinator(system, sub_config.num_frames);
    assert(coordinator.ok());
    pools_.push_back(std::make_unique<BufferPool>(
        sub_config, storage, std::move(coordinator).value()));
  }
}

std::unique_ptr<PartitionedPool::Session> PartitionedPool::CreateSession() {
  auto session = std::unique_ptr<Session>(new Session());
  session->subs_.reserve(pools_.size());
  for (auto& pool : pools_) {
    session->subs_.push_back(pool->CreateSession());
  }
  return session;
}

StatusOr<PageHandle> PartitionedPool::FetchPage(Session& session,
                                                PageId page) {
  const size_t partition = PartitionFor(page);
  return pools_[partition]->FetchPage(*session.subs_[partition], page);
}

LockStats PartitionedPool::lock_stats() const {
  LockStats total;
  for (const auto& pool : pools_) {
    total += pool->coordinator().lock_stats();
  }
  return total;
}

void PartitionedPool::ResetLockStats() {
  for (auto& pool : pools_) {
    pool->coordinator().ResetLockStats();
  }
}

}  // namespace bpw
