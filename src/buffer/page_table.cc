#include "buffer/page_table.h"

#include <bit>

#include "obs/contention_profiler.h"

namespace bpw {

PageTable::PageTable(size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  num_shards = std::bit_ceil(num_shards);
  shards_ = std::vector<CacheAligned<Shard>>(num_shards);
  shard_mask_ = num_shards - 1;
  // All shard locks share one profiler site: the report answers "how much
  // does the hash table cost", not "which of 128 buckets was unlucky".
  const obs::ProfSiteId site = BPW_PROF_SITE("page_table.shard");
  for (auto& aligned : shards_) {
    aligned->lock.BindProfSite(site);
  }
}

FrameId PageTable::Lookup(PageId page) const {
  const Shard& shard = ShardFor(page);
  SpinLockGuard guard(shard.lock);
  auto it = shard.map.find(page);
  return it == shard.map.end() ? kInvalidFrameId : it->second;
}

bool PageTable::Insert(PageId page, FrameId frame) {
  Shard& shard = ShardFor(page);
  SpinLockGuard guard(shard.lock);
  return shard.map.try_emplace(page, frame).second;
}

bool PageTable::Erase(PageId page, FrameId frame) {
  Shard& shard = ShardFor(page);
  SpinLockGuard guard(shard.lock);
  auto it = shard.map.find(page);
  if (it != shard.map.end() && it->second == frame) {
    shard.map.erase(it);
    return true;
  }
  return false;
}

size_t PageTable::size() const {
  size_t total = 0;
  for (const auto& aligned : shards_) {
    const Shard& shard = *aligned;
    SpinLockGuard guard(shard.lock);
    total += shard.map.size();
  }
  return total;
}

}  // namespace bpw
