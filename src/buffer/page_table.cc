#include "buffer/page_table.h"

#include <bit>

namespace bpw {

PageTable::PageTable(size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  num_shards = std::bit_ceil(num_shards);
  shards_ = std::vector<CacheAligned<Shard>>(num_shards);
  shard_mask_ = num_shards - 1;
}

FrameId PageTable::Lookup(PageId page) const {
  const Shard& shard = ShardFor(page);
  shard.lock.lock();
  auto it = shard.map.find(page);
  const FrameId frame = it == shard.map.end() ? kInvalidFrameId : it->second;
  shard.lock.unlock();
  return frame;
}

bool PageTable::Insert(PageId page, FrameId frame) {
  Shard& shard = ShardFor(page);
  shard.lock.lock();
  const bool inserted = shard.map.try_emplace(page, frame).second;
  shard.lock.unlock();
  return inserted;
}

bool PageTable::Erase(PageId page, FrameId frame) {
  Shard& shard = ShardFor(page);
  shard.lock.lock();
  auto it = shard.map.find(page);
  bool erased = false;
  if (it != shard.map.end() && it->second == frame) {
    shard.map.erase(it);
    erased = true;
  }
  shard.lock.unlock();
  return erased;
}

size_t PageTable::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    shard->lock.lock();
    total += shard->map.size();
    shard->lock.unlock();
  }
  return total;
}

}  // namespace bpw
