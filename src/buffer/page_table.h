// PageTable: the partitioned hash table mapping PageId -> FrameId.
//
// Mirrors the paper's Fig. 1 description of why the hash table is *not* the
// scalability problem: "metadata of buffer pages are evenly distributed
// into hash buckets. One lock for each bucket, instead of a global lock, is
// used" (§II). Each shard has its own spinlock; lookups take one shard lock
// for a few dozen instructions.
#pragma once

#include <unordered_map>
#include <vector>

#include "sync/spinlock.h"
#include "util/cacheline.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace bpw {

class PageTable {
 public:
  /// @param num_shards number of independently-locked partitions; rounded
  ///        up to a power of two. More shards = less lock sharing.
  explicit PageTable(size_t num_shards = 128);

  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  /// Returns the frame caching `page`, or kInvalidFrameId.
  FrameId Lookup(PageId page) const;

  /// Maps `page` to `frame`. Returns false (and changes nothing) if the
  /// page is already mapped.
  bool Insert(PageId page, FrameId frame)
      BPW_HOLD_EFFECT_OK(alloc, "hash-map node insert; the table holds at "
                                "most num_frames live mappings");

  /// Removes the mapping for `page`, but only if it currently points at
  /// `frame` (guards against racing re-insertions). Returns true if
  /// removed.
  bool Erase(PageId page, FrameId frame);

  /// Total mapped pages (approximate under concurrency: sums per-shard
  /// sizes without a global lock).
  size_t size() const;

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    mutable SpinLock lock;
    std::unordered_map<PageId, FrameId> map BPW_GUARDED_BY(lock);
  };

  const Shard& ShardFor(PageId page) const {
    // Multiplicative hash to spread sequential page ids across shards.
    const uint64_t h = page * 0x9E3779B97F4A7C15ULL;
    return *shards_[(h >> 32) & shard_mask_];
  }
  Shard& ShardFor(PageId page) {
    return const_cast<Shard&>(
        static_cast<const PageTable*>(this)->ShardFor(page));
  }

  std::vector<CacheAligned<Shard>> shards_;
  size_t shard_mask_;
};

}  // namespace bpw
