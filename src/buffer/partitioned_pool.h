// PartitionedPool: the distributed-lock baseline of §V-A.
//
// "the buffer is divided into multiple partitions, each of which is
// protected by a local lock. Data pages are evenly distributed into the
// partitions ... through hashing" — the Mr.LRU-style design (hashing keeps
// a page in the same partition across reloads, so list-based policies keep
// working per-partition). The paper's criticism, which our ablation bench
// quantifies: history information is localized per partition, hot pages
// still contend on their partition's lock, and each partition's small size
// hurts policies that need global ordering.
#pragma once

#include <memory>
#include <vector>

#include "buffer/buffer_pool.h"
#include "core/coordinator_factory.h"

namespace bpw {

class PartitionedPool {
 public:
  /// Per-thread session: one sub-session per partition.
  class Session {
   public:
    AccessStats stats() const {
      AccessStats total;
      for (const auto& sub : subs_) {
        total.hits += sub->stats().hits;
        total.misses += sub->stats().misses;
      }
      return total;
    }

   private:
    friend class PartitionedPool;
    std::vector<std::unique_ptr<BufferPool::Session>> subs_;
  };

  /// Builds `num_partitions` sub-pools of num_frames/num_partitions frames
  /// each, every one running `config.policy` under a *serialized*
  /// coordinator with its own (partition-local) lock.
  /// The last partition absorbs the rounding remainder.
  PartitionedPool(const BufferPoolConfig& config, size_t num_partitions,
                  const SystemConfig& system, StorageEngine* storage);

  std::unique_ptr<Session> CreateSession();

  StatusOr<PageHandle> FetchPage(Session& session, PageId page);

  /// Sums the partition locks' statistics.
  LockStats lock_stats() const;
  void ResetLockStats();

  size_t num_partitions() const { return pools_.size(); }
  BufferPool& partition(size_t i) { return *pools_[i]; }

 private:
  size_t PartitionFor(PageId page) const {
    // Same multiplicative hash family as the page table, different stream.
    return (page * 0xC2B2AE3D27D4EB4FULL >> 33) % pools_.size();
  }

  std::vector<std::unique_ptr<BufferPool>> pools_;
};

}  // namespace bpw
