// BufferPool: the buffer manager of Fig. 1/3 in the paper.
//
// Layout per page request (paper §II):
//   1. look up the partitioned hash table (scalable, per-bucket locks);
//   2. on a hit, pin the frame and report the access to the Coordinator —
//      which is where the paper's lock either does or does not get taken;
//   3. on a miss, pick a victim through the Coordinator, write it back if
//      dirty, read the new page from storage, publish the mapping.
//
// Concurrency design:
//   - Each frame has a small latch guarding (tag, pin, io_busy) transitions;
//     held only for a handful of instructions.
//   - A miss is "single-flight": concurrent faults on the same page wait on
//     a condition variable instead of issuing duplicate I/O.
//   - The frame tag array is atomic and shared with the Coordinator so
//     BP-Wrapper can re-validate queued accesses at commit time (§IV-B).
#pragma once

#include <condition_variable>
#include <memory>
#include <unordered_set>
#include <vector>

#include "buffer/page_table.h"
#include "core/coordinator.h"
#include "obs/metrics.h"
#include "storage/storage_engine.h"
#include "sync/mutex.h"
#include "sync/spinlock.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace bpw {

class BufferPool;

/// RAII pin on a buffer page. While a handle is live the page cannot be
/// evicted. Move-only.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  ~PageHandle();

  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageId page() const { return page_; }
  FrameId frame() const { return frame_; }

  /// The frame's data (page_size bytes). Writable; call MarkDirty() after
  /// modifying so the pool writes the page back before eviction.
  uint8_t* data() const { return data_; }

  /// Marks the page dirty; it will be written back on eviction/flush.
  void MarkDirty();

  /// Releases the pin early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, PageId page, FrameId frame, uint8_t* data)
      : pool_(pool), page_(page), frame_(frame), data_(data) {}

  BufferPool* pool_ = nullptr;
  PageId page_ = kInvalidPageId;
  FrameId frame_ = kInvalidFrameId;
  uint8_t* data_ = nullptr;
};

/// Counters a worker accumulates locally (merged by the driver).
struct AccessStats {
  uint64_t hits = 0;
  uint64_t misses = 0;

  uint64_t accesses() const { return hits + misses; }
  double hit_ratio() const {
    const uint64_t total = accesses();
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

struct BufferPoolConfig {
  size_t num_frames = 1024;
  size_t page_size = kDefaultPageSize;
  size_t table_shards = 128;
  /// Maximum ChooseVictim retries when races invalidate the chosen victim
  /// before giving the scheduler a chance to run.
  int eviction_retries = 64;
  /// MUTATION KNOB — tests only. Skips the eviction-time re-validation that
  /// a chosen victim is still unpinned and still holds the selected page.
  /// This deliberately re-introduces the race the re-validation exists to
  /// close, so the stress harness's mutation self-test can prove it detects
  /// the resulting corruption (tests/stress/mutation_test.cc).
  bool test_skip_victim_revalidation = false;
};

class BufferPool {
 public:
  /// A per-worker-thread session: wraps the coordinator's thread slot and
  /// local hit/miss counters. Create one per thread via CreateSession().
  class Session {
   public:
    const AccessStats& stats() const { return stats_; }
    void ResetStats() { stats_ = AccessStats{}; }

    /// The coordinator slot backing this session, for
    /// Coordinator::SlotStateFingerprint (model-checker state dedup).
    const Coordinator::ThreadSlot* slot() const { return slot_.get(); }

   private:
    friend class BufferPool;
    explicit Session(std::unique_ptr<Coordinator::ThreadSlot> slot)
        : slot_(std::move(slot)) {}
    std::unique_ptr<Coordinator::ThreadSlot> slot_;
    AccessStats stats_;
  };

  /// @param coordinator owns the replacement policy; the pool binds its
  ///        frame-tag array into it for commit-time re-validation.
  BufferPool(const BufferPoolConfig& config, StorageEngine* storage,
             std::unique_ptr<Coordinator> coordinator)
      BPW_HOLD_EFFECT_OK(alloc, "frame-table construction; the pool is "
                                "single-threaded until the ctor returns");
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Registers the calling thread.
  std::unique_ptr<Session> CreateSession();

  /// Fetches `page`, reading it from storage on a miss, and returns a
  /// pinned handle.
  StatusOr<PageHandle> FetchPage(Session& session, PageId page)
      BPW_HOLD_EFFECT_OK(alloc, "free-list push_back into capacity reserved "
                                "for num_frames at construction");

  /// Drops `page` from the buffer (invalidation). Fails with
  /// FailedPrecondition if the page is pinned. The page is NOT written
  /// back: callers invalidating a page are discarding its contents.
  Status DropPage(Session& session, PageId page)
      BPW_HOLD_EFFECT_OK(alloc, "free-list push_back into capacity reserved "
                                "for num_frames at construction");

  /// Writes back every dirty page (quiesced callers only).
  Status FlushAll();

  /// Commits any accesses buffered in this session's BP-Wrapper queue.
  void FlushSession(Session& session);

  /// Pre-loads `pages` sequentially (warm-up helper for experiments).
  Status Prewarm(Session& session, PageId first_page, uint64_t count);

  Coordinator& coordinator() { return *coordinator_; }
  const Coordinator& coordinator() const { return *coordinator_; }
  StorageEngine& storage() { return *storage_; }
  size_t num_frames() const { return config_.num_frames; }
  size_t page_size() const { return config_.page_size; }

  /// Pool-wide miss-path counters.
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t writebacks() const {
    return writebacks_.load(std::memory_order_relaxed);
  }
  /// Times a chosen victim had to be re-registered because it was pinned
  /// between selection and latching (rare race; see EvictOne).
  uint64_t eviction_races() const {
    return eviction_races_.load(std::memory_order_relaxed);
  }
  /// Write-backs whose storage write failed (the page's last version is
  /// reported lost; with fault injection every lost update must be covered
  /// by this counter plus the injector's torn-write count).
  uint64_t writeback_failures() const {
    return writeback_failures_.load(std::memory_order_relaxed);
  }

  /// Structural integrity check for tests: table/tag/policy agreement.
  Status CheckIntegrity();

  /// Structural fingerprint of (frame tags, pins, dirty/io flags, free list,
  /// pending loads) for the model checker's visited-state dedup. Quiesced
  /// callers only (the cooperative scheduler holds every worker parked while
  /// fingerprinting); deliberately pointer-free so identical logical states
  /// from different executions collide.
  uint64_t StateFingerprint() const BPW_NO_THREAD_SAFETY_ANALYSIS;

 private:
  friend class PageHandle;

  struct FrameMeta {
    SpinLock latch;
    // Transitions happen under the latch; atomics allow the policy's
    // evictability probe and Unpin to read/update without it. Relaxed is
    // deliberate there: a stale probe answer only costs a retry, and the
    // latch orders every transition that matters.
    std::atomic<uint32_t> pin_count{0} BPW_RELAXED_OK(
        "latch orders transitions; lock-free probes tolerate staleness");
    std::atomic<bool> dirty{false} BPW_RELAXED_OK(
        "latch orders transitions; lock-free probes tolerate staleness");
    std::atomic<bool> io_busy{false} BPW_RELAXED_OK(
        "latch orders transitions; lock-free probes tolerate staleness");
  };

  uint8_t* FrameData(FrameId frame) {
    return buffer_.data() + static_cast<size_t>(frame) * config_.page_size;
  }
  PageId FrameTag(FrameId frame) const {
    return frame_tags_[frame].load(std::memory_order_acquire);
  }

  /// Attempts to pin `frame` expecting it to hold `page`. Returns false if
  /// the frame moved on (caller retries the whole fetch).
  bool TryPin(FrameId frame, PageId page);

  void Unpin(FrameId frame, bool mark_dirty);

  /// Obtains a clean, unmapped frame: from the free list, or by evicting.
  StatusOr<FrameId> AcquireFrame(Session& session, PageId incoming);

  /// Single-flight guard around the miss path.
  bool BeginLoad(PageId page);   // true if this thread owns the load
  void FinishLoad(PageId page);  // wakes waiters

  BufferPoolConfig config_;
  StorageEngine* storage_;
  std::unique_ptr<Coordinator> coordinator_;

  PageTable table_;
  std::vector<uint8_t> buffer_;
  std::vector<FrameMeta> frames_;
  // Published by release-store in the mapping path, acquire-loaded by
  // readers (FrameTag); the single relaxed use is the pre-table-insert
  // construction fill, where no reader exists yet.
  std::vector<std::atomic<PageId>> frame_tags_ BPW_RELAXED_OK(
      "relaxed only before publication (construction fill)");

  SpinLock free_lock_;
  std::vector<FrameId> free_frames_ BPW_GUARDED_BY(free_lock_);

  // Single-flight miss tracking. condition_variable_any (not _variable)
  // because it waits on the annotated bpw::Mutex directly, keeping the
  // guarded_by relation visible to the thread-safety analysis.
  Mutex pending_mu_;
  std::condition_variable_any pending_cv_;
  std::unordered_set<PageId> pending_loads_ BPW_GUARDED_BY(pending_mu_);

  std::atomic<uint64_t> evictions_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> writebacks_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> eviction_races_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> writeback_failures_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<bool> writeback_failure_logged_{false};

  // Registry counters (sharded; owned by the registry). Hits and misses are
  // only tallied per-session otherwise, so these give the sampler a pool-
  // wide live view.
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_evictions_ = nullptr;
  obs::Counter* metric_writebacks_ = nullptr;
  // Declared last so it unregisters before anything it reads is destroyed.
  obs::ScopedMetricSource metrics_source_;
};

}  // namespace bpw
