#include "buffer/buffer_pool.h"

#include <thread>

#include "obs/contention_profiler.h"
#include "obs/trace_recorder.h"
#include "testing/schedule_point.h"
#include "util/clock.h"
#include "util/fingerprint.h"
#include "util/logging.h"

namespace bpw {

// ---------------------------------------------------------------- PageHandle

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    page_ = other.page_;
    frame_ = other.frame_;
    data_ = other.data_;
    other.pool_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::MarkDirty() {
  if (pool_ != nullptr) {
    pool_->frames_[frame_].dirty.store(true, std::memory_order_release);
  }
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, /*mark_dirty=*/false);
    pool_ = nullptr;
  }
}

// ---------------------------------------------------------------- BufferPool

BufferPool::BufferPool(const BufferPoolConfig& config, StorageEngine* storage,
                       std::unique_ptr<Coordinator> coordinator)
    : config_(config),
      storage_(storage),
      coordinator_(std::move(coordinator)),
      table_(config.table_shards),
      buffer_(config.num_frames * config.page_size),
      frames_(config.num_frames),
      frame_tags_(config.num_frames) {
  for (auto& tag : frame_tags_) {
    tag.store(kInvalidPageId, std::memory_order_relaxed);
  }
  {
    // Construction is single-threaded; the guard exists for the analysis
    // (free_frames_ is guarded_by free_lock_) and costs one uncontended
    // lock round-trip.
    SpinLockGuard guard(free_lock_);
    free_frames_.reserve(config_.num_frames);
    // Hand frames out in ascending order (pop_back takes the highest first;
    // order is irrelevant for correctness).
    for (size_t i = config_.num_frames; i-- > 0;) {
      free_frames_.push_back(static_cast<FrameId>(i));
    }
  }
  coordinator_->BindFrameTags(frame_tags_.data(), frame_tags_.size());

  free_lock_.BindProfSite(BPW_PROF_SITE("pool.free_list"));
  // One site for every frame latch: per-frame attribution would be noise,
  // the interesting number is the latch layer's aggregate cost.
  const obs::ProfSiteId latch_site = BPW_PROF_SITE("pool.frame_latch");
  for (auto& meta : frames_) {
    meta.latch.BindProfSite(latch_site);
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  metric_hits_ = registry.GetCounter("buffer.hits");
  metric_misses_ = registry.GetCounter("buffer.misses");
  metric_evictions_ = registry.GetCounter("buffer.evictions");
  metric_writebacks_ = registry.GetCounter("buffer.writebacks");
  metrics_source_ = obs::ScopedMetricSource(
      &registry, [this](obs::MetricsSnapshot& snap) {
        snap.Add("buffer.num_frames",
                 static_cast<double>(config_.num_frames));
        size_t free_count = 0;
        {
          SpinLockGuard guard(free_lock_);
          free_count = free_frames_.size();
        }
        snap.Add("buffer.free_frames", static_cast<double>(free_count));
        snap.Add("buffer.eviction_races",
                 static_cast<double>(eviction_races()));
      });
}

BufferPool::~BufferPool() = default;

std::unique_ptr<BufferPool::Session> BufferPool::CreateSession() {
  return std::unique_ptr<Session>(
      new Session(coordinator_->RegisterThread()));
}

bool BufferPool::TryPin(FrameId frame, PageId page) {
  // Window between the table lookup and the latch: the frame can be evicted
  // and re-used for another page in here.
  BPW_SCHEDULE_POINT("pool.try_pin");
  FrameMeta& meta = frames_[frame];
  SpinLockGuard guard(meta.latch);
  const bool ok = FrameTag(frame) == page &&
                  !meta.io_busy.load(std::memory_order_relaxed);
  if (ok) {
    meta.pin_count.fetch_add(1, std::memory_order_relaxed);
  }
  return ok;
}

void BufferPool::Unpin(FrameId frame, bool mark_dirty) {
  BPW_SCHEDULE_POINT("pool.unpin");
  FrameMeta& meta = frames_[frame];
  if (mark_dirty) {
    meta.dirty.store(true, std::memory_order_release);
  }
  meta.pin_count.fetch_sub(1, std::memory_order_release);
}

bool BufferPool::BeginLoad(PageId page) {
  MutexGuard lock(pending_mu_);
  if (!pending_loads_.contains(page)) {
    pending_loads_.insert(page);
    return true;
  }
  // Explicit wait loop (not the predicate overload): the predicate lambda
  // would be analyzed with an empty capability set even though the wait
  // machinery holds pending_mu_ around every evaluation.
  while (pending_loads_.contains(page)) {
#if BPW_SCHEDULE_POINTS
    // Cooperative bridge for the model checker: a worker must not block in
    // the OS under a one-thread-at-a-time scheduler. PrepareWait registers
    // the wait while pending_mu_ is still held (so FinishLoad cannot slip
    // between the predicate check and registration); CommitWait parks until
    // a NotifyAll, or returns false when the exploration aborts this
    // execution — then we unwind as "someone else loaded it" and let
    // FetchPage's retry loop (which the scheduler also controls) notice the
    // abort.
    testing::ScheduleController* controller =
        testing::ScheduleController::Current();
    if (controller != nullptr && controller->PrepareWait(&pending_cv_)) {
      pending_mu_.unlock();
      const bool woke = controller->CommitWait(&pending_cv_);
      pending_mu_.lock();
      if (!woke) return false;
      continue;
    }
#endif
    pending_cv_.wait(pending_mu_);
  }
  return false;
}

void BufferPool::FinishLoad(PageId page) {
  {
    MutexGuard lock(pending_mu_);
    pending_loads_.erase(page);
  }
  pending_cv_.notify_all();
#if BPW_SCHEDULE_POINTS
  // Wake cooperative waiters too (the real notify_all above only reaches
  // threads blocked in the OS).
  testing::ScheduleController* controller =
      testing::ScheduleController::Current();
  if (controller != nullptr) controller->NotifyAll(&pending_cv_);
#endif
}

StatusOr<FrameId> BufferPool::AcquireFrame(Session& session,
                                           PageId incoming) {
  // pin_count loads are acquire to pair with Unpin's release decrement:
  // observing 0 must order the previous holder's frame accesses before our
  // write-back / reuse of the frame bytes.
  const Coordinator::EvictableFn evictable = [this](FrameId f) {
    const FrameMeta& meta = frames_[f];
    return meta.pin_count.load(std::memory_order_acquire) == 0 &&
           !meta.io_busy.load(std::memory_order_relaxed);
  };

  for (int attempt = 0;; ++attempt) {
    // Fast path: an unused frame.
    {
      SpinLockGuard guard(free_lock_);
      if (!free_frames_.empty()) {
        const FrameId frame = free_frames_.back();
        free_frames_.pop_back();
        return frame;
      }
    }

    BPW_PROF_PHASE("evict");
    BPW_SCHEDULE_POINT("pool.evict_select");
    auto victim_or = coordinator_->ChooseVictim(session.slot_.get(),
                                                evictable, incoming);
    if (!victim_or.ok()) {
      if (attempt >= config_.eviction_retries) return victim_or.status();
      // Everything evictable was pinned at sweep time; give pin holders a
      // chance to release.
      BPW_SCHEDULE_YIELD("pool.evict_retry");
      continue;
    }
    const Coordinator::Victim victim = victim_or.value();
    FrameMeta& meta = frames_[victim.frame];

    // The classic race window: between the policy detaching the victim and
    // us latching its frame, another thread can pin it.
    BPW_SCHEDULE_POINT("pool.evict_latch");
    meta.latch.lock();
    const bool still_ours =
        config_.test_skip_victim_revalidation ||
        (FrameTag(victim.frame) == victim.page &&
         meta.pin_count.load(std::memory_order_acquire) == 0 &&
         !meta.io_busy.load(std::memory_order_relaxed));
    if (!still_ours) {
      meta.latch.unlock();
      eviction_races_.fetch_add(1, std::memory_order_relaxed);
      // The policy already detached the page but someone pinned it between
      // selection and latching. Re-register it so policy and pool agree,
      // then retry.
      if (FrameTag(victim.frame) == victim.page) {
        coordinator_->CompleteMiss(session.slot_.get(), victim.page,
                                   victim.frame);
      }
      if (attempt >= config_.eviction_retries) {
        return Status::ResourceExhausted(
            "buffer pool: eviction kept racing with pinners");
      }
      // Let the racing pinner (or an aborting drop) release the frame
      // before burning another attempt.
      BPW_SCHEDULE_YIELD("pool.evict_race_retry");
      continue;
    }
    // Block new pins while we drain the frame.
    meta.io_busy.store(true, std::memory_order_relaxed);
    const bool dirty = meta.dirty.load(std::memory_order_relaxed);
    meta.dirty.store(false, std::memory_order_relaxed);
    meta.latch.unlock();

    if (dirty) {
      // The mapping stays in the table during write-back: concurrent
      // fetches of the victim keep failing TryPin (io_busy) instead of
      // re-reading a stale version from storage mid-write.
      BPW_PROF_PHASE("writeback");
      BPW_SCHEDULE_POINT("pool.evict_writeback");
      Status status = storage_->WritePage(victim.page, FrameData(victim.frame));
      if (!status.ok()) {
        // Keep going: the frame is reused. The write is reported lost via
        // the counter (and one log line, not one per failure — fault
        // injection makes failures routine).
        writeback_failures_.fetch_add(1, std::memory_order_relaxed);
        if (!writeback_failure_logged_.exchange(true)) {
          BPW_LOG_ERROR << "write-back of page " << victim.page
                        << " failed: " << status.ToString()
                        << " (further failures counted, not logged)";
        }
      }
      writebacks_.fetch_add(1, std::memory_order_relaxed);
      BPW_METRIC_ADD(metric_writebacks_, 1);
    }

    BPW_SCHEDULE_POINT("pool.evict_publish");
    table_.Erase(victim.page, victim.frame);
    meta.latch.lock();
    frame_tags_[victim.frame].store(kInvalidPageId, std::memory_order_release);
    meta.io_busy.store(false, std::memory_order_relaxed);
    meta.latch.unlock();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    BPW_METRIC_ADD(metric_evictions_, 1);
    if (obs::TraceEnabled()) {
      obs::TraceEmit(obs::TraceEventKind::kEviction, NowNanos(), 0,
                     victim.page);
    }
    return victim.frame;
  }
}

StatusOr<PageHandle> BufferPool::FetchPage(Session& session, PageId page) {
  if (page >= storage_->num_pages()) {
    return Status::InvalidArgument("page id beyond storage");
  }
  // Liveness bound: a mapped frame normally becomes pinnable as soon as its
  // evictor/loader finishes (micro- to milliseconds, so a handful of
  // yields). Orders of magnitude past that means the mapping is wedged —
  // the kind of state fault-injection and mutation testing deliberately
  // produce — and an error beats an unkillable spin loop.
  constexpr int kStuckSpinLimit = 1'000'000;
  for (int spin = 0;; ++spin) {
    if (spin > kStuckSpinLimit) {
      return Status::Internal("page " + std::to_string(page) +
                              " stuck: mapping never became pinnable");
    }
    BPW_SCHEDULE_POINT("pool.fetch_lookup");
    const FrameId frame = table_.Lookup(page);
    if (frame != kInvalidFrameId) {
      if (TryPin(frame, page)) {
        ++session.stats_.hits;
        BPW_METRIC_ADD(metric_hits_, 1);
        coordinator_->OnHit(session.slot_.get(), page, frame);
        return PageHandle(this, page, frame, FrameData(frame));
      }
      // Mapped but mid-eviction or re-used: let the evictor finish.
      BPW_SCHEDULE_YIELD("pool.fetch_busy_retry");
      continue;
    }

    // Miss. Single-flight: only one thread loads a given page.
    if (!BeginLoad(page)) continue;  // someone else loaded it; retry lookup

    // Phase scope for the whole miss resolution; eviction, write-back and
    // the storage read nest under it in the contention report.
    BPW_PROF_PHASE("pool.miss");

    // Re-check under load ownership (the page may have been published
    // between the lookup and BeginLoad).
    if (table_.Lookup(page) != kInvalidFrameId) {
      FinishLoad(page);
      continue;
    }

    auto frame_or = AcquireFrame(session, page);
    if (!frame_or.ok()) {
      FinishLoad(page);
      return frame_or.status();
    }
    const FrameId new_frame = frame_or.value();

    BPW_SCHEDULE_POINT("pool.miss_read");
    Status status = [&] {
      BPW_PROF_PHASE("io_read");
      return storage_->ReadPage(page, FrameData(new_frame));
    }();
    if (!status.ok()) {
      {
        SpinLockGuard guard(free_lock_);
        free_frames_.push_back(new_frame);
      }
      FinishLoad(page);
      return status;
    }

    // Publish: tag + pin first, then the table mapping, then the policy.
    BPW_SCHEDULE_POINT("pool.fetch_publish");
    FrameMeta& meta = frames_[new_frame];
    meta.latch.lock();
    meta.pin_count.store(1, std::memory_order_relaxed);
    meta.dirty.store(false, std::memory_order_relaxed);
    meta.io_busy.store(false, std::memory_order_relaxed);
    frame_tags_[new_frame].store(page, std::memory_order_release);
    meta.latch.unlock();

    if (!table_.Insert(page, new_frame)) {
      // Impossible under single-flight; fail loudly in debug builds.
      BPW_LOG_ERROR << "duplicate mapping for page " << page;
    }
    coordinator_->CompleteMiss(session.slot_.get(), page, new_frame);
    ++session.stats_.misses;
    BPW_METRIC_ADD(metric_misses_, 1);
    FinishLoad(page);
    return PageHandle(this, page, new_frame, FrameData(new_frame));
  }
}

Status BufferPool::DropPage(Session& session, PageId page) {
  BPW_SCHEDULE_POINT("pool.drop");
  const FrameId frame = table_.Lookup(page);
  if (frame == kInvalidFrameId) {
    return Status::NotFound("page not buffered");
  }
  FrameMeta& meta = frames_[frame];
  meta.latch.lock();
  if (FrameTag(frame) != page) {
    meta.latch.unlock();
    return Status::NotFound("page left the buffer concurrently");
  }
  if (meta.pin_count.load(std::memory_order_acquire) != 0) {
    meta.latch.unlock();
    return Status::FailedPrecondition("page is pinned");
  }
  if (meta.io_busy.load(std::memory_order_relaxed)) {
    meta.latch.unlock();
    return Status::FailedPrecondition("page is mid-I/O");
  }
  meta.io_busy.store(true, std::memory_order_relaxed);
  meta.latch.unlock();

  // The policy erase is the commit point, and it must come first: OnErase is
  // a test-and-erase, and a `false` answer means an evictor already detached
  // this page via ChooseVictim and is on its way to the frame. Dropping the
  // mapping anyway would let the page be reloaded while that evictor still
  // holds a stale (page, frame) claim — it would then evict the fresh copy
  // behind the policy's back or re-register a duplicate (ABA). Back off and
  // let the eviction win; the caller sees the same "try again" status as for
  // a pinned page.
  BPW_SCHEDULE_POINT("pool.drop_erase");
  if (!coordinator_->OnErase(session.slot_.get(), page, frame)) {
    meta.latch.lock();
    meta.io_busy.store(false, std::memory_order_relaxed);
    meta.latch.unlock();
    return Status::FailedPrecondition("page is being evicted");
  }

  table_.Erase(page, frame);

  meta.latch.lock();
  frame_tags_[frame].store(kInvalidPageId, std::memory_order_release);
  meta.dirty.store(false, std::memory_order_relaxed);
  meta.io_busy.store(false, std::memory_order_relaxed);
  meta.latch.unlock();

  {
    SpinLockGuard guard(free_lock_);
    free_frames_.push_back(frame);
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  // Error audit: a failed write must leave the page dirty (so a retry can
  // still flush it) and must not stop the sweep — every flushable page gets
  // its chance, and the first error is reported to the caller.
  Status first_error;
  for (FrameId frame = 0; frame < frames_.size(); ++frame) {
    FrameMeta& meta = frames_[frame];
    meta.latch.lock();
    const PageId page = FrameTag(frame);
    if (page == kInvalidPageId ||
        !meta.dirty.load(std::memory_order_relaxed) ||
        meta.io_busy.load(std::memory_order_relaxed)) {
      meta.latch.unlock();
      continue;
    }
    meta.io_busy.store(true, std::memory_order_relaxed);
    meta.dirty.store(false, std::memory_order_relaxed);
    meta.latch.unlock();

    Status status = storage_->WritePage(page, FrameData(frame));
    writebacks_.fetch_add(1, std::memory_order_relaxed);

    meta.latch.lock();
    if (!status.ok()) {
      // Restore dirtiness: the storage write did not happen.
      meta.dirty.store(true, std::memory_order_relaxed);
    }
    meta.io_busy.store(false, std::memory_order_relaxed);
    meta.latch.unlock();
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

void BufferPool::FlushSession(Session& session) {
  coordinator_->FlushSlot(session.slot_.get());
}

Status BufferPool::Prewarm(Session& session, PageId first_page,
                           uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) {
    auto handle = FetchPage(session, first_page + i);
    if (!handle.ok()) return handle.status();
  }
  return Status::OK();
}

uint64_t BufferPool::StateFingerprint() const {
  // Quiesced-by-contract, like CheckIntegrity: the model checker only calls
  // this while every worker is parked at a schedule point, so the lock-free
  // reads below cannot race. Everything hashed is logical state (ids, flags,
  // counts) — never addresses — so the same logical state reached by two
  // different executions produces the same fingerprint.
  Fingerprint fp;
  fp.Combine(frames_.size());
  for (FrameId frame = 0; frame < frames_.size(); ++frame) {
    const FrameMeta& meta = frames_[frame];
    fp.Combine(FrameTag(frame));
    fp.Combine(meta.pin_count.load(std::memory_order_acquire));
    fp.Combine(meta.dirty.load(std::memory_order_relaxed) ? 1 : 0);
    fp.Combine(meta.io_busy.load(std::memory_order_relaxed) ? 1 : 0);
  }
  // The free list is a stack, so its order is part of the state (it decides
  // which frame the next miss takes).
  for (const FrameId frame : free_frames_) fp.Combine(frame);
  for (const PageId page : pending_loads_) fp.CombineUnordered(page);
  return fp.value();
}

Status BufferPool::CheckIntegrity() {
  // Quiesced-only check: no concurrent traffic allowed.
  size_t mapped = 0;
  for (FrameId frame = 0; frame < frames_.size(); ++frame) {
    const FrameMeta& meta = frames_[frame];
    if (meta.pin_count.load(std::memory_order_acquire) != 0) {
      return Status::Corruption("quiesced frame still pinned");
    }
    if (meta.io_busy.load(std::memory_order_relaxed)) {
      return Status::Corruption("quiesced frame still marked io-busy");
    }
    const PageId page = FrameTag(frame);
    if (page == kInvalidPageId) continue;
    ++mapped;
    if (table_.Lookup(page) != frame) {
      return Status::Corruption("frame tag not reflected in page table");
    }
  }
  if (mapped != table_.size()) {
    return Status::Corruption("page table size disagrees with frame tags");
  }
  std::vector<FrameId> free_frames;
  {
    SpinLockGuard guard(free_lock_);
    free_frames = free_frames_;
  }
  std::unordered_set<FrameId> free_set(free_frames.begin(),
                                       free_frames.end());
  if (free_set.size() != free_frames.size()) {
    return Status::Corruption("duplicate frame on the free list");
  }
  for (const FrameId frame : free_frames) {
    if (frame >= frames_.size() || FrameTag(frame) != kInvalidPageId) {
      return Status::Corruption("free-list frame still carries a page tag");
    }
  }
  if (mapped + free_frames.size() != config_.num_frames) {
    return Status::Corruption("mapped + free != total frames");
  }
  // Coordinator-internal conservation checks first (combining publication
  // slots: every published batch applied exactly once; sharded: every
  // mapped page tracked by exactly its home shard). They subsume the
  // resident-count compare below and produce far more specific diagnoses,
  // so a conservation bug must reach its own message, not the generic one.
  Status coord_status = coordinator_->CheckQuiescedInvariants();
  if (!coord_status.ok()) return coord_status;
  // Quiesced by contract (no concurrent traffic), so this thread has
  // exclusive access to the policy without taking the coordinator's lock.
  const ReplacementPolicy& policy = coordinator_->policy();
  policy.AssertExclusiveAccess();
  if (policy.resident_count() != mapped) {
    return Status::Corruption("policy resident count disagrees with pool");
  }
  return policy.CheckInvariants();
}

}  // namespace bpw
