// A small test-and-test-and-set spinlock, used for short fixed-length
// critical sections (page-table buckets) where blocking would cost more
// than the protected work.
#pragma once

#include <atomic>

#include "testing/schedule_point.h"

namespace bpw {

/// TTAS spinlock. Suitable only for critical sections of a few dozen
/// instructions (hash-bucket lookups); longer sections must use
/// ContentionLock.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    BPW_SCHEDULE_POINT("spinlock.lock");
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool try_lock() {
    BPW_SCHEDULE_POINT("spinlock.try_lock");
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace bpw
