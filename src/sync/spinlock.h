// A small test-and-test-and-set spinlock, used for short fixed-length
// critical sections (page-table buckets) where blocking would cost more
// than the protected work.
#pragma once

#include <atomic>

#include "testing/schedule_point.h"
#include "util/thread_annotations.h"

namespace bpw {

/// TTAS spinlock. Suitable only for critical sections of a few dozen
/// instructions (hash-bucket lookups); longer sections must use
/// ContentionLock.
///
/// Annotated as a thread-safety capability; bodies are exempt from the
/// analysis (the documented pattern for lock implementations — the flag is
/// an atomic the analysis cannot track).
class BPW_CAPABILITY("spinlock") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() BPW_ACQUIRE() BPW_NO_THREAD_SAFETY_ANALYSIS {
    BPW_SCHEDULE_POINT_OBJ("spinlock.lock", this);
    // Under the cooperative model checker the caller parks here until the
    // lock model guarantees the exchange below succeeds first try, so the
    // spin loop never busy-waits one-thread-at-a-time.
    BPW_SCHED_LOCK_WILL_ACQUIRE(this, "spinlock.lock");
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) {
        BPW_SCHED_LOCK_ACQUIRED(this, "spinlock.lock");
        return;
      }
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool try_lock() BPW_TRY_ACQUIRE(true) BPW_NO_THREAD_SAFETY_ANALYSIS {
    BPW_SCHEDULE_POINT_OBJ("spinlock.try_lock", this);
    const bool acquired = !flag_.load(std::memory_order_relaxed) &&
                          !flag_.exchange(true, std::memory_order_acquire);
    if (acquired) {
      BPW_SCHED_LOCK_ACQUIRED(this, "spinlock.try_lock");
    } else {
      BPW_SCHED_LOCK_TRY_FAILED(this, "spinlock.try_lock");
    }
    return acquired;
  }

  void unlock() BPW_RELEASE() BPW_NO_THREAD_SAFETY_ANALYSIS {
    flag_.store(false, std::memory_order_release);
    BPW_SCHED_LOCK_RELEASED(this, "spinlock.unlock");
  }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard for SpinLock. std::lock_guard works functionally but is
/// invisible to the thread-safety analysis (std::lock_guard carries no
/// capability annotations), so annotated code uses this guard instead.
class BPW_SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) BPW_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinLockGuard() BPW_RELEASE() { lock_.unlock(); }

  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace bpw
