// A small test-and-test-and-set spinlock, used for short fixed-length
// critical sections (page-table buckets) where blocking would cost more
// than the protected work.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/prof_site.h"
#include "testing/schedule_point.h"
#include "util/clock.h"
#include "util/thread_annotations.h"

namespace bpw {

/// TTAS spinlock. Suitable only for critical sections of a few dozen
/// instructions (hash-bucket lookups); longer sections must use
/// ContentionLock.
///
/// Annotated as a thread-safety capability; bodies are exempt from the
/// analysis (the documented pattern for lock implementations — the flag is
/// an atomic the analysis cannot track).
class BPW_CAPABILITY("spinlock") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() BPW_ACQUIRE() BPW_NO_THREAD_SAFETY_ANALYSIS {
    BPW_SCHEDULE_POINT_OBJ("spinlock.lock", this);
    // Under the cooperative model checker the caller parks here until the
    // lock model guarantees the exchange below succeeds first try, so the
    // spin loop never busy-waits one-thread-at-a-time.
    BPW_SCHED_LOCK_WILL_ACQUIRE(this, "spinlock.lock");
#if BPW_PROF
    // Latched once per acquisition so the waiter enter/exit pair stays
    // balanced if the global flag toggles mid-spin. Unbound or disabled:
    // one relaxed load + compare, then the untimed fast path below.
    const bool prof =
        prof_site_ != obs::kInvalidProfSite && obs::ProfilerEnabled();
    bool contended = false;
    uint64_t wait_start = 0;
#endif
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) {
        BPW_SCHED_LOCK_ACQUIRED(this, "spinlock.lock");
#if BPW_PROF
        if (prof) {
          const uint64_t now = NowNanos();
          if (contended) {
            obs::ProfWaiterExit(prof_site_);
            obs::ProfRecordAcquire(prof_site_, true, now - wait_start);
          } else {
            obs::ProfRecordAcquire(prof_site_, false, 0);
          }
          prof_acquired_nanos_ = now;
        }
#endif
        return;
      }
#if BPW_PROF
      if (prof && !contended) {
        // First failed exchange: this acquisition is contended; the spin
        // time from here to the successful exchange is its wait.
        contended = true;
        wait_start = NowNanos();
        obs::ProfWaiterEnter(prof_site_);
      }
#endif
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool try_lock() BPW_TRY_ACQUIRE(true) BPW_NO_THREAD_SAFETY_ANALYSIS {
    BPW_SCHEDULE_POINT_OBJ("spinlock.try_lock", this);
    const bool acquired = !flag_.load(std::memory_order_relaxed) &&
                          !flag_.exchange(true, std::memory_order_acquire);
    if (acquired) {
#if BPW_PROF
      if (prof_site_ != obs::kInvalidProfSite && obs::ProfilerEnabled()) {
        // A successful try_lock is by definition uncontended; a failed one
        // never blocks and is not a contention.
        prof_acquired_nanos_ = NowNanos();
        obs::ProfRecordAcquire(prof_site_, false, 0);
      }
#endif
      BPW_SCHED_LOCK_ACQUIRED(this, "spinlock.try_lock");
    } else {
      BPW_SCHED_LOCK_TRY_FAILED(this, "spinlock.try_lock");
    }
    return acquired;
  }

  void unlock() BPW_RELEASE() BPW_NO_THREAD_SAFETY_ANALYSIS {
#if BPW_PROF
    // prof_acquired_nanos_ is written and cleared under the lock, so a
    // nonzero value always belongs to this critical section. An enable
    // mid-hold records no hold (never a torn one); a disable mid-hold
    // records the full hold — either way wait/hold stay per-acquisition
    // consistent.
    if (prof_acquired_nanos_ != 0) {
      obs::ProfRecordHold(prof_site_, NowNanos() - prof_acquired_nanos_);
      prof_acquired_nanos_ = 0;
    }
#endif
    flag_.store(false, std::memory_order_release);
    BPW_SCHED_LOCK_RELEASED(this, "spinlock.unlock");
  }

  /// Attributes acquisitions to a contention-profiler site: pass a
  /// BPW_PROF_SITE(...) root-path id. Many locks may share one site (all
  /// page-table shards bind the same site and aggregate into one row).
  /// Setup-time only — not synchronized against concurrent lock traffic.
  /// Recording compiles out under -DBPW_PROF=0.
  void BindProfSite(obs::ProfSiteId site) { prof_site_ = site; }

 private:
  std::atomic<bool> flag_{false};
  obs::ProfSiteId prof_site_ = obs::kInvalidProfSite;
#if BPW_PROF
  uint64_t prof_acquired_nanos_ = 0;  // guarded by flag_
#endif
};

/// RAII guard for SpinLock. std::lock_guard works functionally but is
/// invisible to the thread-safety analysis (std::lock_guard carries no
/// capability annotations), so annotated code uses this guard instead.
class BPW_SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) BPW_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinLockGuard() BPW_RELEASE() { lock_.unlock(); }

  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace bpw
