// bpw::Mutex — a std::mutex with Clang Thread Safety Analysis annotations.
//
// std::mutex (and std::lock_guard / std::unique_lock) carry no capability
// annotations, so state they protect cannot be expressed to -Wthread-safety.
// Every std::mutex in the repo that guards named state now goes through this
// wrapper; the lowercase lock()/unlock() names keep it a BasicLockable, so
// std::condition_variable_any can wait on it directly.
//
// Method bodies are exempt from the analysis (the documented pattern for
// lock wrappers — the analysis cannot see through std::mutex); the
// annotations on the interface are what call sites are checked against.
#pragma once

#include <mutex>

#include "testing/schedule_point.h"
#include "util/thread_annotations.h"

namespace bpw {

/// Annotated exclusive mutex (BasicLockable + Lockable).
class BPW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BPW_ACQUIRE() BPW_NO_THREAD_SAFETY_ANALYSIS {
    BPW_SCHEDULE_POINT_OBJ("mutex.lock", this);
    BPW_SCHED_LOCK_WILL_ACQUIRE(this, "mutex.lock");
    mu_.lock();
    BPW_SCHED_LOCK_ACQUIRED(this, "mutex.lock");
  }
  bool try_lock() BPW_TRY_ACQUIRE(true) BPW_NO_THREAD_SAFETY_ANALYSIS {
    BPW_SCHEDULE_POINT_OBJ("mutex.try_lock", this);
    if (mu_.try_lock()) {
      BPW_SCHED_LOCK_ACQUIRED(this, "mutex.try_lock");
      return true;
    }
    BPW_SCHED_LOCK_TRY_FAILED(this, "mutex.try_lock");
    return false;
  }
  void unlock() BPW_RELEASE() BPW_NO_THREAD_SAFETY_ANALYSIS {
    mu_.unlock();
    BPW_SCHED_LOCK_RELEASED(this, "mutex.unlock");
  }

 private:
  std::mutex mu_;
};

/// RAII guard for bpw::Mutex (the annotated std::lock_guard equivalent).
class BPW_SCOPED_CAPABILITY MutexGuard {
 public:
  explicit MutexGuard(Mutex& mu) BPW_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexGuard() BPW_RELEASE() { mu_.unlock(); }

  MutexGuard(const MutexGuard&) = delete;
  MutexGuard& operator=(const MutexGuard&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace bpw
