#include "sync/contention_lock.h"

#include "util/clock.h"

namespace bpw {

void ContentionLock::Lock() {
  if (instr_ == LockInstrumentation::kNone) {
    mu_.lock();
    return;
  }
  if (mu_.try_lock()) {
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    if (instr_ == LockInstrumentation::kTiming) {
      lock_acquired_nanos_ = NowNanos();
    }
    return;
  }
  // Immediate acquisition failed: this is the paper's contention event.
  contentions_.fetch_add(1, std::memory_order_relaxed);
  if (instr_ == LockInstrumentation::kTiming) {
    const uint64_t wait_start = NowNanos();
    mu_.lock();
    const uint64_t acquired = NowNanos();
    wait_nanos_.fetch_add(acquired - wait_start, std::memory_order_relaxed);
    lock_acquired_nanos_ = acquired;
  } else {
    mu_.lock();
  }
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
}

bool ContentionLock::TryLock() {
  if (mu_.try_lock()) {
    if (instr_ != LockInstrumentation::kNone) {
      acquisitions_.fetch_add(1, std::memory_order_relaxed);
      if (instr_ == LockInstrumentation::kTiming) {
        lock_acquired_nanos_ = NowNanos();
      }
    }
    return true;
  }
  if (instr_ != LockInstrumentation::kNone) {
    trylock_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  return false;
}

void ContentionLock::Unlock() {
  if (instr_ == LockInstrumentation::kTiming) {
    hold_nanos_.fetch_add(NowNanos() - lock_acquired_nanos_,
                          std::memory_order_relaxed);
  }
  mu_.unlock();
}

LockStats ContentionLock::stats() const {
  LockStats s;
  s.acquisitions = acquisitions_.load(std::memory_order_relaxed);
  s.contentions = contentions_.load(std::memory_order_relaxed);
  s.trylock_failures = trylock_failures_.load(std::memory_order_relaxed);
  s.hold_nanos = hold_nanos_.load(std::memory_order_relaxed);
  s.wait_nanos = wait_nanos_.load(std::memory_order_relaxed);
  return s;
}

void ContentionLock::ResetStats() {
  acquisitions_.store(0, std::memory_order_relaxed);
  contentions_.store(0, std::memory_order_relaxed);
  trylock_failures_.store(0, std::memory_order_relaxed);
  hold_nanos_.store(0, std::memory_order_relaxed);
  wait_nanos_.store(0, std::memory_order_relaxed);
}

}  // namespace bpw
