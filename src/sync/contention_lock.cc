#include "sync/contention_lock.h"

#include "obs/trace_recorder.h"
#include "testing/schedule_point.h"
#include "util/clock.h"

namespace bpw {

namespace {

/// One per-acquisition profiling decision, latched at entry so the
/// enter/exit pairs stay balanced even if the global flag toggles mid-wait.
/// Compiles to `false` (and dead-codes every call site) under BPW_PROF=0.
inline bool ProfThisAcquisition(obs::ProfSiteId site) {
#if BPW_PROF
  return site != obs::kInvalidProfSite && obs::ProfilerEnabled();
#else
  (void)site;
  return false;
#endif
}

}  // namespace

void ContentionLock::Lock() {
  BPW_SCHEDULE_POINT_OBJ("contention_lock.lock", this);
  // Under the cooperative model checker this parks the caller until the
  // scheduler's lock model says the acquisition cannot block, so the real
  // mu_.lock() below never sleeps in the OS.
  BPW_SCHED_LOCK_WILL_ACQUIRE(this, "contention_lock.lock");
  if (instr_ == LockInstrumentation::kNone) {
    mu_.lock();
    BPW_SCHED_LOCK_ACQUIRED(this, "contention_lock.lock");
    return;
  }
  const bool prof = ProfThisAcquisition(prof_site_);
  // Tracing and profiling need the acquisition timestamp even in kCounts
  // mode; 0 marks "not timed" so Unlock never emits a span with a stale
  // start. The profiler shares these exact clock reads with the kTiming
  // counters — that is what keeps its per-site totals consistent with
  // LockStats to well under the 5% reproduction budget.
  const bool timed = instr_ == LockInstrumentation::kTiming ||
                     obs::TraceEnabled() || prof;
  if (mu_.try_lock()) {
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    lock_acquired_nanos_ = timed ? NowNanos() : 0;
    if (prof) obs::ProfRecordAcquire(prof_site_, false, 0);
    BPW_SCHED_LOCK_ACQUIRED(this, "contention_lock.lock");
    return;
  }
  // Immediate acquisition failed: this is the paper's contention event.
  contentions_.fetch_add(1, std::memory_order_relaxed);
  if (timed) {
    if (prof) obs::ProfWaiterEnter(prof_site_);
    const uint64_t wait_start = NowNanos();
    mu_.lock();
    const uint64_t acquired = NowNanos();
    if (instr_ == LockInstrumentation::kTiming) {
      wait_nanos_.fetch_add(acquired - wait_start, std::memory_order_relaxed);
    }
    if (obs::TraceEnabled()) {
      obs::TraceEmit(obs::TraceEventKind::kLockWait, wait_start,
                     acquired - wait_start);
    }
    if (prof) {
      obs::ProfWaiterExit(prof_site_);
      obs::ProfRecordAcquire(prof_site_, true, acquired - wait_start);
    }
    lock_acquired_nanos_ = acquired;
  } else {
    mu_.lock();
    lock_acquired_nanos_ = 0;
  }
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  BPW_SCHED_LOCK_ACQUIRED(this, "contention_lock.lock");
}

bool ContentionLock::TryLock() {
  BPW_SCHEDULE_POINT_OBJ("contention_lock.try_lock", this);
  if (mu_.try_lock()) {
    if (instr_ != LockInstrumentation::kNone) {
      acquisitions_.fetch_add(1, std::memory_order_relaxed);
      const bool prof = ProfThisAcquisition(prof_site_);
      const bool timed = instr_ == LockInstrumentation::kTiming ||
                         obs::TraceEnabled() || prof;
      lock_acquired_nanos_ = timed ? NowNanos() : 0;
      // A successful TryLock is by definition uncontended; a failed one is
      // not a contention (nobody blocks — the whole point of the paper's
      // protocol), so the profiler only sees the success.
      if (prof) obs::ProfRecordAcquire(prof_site_, false, 0);
    }
    BPW_SCHED_LOCK_ACQUIRED(this, "contention_lock.try_lock");
    return true;
  }
  if (instr_ != LockInstrumentation::kNone) {
    trylock_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  BPW_SCHED_LOCK_TRY_FAILED(this, "contention_lock.try_lock");
  return false;
}

void ContentionLock::Unlock() {
  BPW_SCHEDULE_POINT_OBJ("contention_lock.unlock", this);
  if (instr_ != LockInstrumentation::kNone && lock_acquired_nanos_ != 0) {
    const uint64_t start = lock_acquired_nanos_;
    const uint64_t now = NowNanos();
    if (instr_ == LockInstrumentation::kTiming) {
      hold_nanos_.fetch_add(now - start, std::memory_order_relaxed);
    }
    if (obs::TraceEnabled()) {
      obs::TraceEmit(obs::TraceEventKind::kLockHold, start, now - start);
    }
    if (ProfThisAcquisition(prof_site_)) {
      obs::ProfRecordHold(prof_site_, now - start);
    }
    lock_acquired_nanos_ = 0;
  }
  mu_.unlock();
  // Reported after the real unlock so a cooperative switch here hands the
  // lock to a parked waiter instead of deadlocking on a still-held mutex.
  BPW_SCHED_LOCK_RELEASED(this, "contention_lock.unlock");
}

LockStats ContentionLock::stats() const {
  LockStats s;
  s.acquisitions = acquisitions_.load(std::memory_order_relaxed);
  s.contentions = contentions_.load(std::memory_order_relaxed);
  s.trylock_failures = trylock_failures_.load(std::memory_order_relaxed);
  s.hold_nanos = hold_nanos_.load(std::memory_order_relaxed);
  s.wait_nanos = wait_nanos_.load(std::memory_order_relaxed);
  return s;
}

void ContentionLock::ResetStats() {
  // Atomic stores, not a memset: concurrent Lock()/Unlock() traffic keeps
  // incrementing these words while we zero them, and a plain write would be
  // a data race (and could be torn). With relaxed stores every counter
  // lands at 0 and later increments accumulate on top.
  acquisitions_.store(0, std::memory_order_relaxed);
  contentions_.store(0, std::memory_order_relaxed);
  trylock_failures_.store(0, std::memory_order_relaxed);
  hold_nanos_.store(0, std::memory_order_relaxed);
  wait_nanos_.store(0, std::memory_order_relaxed);
}

}  // namespace bpw
