// Software prefetch wrappers implementing the paper's §III-B technique:
// reading the data a critical section will touch *before* acquiring the
// lock moves the processor-cache warm-up misses out of the lock-holding
// period. A prefetch is a pure read — it cannot corrupt shared state, and
// cache coherence invalidates it if another thread writes first (paper's
// correctness argument).
#pragma once

#include <cstddef>

#include "util/cacheline.h"

namespace bpw {

/// Prefetches the cache line containing `addr` for reading.
inline void PrefetchRead(const void* addr) {
  if (addr == nullptr) return;
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
}

/// Prefetches the cache line containing `addr` for writing (exclusive).
inline void PrefetchWrite(const void* addr) {
  if (addr == nullptr) return;
  __builtin_prefetch(addr, /*rw=*/1, /*locality=*/3);
}

/// Prefetches `bytes` bytes starting at `addr`, one request per cache line.
inline void PrefetchRange(const void* addr, size_t bytes) {
  if (addr == nullptr) return;
  const char* p = static_cast<const char*>(addr);
  for (size_t off = 0; off < bytes; off += kCacheLineSize) {
    __builtin_prefetch(p + off, 1, 3);
  }
}

}  // namespace bpw
