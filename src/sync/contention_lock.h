// ContentionLock: an exclusive latch instrumented exactly the way the paper
// measures it.
//
// The paper defines a *lock contention* as "a lock request [that] cannot be
// immediately satisfied and a process context switch occurs" (§IV-D), and
// reports *average lock contention* as contentions per million page
// accesses. This lock counts:
//   - acquisitions:     total successful Lock()/TryLock() acquisitions
//   - contentions:      Lock() calls that could not acquire immediately and
//                       had to block
//   - trylock failures: TryLock() calls that returned false (these do NOT
//                       block, hence are not contentions — this distinction
//                       is what makes the BP-Wrapper TryLock protocol win)
//   - hold/wait time:   nanoseconds spent holding / waiting for the lock,
//                       which backs the paper's Figure 2
//
// Timing instrumentation can be disabled (kCounts mode) so that throughput
// experiments do not pay two clock reads per critical section.
//
// When the global trace recorder is enabled (obs/trace_recorder.h), any
// instrumented lock additionally emits lock-wait and lock-hold spans so a
// Chrome trace shows exactly when each critical section ran — kCounts mode
// then pays the clock reads only while tracing is on.
//
// ContentionLock is a Clang Thread Safety Analysis *capability*: state
// annotated BPW_GUARDED_BY(lock) can only be touched on paths that provably
// hold it, and a clang build with -Wthread-safety -Werror turns protocol
// violations into compile errors. The implementations themselves are opted
// out of the body analysis (the documented pattern for lock wrappers: the
// analysis cannot see through the underlying std::mutex); TSan verifies the
// internals dynamically instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "obs/prof_site.h"
#include "util/cacheline.h"
#include "util/thread_annotations.h"

namespace bpw {

/// Aggregated statistics snapshot of a ContentionLock.
struct LockStats {
  uint64_t acquisitions = 0;       ///< successful lock acquisitions
  uint64_t contentions = 0;        ///< blocking waits (the paper's metric)
  uint64_t trylock_failures = 0;   ///< non-blocking failed attempts
  uint64_t hold_nanos = 0;         ///< total time the lock was held
  uint64_t wait_nanos = 0;         ///< total time spent blocked waiting

  LockStats& operator+=(const LockStats& o) {
    acquisitions += o.acquisitions;
    contentions += o.contentions;
    trylock_failures += o.trylock_failures;
    hold_nanos += o.hold_nanos;
    wait_nanos += o.wait_nanos;
    return *this;
  }
};

/// Instrumentation level for a ContentionLock.
enum class LockInstrumentation {
  kNone,    ///< plain lock, no counters (fast path for production use)
  kCounts,  ///< count acquisitions / contentions / trylock failures
  kTiming,  ///< kCounts plus hold & wait nanoseconds (two clock reads)
};

/// An exclusive lock with a non-blocking TryLock and contention accounting.
/// Internally a std::mutex: on an over-committed machine a blocking mutex is
/// what a DBMS uses (PostgreSQL lwlocks block after a short spin), and a
/// failed immediate acquisition followed by blocking is precisely the
/// paper's contention event.
class BPW_CAPABILITY("mutex") ContentionLock {
 public:
  explicit ContentionLock(
      LockInstrumentation instr = LockInstrumentation::kCounts)
      : instr_(instr) {}

  ContentionLock(const ContentionLock&) = delete;
  ContentionLock& operator=(const ContentionLock&) = delete;

  /// Acquires the lock, blocking if necessary. A blocked acquisition is
  /// recorded as one contention event.
  void Lock() BPW_ACQUIRE() BPW_NO_THREAD_SAFETY_ANALYSIS;

  /// Attempts to acquire without blocking. Never records a contention.
  /// @return true if the lock was acquired.
  bool TryLock() BPW_TRY_ACQUIRE(true) BPW_NO_THREAD_SAFETY_ANALYSIS;

  /// Releases the lock.
  void Unlock() BPW_RELEASE() BPW_NO_THREAD_SAFETY_ANALYSIS;

  /// Returns a consistent snapshot of the counters.
  LockStats stats() const;

  /// Zeroes all counters. Safe against concurrent lock traffic: each
  /// counter is reset with an atomic store, so an in-flight increment either
  /// lands in the new epoch or is overwritten whole — never torn. A
  /// snapshot taken while traffic runs is therefore a consistent "since
  /// last reset" view, which is what lets the stats sampler reset/snapshot
  /// mid-run.
  void ResetStats();

  LockInstrumentation instrumentation() const { return instr_; }

  /// Attributes this lock's acquisitions to a contention-profiler site
  /// (obs/contention_profiler.h): pass a BPW_PROF_SITE(...) root-path id.
  /// Several locks may share one site — all page-table shard locks bind the
  /// same site and aggregate into one report row. Call at setup time, before
  /// the lock sees concurrent traffic; recording additionally requires
  /// instrumentation != kNone (kNone keeps its zero-accounting fast path).
  /// Recording compiles out under -DBPW_PROF=0 (the binding itself is kept
  /// so call sites need no conditional code).
  void BindProfSite(obs::ProfSiteId site) { prof_site_ = site; }

 private:
  std::mutex mu_;
  LockInstrumentation instr_;
  uint64_t lock_acquired_nanos_ = 0;  // guarded by mu_
  obs::ProfSiteId prof_site_ = obs::kInvalidProfSite;

  // Counters are written under contention from many threads; keep them on
  // separate cache lines from the mutex word.
  alignas(kCacheLineSize) std::atomic<uint64_t> acquisitions_{0};
  std::atomic<uint64_t> contentions_{0};
  std::atomic<uint64_t> trylock_failures_{0};
  std::atomic<uint64_t> hold_nanos_{0};
  std::atomic<uint64_t> wait_nanos_{0};
};

/// RAII guard for ContentionLock: acquires (blocking) in the constructor,
/// releases in the destructor.
class BPW_SCOPED_CAPABILITY ContentionLockGuard {
 public:
  explicit ContentionLockGuard(ContentionLock& lock) BPW_ACQUIRE(lock)
      : lock_(lock) {
    lock_.Lock();
  }
  ~ContentionLockGuard() BPW_RELEASE() { lock_.Unlock(); }

  ContentionLockGuard(const ContentionLockGuard&) = delete;
  ContentionLockGuard& operator=(const ContentionLockGuard&) = delete;

 private:
  ContentionLock& lock_;
};

/// Adopting RAII guard for a lock already acquired via TryLock().
///
/// The BP-Wrapper commit fast path is
///     if (lock_.TryLock()) { ...commit...; }
/// and before this guard existed the "...commit..." block had to end in a
/// manual Unlock() — a leak-on-early-return footgun, and impossible to
/// annotate cleanly. Adopting the lock into a scoped capability keeps the
/// TRY_ACQUIRE annotation on TryLock() itself and guarantees the release:
///
///     if (lock_.TryLock()) {
///       ContentionLockAdoptGuard guard(lock_);  // adopts, will Unlock()
///       ...commit may return early...
///     }
///
/// The constructor REQUIRES the lock: under -Wthread-safety it is a compile
/// error to adopt a lock the current path does not hold.
class BPW_SCOPED_CAPABILITY ContentionLockAdoptGuard {
 public:
  explicit ContentionLockAdoptGuard(ContentionLock& lock) BPW_REQUIRES(lock)
      : lock_(lock) {}
  ~ContentionLockAdoptGuard() BPW_RELEASE() { lock_.Unlock(); }

  ContentionLockAdoptGuard(const ContentionLockAdoptGuard&) = delete;
  ContentionLockAdoptGuard& operator=(const ContentionLockAdoptGuard&) =
      delete;

 private:
  ContentionLock& lock_;
};

}  // namespace bpw
