// Construction of coordinators by configuration, including the paper's five
// named systems (Table I).
#pragma once

#include <memory>
#include <string>

#include "core/coordinator.h"
#include "sync/contention_lock.h"
#include "util/status.h"

namespace bpw {

/// A declarative description of a (policy, coordinator) stack.
struct SystemConfig {
  /// Policy name understood by CreatePolicy ("2q", "lirs", "clock", ...).
  std::string policy = "2q";
  /// Coordinator kind: "serialized", "bp-wrapper", "combining" (BP-Wrapper
  /// plus flat combining and early lock release — "pgBat++"),
  /// "shared-queue" (the §III-A design the paper rejected; for ablations),
  /// or "clock-lockfree" (the latter requires policy "clock" or "gclock").
  std::string coordinator = "serialized";
  bool batching = false;      ///< only meaningful for "bp-wrapper"/"combining"
  bool prefetch = false;      ///< §III-B prefetching
  size_t queue_size = 64;     ///< BP-Wrapper S
  size_t batch_threshold = 32;  ///< BP-Wrapper T
  LockInstrumentation instrumentation = LockInstrumentation::kCounts;
  /// MUTATION KNOBS — tests only; meaningful for "combining". See
  /// CombiningCoordinator::Options for what each bug does.
  bool test_combine_drain_twice = false;
  bool test_combine_clear_ready_before_apply = false;
  bool test_combine_skip_release = false;
};

/// Builds a coordinator (owning its policy) for `num_frames` frames.
StatusOr<std::unique_ptr<Coordinator>> CreateCoordinator(
    const SystemConfig& config, size_t num_frames);

/// The paper's five tested systems (Table I), by their paper names, plus
/// this repo's extension:
///   "pgClock"  — clock algorithm, lock-free hits
///   "pg2Q"     — 2Q, lock per access
///   "pgPre"    — 2Q + prefetching only
///   "pgBat"    — 2Q + batching only
///   "pgBatPre" — 2Q + batching + prefetching
///   "pgBat++"  — 2Q + batching + prefetching + flat combining with early
///                lock release (CombiningCoordinator)
/// Returns InvalidArgument for unknown names.
StatusOr<SystemConfig> PaperSystemConfig(const std::string& name);

/// All paper system names (plus "pgBat++") in presentation order.
std::vector<std::string> PaperSystemNames();

}  // namespace bpw
