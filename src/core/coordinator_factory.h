// Construction of coordinators by configuration, including the paper's five
// named systems (Table I).
#pragma once

#include <memory>
#include <string>

#include "core/coordinator.h"
#include "sync/contention_lock.h"
#include "util/status.h"

namespace bpw {

/// A declarative description of a (policy, coordinator) stack.
struct SystemConfig {
  /// Policy name understood by CreatePolicy ("2q", "lirs", "clock", ...).
  std::string policy = "2q";
  /// Coordinator kind: "serialized", "bp-wrapper", "combining" (BP-Wrapper
  /// plus flat combining and early lock release — "pgBat++"), "sharded"
  /// (per-shard policy instances with a lock-free hit path — "pgShard"),
  /// "shared-queue" (the §III-A design the paper rejected; for ablations),
  /// or "clock-lockfree" (the latter requires policy "clock" or "gclock").
  std::string coordinator = "serialized";
  bool batching = false;      ///< only meaningful for "bp-wrapper"/"combining"
  bool prefetch = false;      ///< §III-B prefetching
  size_t queue_size = 64;     ///< BP-Wrapper S
  size_t batch_threshold = 32;  ///< BP-Wrapper T
  /// Shard count for the "sharded" coordinator: the policy is split into
  /// this many independent instances (ShardedPolicy), each behind its own
  /// lock. 1 is a faithful pass-through of the unsharded policy.
  size_t policy_shards = 1;
  /// Committed batches per shard between cross-shard rebalance exchanges
  /// ("sharded" only); 0 disables the exchange.
  size_t rebalance_interval = 16;
  LockInstrumentation instrumentation = LockInstrumentation::kCounts;
  /// MUTATION KNOBS — tests only; meaningful for "combining". See
  /// CombiningCoordinator::Options for what each bug does.
  bool test_combine_drain_twice = false;
  bool test_combine_clear_ready_before_apply = false;
  bool test_combine_skip_release = false;
  /// MUTATION KNOBS — tests only; meaningful for "sharded". See
  /// ShardedCoordinator::Options for what each bug does.
  bool test_shard_double_track = false;
  bool test_shard_stale_eviction = false;
};

/// Builds a coordinator (owning its policy) for `num_frames` frames.
StatusOr<std::unique_ptr<Coordinator>> CreateCoordinator(
    const SystemConfig& config, size_t num_frames);

/// The paper's five tested systems (Table I), by their paper names, plus
/// this repo's extension:
///   "pgClock"  — clock algorithm, lock-free hits
///   "pg2Q"     — 2Q, lock per access
///   "pgPre"    — 2Q + prefetching only
///   "pgBat"    — 2Q + batching only
///   "pgBatPre" — 2Q + batching + prefetching
///   "pgBat++"  — 2Q + batching + prefetching + flat combining with early
///                lock release (CombiningCoordinator)
///   "pgShard"  — 2Q sharded 8 ways + prefetching, lock-free hit path
///                (ShardedCoordinator)
/// Returns InvalidArgument for unknown names.
StatusOr<SystemConfig> PaperSystemConfig(const std::string& name);

/// All paper system names (plus "pgBat++"/"pgShard") in presentation order.
std::vector<std::string> PaperSystemNames();

}  // namespace bpw
