#include "core/bp_wrapper.h"

#include <cassert>

#include "obs/contention_profiler.h"
#include "obs/trace_recorder.h"
#include "sync/prefetch.h"
#include "testing/schedule_point.h"
#include "util/clock.h"
#include "util/fingerprint.h"
#include "util/logging.h"

namespace bpw {

BpWrapperCoordinator::BpWrapperCoordinator(
    std::unique_ptr<ReplacementPolicy> policy, Options options)
    : policy_(std::move(policy)),
      options_(options),
      lock_(options.instrumentation),
      metrics_source_(&obs::MetricsRegistry::Default(),
                      [this](obs::MetricsSnapshot& snap) {
                        AppendLockMetrics(snap, lock_.stats());
                        snap.Add("coord.commit_batches",
                                 static_cast<double>(commit_batches()));
                        snap.Add("coord.committed_entries",
                                 static_cast<double>(committed_entries()));
                        snap.Add("coord.stale_commits",
                                 static_cast<double>(stale_commits()));
                        snap.Add("coord.lock_fallbacks",
                                 static_cast<double>(lock_fallbacks()));
                      }) {
  if (options_.queue_size == 0) options_.queue_size = 1;
  if (options_.batch_threshold == 0) options_.batch_threshold = 1;
  if (options_.batch_threshold > options_.queue_size) {
    options_.batch_threshold = options_.queue_size;
  }
  // Every BpWrapperCoordinator instance aggregates into the same profiler
  // row — the report cares about the lock's role, not the instance.
  lock_.BindProfSite(BPW_PROF_SITE("bpw.policy_lock"));
}

BpWrapperCoordinator::~BpWrapperCoordinator() {
  MutexGuard guard(slots_mu_);
  if (!slots_.empty()) {
    BPW_LOG_ERROR << "BpWrapperCoordinator destroyed with " << slots_.size()
                  << " live thread slots";
  }
}

BpWrapperCoordinator::Slot::~Slot() {
  // A thread unregistering with queued accesses commits them so no history
  // is silently lost.
  if (!queue.empty()) {
    owner_->FlushSlot(this);
  }
  MutexGuard guard(owner_->slots_mu_);
  owner_->slots_.erase(this);
}

std::unique_ptr<Coordinator::ThreadSlot>
BpWrapperCoordinator::RegisterThread() {
  auto slot = std::make_unique<Slot>(this, options_.queue_size);
  {
    MutexGuard guard(slots_mu_);
    slots_.insert(slot.get());
  }
  return slot;
}

void BpWrapperCoordinator::PrefetchForCommit(const AccessQueue& queue) const {
  // Touch the lock word first (it is needed soonest), then the policy node
  // of every queued frame. All reads; cannot corrupt shared state (§III-B).
  PrefetchWrite(&lock_);
  for (size_t i = 0; i < queue.size(); ++i) {
    policy_->PrefetchHint(queue[i].frame);
  }
}

void BpWrapperCoordinator::CommitLocked(AccessQueue& queue) {
  // REQUIRES(lock_): the commit lock is what serializes policy access.
  policy_->AssertExclusiveAccess();
  // Phase breakdown of the critical section: "commit" wraps the whole
  // thing, "replay" is the policy-update replay of the queue, and
  // "bookkeeping" the post-commit counter/trace work. The upcoming
  // early-release work needs exactly this split to show which nanoseconds
  // it moved out of the lock.
  BPW_PROF_PHASE("commit");
  const bool trace = obs::TraceEnabled();
  // Clock reads under the lock are normally forbidden (they stretch the
  // critical section); these two run only when tracing is on, and the span
  // being measured *is* the locked commit.
  // bpw-lint-allow(clock-read-in-critical-section)
  const uint64_t commit_start = trace ? NowNanos() : 0;
  uint64_t stale = 0;
  const size_t n = queue.size();
  {
    BPW_PROF_PHASE("replay");
    for (size_t i = 0; i < n; ++i) {
      const AccessQueue::Entry& entry = queue[i];
      // §IV-B: skip entries whose buffer page was invalidated or replaced
      // between recording and committing.
      if (!options_.test_skip_commit_revalidation &&
          !TagStillValid(entry.page, entry.frame)) {
        ++stale;
        continue;
      }
      policy_->OnHit(entry.page, entry.frame);
    }
    queue.Clear();
  }
  if (n > 0) {
    BPW_PROF_PHASE("bookkeeping");
    // pgBat/pgBatPre keep commit bookkeeping inside the critical section —
    // deliberately. This coordinator is the paper-faithful baseline the
    // combining coordinator's early-release split is measured against; its
    // "bookkeeping" prof phase is exactly the span pgBat++ moves after
    // Unlock(). Do NOT hoist these out: that would erase the comparison.
    // bpw-lint-allow(post-commit-under-lock)
    commit_batches_.fetch_add(1, std::memory_order_relaxed);
    // bpw-lint-allow(post-commit-under-lock)
    committed_entries_.fetch_add(n - stale, std::memory_order_relaxed);
    if (stale > 0) {
      // bpw-lint-allow(post-commit-under-lock)
      stale_commits_.fetch_add(stale, std::memory_order_relaxed);
    }
    if (trace) {
      // bpw-lint-allow(clock-read-in-critical-section)
      const uint64_t commit_end = NowNanos();
      // bpw-lint-allow(post-commit-under-lock)
      obs::TraceEmit(obs::TraceEventKind::kBatchCommit, commit_start,
                     commit_end - commit_start, n);
    }
  }
}

void BpWrapperCoordinator::OnHit(ThreadSlot* base_slot, PageId page,
                                 FrameId frame) {
  auto* slot = static_cast<Slot*>(base_slot);
  AccessQueue& queue = slot->queue;
  assert(!queue.full());
  queue.Record(page, frame);

  if (queue.size() < options_.batch_threshold) return;

  // Enough accesses accumulated: try to commit without blocking.
  BPW_SCHEDULE_POINT("bpw.before_trylock");
  if (options_.prefetch) PrefetchForCommit(queue);
  if (lock_.TryLock()) {
    ContentionLockAdoptGuard guard(lock_);
    CommitLocked(queue);
    return;
  }
  if (!queue.full()) {
    // Lock busy and there is still room: keep recording (Fig. 4 line 11).
    return;
  }
  // Queue completely full: we must block (Fig. 4 line 13).
  BPW_SCHEDULE_POINT("bpw.lock_fallback");
  lock_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  if (obs::TraceEnabled()) {
    obs::TraceEmit(obs::TraceEventKind::kLockFallback, NowNanos(), 0);
  }
  ContentionLockGuard guard(lock_);
  CommitLocked(queue);
}

StatusOr<Coordinator::Victim> BpWrapperCoordinator::ChooseVictim(
    ThreadSlot* base_slot, const EvictableFn& evictable, PageId incoming) {
  auto* slot = static_cast<Slot*>(base_slot);
  BPW_SCHEDULE_POINT("bpw.choose_victim");
  if (options_.prefetch) PrefetchForCommit(slot->queue);
  ContentionLockGuard guard(lock_);
  policy_->AssertExclusiveAccess();
  BPW_PROF_PHASE("choose_victim");
  // A miss commits the pending accesses first so the policy decides with
  // the freshest history (Fig. 4, replacement_for_page_miss).
  if (!options_.test_skip_commit_before_victim) CommitLocked(slot->queue);
  return policy_->ChooseVictim(evictable, incoming);
}

void BpWrapperCoordinator::CompleteMiss(ThreadSlot* base_slot, PageId page,
                                        FrameId frame) {
  auto* slot = static_cast<Slot*>(base_slot);
  ContentionLockGuard guard(lock_);
  policy_->AssertExclusiveAccess();
  CommitLocked(slot->queue);
  policy_->OnMiss(page, frame);
}

bool BpWrapperCoordinator::OnErase(ThreadSlot* base_slot, PageId page,
                                   FrameId frame) {
  auto* slot = static_cast<Slot*>(base_slot);
  ContentionLockGuard guard(lock_);
  policy_->AssertExclusiveAccess();
  CommitLocked(slot->queue);
  const bool resident = policy_->IsResident(page);
  if (resident) policy_->OnErase(page, frame);
  return resident;
}

uint64_t BpWrapperCoordinator::StateFingerprint() const {
  // Quiesced-by-contract (model-checker use only: every worker parked).
  // Per-thread queues are fingerprinted separately via SlotStateFingerprint
  // (the scenario hashes them in stable thread order); here only the shared
  // half: the policy's bookkeeping.
  Fingerprint fp;
  fp.Combine(policy_->StateFingerprint());
  return fp.value();
}

uint64_t BpWrapperCoordinator::SlotStateFingerprint(
    const ThreadSlot* base_slot) const {
  const auto* slot = static_cast<const Slot*>(base_slot);
  Fingerprint fp;
  const AccessQueue& queue = slot->queue;
  for (size_t i = 0; i < queue.size(); ++i) {
    fp.Combine(queue[i].page);
    fp.Combine(queue[i].frame);
  }
  return fp.value();
}

void BpWrapperCoordinator::FlushSlot(ThreadSlot* base_slot) {
  auto* slot = static_cast<Slot*>(base_slot);
  if (slot->queue.empty()) return;
  ContentionLockGuard guard(lock_);
  CommitLocked(slot->queue);
}

}  // namespace bpw
