// ShardedCoordinator: per-shard policy capabilities with a lock-free hit
// path for EVERY policy — the paper's pgClock property generalized.
//
// pgClock gets lock-free hits because CLOCK's bookkeeping per hit is one
// reference bit. For list-based policies the bookkeeping is pointer
// surgery, so BP-Wrapper batches it; but even batched commits eventually
// serialize on the single policy lock. This coordinator removes both
// bottlenecks:
//
//  - The policy is a ShardedPolicy: each page-id slice has its own policy
//    instance behind its own ContentionLock. Commits for different shards
//    never contend (the TSA REQUIRES(this) single-capability contract
//    becomes a per-shard capability, statically checked — see the
//    Shard-reference REQUIRES annotations below).
//  - A buffer hit touches NO lock, for any policy: it appends to the
//    hitting thread's private per-shard ring (drop-oldest on overflow, so
//    the newest history survives) and publishes an advisory per-frame
//    stamp with a seqlock-style protocol — a CAS claim, two relaxed
//    payload stores, a release publish. No TryLock, no fallback Lock.
//    The queued history is committed lazily, on the miss/erase/flush
//    paths, under the owning shard's lock only.
//
// Equivalence: commits replay each ring in arrival order, so the per-shard
// policy-visible access order equals the true access order regardless of
// when commits happen. At shard count 1 with no ring overflow the policy
// therefore ends bit-identical to the serialized/bp-wrapper stacks
// (tests/equivalence_test.cc asserts this per policy; hit_drops() == 0 is
// the no-overflow certificate).
//
// Rebalance: every `rebalance_interval` commits a shard publishes its
// adaptive scalar (ARC/CAR's target p) to a lock-free signal board, blends
// in its peers' last publications, and applies the mean under its own lock
// — global adaptation rides the committed batch stream, never the hit
// path, and never takes two shard locks at once.
#pragma once

#include <unordered_set>
#include <vector>

#include "core/coordinator.h"
#include "policy/sharded_policy.h"
#include "sync/mutex.h"
#include "util/thread_annotations.h"

namespace bpw {

class ShardedCoordinator : public Coordinator {
 public:
  struct Options {
    /// Per-thread per-shard ring capacity. Unlike BP-Wrapper's S, filling
    /// it never blocks: the oldest entry is dropped (counted in
    /// hit_drops()) so the freshest history is what eventually commits.
    size_t queue_size = 64;
    /// §III-B prefetching of the shard's policy nodes before a commit.
    bool prefetch = false;
    /// Committed batches per shard between rebalance exchanges; 0 disables.
    /// No-op at shard count 1 (preserves bit-identity with unsharded).
    size_t rebalance_interval = 16;
    LockInstrumentation instrumentation = LockInstrumentation::kCounts;
    /// MUTATION KNOB — tests only. At rebalance-cadence boundaries the
    /// shard re-registers its last committed (page, frame) with the next
    /// shard, so one page is resident in two shards — the bug a rebalance
    /// that forgets to unregister from the source shard would have. The
    /// wrong copy persists until the frame is recycled (replanted at the
    /// next cadence if so), so the conservation oracle sees it at quiesce.
    bool test_shard_double_track = false;
    /// MUTATION KNOB — tests only. CompleteMiss registers the loaded page
    /// with the shard that supplied the victim frame instead of the page's
    /// home shard — the classic stale-cached-shard-index bug.
    bool test_shard_stale_eviction = false;
  };

  ShardedCoordinator(std::unique_ptr<ShardedPolicy> policy, Options options);
  ~ShardedCoordinator() override;

  std::unique_ptr<ThreadSlot> RegisterThread() override;
  /// THE lock-free hit path: ring append + seqlock stamp. Never locks,
  /// never spins, for every policy.
  void OnHit(ThreadSlot* slot, PageId page, FrameId frame) override;
  StatusOr<Victim> ChooseVictim(ThreadSlot* slot, const EvictableFn& evictable,
                                PageId incoming) override;
  void CompleteMiss(ThreadSlot* slot, PageId page, FrameId frame) override;
  bool OnErase(ThreadSlot* slot, PageId page, FrameId frame) override;
  void FlushSlot(ThreadSlot* slot) override;
  LockStats lock_stats() const override;
  void ResetLockStats() override;
  const ReplacementPolicy& policy() const override { return *policy_; }
  ReplacementPolicy* mutable_policy() override { return policy_.get(); }
  std::string name() const override {
    return options_.prefetch ? "sharded+pre" : "sharded";
  }
  bool StateFingerprintSupported() const override {
    return policy_->StateFingerprintSupported();
  }
  uint64_t StateFingerprint() const override BPW_NO_THREAD_SAFETY_ANALYSIS;
  uint64_t SlotStateFingerprint(const ThreadSlot* slot) const override;
  /// The cross-shard conservation oracle (quiesced): every mapped page
  /// resident in exactly its home shard, per-shard counts matching the
  /// mapped population, and no stamp left in a torn (odd-version) state.
  Status CheckQuiescedInvariants() const override
      BPW_NO_THREAD_SAFETY_ANALYSIS;

  const Options& options() const { return options_; }
  size_t shard_count() const { return policy_->shard_count(); }
  const ShardedPolicy& sharded_policy() const { return *policy_; }

  uint64_t commit_batches() const {
    return commit_batches_.load(std::memory_order_relaxed);
  }
  uint64_t committed_entries() const {
    return committed_entries_.load(std::memory_order_relaxed);
  }
  uint64_t stale_commits() const {
    return stale_commits_.load(std::memory_order_relaxed);
  }
  /// Hits whose oldest ring entry was dropped on overflow. Zero means the
  /// committed history is the complete access history (the equivalence
  /// tests' no-overflow certificate).
  uint64_t hit_drops() const {
    return hit_drops_.load(std::memory_order_relaxed);
  }
  /// Cross-shard rebalance exchanges performed (deterministic for a
  /// deterministic commit stream; part of the bench counter gate).
  uint64_t shard_rebalances() const {
    return shard_rebalances_.load(std::memory_order_relaxed);
  }
  /// Evictions served by a non-home shard after the home shard had nothing
  /// evictable.
  uint64_t borrow_evictions() const {
    return borrow_evictions_.load(std::memory_order_relaxed);
  }

  /// Seqlock read of frame's last hit stamp. Returns false if the frame
  /// was never stamped or a consistent snapshot could not be read. Test
  /// hook for the atomic-stamp protocol.
  bool ReadStamp(FrameId frame, PageId* page, uint64_t* tick) const;

  /// TEST SEAM — plants a raw stamp version on a frame so tests can drive
  /// the seqlock across the uint64_t wraparound boundary (and the
  /// abandoned-odd-writer case) without 2^63 real hits. Callers own the
  /// quiescence story: nothing else may touch the frame concurrently.
  void PreloadStampVersionForTest(FrameId frame, uint64_t version);

 private:
  /// Single-producer ring with drop-oldest overflow. Only the owning
  /// thread touches it outside a lock; committers touch it from that same
  /// thread's call stack (commits happen on miss/erase/flush, which the
  /// owner itself executes), so no synchronization is needed.
  class Ring {
   public:
    struct Entry {
      PageId page = kInvalidPageId;
      FrameId frame = kInvalidFrameId;
    };

    explicit Ring(size_t capacity) : entries_(capacity) {}

    bool full() const { return count_ == entries_.size(); }
    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }
    /// Appends; if full, drops the oldest entry first and returns true.
    bool Push(PageId page, FrameId frame) {
      bool dropped = false;
      if (full()) {
        head_ = (head_ + 1) % entries_.size();
        --count_;
        dropped = true;
      }
      entries_[(head_ + count_) % entries_.size()] = Entry{page, frame};
      ++count_;
      return dropped;
    }
    const Entry& At(size_t i) const {
      return entries_[(head_ + i) % entries_.size()];
    }
    void Clear() {
      head_ = 0;
      count_ = 0;
    }

   private:
    std::vector<Entry> entries_;
    size_t head_ = 0;
    size_t count_ = 0;
  };

  /// One policy shard and everything serialized by its lock. The lock is a
  /// distinct TSA capability per instance: helpers below take `Shard&` and
  /// REQUIRE(shard.lock), so cross-shard access without that shard's lock
  /// is a compile error (tests/negative_compile/nc_shard_cross.cc).
  struct Shard {
    explicit Shard(LockInstrumentation instrumentation)
        : lock(instrumentation) {}

    // One ordering class for every shard instance, and a leaf: the commit
    // path never blocks on a second shard lock while holding one (the
    // cross-shard borrow TryLocks, bounded). bpw_atomiclint proves both.
    ContentionLock lock BPW_LOCK_CLASS("shard") BPW_LOCK_LEAF;
    ReplacementPolicy* policy = nullptr;  // borrowed from the adapter
    size_t index = 0;
    uint64_t commits_since_rebalance BPW_GUARDED_BY(lock) = 0;
    // Freshest committed entry, the seed for the double-track mutation.
    PageId last_committed_page BPW_GUARDED_BY(lock) = kInvalidPageId;
    FrameId last_committed_frame BPW_GUARDED_BY(lock) = kInvalidFrameId;
    // Signal board slot: last published adaptive scalar, readable without
    // the shard lock (rebalance peers read it lock-free).
    std::atomic<uint64_t> rebalance_signal{0};
    std::atomic<bool> signal_valid{false};
    // MUTATION bookkeeping (populated only when a shard mutation is armed):
    // which page this shard's policy tracks at each frame. Lets the scrub
    // in CompleteMiss shed ANY stale registration at a frame before a new
    // delivery relinks its node, keeping the policies' intrusive structures
    // sound while the conservation books stay corrupted.
    std::vector<PageId> mut_tracked_by_frame BPW_GUARDED_BY(lock);
  };

  /// Advisory per-frame hit stamp (seqlock): odd version = write in
  /// flight. Readers retry; writers CAS-claim and skip on failure, so the
  /// hit path never waits. Payload is atomic (relaxed) so torn reads are
  /// impossible even without the version check.
  struct StampSlot {
    std::atomic<uint64_t> version{0} BPW_SEQLOCK_STAMP;
    std::atomic<PageId> page{kInvalidPageId} BPW_PUBLISHED_BY(version);
    std::atomic<uint64_t> tick{0} BPW_PUBLISHED_BY(version);
  };

  class Slot : public ThreadSlot {
   public:
    Slot(ShardedCoordinator* owner, size_t num_shards, size_t queue_size);
    ~Slot() override;

    ShardedCoordinator* owner_;
    std::vector<Ring> rings;  // one per shard
    size_t victim_shard = 0;  // shard that supplied the last victim frame
    bool has_victim_shard = false;
    // MUTATION (test_shard_stale_eviction): memoized home-shard index that
    // is deliberately never invalidated — each delivery routes to the
    // *previous* miss's home shard.
    size_t mut_stale_home = SIZE_MAX;
  };

  void StampHit(PageId page, FrameId frame);
  void PrefetchForCommit(const Shard& shard, const Ring& ring) const;
  /// Replays `ring` into shard's policy (arrival order, §IV-B tag
  /// re-validation) and advances the rebalance cadence. Caller holds
  /// exactly shard.lock.
  void CommitShardLocked(Shard& shard, Ring& ring) BPW_REQUIRES(shard.lock)
      BPW_HOLD_EFFECT_OK(clock, "commit-latency trace stamp; one vDSO read "
                                "per batch, only when tracing is on");
  /// Publishes this shard's adaptive signal and applies the blended mean.
  void RebalanceLocked(Shard& shard) BPW_REQUIRES(shard.lock);
  /// MUTATION: plants shard's last committed page into the next shard.
  void DoubleTrackLocked(Shard& shard) BPW_REQUIRES(shard.lock);
  /// MUTATION shield: when a frame carrying one of the two tracked copies
  /// of the planted page is re-delivered to that shard, erase the stale
  /// copy first. The mutation must corrupt the *conservation* invariant,
  /// not the policies' internal structures — without this, frame reuse
  /// would double-insert an already-linked intrusive-list node.
  void ShieldDeliveryLocked(Shard& shard, PageId incoming, FrameId frame)
      BPW_REQUIRES(shard.lock);
  /// MUTATION bookkeeping: a shard's ChooseVictim consumed (page, frame);
  /// if it was one of the planted page's two copies, mark that copy dead.
  void NoteVictimForMutation(size_t shard_index, PageId page, FrameId frame);
  /// MUTATION bookkeeping: hand the plant record back once both copies are
  /// resolved, so the next rebalance tick can plant again.
  void MaybeReleaseMutationRecord();
  /// Whether either shard mutation is armed (the frame-tracking scrub runs
  /// for both).
  bool MutationActive() const {
    return options_.test_shard_double_track ||
           options_.test_shard_stale_eviction;
  }
  /// MUTATION scrub: erase whatever `shard` tracks at `frame` before a new
  /// delivery binds it — a mutated run can route two registrations to the
  /// same (shard, frame), and the second would relink a linked node.
  void MutScrubFrameLocked(Shard& shard, FrameId frame)
      BPW_REQUIRES(shard.lock);
  /// Lazily sized frame→page book for `shard` (mutated runs only).
  std::vector<PageId>& MutTrackedLocked(Shard& shard)
      BPW_REQUIRES(shard.lock);

  std::unique_ptr<ShardedPolicy> policy_;
  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<StampSlot> stamps_;  // one per frame

  std::atomic<uint64_t> commit_batches_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> committed_entries_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> stale_commits_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> hit_drops_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> shard_rebalances_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> borrow_evictions_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> hit_ticks_{0} BPW_RELAXED_OK("stats counter");

  // MUTATION record (test_shard_double_track): the planted page's identity
  // and which of its two copies (home shard / replica shard) still live.
  // Payload is written before the live flags (release) and read after them
  // (acquire); each flag flips under the lock of the shard it describes.
  // `busy` is the single-plant claim: exchanged true by a planter, released
  // only once both copies are resolved. Without it, two shards committing
  // concurrently could both plant, and the single record would lose the
  // first replica's identity — leaving a stale tracked pair no shield
  // recognizes.
  std::atomic<bool> mut_record_busy_{false};
  std::atomic<PageId> mut_page_{kInvalidPageId} BPW_RELAXED_OK(
      "mut-record payload; ordered by release/acquire on the live flags");
  std::atomic<FrameId> mut_frame_{kInvalidFrameId} BPW_RELAXED_OK(
      "mut-record payload; ordered by release/acquire on the live flags");
  std::atomic<size_t> mut_replica_shard_{0} BPW_RELAXED_OK(
      "mut-record payload; ordered by release/acquire on the live flags");
  std::atomic<bool> mut_replica_live_{false};
  std::atomic<bool> mut_home_live_{false};

  // Live-slot registry so destruction order errors surface loudly.
  Mutex slots_mu_;
  std::unordered_set<Slot*> slots_ BPW_GUARDED_BY(slots_mu_);

  // Declared last so it unregisters before anything it reads is destroyed.
  obs::ScopedMetricSource metrics_source_;
};

}  // namespace bpw
