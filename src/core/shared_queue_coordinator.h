// SharedQueueCoordinator: the batching design the paper REJECTED.
//
// §III-A: "an alternative is to use one common FIFO queue shared by
// multiple threads. However, we choose to use a private FIFO queue for
// each thread" because (1) a private queue keeps the precise per-thread
// access order, and (2) "recording access information into private FIFO
// queues incurs the least synchronization and coherence cost, which is
// required for the shared FIFO queue when multiple threads fill or clear
// the queue."
//
// This coordinator implements the rejected design faithfully — one global
// FIFO protected by its own small lock, batched commits into the policy
// lock — so the ablation bench can measure exactly the costs the paper
// predicted: every page hit takes the queue lock (a new shared hot spot),
// and per-thread access order is lost (entries commit in global arrival
// order).
#pragma once

#include "core/access_queue.h"
#include "core/coordinator.h"
#include "sync/spinlock.h"
#include "util/thread_annotations.h"

namespace bpw {

class SharedQueueCoordinator : public Coordinator {
 public:
  struct Options {
    size_t queue_size = 64;
    size_t batch_threshold = 32;
    LockInstrumentation instrumentation = LockInstrumentation::kCounts;
    /// MUTATION KNOB — tests only. When the batch threshold fires, commit
    /// WITHOUT taking the policy lock (no TryLock, no fallback), violating
    /// the GUARDED_BY(lock_) contract on batch_ and the policy's
    /// serialization contract. Exists so the model checker's vector-clock
    /// race certifier can prove it catches an unordered
    /// AssertExclusiveAccess pair as a race (the dynamic cross-validation
    /// of PR 4's static annotations).
    bool test_commit_without_lock = false;
  };

  SharedQueueCoordinator(std::unique_ptr<ReplacementPolicy> policy,
                         Options options);
  explicit SharedQueueCoordinator(std::unique_ptr<ReplacementPolicy> policy)
      : SharedQueueCoordinator(std::move(policy), Options()) {}

  std::unique_ptr<ThreadSlot> RegisterThread() override;
  void OnHit(ThreadSlot* slot, PageId page, FrameId frame) override
      BPW_HOLD_EFFECT_OK(alloc, "shared-queue push_back; capacity is "
                                "reserved to the batch bound up front");
  StatusOr<Victim> ChooseVictim(ThreadSlot* slot, const EvictableFn& evictable,
                                PageId incoming) override;
  void CompleteMiss(ThreadSlot* slot, PageId page, FrameId frame) override;
  bool OnErase(ThreadSlot* slot, PageId page, FrameId frame) override;
  void FlushSlot(ThreadSlot* slot) override;
  LockStats lock_stats() const override { return lock_.stats(); }
  void ResetLockStats() override { lock_.ResetStats(); }
  const ReplacementPolicy& policy() const override { return *policy_; }
  ReplacementPolicy* mutable_policy() override { return policy_.get(); }
  std::string name() const override { return "shared-queue"; }
  bool StateFingerprintSupported() const override {
    return policy_->StateFingerprintSupported();
  }
  uint64_t StateFingerprint() const override BPW_NO_THREAD_SAFETY_ANALYSIS;

  /// Contended acquisitions of the *queue* spinlock per million... exposed
  /// raw: total queue-lock acquisitions (== one per page hit: the design's
  /// flaw made visible).
  uint64_t queue_lock_acquisitions() const {
    return queue_acquisitions_.load(std::memory_order_relaxed);
  }

 private:
  class Slot : public ThreadSlot {};

  /// Drains the shared queue into the policy. Caller holds lock_ (the
  /// policy lock); takes queue_lock_ internally to swap the buffer out.
  void CommitLocked() BPW_REQUIRES(lock_);

  /// MUTATION: runs the commit body with NO policy lock held. Deliberately
  /// exempt from the thread-safety analysis — the whole point is to execute
  /// the statically-forbidden interleaving so the dynamic race certifier
  /// can catch it. Only reachable via Options::test_commit_without_lock.
  void CommitRacy() BPW_NO_THREAD_SAFETY_ANALYSIS;

  std::unique_ptr<ReplacementPolicy> policy_;
  Options options_;
  ContentionLock lock_;  // the policy lock

  // The shared queue: the paper's predicted hot spot.
  SpinLock queue_lock_;
  std::vector<AccessQueue::Entry> queue_ BPW_GUARDED_BY(queue_lock_);
  // Commit-time scratch: CommitLocked swaps the shared queue into this
  // buffer and replays from it, so the buffers ping-pong and the critical
  // section never allocates (bpw_lint: critical-section-alloc).
  std::vector<AccessQueue::Entry> batch_ BPW_GUARDED_BY(lock_);
  std::atomic<uint64_t> queue_acquisitions_{0} BPW_RELAXED_OK("stats counter");
  // Declared last so it unregisters before anything it reads is destroyed.
  obs::ScopedMetricSource metrics_source_;
};

}  // namespace bpw
