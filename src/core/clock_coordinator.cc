#include "core/clock_coordinator.h"

#include "obs/contention_profiler.h"
#include "testing/schedule_point.h"

namespace bpw {

namespace {
void ClockHit(ReplacementPolicy* policy, PageId page, FrameId frame) {
  static_cast<ClockPolicy*>(policy)->OnHitLockFree(page, frame);
}
void GClockHit(ReplacementPolicy* policy, PageId page, FrameId frame) {
  static_cast<GClockPolicy*>(policy)->OnHitLockFree(page, frame);
}
}  // namespace

ClockCoordinator::ClockCoordinator(std::unique_ptr<ClockPolicy> policy,
                                   Options options)
    : policy_(std::move(policy)),
      hit_fn_(&ClockHit),
      lock_(options.instrumentation),
      metrics_source_(&obs::MetricsRegistry::Default(),
                      [this](obs::MetricsSnapshot& snap) {
                        AppendLockMetrics(snap, lock_.stats());
                      }) {
  lock_.BindProfSite(BPW_PROF_SITE("clock.miss_lock"));
}

ClockCoordinator::ClockCoordinator(std::unique_ptr<GClockPolicy> policy,
                                   Options options)
    : policy_(std::move(policy)),
      hit_fn_(&GClockHit),
      lock_(options.instrumentation),
      metrics_source_(&obs::MetricsRegistry::Default(),
                      [this](obs::MetricsSnapshot& snap) {
                        AppendLockMetrics(snap, lock_.stats());
                      }) {
  lock_.BindProfSite(BPW_PROF_SITE("clock.miss_lock"));
}

std::unique_ptr<Coordinator::ThreadSlot> ClockCoordinator::RegisterThread() {
  return std::make_unique<Slot>();
}

void ClockCoordinator::OnHit(ThreadSlot* /*slot*/, PageId page,
                             FrameId frame) {
  // The whole point: no lock, just an atomic reference-bit update.
  BPW_SCHEDULE_POINT("clock.on_hit");
  hit_fn_(policy_.get(), page, frame);
}

StatusOr<Coordinator::Victim> ClockCoordinator::ChooseVictim(
    ThreadSlot* /*slot*/, const EvictableFn& evictable, PageId incoming) {
  ContentionLockGuard guard(lock_);
  policy_->AssertExclusiveAccess();
  return policy_->ChooseVictim(evictable, incoming);
}

void ClockCoordinator::CompleteMiss(ThreadSlot* /*slot*/, PageId page,
                                    FrameId frame) {
  ContentionLockGuard guard(lock_);
  policy_->AssertExclusiveAccess();
  policy_->OnMiss(page, frame);
}

bool ClockCoordinator::OnErase(ThreadSlot* /*slot*/, PageId page,
                               FrameId frame) {
  ContentionLockGuard guard(lock_);
  policy_->AssertExclusiveAccess();
  const bool resident = policy_->IsResident(page);
  if (resident) policy_->OnErase(page, frame);
  return resident;
}

void ClockCoordinator::FlushSlot(ThreadSlot* /*slot*/) {}

}  // namespace bpw
