// AccessQueue: the per-thread FIFO queue at the heart of BP-Wrapper
// (paper Fig. 4: `Page *Queue[S]` plus `Tail`). Records page accesses that
// have happened but whose replacement-algorithm bookkeeping is deferred.
//
// Single-producer, single-consumer-is-the-producer: only the owning thread
// touches it, so no synchronization is needed — that is the entire point
// ("Recording access information into private FIFO queues incurs the least
// synchronization and coherence cost", §III-A).
#pragma once

#include <cstddef>
#include <vector>

#include "util/types.h"

namespace bpw {

class AccessQueue {
 public:
  /// One recorded page access: the frame the page was found in plus the
  /// page id, kept so the commit can re-validate the pair against the
  /// buffer pool's current tags (paper §IV-B: "we first compare the
  /// BufferTag in the entry against the BufferTag in the meta-data").
  struct Entry {
    PageId page = kInvalidPageId;
    FrameId frame = kInvalidFrameId;
  };

  explicit AccessQueue(size_t capacity)
      : entries_(capacity > 0 ? capacity : 1) {}

  /// Appends an access. Requires !full().
  void Record(PageId page, FrameId frame) {
    entries_[tail_] = Entry{page, frame};
    ++tail_;
  }

  bool full() const { return tail_ == entries_.size(); }
  bool empty() const { return tail_ == 0; }
  size_t size() const { return tail_; }
  size_t capacity() const { return entries_.size(); }

  /// The recorded entries, in arrival order.
  const Entry* data() const { return entries_.data(); }
  const Entry& operator[](size_t i) const { return entries_[i]; }

  /// Empties the queue (after a commit).
  void Clear() { tail_ = 0; }

 private:
  std::vector<Entry> entries_;
  size_t tail_ = 0;
};

}  // namespace bpw
