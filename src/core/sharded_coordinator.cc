#include "core/sharded_coordinator.h"

#include <atomic>
#include <cassert>

#include "obs/contention_profiler.h"
#include "obs/trace_recorder.h"
#include "sync/prefetch.h"
#include "testing/schedule_point.h"
#include "util/clock.h"
#include "util/fingerprint.h"
#include "util/logging.h"

namespace bpw {


ShardedCoordinator::ShardedCoordinator(std::unique_ptr<ShardedPolicy> policy,
                                       Options options)
    : policy_(std::move(policy)),
      options_(options),
      stamps_(policy_->num_frames()),
      metrics_source_(&obs::MetricsRegistry::Default(),
                      [this](obs::MetricsSnapshot& snap) {
                        AppendLockMetrics(snap, lock_stats());
                        snap.Add("coord.commit_batches",
                                 static_cast<double>(commit_batches()));
                        snap.Add("coord.committed_entries",
                                 static_cast<double>(committed_entries()));
                        snap.Add("coord.stale_commits",
                                 static_cast<double>(stale_commits()));
                        snap.Add("coord.hit_drops",
                                 static_cast<double>(hit_drops()));
                        snap.Add("coord.shard_rebalances",
                                 static_cast<double>(shard_rebalances()));
                        snap.Add("coord.borrow_evictions",
                                 static_cast<double>(borrow_evictions()));
                      }) {
  if (options_.queue_size == 0) options_.queue_size = 1;
  const size_t num_shards = policy_->shard_count();
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>(options_.instrumentation);
    shard->policy = policy_->shard(i);
    shard->index = i;
    // All shard locks share one profiler row: the report cares about the
    // role (per-shard policy lock), not the shard index. The hit path's
    // zero-acquisition claim is asserted against exactly this site.
    shard->lock.BindProfSite(BPW_PROF_SITE("sharded.shard_lock"));
    shards_.push_back(std::move(shard));
  }
}

ShardedCoordinator::~ShardedCoordinator() {
  MutexGuard guard(slots_mu_);
  if (!slots_.empty()) {
    BPW_LOG_ERROR << "ShardedCoordinator destroyed with " << slots_.size()
                  << " live thread slots";
  }
}

ShardedCoordinator::Slot::Slot(ShardedCoordinator* owner, size_t num_shards,
                               size_t queue_size)
    : owner_(owner) {
  rings.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) rings.emplace_back(queue_size);
}

ShardedCoordinator::Slot::~Slot() {
  // A thread unregistering with queued accesses commits them so no history
  // is silently lost.
  bool pending = false;
  for (const Ring& ring : rings) {
    if (!ring.empty()) pending = true;
  }
  if (pending) owner_->FlushSlot(this);
  MutexGuard guard(owner_->slots_mu_);
  owner_->slots_.erase(this);
}

std::unique_ptr<Coordinator::ThreadSlot> ShardedCoordinator::RegisterThread() {
  auto slot =
      std::make_unique<Slot>(this, shards_.size(), options_.queue_size);
  {
    MutexGuard guard(slots_mu_);
    slots_.insert(slot.get());
  }
  return slot;
}

void ShardedCoordinator::OnHit(ThreadSlot* base_slot, PageId page,
                               FrameId frame) {
  auto* slot = static_cast<Slot*>(base_slot);
  const size_t shard = policy_->ShardFor(page);
  BPW_SCHEDULE_POINT("sharded.on_hit");
  // Private ring append: drop-oldest on overflow so the freshest history
  // is what eventually commits. No threshold check, no TryLock, no
  // fallback Lock — the hit path cannot touch a lock by construction.
  if (slot->rings[shard].Push(page, frame)) {
    hit_drops_.fetch_add(1, std::memory_order_relaxed);
  }
  StampHit(page, frame);
}

void ShardedCoordinator::StampHit(PageId page, FrameId frame) {
  if (frame >= stamps_.size()) return;
  StampSlot& stamp = stamps_[frame];
  uint64_t version = stamp.version.load(std::memory_order_relaxed);
  if (version & 1) return;  // another writer mid-flight: skip, never wait
  if (!stamp.version.compare_exchange_strong(version, version + 1,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
    return;  // lost the claim race: skip — losing a stamp is harmless
  }
  stamp.page.store(page, std::memory_order_relaxed);
  stamp.tick.store(hit_ticks_.fetch_add(1, std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  stamp.version.store(version + 2, std::memory_order_release);
}

void ShardedCoordinator::PreloadStampVersionForTest(FrameId frame,
                                                    uint64_t version) {
  if (frame >= stamps_.size()) return;
  stamps_[frame].version.store(version, std::memory_order_release);
}

bool ShardedCoordinator::ReadStamp(FrameId frame, PageId* page,
                                   uint64_t* tick) const {
  if (frame >= stamps_.size()) return false;
  const StampSlot& stamp = stamps_[frame];
  for (int attempt = 0; attempt < 64; ++attempt) {
    const uint64_t v1 = stamp.version.load(std::memory_order_acquire);
    if (v1 == 0) return false;  // never stamped
    if (v1 & 1) continue;       // write in flight: retry
    const PageId snapshot_page = stamp.page.load(std::memory_order_relaxed);
    const uint64_t snapshot_tick = stamp.tick.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (stamp.version.load(std::memory_order_relaxed) != v1) continue;
    *page = snapshot_page;
    *tick = snapshot_tick;
    return true;
  }
  return false;
}

void ShardedCoordinator::PrefetchForCommit(const Shard& shard,
                                           const Ring& ring) const {
  // Touch the shard's lock word first (it is needed soonest), then the
  // policy node of every queued frame. All reads; cannot corrupt shared
  // state (§III-B).
  PrefetchWrite(&shard.lock);
  for (size_t i = 0; i < ring.size(); ++i) {
    shard.policy->PrefetchHint(ring.At(i).frame);
  }
}

void ShardedCoordinator::CommitShardLocked(Shard& shard, Ring& ring) {
  // REQUIRES(shard.lock): the shard's lock is what serializes access to
  // its policy instance — the per-shard capability.
  shard.policy->AssertExclusiveAccess();
  BPW_PROF_PHASE("commit");
  const bool trace = obs::TraceEnabled();
  // bpw-lint-allow(clock-read-in-critical-section)
  const uint64_t commit_start = trace ? NowNanos() : 0;
  uint64_t stale = 0;
  const size_t n = ring.size();
  {
    BPW_PROF_PHASE("replay");
    for (size_t i = 0; i < n; ++i) {
      const Ring::Entry& entry = ring.At(i);
      // §IV-B: skip entries whose buffer page was invalidated or replaced
      // between recording and committing.
      if (!TagStillValid(entry.page, entry.frame)) {
        ++stale;
        continue;
      }
      shard.policy->OnHit(entry.page, entry.frame);
      shard.last_committed_page = entry.page;
      shard.last_committed_frame = entry.frame;
    }
    ring.Clear();
  }
  if (n > 0) {
    BPW_PROF_PHASE("bookkeeping");
    // bpw-lint-allow(post-commit-under-lock)
    commit_batches_.fetch_add(1, std::memory_order_relaxed);
    // bpw-lint-allow(post-commit-under-lock)
    committed_entries_.fetch_add(n - stale, std::memory_order_relaxed);
    if (stale > 0) {
      // bpw-lint-allow(post-commit-under-lock)
      stale_commits_.fetch_add(stale, std::memory_order_relaxed);
    }
    if (trace) {
      // bpw-lint-allow(clock-read-in-critical-section)
      const uint64_t commit_end = NowNanos();
      // bpw-lint-allow(post-commit-under-lock)
      obs::TraceEmit(obs::TraceEventKind::kBatchCommit, commit_start,
                     commit_end - commit_start, n);
    }
  }
  // Rebalance cadence. Counted per commit *call* (not per non-empty batch)
  // so the model checker's tiny runs still reach the exchange.
  if (options_.rebalance_interval > 0 && shards_.size() > 1) {
    if (++shard.commits_since_rebalance >= options_.rebalance_interval) {
      shard.commits_since_rebalance = 0;
      if (policy_->RebalanceSupported()) RebalanceLocked(shard);
      if (options_.test_shard_double_track) DoubleTrackLocked(shard);
    }
  }
}

void ShardedCoordinator::RebalanceLocked(Shard& shard) {
  shard.policy->AssertExclusiveAccess();
  // Publish before reading peers, so two shards rebalancing concurrently
  // both blend in each other's freshest export.
  shard.rebalance_signal.store(shard.policy->RebalanceExport(),
                               std::memory_order_release);
  shard.signal_valid.store(true, std::memory_order_release);
  uint64_t sum = 0;
  uint64_t count = 0;
  for (const auto& peer : shards_) {
    if (!peer->signal_valid.load(std::memory_order_acquire)) continue;
    sum += peer->rebalance_signal.load(std::memory_order_acquire);
    ++count;
  }
  // count >= 1: this shard published above.
  shard.policy->RebalanceApply(sum / count);
  // bpw-lint-allow(post-commit-under-lock)
  shard_rebalances_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedCoordinator::DoubleTrackLocked(Shard& shard) {
  // MUTATION (tests only): re-register this shard's last committed page
  // with the next shard, so one page is resident in two shards — the bug a
  // cross-shard rebalance that migrates a page without unregistering it
  // from the source would introduce. TryLock only: a mutation must never
  // add a real deadlock (a plant is skipped if the neighbor is busy).
  // Claim the single plant record atomically: two shards committing
  // concurrently must not both plant, or the record loses the first
  // replica's identity and that stale pair becomes invisible to the
  // shield. Released by MaybeReleaseMutationRecord once both copies of
  // the previous plant are resolved.
  if (mut_record_busy_.exchange(true, std::memory_order_acq_rel)) return;
  const PageId page = shard.last_committed_page;
  const FrameId frame = shard.last_committed_frame;
  if (page == kInvalidPageId || !TagStillValid(page, frame)) {
    mut_record_busy_.store(false, std::memory_order_release);
    return;
  }
  // The tag alone is not proof of a home copy: a stale hit replay during
  // the page's own in-flight re-miss can record (page, frame) with the tag
  // already re-bound but the home registration still pending. Planting then
  // would set mut_home_live_ for a copy that does not exist, and the shield
  // would later clear it against the wrong registration.
  shard.policy->AssertExclusiveAccess();
  if (!shard.policy->IsResident(page)) {
    mut_record_busy_.store(false, std::memory_order_release);
    return;
  }
  Shard& other = *shards_[(shard.index + 1) % shards_.size()];
  BPW_SCHEDULE_POINT("sharded.double_track");
  if (!other.lock.TryLock()) {
    mut_record_busy_.store(false, std::memory_order_release);
    return;
  }
  ContentionLockAdoptGuard guard(other.lock);
  other.policy->AssertExclusiveAccess();
  if (other.policy->IsResident(page) ||
      other.policy->resident_count() >= policy_->num_frames()) {
    mut_record_busy_.store(false, std::memory_order_release);
    return;
  }
  MutScrubFrameLocked(other, frame);
  other.policy->OnMiss(page, frame);
  MutTrackedLocked(other)[frame] = page;
  mut_page_.store(page, std::memory_order_relaxed);
  mut_frame_.store(frame, std::memory_order_relaxed);
  mut_replica_shard_.store(other.index, std::memory_order_relaxed);
  mut_home_live_.store(true, std::memory_order_release);
  mut_replica_live_.store(true, std::memory_order_release);
}

void ShardedCoordinator::ShieldDeliveryLocked(Shard& shard, PageId incoming,
                                              FrameId frame) {
  // A delivery of (incoming, frame) means the pool just bound that frame —
  // so any copy of the planted page this shard still tracks at that frame
  // (or for that page) is stale. Erase it before OnMiss so the policy's
  // own structures stay sound; the *conservation* damage (the copy in the
  // other shard) is untouched.
  const bool replica_live = mut_replica_live_.load(std::memory_order_acquire);
  const bool home_live = mut_home_live_.load(std::memory_order_acquire);
  if (!replica_live && !home_live) return;
  const PageId page = mut_page_.load(std::memory_order_relaxed);
  const FrameId planted_frame = mut_frame_.load(std::memory_order_relaxed);
  if (frame != planted_frame && incoming != page) return;
  shard.policy->AssertExclusiveAccess();
  // Erase on pair match at ANY shard, not just the one whose liveness flag
  // is set: the pool is binding frame→incoming right now, so a copy of the
  // planted pair held here is stale no matter which flag survived. (The one
  // exception — this delivery IS the planted pair, re-registered after a
  // lost eviction race — degenerates to a harmless erase-then-reinsert.)
  if (shard.policy->IsResident(page)) {
    shard.policy->OnErase(page, planted_frame);
    auto& tracked = MutTrackedLocked(shard);
    if (planted_frame < tracked.size() && tracked[planted_frame] == page) {
      tracked[planted_frame] = kInvalidPageId;
    }
  }
  if (replica_live &&
      shard.index == mut_replica_shard_.load(std::memory_order_relaxed)) {
    mut_replica_live_.store(false, std::memory_order_release);
  }
  if (home_live && shard.index == policy_->ShardFor(page)) {
    mut_home_live_.store(false, std::memory_order_release);
  }
  MaybeReleaseMutationRecord();
}

void ShardedCoordinator::NoteVictimForMutation(size_t shard_index, PageId page,
                                               FrameId frame) {
  // A shard's ChooseVictim detaches the chosen pair from its bookkeeping;
  // if it was one of the planted page's two copies, that copy is gone.
  const bool replica_live = mut_replica_live_.load(std::memory_order_acquire);
  const bool home_live = mut_home_live_.load(std::memory_order_acquire);
  if (!replica_live && !home_live) return;
  if (page != mut_page_.load(std::memory_order_relaxed) ||
      frame != mut_frame_.load(std::memory_order_relaxed)) {
    return;
  }
  if (replica_live &&
      shard_index == mut_replica_shard_.load(std::memory_order_relaxed)) {
    // The pool may ACCEPT this stale victim: if the page was re-fetched
    // into the same frame, the pair's tag is live again and re-validation
    // passes, so the pool evicts the page underneath the home shard and
    // orphans its registration. Re-arm the home flag unconditionally
    // (checking the tag here would race the pool's own re-validation) and
    // before releasing the replica one, so the record never reads as fully
    // resolved mid-update: the next delivery matching the pair sheds the
    // orphan, and replanting stays blocked until it does.
    mut_home_live_.store(true, std::memory_order_release);
    mut_replica_live_.store(false, std::memory_order_release);
  } else if (home_live && shard_index == policy_->ShardFor(page)) {
    mut_home_live_.store(false, std::memory_order_release);
    MaybeReleaseMutationRecord();
  }
}

void ShardedCoordinator::MaybeReleaseMutationRecord() {
  if (!mut_replica_live_.load(std::memory_order_acquire) &&
      !mut_home_live_.load(std::memory_order_acquire)) {
    mut_record_busy_.store(false, std::memory_order_release);
  }
}

std::vector<PageId>& ShardedCoordinator::MutTrackedLocked(Shard& shard) {
  auto& tracked = shard.mut_tracked_by_frame;
  if (tracked.empty()) {
    tracked.assign(policy_->num_frames(), kInvalidPageId);
  }
  return tracked;
}

void ShardedCoordinator::MutScrubFrameLocked(Shard& shard, FrameId frame) {
  shard.policy->AssertExclusiveAccess();
  auto& tracked = MutTrackedLocked(shard);
  if (frame >= tracked.size()) return;
  const PageId prev = tracked[frame];
  if (prev == kInvalidPageId) return;
  shard.policy->OnErase(prev, frame);
  tracked[frame] = kInvalidPageId;
}

StatusOr<Coordinator::Victim> ShardedCoordinator::ChooseVictim(
    ThreadSlot* base_slot, const EvictableFn& evictable, PageId incoming) {
  auto* slot = static_cast<Slot*>(base_slot);
  const size_t home = policy_->ShardFor(incoming);
  const size_t num_shards = shards_.size();
  // Home shard first (its ghost lists know `incoming`); on exhaustion
  // borrow from the peers round-robin. One shard lock at a time, released
  // before the next is tried — never two held, so borrowing cannot
  // deadlock against any other lock order in the system.
  for (size_t k = 0; k < num_shards; ++k) {
    const size_t index = (home + k) % num_shards;
    Shard& shard = *shards_[index];
    Ring& ring = slot->rings[index];
    BPW_SCHEDULE_POINT("sharded.choose_victim");
    if (options_.prefetch) PrefetchForCommit(shard, ring);
    ContentionLockGuard guard(shard.lock);
    shard.policy->AssertExclusiveAccess();
    BPW_PROF_PHASE("choose_victim");
    // A miss commits this shard's pending accesses first so its policy
    // decides with the freshest history (Fig. 4 commit-before-victim,
    // per shard).
    CommitShardLocked(shard, ring);
    auto victim = shard.policy->ChooseVictim(evictable, incoming);
    if (victim.ok()) {
      slot->victim_shard = index;
      slot->has_victim_shard = true;
      if (k > 0) {
        // bpw-lint-allow(post-commit-under-lock)
        borrow_evictions_.fetch_add(1, std::memory_order_relaxed);
      }
      if (MutationActive()) {
        auto& tracked = MutTrackedLocked(shard);
        const FrameId vf = victim.value().frame;
        if (vf < tracked.size() && tracked[vf] == victim.value().page) {
          tracked[vf] = kInvalidPageId;
        }
      }
      if (options_.test_shard_double_track) {
        NoteVictimForMutation(index, victim.value().page,
                              victim.value().frame);
      }
      return victim;
    }
    if (victim.status().code() != StatusCode::kResourceExhausted) {
      return victim;  // real error: propagate, don't mask by borrowing
    }
  }
  return Status::ResourceExhausted("no evictable frame in any shard");
}

void ShardedCoordinator::CompleteMiss(ThreadSlot* base_slot, PageId page,
                                      FrameId frame) {
  auto* slot = static_cast<Slot*>(base_slot);
  size_t index = policy_->ShardFor(page);
  if (options_.test_shard_stale_eviction) {
    // MUTATION (tests only): the classic memoized-shard-index bug — the
    // thread caches ShardFor() and never invalidates the cache, so every
    // delivery is routed to the *previous* miss's home shard (wrong for
    // ~(N-1)/N of deliveries).
    const size_t cached = slot->mut_stale_home;
    slot->mut_stale_home = index;
    if (cached != SIZE_MAX) index = cached;
  }
  Shard& shard = *shards_[index];
  BPW_SCHEDULE_POINT("sharded.complete_miss");
  ContentionLockGuard guard(shard.lock);
  shard.policy->AssertExclusiveAccess();
  CommitShardLocked(shard, slot->rings[index]);
  if (options_.test_shard_double_track) {
    ShieldDeliveryLocked(shard, page, frame);
  }
  if (MutationActive()) {
    // Mutated routing can aim two registrations at one (shard, frame);
    // shed whatever this shard still tracks at the frame so the policy's
    // intrusive structures survive the collision (only the *books* are
    // supposed to be corrupted).
    MutScrubFrameLocked(shard, frame);
    if (!TagStillValid(page, frame)) {
      // A rejected victim re-registered after a concurrent evictor already
      // rebound its frame: the pair is provably dead, and registering it
      // would fork this shard's books from the pool with nothing left to
      // reconcile them.
      return;
    }
    MutTrackedLocked(shard)[frame] = page;
  }
  shard.policy->OnMiss(page, frame);
}

bool ShardedCoordinator::OnErase(ThreadSlot* base_slot, PageId page,
                                 FrameId frame) {
  auto* slot = static_cast<Slot*>(base_slot);
  const size_t index = policy_->ShardFor(page);
  Shard& shard = *shards_[index];
  ContentionLockGuard guard(shard.lock);
  shard.policy->AssertExclusiveAccess();
  CommitShardLocked(shard, slot->rings[index]);
  const bool resident = shard.policy->IsResident(page);
  if (options_.test_shard_double_track) {
  }
  if (resident) shard.policy->OnErase(page, frame);
  if (MutationActive() && resident) {
    auto& tracked = MutTrackedLocked(shard);
    if (frame < tracked.size() && tracked[frame] == page) {
      tracked[frame] = kInvalidPageId;
    }
  }
  if (options_.test_shard_double_track && resident &&
      page == mut_page_.load(std::memory_order_relaxed) &&
      mut_home_live_.load(std::memory_order_acquire)) {
    mut_home_live_.store(false, std::memory_order_release);
    MaybeReleaseMutationRecord();
  }
  return resident;
}

void ShardedCoordinator::FlushSlot(ThreadSlot* base_slot) {
  auto* slot = static_cast<Slot*>(base_slot);
  for (size_t i = 0; i < shards_.size(); ++i) {
    Ring& ring = slot->rings[i];
    if (ring.empty()) continue;
    Shard& shard = *shards_[i];
    ContentionLockGuard guard(shard.lock);
    CommitShardLocked(shard, ring);
  }
}

LockStats ShardedCoordinator::lock_stats() const {
  LockStats total;
  for (const auto& shard : shards_) total += shard->lock.stats();
  return total;
}

void ShardedCoordinator::ResetLockStats() {
  for (auto& shard : shards_) shard->lock.ResetStats();
}

uint64_t ShardedCoordinator::StateFingerprint() const {
  // Quiesced-by-contract (model-checker use only: every worker parked).
  // Stamps are deliberately excluded: they are advisory — nothing reads
  // them for replacement decisions — so two runs that differ only in
  // which racing hit won a stamp CAS are the same logical state.
  Fingerprint fp;
  for (size_t i = 0; i < policy_->shard_count(); ++i) {
    fp.Combine(policy_->shard(i)->StateFingerprint());
  }
  return fp.value();
}

uint64_t ShardedCoordinator::SlotStateFingerprint(
    const ThreadSlot* base_slot) const {
  const auto* slot = static_cast<const Slot*>(base_slot);
  Fingerprint fp;
  for (const Ring& ring : slot->rings) {
    fp.Combine(ring.size());
    for (size_t i = 0; i < ring.size(); ++i) {
      fp.Combine(ring.At(i).page);
      fp.Combine(ring.At(i).frame);
    }
  }
  return fp.value();
}

Status ShardedCoordinator::CheckQuiescedInvariants() const {
  // The seqlock protocol must never park a stamp mid-write: a writer that
  // claimed (odd version) always publishes (even) before returning.
  for (size_t frame = 0; frame < stamps_.size(); ++frame) {
    if (stamps_[frame].version.load(std::memory_order_acquire) & 1) {
      return Status::Corruption(
          "hit stamp for frame " + std::to_string(frame) +
          " left in torn state (odd seqlock version)");
    }
  }
  // The cross-shard conservation oracle, against the pool's frame tags.
  if (frame_tags_ == nullptr) return Status::OK();
  policy_->AssertExclusiveAccess();
  return policy_->CheckShardConservation(
      [this](FrameId frame) {
        return frame_tags_[frame].load(std::memory_order_acquire);
      },
      frame_tag_count_);
}

}  // namespace bpw
