#include "core/serialized_coordinator.h"

#include "sync/prefetch.h"
#include "testing/schedule_point.h"

namespace bpw {

SerializedCoordinator::SerializedCoordinator(
    std::unique_ptr<ReplacementPolicy> policy, Options options)
    : policy_(std::move(policy)),
      options_(options),
      lock_(options.instrumentation),
      metrics_source_(&obs::MetricsRegistry::Default(),
                      [this](obs::MetricsSnapshot& snap) {
                        AppendLockMetrics(snap, lock_.stats());
                      }) {}

std::unique_ptr<Coordinator::ThreadSlot>
SerializedCoordinator::RegisterThread() {
  return std::make_unique<Slot>();
}

void SerializedCoordinator::OnHit(ThreadSlot* /*slot*/, PageId page,
                                  FrameId frame) {
  BPW_SCHEDULE_POINT("serialized.on_hit");
  if (options_.prefetch) {
    // Warm the processor cache with the lock word and the policy node this
    // critical section will touch, before acquiring the lock (§III-B).
    PrefetchWrite(&lock_);
    policy_->PrefetchHint(frame);
  }
  lock_.Lock();
  policy_->OnHit(page, frame);
  lock_.Unlock();
}

StatusOr<Coordinator::Victim> SerializedCoordinator::ChooseVictim(
    ThreadSlot* /*slot*/, const EvictableFn& evictable, PageId incoming) {
  lock_.Lock();
  auto victim = policy_->ChooseVictim(evictable, incoming);
  lock_.Unlock();
  return victim;
}

void SerializedCoordinator::CompleteMiss(ThreadSlot* /*slot*/, PageId page,
                                         FrameId frame) {
  lock_.Lock();
  policy_->OnMiss(page, frame);
  lock_.Unlock();
}

bool SerializedCoordinator::OnErase(ThreadSlot* /*slot*/, PageId page,
                                    FrameId frame) {
  lock_.Lock();
  const bool resident = policy_->IsResident(page);
  if (resident) policy_->OnErase(page, frame);
  lock_.Unlock();
  return resident;
}

void SerializedCoordinator::FlushSlot(ThreadSlot* /*slot*/) {
  // Nothing buffered: every access was committed eagerly.
}

}  // namespace bpw
