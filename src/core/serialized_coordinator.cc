#include "core/serialized_coordinator.h"

#include "obs/contention_profiler.h"
#include "sync/prefetch.h"
#include "testing/schedule_point.h"

namespace bpw {

SerializedCoordinator::SerializedCoordinator(
    std::unique_ptr<ReplacementPolicy> policy, Options options)
    : policy_(std::move(policy)),
      options_(options),
      lock_(options.instrumentation),
      metrics_source_(&obs::MetricsRegistry::Default(),
                      [this](obs::MetricsSnapshot& snap) {
                        AppendLockMetrics(snap, lock_.stats());
                      }) {
  lock_.BindProfSite(BPW_PROF_SITE("serialized.policy_lock"));
}

std::unique_ptr<Coordinator::ThreadSlot>
SerializedCoordinator::RegisterThread() {
  return std::make_unique<Slot>();
}

void SerializedCoordinator::OnHit(ThreadSlot* /*slot*/, PageId page,
                                  FrameId frame) {
  BPW_SCHEDULE_POINT("serialized.on_hit");
  if (options_.prefetch) {
    // Warm the processor cache with the lock word and the policy node this
    // critical section will touch, before acquiring the lock (§III-B).
    PrefetchWrite(&lock_);
    policy_->PrefetchHint(frame);
  }
  ContentionLockGuard guard(lock_);
  policy_->AssertExclusiveAccess();
  policy_->OnHit(page, frame);
}

StatusOr<Coordinator::Victim> SerializedCoordinator::ChooseVictim(
    ThreadSlot* /*slot*/, const EvictableFn& evictable, PageId incoming) {
  ContentionLockGuard guard(lock_);
  policy_->AssertExclusiveAccess();
  return policy_->ChooseVictim(evictable, incoming);
}

void SerializedCoordinator::CompleteMiss(ThreadSlot* /*slot*/, PageId page,
                                         FrameId frame) {
  ContentionLockGuard guard(lock_);
  policy_->AssertExclusiveAccess();
  policy_->OnMiss(page, frame);
}

bool SerializedCoordinator::OnErase(ThreadSlot* /*slot*/, PageId page,
                                    FrameId frame) {
  ContentionLockGuard guard(lock_);
  policy_->AssertExclusiveAccess();
  const bool resident = policy_->IsResident(page);
  if (resident) policy_->OnErase(page, frame);
  return resident;
}

void SerializedCoordinator::FlushSlot(ThreadSlot* /*slot*/) {
  // Nothing buffered: every access was committed eagerly.
}

}  // namespace bpw
