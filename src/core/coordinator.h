// Coordinator: the concurrency-control seam between the buffer pool and a
// replacement policy.
//
// The paper's whole contribution lives at this seam. A policy is
// single-threaded code (see replacement_policy.h); a Coordinator decides
// *when and under which lock* the policy's bookkeeping runs:
//
//   SerializedCoordinator   — lock per access: the conventional DBMS design
//                             the paper calls "pg2Q" (optionally with the
//                             prefetch technique: "pgPre").
//   BpWrapperCoordinator    — the paper's framework: per-thread FIFO queues,
//                             batched commits via TryLock, optional
//                             prefetching ("pgBat" / "pgBatPre").
//   ClockCoordinator        — lock-free reference-bit hits for CLOCK/GCLOCK:
//                             the paper's scalability yardstick ("pgClock").
//
// Thread model: each worker thread registers once and gets a ThreadSlot; all
// per-thread state (the BP-Wrapper FIFO queue) hangs off the slot, so the
// coordinator itself stays wait-free on the recording path.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "policy/replacement_policy.h"
#include "sync/contention_lock.h"
#include "util/status.h"
#include "util/types.h"

namespace bpw {

/// Contributes a lock's counters to a metrics snapshot under the canonical
/// "lock." names. Every coordinator registers a metric source built on this
/// so the stats sampler sees policy-lock behaviour without any extra
/// hot-path cost (the lock already maintains these atomics).
inline void AppendLockMetrics(obs::MetricsSnapshot& snap,
                              const LockStats& stats) {
  snap.Add("lock.acquisitions", static_cast<double>(stats.acquisitions));
  snap.Add("lock.contentions", static_cast<double>(stats.contentions));
  snap.Add("lock.trylock_failures",
           static_cast<double>(stats.trylock_failures));
  snap.Add("lock.hold_nanos", static_cast<double>(stats.hold_nanos));
  snap.Add("lock.wait_nanos", static_cast<double>(stats.wait_nanos));
}

class Coordinator {
 public:
  using Victim = ReplacementPolicy::Victim;
  using EvictableFn = ReplacementPolicy::EvictableFn;

  /// Per-thread state handle. Obtained once per worker thread via
  /// RegisterThread(); not shareable between threads.
  class ThreadSlot {
   public:
    virtual ~ThreadSlot() = default;
  };

  virtual ~Coordinator() = default;

  /// Registers the calling worker thread. The returned slot must be passed
  /// to every subsequent call from that thread.
  virtual std::unique_ptr<ThreadSlot> RegisterThread() = 0;

  /// Records a buffer hit (page resident in frame). This is the hot path:
  /// BP-Wrapper makes it lock-free in the common case.
  virtual void OnHit(ThreadSlot* slot, PageId page, FrameId frame) = 0;

  /// Miss path, phase 1: select and detach a victim. `incoming` is the
  /// page being faulted in.
  virtual StatusOr<Victim> ChooseVictim(ThreadSlot* slot,
                                        const EvictableFn& evictable,
                                        PageId incoming) = 0;

  /// Miss path, phase 2: after the I/O, register `page` as resident in
  /// `frame`.
  virtual void CompleteMiss(ThreadSlot* slot, PageId page, FrameId frame) = 0;

  /// Forced removal (invalidation / drop). Test-and-erase: the page is
  /// removed only if the policy still has it resident, and the return value
  /// says whether it did. `false` means an in-flight eviction has already
  /// detached the page (ChooseVictim ran, the evictor has not finished) —
  /// the caller must back off and let the evictor decide the frame's fate,
  /// or the two removals race and policy/pool bookkeeping diverge.
  virtual bool OnErase(ThreadSlot* slot, PageId page, FrameId frame) = 0;

  /// Commits any state buffered in this thread's slot (BP-Wrapper queue).
  virtual void FlushSlot(ThreadSlot* slot) = 0;

  /// Aggregated statistics of the policy lock (acquisitions, contentions,
  /// hold/wait time). The paper's "average lock contention" divides
  /// .contentions by total page accesses.
  virtual LockStats lock_stats() const = 0;
  virtual void ResetLockStats() = 0;

  /// The wrapped policy. Non-const access is for tests and quiesced phases
  /// only; callers must guarantee no concurrent coordinator traffic.
  virtual const ReplacementPolicy& policy() const = 0;
  virtual ReplacementPolicy* mutable_policy() = 0;

  /// Human-readable coordinator name ("serialized", "bp-wrapper", ...).
  virtual std::string name() const = 0;

  // --- Model-checker support (src/mc) -------------------------------------
  // Structural fingerprints of coordinator-internal state (shared queues,
  // commit buffers) and per-slot state (the BP-Wrapper FIFO), used for
  // visited-state dedup. Quiesced callers only: the cooperative scheduler
  // holds every worker parked while fingerprinting. A coordinator that does
  // not implement fingerprinting reports unsupported and the explorer
  // disables dedup for the scenario (sound, just slower).

  /// Whether StateFingerprint()/SlotStateFingerprint() capture this
  /// coordinator's full logical state (including its policy's).
  virtual bool StateFingerprintSupported() const { return false; }

  /// Fingerprint of coordinator + policy state. 0 when unsupported.
  virtual uint64_t StateFingerprint() const { return 0; }

  /// Fingerprint of one thread's slot-local state (uncommitted queue
  /// entries). 0 when slots carry no state.
  virtual uint64_t SlotStateFingerprint(const ThreadSlot* slot) const {
    (void)slot;
    return 0;
  }

  /// Coordinator-internal conservation checks, run by
  /// BufferPool::CheckIntegrity() while the pool is quiesced (no thread is
  /// inside any coordinator call). The combining coordinator proves here
  /// that every published batch was applied exactly once
  /// (published == drained + still-pending); coordinators without internal
  /// hand-off state have nothing to check.
  virtual Status CheckQuiescedInvariants() const { return Status::OK(); }

  /// Binds the frame→page tag array the buffer pool maintains, used by
  /// BP-Wrapper to re-validate queued accesses at commit time (paper
  /// §IV-B). Optional: coordinators work (with slightly more stale commits)
  /// without it.
  void BindFrameTags(const std::atomic<PageId>* tags, size_t count) {
    frame_tags_ = tags;
    frame_tag_count_ = count;
  }

 protected:
  /// True if the tag array says `frame` still holds `page` (or no tag array
  /// is bound, in which case the policy's own staleness check is the only
  /// filter).
  bool TagStillValid(PageId page, FrameId frame) const {
    if (frame_tags_ == nullptr) return true;
    if (frame >= frame_tag_count_) return false;
    return frame_tags_[frame].load(std::memory_order_acquire) == page;
  }

  const std::atomic<PageId>* frame_tags_ = nullptr;
  size_t frame_tag_count_ = 0;
};

}  // namespace bpw
