// BpWrapperCoordinator: the paper's contribution, verbatim.
//
// Implements the framework of Fig. 4 around an *unmodified* replacement
// policy:
//
//  - Each thread records hits into its private AccessQueue.
//  - Once `batch_threshold` accesses accumulate, the thread makes a
//    non-blocking TryLock() attempt; on success it commits the whole queue
//    under one lock-holding period. On failure it simply keeps recording —
//    no blocking, no contention event.
//  - Only when the queue is completely full does the thread fall back to a
//    blocking Lock().
//  - A miss always commits (the policy must run to pick a victim), first
//    draining the thread's queue so the policy sees accesses in order.
//  - With `prefetch` enabled, the thread touches the policy nodes for every
//    queued frame and the lock word immediately before acquiring the lock
//    (§III-B), moving cache warm-up misses outside the critical section.
//
// Commit-time re-validation (§IV-B): each entry's (page, frame) pair is
// checked against the buffer pool's current frame tags; entries whose page
// was evicted or replaced since recording are skipped.
#pragma once

#include <unordered_set>

#include "core/access_queue.h"
#include "core/coordinator.h"
#include "sync/mutex.h"
#include "util/thread_annotations.h"

namespace bpw {

class BpWrapperCoordinator : public Coordinator {
 public:
  struct Options {
    /// S in the paper: per-thread FIFO queue capacity. The paper uses 64.
    size_t queue_size = 64;
    /// T in the paper: accesses accumulated before the TryLock() attempt.
    /// The paper's sensitivity study (Table III) picks 32 (= S/2).
    size_t batch_threshold = 32;
    /// Enable the §III-B prefetching technique (pgBatPre vs pgBat).
    bool prefetch = false;
    LockInstrumentation instrumentation = LockInstrumentation::kCounts;
    /// MUTATION KNOB — tests only. Skips the §IV-B commit-time tag
    /// re-validation, feeding stale (page, frame) pairs straight to the
    /// policy. The policies' own staleness tolerance is the second line of
    /// defence; the mutation tests document that both layers exist.
    bool test_skip_commit_revalidation = false;
    /// MUTATION KNOB — tests only. Skips the "commit queued accesses before
    /// selecting a victim" ordering rule (Fig. 4), making the policy decide
    /// on stale history. Breaks the single-thread equivalence property that
    /// tests/stress/mutation_test.cc asserts the net catches.
    bool test_skip_commit_before_victim = false;
  };

  BpWrapperCoordinator(std::unique_ptr<ReplacementPolicy> policy,
                       Options options);
  explicit BpWrapperCoordinator(std::unique_ptr<ReplacementPolicy> policy)
      : BpWrapperCoordinator(std::move(policy), Options()) {}
  ~BpWrapperCoordinator() override;

  std::unique_ptr<ThreadSlot> RegisterThread() override;
  void OnHit(ThreadSlot* slot, PageId page, FrameId frame) override;
  StatusOr<Victim> ChooseVictim(ThreadSlot* slot, const EvictableFn& evictable,
                                PageId incoming) override;
  void CompleteMiss(ThreadSlot* slot, PageId page, FrameId frame) override;
  bool OnErase(ThreadSlot* slot, PageId page, FrameId frame) override;
  void FlushSlot(ThreadSlot* slot) override;
  LockStats lock_stats() const override { return lock_.stats(); }
  void ResetLockStats() override { lock_.ResetStats(); }
  const ReplacementPolicy& policy() const override { return *policy_; }
  ReplacementPolicy* mutable_policy() override { return policy_.get(); }
  std::string name() const override {
    return options_.prefetch ? "bp-wrapper+pre" : "bp-wrapper";
  }
  bool StateFingerprintSupported() const override {
    return policy_->StateFingerprintSupported();
  }
  uint64_t StateFingerprint() const override BPW_NO_THREAD_SAFETY_ANALYSIS;
  uint64_t SlotStateFingerprint(const ThreadSlot* slot) const override;

  const Options& options() const { return options_; }

  /// Total queued entries skipped at commit because their frame had been
  /// re-used since recording (a measure of §IV-B staleness; tiny in
  /// practice).
  uint64_t stale_commits() const {
    return stale_commits_.load(std::memory_order_relaxed);
  }

  /// Total batch commits performed, and entries committed, for computing
  /// the achieved average batch size.
  uint64_t commit_batches() const {
    return commit_batches_.load(std::memory_order_relaxed);
  }
  uint64_t committed_entries() const {
    return committed_entries_.load(std::memory_order_relaxed);
  }

  /// Times a thread's queue filled completely and it fell back to a
  /// blocking Lock() (Fig. 4 line 13) — the only path on which BP-Wrapper
  /// can still produce a contention event.
  uint64_t lock_fallbacks() const {
    return lock_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  class Slot : public ThreadSlot {
   public:
    Slot(BpWrapperCoordinator* owner, size_t queue_size)
        : owner_(owner), queue(queue_size) {}
    ~Slot() override;

    BpWrapperCoordinator* owner_;
    AccessQueue queue;
  };

  /// Issues prefetches for everything the commit will touch. §III-B demands
  /// this runs *before* lock acquisition (prefetching inside the critical
  /// section would lengthen it, which is the exact pathology the technique
  /// removes), so the contract is EXCLUDES(lock_): calling it while holding
  /// the commit lock is a compile error under -Wthread-safety.
  void PrefetchForCommit(const AccessQueue& queue) const BPW_EXCLUDES(lock_);

  /// Replays the queue into the policy. Caller holds lock_.
  void CommitLocked(AccessQueue& queue) BPW_REQUIRES(lock_)
      BPW_HOLD_EFFECT_OK(clock, "commit-latency trace stamp; one vDSO read "
                                "per batch, only when tracing is on");

  std::unique_ptr<ReplacementPolicy> policy_;
  Options options_;
  ContentionLock lock_;

  std::atomic<uint64_t> stale_commits_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> commit_batches_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> committed_entries_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> lock_fallbacks_{0} BPW_RELAXED_OK("stats counter");

  // Live-slot registry so destruction order errors surface loudly.
  Mutex slots_mu_;
  std::unordered_set<Slot*> slots_ BPW_GUARDED_BY(slots_mu_);

  // Declared last so it unregisters before anything it reads is destroyed.
  obs::ScopedMetricSource metrics_source_;
};

}  // namespace bpw
