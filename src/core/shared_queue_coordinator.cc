#include "core/shared_queue_coordinator.h"

#include <algorithm>

#include "testing/schedule_point.h"

namespace bpw {

SharedQueueCoordinator::SharedQueueCoordinator(
    std::unique_ptr<ReplacementPolicy> policy, Options options)
    : policy_(std::move(policy)),
      options_(options),
      lock_(options.instrumentation),
      metrics_source_(&obs::MetricsRegistry::Default(),
                      [this](obs::MetricsSnapshot& snap) {
                        AppendLockMetrics(snap, lock_.stats());
                        snap.Add("coord.queue_lock_acquisitions",
                                 static_cast<double>(
                                     queue_lock_acquisitions()));
                      }) {
  if (options_.queue_size == 0) options_.queue_size = 1;
  options_.batch_threshold =
      std::clamp<size_t>(options_.batch_threshold, 1, options_.queue_size);
  queue_.reserve(options_.queue_size);
}

std::unique_ptr<Coordinator::ThreadSlot>
SharedQueueCoordinator::RegisterThread() {
  return std::make_unique<Slot>();
}

void SharedQueueCoordinator::CommitLocked() {
  // Swap the shared buffer out under the queue lock, replay outside it
  // (but under the policy lock held by the caller).
  std::vector<AccessQueue::Entry> batch;
  batch.reserve(options_.queue_size);
  queue_lock_.lock();
  batch.swap(queue_);
  queue_lock_.unlock();
  for (const AccessQueue::Entry& entry : batch) {
    if (TagStillValid(entry.page, entry.frame)) {
      policy_->OnHit(entry.page, entry.frame);
    }
  }
}

void SharedQueueCoordinator::OnHit(ThreadSlot* /*slot*/, PageId page,
                                   FrameId frame) {
  // The design flaw the paper called out: every hit synchronizes on the
  // shared queue (and its cache line bounces between processors).
  BPW_SCHEDULE_POINT("shared_queue.record");
  size_t size_after;
  queue_lock_.lock();
  queue_.push_back(AccessQueue::Entry{page, frame});
  size_after = queue_.size();
  queue_lock_.unlock();
  queue_acquisitions_.fetch_add(1, std::memory_order_relaxed);

  if (size_after < options_.batch_threshold) return;
  if (lock_.TryLock()) {
    CommitLocked();
    lock_.Unlock();
    return;
  }
  if (size_after < options_.queue_size) return;
  lock_.Lock();
  CommitLocked();
  lock_.Unlock();
}

StatusOr<Coordinator::Victim> SharedQueueCoordinator::ChooseVictim(
    ThreadSlot* /*slot*/, const EvictableFn& evictable, PageId incoming) {
  lock_.Lock();
  CommitLocked();
  auto victim = policy_->ChooseVictim(evictable, incoming);
  lock_.Unlock();
  return victim;
}

void SharedQueueCoordinator::CompleteMiss(ThreadSlot* /*slot*/, PageId page,
                                          FrameId frame) {
  lock_.Lock();
  CommitLocked();
  policy_->OnMiss(page, frame);
  lock_.Unlock();
}

bool SharedQueueCoordinator::OnErase(ThreadSlot* /*slot*/, PageId page,
                                     FrameId frame) {
  lock_.Lock();
  CommitLocked();
  const bool resident = policy_->IsResident(page);
  if (resident) policy_->OnErase(page, frame);
  lock_.Unlock();
  return resident;
}

void SharedQueueCoordinator::FlushSlot(ThreadSlot* /*slot*/) {
  bool empty;
  queue_lock_.lock();
  empty = queue_.empty();
  queue_lock_.unlock();
  if (empty) return;
  lock_.Lock();
  CommitLocked();
  lock_.Unlock();
}

}  // namespace bpw
