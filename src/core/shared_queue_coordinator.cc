#include "core/shared_queue_coordinator.h"

#include <algorithm>

#include "obs/contention_profiler.h"
#include "testing/schedule_point.h"
#include "util/fingerprint.h"

namespace bpw {

SharedQueueCoordinator::SharedQueueCoordinator(
    std::unique_ptr<ReplacementPolicy> policy, Options options)
    : policy_(std::move(policy)),
      options_(options),
      lock_(options.instrumentation),
      metrics_source_(&obs::MetricsRegistry::Default(),
                      [this](obs::MetricsSnapshot& snap) {
                        AppendLockMetrics(snap, lock_.stats());
                        snap.Add("coord.queue_lock_acquisitions",
                                 static_cast<double>(
                                     queue_lock_acquisitions()));
                      }) {
  if (options_.queue_size == 0) options_.queue_size = 1;
  options_.batch_threshold =
      std::clamp<size_t>(options_.batch_threshold, 1, options_.queue_size);
  queue_.reserve(options_.queue_size);
  // The queue lock is this design's indictment: the profiler shows its
  // per-hit acquisitions next to the policy lock's batched ones.
  lock_.BindProfSite(BPW_PROF_SITE("shared_queue.policy_lock"));
  queue_lock_.BindProfSite(BPW_PROF_SITE("shared_queue.queue_lock"));
}

std::unique_ptr<Coordinator::ThreadSlot>
SharedQueueCoordinator::RegisterThread() {
  return std::make_unique<Slot>();
}

void SharedQueueCoordinator::CommitLocked() {
  // REQUIRES(lock_): the policy lock is what serializes policy access.
  policy_->AssertExclusiveAccess();
  BPW_PROF_PHASE("commit");
  // Swap the shared buffer out under the queue lock, replay outside it
  // (but under the policy lock held by the caller). The member scratch
  // buffer and the queue ping-pong their allocations: after the first few
  // commits no memory is ever allocated while the lock is held (the naive
  // version reserved a fresh vector here every commit, which bpw_lint's
  // critical-section-alloc rule now rejects).
  batch_.clear();
  {
    BPW_PROF_PHASE("queue_drain");
    SpinLockGuard queue_guard(queue_lock_);
    BPW_MC_ACCESS_WRITE("shared_queue.queue", &queue_);
    batch_.swap(queue_);
  }
  {
    BPW_PROF_PHASE("replay");
    for (const AccessQueue::Entry& entry : batch_) {
      if (TagStillValid(entry.page, entry.frame)) {
        policy_->OnHit(entry.page, entry.frame);
      }
    }
  }
}

void SharedQueueCoordinator::CommitRacy() {
  // Same body as CommitLocked, minus the precondition that lock_ is held.
  // The policy's AssertExclusiveAccess fires inside with no ordering lock,
  // which is exactly the race the certifier must report.
  policy_->AssertExclusiveAccess();
  batch_.clear();
  {
    SpinLockGuard queue_guard(queue_lock_);
    BPW_MC_ACCESS_WRITE("shared_queue.queue", &queue_);
    batch_.swap(queue_);
  }
  for (const AccessQueue::Entry& entry : batch_) {
    if (TagStillValid(entry.page, entry.frame)) {
      policy_->OnHit(entry.page, entry.frame);
    }
  }
}

void SharedQueueCoordinator::OnHit(ThreadSlot* /*slot*/, PageId page,
                                   FrameId frame) {
  // The design flaw the paper called out: every hit synchronizes on the
  // shared queue (and its cache line bounces between processors).
  BPW_SCHEDULE_POINT("shared_queue.record");
  size_t size_after;
  {
    SpinLockGuard queue_guard(queue_lock_);
    BPW_MC_ACCESS_WRITE("shared_queue.queue", &queue_);
    queue_.push_back(AccessQueue::Entry{page, frame});
    size_after = queue_.size();
  }
  queue_acquisitions_.fetch_add(1, std::memory_order_relaxed);

  if (size_after < options_.batch_threshold) return;
  if (options_.test_commit_without_lock) {
    CommitRacy();
    return;
  }
  if (lock_.TryLock()) {
    ContentionLockAdoptGuard guard(lock_);
    CommitLocked();
    return;
  }
  if (size_after < options_.queue_size) return;
  ContentionLockGuard guard(lock_);
  CommitLocked();
}

StatusOr<Coordinator::Victim> SharedQueueCoordinator::ChooseVictim(
    ThreadSlot* /*slot*/, const EvictableFn& evictable, PageId incoming) {
  ContentionLockGuard guard(lock_);
  policy_->AssertExclusiveAccess();
  CommitLocked();
  return policy_->ChooseVictim(evictable, incoming);
}

void SharedQueueCoordinator::CompleteMiss(ThreadSlot* /*slot*/, PageId page,
                                          FrameId frame) {
  ContentionLockGuard guard(lock_);
  policy_->AssertExclusiveAccess();
  CommitLocked();
  policy_->OnMiss(page, frame);
}

bool SharedQueueCoordinator::OnErase(ThreadSlot* /*slot*/, PageId page,
                                     FrameId frame) {
  ContentionLockGuard guard(lock_);
  policy_->AssertExclusiveAccess();
  CommitLocked();
  const bool resident = policy_->IsResident(page);
  if (resident) policy_->OnErase(page, frame);
  return resident;
}

uint64_t SharedQueueCoordinator::StateFingerprint() const {
  // Quiesced-by-contract (model-checker use only: every worker parked).
  // Uncommitted queue entries are state — they decide which OnHit replays
  // the next commit performs — as is the policy's own bookkeeping.
  Fingerprint fp;
  for (const AccessQueue::Entry& entry : queue_) {
    fp.Combine(entry.page);
    fp.Combine(entry.frame);
  }
  fp.Combine(policy_->StateFingerprint());
  return fp.value();
}

void SharedQueueCoordinator::FlushSlot(ThreadSlot* /*slot*/) {
  bool empty;
  {
    SpinLockGuard queue_guard(queue_lock_);
    empty = queue_.empty();
  }
  if (empty) return;
  ContentionLockGuard guard(lock_);
  CommitLocked();
}

}  // namespace bpw
