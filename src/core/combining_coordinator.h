// CombiningCoordinator ("pgBat++"): BP-Wrapper batching plus flat combining
// and early lock release.
//
// BP-Wrapper (bp_wrapper.h) already removes most blocking: a thread commits
// its private queue only when a non-blocking TryLock() succeeds. But every
// thread whose TryLock fails keeps its batch to itself and retries later, so
// under heavy load the ContentionLock is still acquired once per batch per
// thread. Flat combining inverts this: a thread first *publishes* its full
// AccessQueue into a per-thread publication slot, then
//
//  - wins the ContentionLock and, in ONE lock-holding period, applies its
//    own batch plus every peer's ready slot (the combiner drains the
//    helpers' work), or
//  - loses the TryLock and spins briefly waiting for the current holder to
//    adopt its published batch (cooperative handoff), returning without
//    ever blocking.
//
// Under saturation one acquisition now retires up to `max_slots` batches
// instead of one, which is where the lock-acquisition counters shrink.
//
// The commit itself is split into two phases:
//
//   apply phase (locked)      — replay own batch, own queue remainder, and
//                               every claimed peer slot into the policy
//   post-commit (lock-free)   — counters, trace emission, and slot
//                               recycling run AFTER lock_.Unlock()
//
// so the critical section contains nothing but policy updates (early lock
// release). The contention profiler separates the phases ("self_commit" vs
// "combine_drain" under "combine") so the shrunken hold window is visible
// in the flamegraph.
//
// Publication-slot protocol (seqlock-style three-state flag):
//
//     kEmpty ──owner publishes──▶ kReady ──combiner claims (under lock_)──▶
//     kDraining ──combiner recycles (after unlock)──▶ kEmpty
//
// The slot buffer is a baton: the owner may write it only in kEmpty, a
// combiner may read it only after claiming kReady→kDraining, and the claim
// transition is only ever made while holding the ContentionLock, so there
// is exactly one writer or one reader at any time. kDraining exists so the
// recycle store can move OUT of the critical section without letting a
// second combiner re-drain a slot the first has applied but not yet
// recycled. The model checker certifies the protocol: each slot is
// reported to the scheduler as a pseudo-capability (acquire at claim,
// release at publish/recycle), giving the vector-clock race certifier the
// happens-before edges the raw atomics encode.
//
// Conservation invariant (checked quiesced by CheckQuiescedInvariants):
//
//     published_entries == drained_entries + sum(pending slot entries)
//
// Every seeded handoff bug — a slot drained twice, a ready flag cleared
// before the apply, a drained slot never recycled — breaks this equation,
// which is how the stress harness and the model checker catch the
// mutations below.
#pragma once

#include <unordered_set>
#include <vector>

#include "core/access_queue.h"
#include "core/coordinator.h"
#include "sync/mutex.h"
#include "util/cacheline.h"
#include "util/thread_annotations.h"

namespace bpw {

class CombiningCoordinator : public Coordinator {
 public:
  struct Options {
    /// S in the paper: per-thread FIFO queue capacity.
    size_t queue_size = 64;
    /// T in the paper: accesses accumulated before publish + TryLock.
    size_t batch_threshold = 32;
    /// §III-B prefetching ("pgBat++" enables it; plain "combining" not).
    bool prefetch = false;
    /// Publication slots available. Threads beyond this many registered at
    /// once degrade gracefully to plain BP-Wrapper behaviour (no publish,
    /// no handoff) — never an error.
    size_t max_slots = 64;
    /// Bounded cooperative-handoff spin: after a failed TryLock with a
    /// batch published, poll the slot this many times for adoption by the
    /// current lock holder before giving up (still never blocking).
    size_t handoff_spins = 4;
    LockInstrumentation instrumentation = LockInstrumentation::kCounts;
    /// MUTATION KNOB — tests only. The lost-handoff bug: a combiner
    /// applies a claimed peer slot TWICE, double-counting its accesses.
    /// Breaks conservation (drained > published).
    bool test_drain_twice = false;
    /// MUTATION KNOB — tests only. The dropped-batch bug: a combiner
    /// recycles a ready peer slot (flag cleared) WITHOUT applying it.
    /// Breaks conservation (published > drained).
    bool test_clear_ready_before_apply = false;
    /// MUTATION KNOB — tests only. The stuck-slot bug: the post-commit
    /// phase skips recycling, leaving applied slots in kDraining forever.
    /// Breaks conservation (applied entries still counted as pending).
    bool test_skip_release = false;
  };

  CombiningCoordinator(std::unique_ptr<ReplacementPolicy> policy,
                       Options options);
  explicit CombiningCoordinator(std::unique_ptr<ReplacementPolicy> policy)
      : CombiningCoordinator(std::move(policy), Options()) {}
  ~CombiningCoordinator() override;

  std::unique_ptr<ThreadSlot> RegisterThread() override;
  void OnHit(ThreadSlot* slot, PageId page, FrameId frame) override;
  StatusOr<Victim> ChooseVictim(ThreadSlot* slot, const EvictableFn& evictable,
                                PageId incoming) override
      BPW_HOLD_EFFECT_OK(alloc, "optional<StatusOr> emplace of the victim "
                                "result; Victim is inline, no heap");
  void CompleteMiss(ThreadSlot* slot, PageId page, FrameId frame) override;
  bool OnErase(ThreadSlot* slot, PageId page, FrameId frame) override;
  void FlushSlot(ThreadSlot* slot) override;
  LockStats lock_stats() const override { return lock_.stats(); }
  void ResetLockStats() override { lock_.ResetStats(); }
  const ReplacementPolicy& policy() const override { return *policy_; }
  ReplacementPolicy* mutable_policy() override { return policy_.get(); }
  std::string name() const override {
    return options_.prefetch ? "combining+pre" : "combining";
  }
  bool StateFingerprintSupported() const override {
    return policy_->StateFingerprintSupported();
  }
  uint64_t StateFingerprint() const override BPW_NO_THREAD_SAFETY_ANALYSIS;
  uint64_t SlotStateFingerprint(const ThreadSlot* slot) const override;
  Status CheckQuiescedInvariants() const override;

  const Options& options() const { return options_; }

  // --- Observable counters (all relaxed atomics, post-commit updated) -----

  uint64_t stale_commits() const {
    return stale_commits_.load(std::memory_order_relaxed);
  }
  /// Batches applied to the policy (own publications, own queue
  /// remainders, and adopted peer slots each count as one).
  uint64_t commit_batches() const {
    return commit_batches_.load(std::memory_order_relaxed);
  }
  uint64_t committed_entries() const {
    return committed_entries_.load(std::memory_order_relaxed);
  }
  /// Queue-completely-full blocking Lock() fallbacks (Fig. 4 line 13).
  uint64_t lock_fallbacks() const {
    return lock_fallbacks_.load(std::memory_order_relaxed);
  }
  /// Batches published into a slot / published entries (conservation LHS).
  uint64_t published_batches() const {
    return published_batches_.load(std::memory_order_relaxed);
  }
  uint64_t published_entries() const {
    return published_entries_.load(std::memory_order_relaxed);
  }
  /// Peer slots a combiner claimed and applied on behalf of their owners —
  /// the acquisitions flat combining saved.
  uint64_t combined_peer_batches() const {
    return combined_peer_batches_.load(std::memory_order_relaxed);
  }
  /// Times a thread's failed TryLock ended with the lock holder adopting
  /// its published batch during the bounded handoff spin.
  uint64_t handoff_adoptions() const {
    return handoff_adoptions_.load(std::memory_order_relaxed);
  }

 private:
  /// One publication slot. The atomic `state` is the whole synchronization
  /// story (see the protocol diagram above); `entries`/`count` are the
  /// baton it passes. Cacheline-padded via CacheAligned so peers polling
  /// their own slot never false-share with a neighbour's publish.
  struct PubSlot {
    enum State : uint32_t { kEmpty = 0, kReady = 1, kDraining = 2 };
    /// Relaxed is legal only for the owner peeking its own slot (nobody
    /// else writes it back to kEmpty without the owner observing it first);
    /// every cross-thread transition is CAS or release-store.
    std::atomic<uint32_t> state{kEmpty} BPW_RELAXED_OK(
        "owner-side peek; cross-thread transitions are CAS/release");
    /// Valid entries in `entries`; written by the owner before the kReady
    /// release-store, read by the combiner after its acquire-load.
    size_t count = 0 BPW_PUBLISHED_BY(state);
    std::vector<AccessQueue::Entry> entries BPW_PUBLISHED_BY(state);
  };

  static constexpr size_t kNoPubSlot = ~size_t{0};

  class Slot : public ThreadSlot {
   public:
    Slot(CombiningCoordinator* owner, size_t queue_size)
        : owner_(owner), queue(queue_size) {}
    ~Slot() override;

    CombiningCoordinator* owner_;
    AccessQueue queue;
    /// Index into pub_slots_, or kNoPubSlot when the array was exhausted
    /// at registration (plain BP-Wrapper behaviour then).
    size_t pub_index = kNoPubSlot;
    /// Combine-time scratch: indices of peer slots this thread claimed in
    /// the current apply phase, recycled post-release. Capacity reserved
    /// at registration so the locked phase never allocates.
    std::vector<size_t> claimed;
  };

  /// What one locked apply phase did; consumed by the lock-free
  /// post-commit phase after the early release.
  struct DrainOutcome {
    uint64_t batches = 0;
    uint64_t entries = 0;  ///< applied (net of stale)
    uint64_t stale = 0;
    uint64_t drained_published = 0;  ///< conservation RHS contribution
    uint64_t peer_batches = 0;
    uint64_t trace_start = 0;
    bool trace = false;
  };

  /// §III-B prefetch of everything the apply phase will touch from this
  /// thread's own state (lock word, published batch, private queue).
  /// Peer batches are unknowable before the lock is held; the combiner
  /// prefetches each claimed slot's entries right after the claim instead.
  void PrefetchForCombine(const Slot* slot) const BPW_EXCLUDES(lock_);

  /// Moves the private queue into this thread's publication slot
  /// (kEmpty → kReady). Requires the slot to be observed kEmpty. Lock-free:
  /// this is the whole point of publication.
  void Publish(Slot* slot, PubSlot& pub) BPW_EXCLUDES(lock_);

  /// Replays `n` entries into the policy with §IV-B tag re-validation.
  /// Returns how many were stale-skipped.
  uint64_t ApplyEntriesLocked(const AccessQueue::Entry* entries, size_t n)
      BPW_REQUIRES(lock_);

  /// Applies this thread's pending publication (if any) and private-queue
  /// remainder, in that (per-thread FIFO) order.
  void DrainOwnLocked(Slot* slot, DrainOutcome& out) BPW_REQUIRES(lock_)
      BPW_HOLD_EFFECT_OK(alloc, "claimed-slot list push_back; capacity is "
                                "reserved to max_threads at registration");

  /// Claims (kReady → kDraining) and applies every peer's ready slot.
  /// Claimed indices land in slot->claimed for post-release recycling.
  void DrainPeersLocked(Slot* slot, DrainOutcome& out) BPW_REQUIRES(lock_)
      BPW_HOLD_EFFECT_OK(alloc, "claimed-slot list push_back; capacity is "
                                "reserved to max_threads at registration");

  /// The flat-combining commit: locked apply phase (own batch + own queue
  /// + all ready peers), then EARLY RELEASE, then the lock-free post-commit
  /// phase (recycle claimed slots, counters, trace). Annotated RELEASE:
  /// callers enter holding lock_ and leave without it.
  void CombineAndRelease(Slot* slot) BPW_RELEASE(lock_)
      BPW_HOLD_EFFECT_OK(clock, "combine-latency trace stamp; one vDSO read "
                                "per combine, only when tracing is on");

  /// Post-commit phase shared by every path: recycles the claimed slots
  /// (kDraining → kEmpty) and folds `out` into the counters. Must run
  /// WITHOUT lock_ held — the bpw_lint post-commit-under-lock rule exists
  /// to keep it that way.
  void PostCommitBookkeeping(Slot* slot, const DrainOutcome& out)
      BPW_EXCLUDES(lock_)
      BPW_HOLD_EFFECT_OK(clock,
                         "trace stamp; runs after lock_ is released");

  PubSlot* PubFor(Slot* slot) {
    return slot->pub_index == kNoPubSlot ? nullptr
                                         : &*pub_slots_[slot->pub_index];
  }

  std::unique_ptr<ReplacementPolicy> policy_;
  Options options_;
  ContentionLock lock_;

  /// Fixed at construction; indices are claimed/released under slots_mu_
  /// but the slots themselves are synchronized purely by their state flag.
  std::vector<CacheAligned<PubSlot>> pub_slots_;

  std::atomic<uint64_t> stale_commits_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> commit_batches_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> committed_entries_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> lock_fallbacks_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> published_batches_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> published_entries_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> drained_entries_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> combined_peer_batches_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> handoff_adoptions_{0} BPW_RELAXED_OK("stats counter");

  // Live-slot registry + publication-slot index allocator.
  Mutex slots_mu_;
  std::unordered_set<Slot*> slots_ BPW_GUARDED_BY(slots_mu_);
  std::vector<bool> pub_in_use_ BPW_GUARDED_BY(slots_mu_);

  // Declared last so it unregisters before anything it reads is destroyed.
  obs::ScopedMetricSource metrics_source_;
};

}  // namespace bpw
