#include "core/combining_coordinator.h"

#include <cassert>
#include <optional>

#include "obs/contention_profiler.h"
#include "obs/trace_recorder.h"
#include "sync/prefetch.h"
#include "testing/schedule_point.h"
#include "util/clock.h"
#include "util/fingerprint.h"
#include "util/logging.h"

namespace bpw {

CombiningCoordinator::CombiningCoordinator(
    std::unique_ptr<ReplacementPolicy> policy, Options options)
    : policy_(std::move(policy)),
      options_(options),
      lock_(options.instrumentation),
      metrics_source_(&obs::MetricsRegistry::Default(),
                      [this](obs::MetricsSnapshot& snap) {
                        AppendLockMetrics(snap, lock_.stats());
                        snap.Add("coord.commit_batches",
                                 static_cast<double>(commit_batches()));
                        snap.Add("coord.committed_entries",
                                 static_cast<double>(committed_entries()));
                        snap.Add("coord.stale_commits",
                                 static_cast<double>(stale_commits()));
                        snap.Add("coord.lock_fallbacks",
                                 static_cast<double>(lock_fallbacks()));
                        snap.Add("coord.published_batches",
                                 static_cast<double>(published_batches()));
                        snap.Add("coord.combined_batches",
                                 static_cast<double>(combined_peer_batches()));
                        snap.Add("coord.handoff_adoptions",
                                 static_cast<double>(handoff_adoptions()));
                      }) {
  if (options_.queue_size == 0) options_.queue_size = 1;
  if (options_.batch_threshold == 0) options_.batch_threshold = 1;
  if (options_.batch_threshold > options_.queue_size) {
    options_.batch_threshold = options_.queue_size;
  }
  if (options_.max_slots == 0) options_.max_slots = 1;
  // The slot array is fixed for the coordinator's lifetime: the protocol
  // synchronizes on slot addresses, so the vector must never reallocate.
  pub_slots_ = std::vector<CacheAligned<PubSlot>>(options_.max_slots);
  for (auto& padded : pub_slots_) {
    // Constructor-time sizing: no thread can observe the slots before the
    // coordinator is constructed, so no release stamp is needed here.
    // bpw-lint-allow(relaxed-publication-store)
    padded->entries.resize(options_.queue_size);
  }
  pub_in_use_.assign(options_.max_slots, false);
  lock_.BindProfSite(BPW_PROF_SITE("combining.policy_lock"));
}

CombiningCoordinator::~CombiningCoordinator() {
  MutexGuard guard(slots_mu_);
  if (!slots_.empty()) {
    BPW_LOG_ERROR << "CombiningCoordinator destroyed with " << slots_.size()
                  << " live thread slots";
  }
}

CombiningCoordinator::Slot::~Slot() {
  // Commit any still-published batch and queued accesses before the
  // publication slot index can be handed to a new thread.
  owner_->FlushSlot(this);
  MutexGuard guard(owner_->slots_mu_);
  owner_->slots_.erase(this);
  if (pub_index != kNoPubSlot) {
    owner_->pub_in_use_[pub_index] = false;
  }
}

std::unique_ptr<Coordinator::ThreadSlot>
CombiningCoordinator::RegisterThread() {
  auto slot = std::make_unique<Slot>(this, options_.queue_size);
  slot->claimed.reserve(options_.max_slots);
  MutexGuard guard(slots_mu_);
  slots_.insert(slot.get());
  for (size_t i = 0; i < pub_in_use_.size(); ++i) {
    if (!pub_in_use_[i]) {
      pub_in_use_[i] = true;
      slot->pub_index = i;
      break;
    }
  }
  // pub_index stays kNoPubSlot when all slots are taken: the thread then
  // runs the plain BP-Wrapper protocol (no publish, no handoff).
  return slot;
}

void CombiningCoordinator::PrefetchForCombine(const Slot* slot) const {
  // Lock word first (needed soonest), then the policy nodes of everything
  // this thread will replay: its published batch and its private queue.
  // All reads; cannot corrupt shared state (§III-B). Peer batches are
  // prefetched slot-directed at claim time instead.
  PrefetchWrite(&lock_);
  if (slot->pub_index != kNoPubSlot) {
    const PubSlot& pub = *pub_slots_[slot->pub_index];
    if (pub.state.load(std::memory_order_relaxed) != PubSlot::kEmpty) {
      // Prefetch-only peek (SIII-B): a torn batch prefetches a wrong line
      // at worst; the combiner re-reads after its acquire on claim.
      // bpw-lint-allow(unordered-publication-read)
      for (size_t i = 0; i < pub.count; ++i) {
        policy_->PrefetchHint(pub.entries[i].frame);
      }
    }
  }
  const AccessQueue& queue = slot->queue;
  for (size_t i = 0; i < queue.size(); ++i) {
    policy_->PrefetchHint(queue[i].frame);
  }
}

void CombiningCoordinator::Publish(Slot* slot, PubSlot& pub) {
  // Owner-side baton pickup: the recycler's release-store to kEmpty is the
  // real handover; the pseudo-capability acquire hands the race certifier
  // the same happens-before edge.
  BPW_SCHED_LOCK_ACQUIRED(&pub, "combining.pub_slot");
  BPW_MC_ACCESS_WRITE("combining.pub_slot", &pub);
  AccessQueue& queue = slot->queue;
  const size_t n = queue.size();
  // Owner-side capacity check: entries was sized at construction, and the
  // recycler's kEmpty handover (acquired at claim) ordered everything since.
  // bpw-lint-allow(unordered-publication-read)
  assert(n <= pub.entries.size());
  for (size_t i = 0; i < n; ++i) {
    pub.entries[i] = queue[i];
  }
  pub.count = n;
  queue.Clear();
  published_batches_.fetch_add(1, std::memory_order_relaxed);
  published_entries_.fetch_add(n, std::memory_order_relaxed);
  // The pseudo-capability release must precede the release-store: a
  // combiner that claims the slot the instant kReady lands must join a
  // publish clock that already covers the buffer writes above.
  BPW_SCHED_LOCK_RELEASED(&pub, "combining.pub_slot");
  pub.state.store(PubSlot::kReady, std::memory_order_release);
  BPW_SCHEDULE_POINT_OBJ("combining.published", &pub);
}

uint64_t CombiningCoordinator::ApplyEntriesLocked(
    const AccessQueue::Entry* entries, size_t n) {
  policy_->AssertExclusiveAccess();
  uint64_t stale = 0;
  for (size_t i = 0; i < n; ++i) {
    const AccessQueue::Entry& entry = entries[i];
    // §IV-B: skip entries whose buffer page was invalidated or replaced
    // between recording and this (possibly delegated) commit.
    if (!TagStillValid(entry.page, entry.frame)) {
      ++stale;
      continue;
    }
    policy_->OnHit(entry.page, entry.frame);
  }
  return stale;
}

void CombiningCoordinator::DrainOwnLocked(Slot* slot, DrainOutcome& out) {
  PubSlot* pub = PubFor(slot);
  if (pub != nullptr &&
      pub->state.load(std::memory_order_acquire) == PubSlot::kReady) {
    // The published batch is this thread's oldest history: apply it before
    // the private-queue remainder so per-thread order is preserved.
    if (options_.test_clear_ready_before_apply) {
      // MUTATION: ready flag cleared before the apply — the whole batch is
      // dropped on the floor. CheckQuiescedInvariants sees published >
      // drained + pending.
      pub->state.store(PubSlot::kEmpty, std::memory_order_release);
    } else {
      BPW_SCHED_LOCK_ACQUIRED(pub, "combining.pub_slot");
      pub->state.store(PubSlot::kDraining, std::memory_order_relaxed);
      BPW_MC_ACCESS_READ("combining.pub_slot", pub);
      const size_t n = pub->count;
      const uint64_t stale = ApplyEntriesLocked(pub->entries.data(), n);
      out.batches += 1;
      out.entries += n - stale;
      out.stale += stale;
      out.drained_published += n;
      if (options_.test_drain_twice) {
        // MUTATION: the lost-handoff bug — the same claimed slot applied
        // twice. CheckQuiescedInvariants sees drained > published.
        const uint64_t stale2 = ApplyEntriesLocked(pub->entries.data(), n);
        out.batches += 1;
        out.entries += n - stale2;
        out.stale += stale2;
        out.drained_published += n;
      }
      // Capacity was reserved at registration; never allocates under lock.
      // bpw-lint-allow(critical-section-alloc)
      slot->claimed.push_back(slot->pub_index);
    }
  }
  AccessQueue& queue = slot->queue;
  if (!queue.empty()) {
    const size_t n = queue.size();
    const uint64_t stale = ApplyEntriesLocked(queue.data(), n);
    queue.Clear();
    out.batches += 1;
    out.entries += n - stale;
    out.stale += stale;
  }
}

void CombiningCoordinator::DrainPeersLocked(Slot* slot, DrainOutcome& out) {
  const size_t own = slot->pub_index;
  for (size_t i = 0; i < pub_slots_.size(); ++i) {
    if (i == own) continue;
    PubSlot& pub = *pub_slots_[i];
    if (pub.state.load(std::memory_order_acquire) != PubSlot::kReady) {
      continue;
    }
    if (options_.test_clear_ready_before_apply) {
      // MUTATION: see DrainOwnLocked — peer batch silently dropped.
      pub.state.store(PubSlot::kEmpty, std::memory_order_release);
      continue;
    }
    // Claim kReady → kDraining. Only lock holders make this transition and
    // we hold the lock, so a plain store suffices; the acquire-load above
    // pairs with the owner's kReady release-store for the buffer contents.
    BPW_SCHED_LOCK_ACQUIRED(&pub, "combining.pub_slot");
    pub.state.store(PubSlot::kDraining, std::memory_order_relaxed);
    BPW_MC_ACCESS_READ("combining.pub_slot", &pub);
    const size_t n = pub.count;
    if (options_.prefetch) {
      // Slot-directed prefetch: a peer's batch is unknowable before the
      // lock is held (it was published concurrently), so the §III-B
      // pre-lock window does not exist for adopted batches. Prefetching at
      // claim time still overlaps the miss latency with the remaining
      // peers' claims.
      for (size_t j = 0; j < n; ++j) {
        // bpw-lint-allow(prefetch-in-critical-section)
        policy_->PrefetchHint(pub.entries[j].frame);
      }
    }
    const uint64_t stale = ApplyEntriesLocked(pub.entries.data(), n);
    out.batches += 1;
    out.entries += n - stale;
    out.stale += stale;
    out.drained_published += n;
    out.peer_batches += 1;
    if (options_.test_drain_twice) {
      // MUTATION: lost-handoff — peer batch applied twice.
      const uint64_t stale2 = ApplyEntriesLocked(pub.entries.data(), n);
      out.batches += 1;
      out.entries += n - stale2;
      out.stale += stale2;
      out.drained_published += n;
    }
    // Recorded for the post-release recycle; capacity was reserved at
    // registration, so this never allocates inside the critical section.
    // bpw-lint-allow(critical-section-alloc)
    slot->claimed.push_back(i);
  }
}

void CombiningCoordinator::CombineAndRelease(Slot* slot) {
  DrainOutcome out;
  out.trace = obs::TraceEnabled();
  // Clock reads under the lock are normally forbidden; this one sits
  // before the apply-phase guard below, and it only runs when tracing is
  // on — the span being measured *is* the locked apply.
  if (out.trace) out.trace_start = NowNanos();
  {
    // Apply phase: the critical section contains policy updates and
    // nothing else. "self_commit" is this thread's own batch + queue;
    // "combine_drain" the peers' adopted batches.
    BPW_PROF_PHASE("combine");
    policy_->AssertExclusiveAccess();
    {
      BPW_PROF_PHASE("self_commit");
      DrainOwnLocked(slot, out);
    }
    {
      BPW_PROF_PHASE("combine_drain");
      DrainPeersLocked(slot, out);
    }
  }
  lock_.Unlock();
  // ---- early release: everything below runs outside the critical section.
  BPW_SCHEDULE_POINT("combining.post_commit");
  PostCommitBookkeeping(slot, out);
}

void CombiningCoordinator::PostCommitBookkeeping(Slot* slot,
                                                 const DrainOutcome& out) {
  if (options_.test_skip_release) {
    // MUTATION: the stuck-slot bug — applied slots are never recycled, so
    // their owners can never publish again and CheckQuiescedInvariants
    // finds kDraining slots at quiesce.
    slot->claimed.clear();
  } else {
    for (size_t index : slot->claimed) {
      PubSlot& pub = *pub_slots_[index];
      // Baton back to the owner: the certifier edge first, then the
      // release-store the owner's next publish acquire-pairs with.
      BPW_SCHED_LOCK_RELEASED(&pub, "combining.pub_slot");
      pub.state.store(PubSlot::kEmpty, std::memory_order_release);
    }
    slot->claimed.clear();
  }
  if (out.drained_published > 0) {
    drained_entries_.fetch_add(out.drained_published,
                               std::memory_order_relaxed);
  }
  if (out.peer_batches > 0) {
    combined_peer_batches_.fetch_add(out.peer_batches,
                                     std::memory_order_relaxed);
  }
  if (out.batches > 0) {
    commit_batches_.fetch_add(out.batches, std::memory_order_relaxed);
    committed_entries_.fetch_add(out.entries, std::memory_order_relaxed);
    if (out.stale > 0) {
      stale_commits_.fetch_add(out.stale, std::memory_order_relaxed);
    }
    if (out.trace) {
      const uint64_t end = NowNanos();
      obs::TraceEmit(obs::TraceEventKind::kBatchCommit, out.trace_start,
                     end - out.trace_start, out.entries + out.stale);
    }
  }
}

void CombiningCoordinator::OnHit(ThreadSlot* base_slot, PageId page,
                                 FrameId frame) {
  auto* slot = static_cast<Slot*>(base_slot);
  AccessQueue& queue = slot->queue;
  assert(!queue.full());
  queue.Record(page, frame);

  if (queue.size() < options_.batch_threshold) return;

  // Threshold reached: publish the batch so ANY lock holder can retire it,
  // then try to become the combiner.
  PubSlot* pub = PubFor(slot);
  if (pub != nullptr &&
      pub->state.load(std::memory_order_acquire) == PubSlot::kEmpty) {
    Publish(slot, *pub);
  }
  BPW_SCHEDULE_POINT("combining.before_trylock");
  if (options_.prefetch) PrefetchForCombine(slot);
  if (lock_.TryLock()) {
    CombineAndRelease(slot);
    return;
  }
  // Lock busy. If this thread has a batch published, the holder can adopt
  // it — spin briefly for that cooperative handoff instead of blocking.
  if (pub != nullptr &&
      pub->state.load(std::memory_order_acquire) != PubSlot::kEmpty) {
    for (size_t i = 0; i < options_.handoff_spins; ++i) {
      BPW_SCHEDULE_YIELD("combining.handoff_spin");
      if (pub->state.load(std::memory_order_acquire) == PubSlot::kEmpty) {
        handoff_adoptions_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  }
  if (!queue.full()) {
    // Still room: keep recording (Fig. 4 line 11). The published batch, if
    // not adopted, waits for the next combiner.
    return;
  }
  // Queue completely full and publication impossible or already pending:
  // we must block (Fig. 4 line 13).
  BPW_SCHEDULE_POINT("combining.lock_fallback");
  lock_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  if (obs::TraceEnabled()) {
    obs::TraceEmit(obs::TraceEventKind::kLockFallback, NowNanos(), 0);
  }
  lock_.Lock();
  CombineAndRelease(slot);
}

StatusOr<Coordinator::Victim> CombiningCoordinator::ChooseVictim(
    ThreadSlot* base_slot, const EvictableFn& evictable, PageId incoming) {
  auto* slot = static_cast<Slot*>(base_slot);
  BPW_SCHEDULE_POINT("combining.choose_victim");
  if (options_.prefetch) PrefetchForCombine(slot);
  DrainOutcome out;
  std::optional<StatusOr<Victim>> victim;
  {
    ContentionLockGuard guard(lock_);
    policy_->AssertExclusiveAccess();
    BPW_PROF_PHASE("choose_victim");
    // A miss commits the pending accesses first so the policy decides with
    // the freshest history (Fig. 4, replacement_for_page_miss).
    DrainOwnLocked(slot, out);
    victim.emplace(policy_->ChooseVictim(evictable, incoming));
  }
  PostCommitBookkeeping(slot, out);
  return std::move(*victim);
}

void CombiningCoordinator::CompleteMiss(ThreadSlot* base_slot, PageId page,
                                        FrameId frame) {
  auto* slot = static_cast<Slot*>(base_slot);
  DrainOutcome out;
  {
    ContentionLockGuard guard(lock_);
    policy_->AssertExclusiveAccess();
    DrainOwnLocked(slot, out);
    policy_->OnMiss(page, frame);
  }
  PostCommitBookkeeping(slot, out);
}

bool CombiningCoordinator::OnErase(ThreadSlot* base_slot, PageId page,
                                   FrameId frame) {
  auto* slot = static_cast<Slot*>(base_slot);
  DrainOutcome out;
  bool resident = false;
  {
    ContentionLockGuard guard(lock_);
    policy_->AssertExclusiveAccess();
    DrainOwnLocked(slot, out);
    resident = policy_->IsResident(page);
    if (resident) policy_->OnErase(page, frame);
  }
  PostCommitBookkeeping(slot, out);
  return resident;
}

void CombiningCoordinator::FlushSlot(ThreadSlot* base_slot) {
  auto* slot = static_cast<Slot*>(base_slot);
  PubSlot* pub = PubFor(slot);
  const bool pending_publication =
      pub != nullptr &&
      pub->state.load(std::memory_order_acquire) == PubSlot::kReady;
  if (slot->queue.empty() && !pending_publication) return;
  DrainOutcome out;
  {
    ContentionLockGuard guard(lock_);
    DrainOwnLocked(slot, out);
  }
  PostCommitBookkeeping(slot, out);
}

uint64_t CombiningCoordinator::StateFingerprint() const {
  // Quiesced-by-contract (model-checker use only: every worker parked).
  // The publication slots are shared state: a published-but-undrained
  // batch is logically different from a drained one even when the policy
  // agrees, so the flag/count/entries all feed the fingerprint.
  Fingerprint fp;
  fp.Combine(policy_->StateFingerprint());
  for (const auto& padded : pub_slots_) {
    const PubSlot& pub = *padded;
    const uint32_t state = pub.state.load(std::memory_order_acquire);
    fp.Combine(state);
    if (state == PubSlot::kEmpty) continue;
    fp.Combine(pub.count);
    for (size_t i = 0; i < pub.count; ++i) {
      fp.Combine(pub.entries[i].page);
      fp.Combine(pub.entries[i].frame);
    }
  }
  return fp.value();
}

uint64_t CombiningCoordinator::SlotStateFingerprint(
    const ThreadSlot* base_slot) const {
  const auto* slot = static_cast<const Slot*>(base_slot);
  Fingerprint fp;
  const AccessQueue& queue = slot->queue;
  for (size_t i = 0; i < queue.size(); ++i) {
    fp.Combine(queue[i].page);
    fp.Combine(queue[i].frame);
  }
  return fp.value();
}

Status CombiningCoordinator::CheckQuiescedInvariants() const {
  const uint64_t published = published_entries_.load(std::memory_order_relaxed);
  const uint64_t drained = drained_entries_.load(std::memory_order_relaxed);
  uint64_t pending = 0;
  size_t stuck = 0;
  for (const auto& padded : pub_slots_) {
    const PubSlot& pub = *padded;
    const uint32_t state = pub.state.load(std::memory_order_acquire);
    if (state == PubSlot::kEmpty) continue;
    pending += pub.count;
    if (state == PubSlot::kDraining) ++stuck;
  }
  if (stuck > 0) {
    return Status::Corruption(
        "combining publication conservation violated: " +
        std::to_string(stuck) +
        " slot(s) stuck in kDraining at quiesce (applied but never "
        "recycled)");
  }
  if (published != drained + pending) {
    return Status::Corruption(
        "combining publication conservation violated: published=" +
        std::to_string(published) + " entries != drained=" +
        std::to_string(drained) + " + pending=" + std::to_string(pending));
  }
  return Status::OK();
}

}  // namespace bpw
