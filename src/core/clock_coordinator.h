// ClockCoordinator: the paper's scalability yardstick ("pgClock").
//
// PostgreSQL 8.1+ adopted the clock algorithm because a hit only sets a
// reference bit and "does not need a lock upon hit access ... In this
// sense, it eliminates lock contention and provides optimal scalability"
// (§IV). This coordinator exploits ClockPolicy/GClockPolicy's atomic
// reference bits to make OnHit completely lock-free; only the miss path
// (victim sweep, insertion) takes the lock.
#pragma once

#include "core/coordinator.h"
#include "policy/clock.h"
#include "policy/gclock.h"

namespace bpw {

class ClockCoordinator : public Coordinator {
 public:
  struct Options {
    LockInstrumentation instrumentation = LockInstrumentation::kCounts;
  };

  /// Accepts a CLOCK or GCLOCK policy (the only algorithms whose hit path
  /// is a plain bit/counter update).
  ClockCoordinator(std::unique_ptr<ClockPolicy> policy, Options options);
  ClockCoordinator(std::unique_ptr<GClockPolicy> policy, Options options);
  explicit ClockCoordinator(std::unique_ptr<ClockPolicy> policy)
      : ClockCoordinator(std::move(policy), Options()) {}
  explicit ClockCoordinator(std::unique_ptr<GClockPolicy> policy)
      : ClockCoordinator(std::move(policy), Options()) {}

  std::unique_ptr<ThreadSlot> RegisterThread() override;
  void OnHit(ThreadSlot* slot, PageId page, FrameId frame) override;
  StatusOr<Victim> ChooseVictim(ThreadSlot* slot, const EvictableFn& evictable,
                                PageId incoming) override;
  void CompleteMiss(ThreadSlot* slot, PageId page, FrameId frame) override;
  bool OnErase(ThreadSlot* slot, PageId page, FrameId frame) override;
  void FlushSlot(ThreadSlot* slot) override;
  LockStats lock_stats() const override { return lock_.stats(); }
  void ResetLockStats() override { lock_.ResetStats(); }
  const ReplacementPolicy& policy() const override { return *policy_; }
  ReplacementPolicy* mutable_policy() override { return policy_.get(); }
  std::string name() const override { return "clock-lockfree"; }

 private:
  class Slot : public ThreadSlot {};

  using LockFreeHitFn = void (*)(ReplacementPolicy*, PageId, FrameId);

  std::unique_ptr<ReplacementPolicy> policy_;
  LockFreeHitFn hit_fn_;
  ContentionLock lock_;
  // Declared last so it unregisters before anything it reads is destroyed.
  obs::ScopedMetricSource metrics_source_;
};

}  // namespace bpw
