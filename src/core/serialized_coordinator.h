// SerializedCoordinator: the conventional lock-per-access design the paper
// uses as its baseline ("pg2Q"), with the prefetching technique available
// as an option ("pgPre", §III-B). Every page hit acquires the global policy
// lock, runs the policy's bookkeeping, and releases it — the behaviour
// whose contention the paper measures collapsing throughput at 16
// processors.
#pragma once

#include "core/coordinator.h"

namespace bpw {

class SerializedCoordinator : public Coordinator {
 public:
  struct Options {
    /// Enable the §III-B prefetch: touch the policy node for the accessed
    /// frame (and the lock word) immediately before acquiring the lock.
    bool prefetch = false;
    LockInstrumentation instrumentation = LockInstrumentation::kCounts;
  };

  SerializedCoordinator(std::unique_ptr<ReplacementPolicy> policy,
                        Options options);
  explicit SerializedCoordinator(std::unique_ptr<ReplacementPolicy> policy)
      : SerializedCoordinator(std::move(policy), Options()) {}

  std::unique_ptr<ThreadSlot> RegisterThread() override;
  void OnHit(ThreadSlot* slot, PageId page, FrameId frame) override;
  StatusOr<Victim> ChooseVictim(ThreadSlot* slot, const EvictableFn& evictable,
                                PageId incoming) override;
  void CompleteMiss(ThreadSlot* slot, PageId page, FrameId frame) override;
  bool OnErase(ThreadSlot* slot, PageId page, FrameId frame) override;
  void FlushSlot(ThreadSlot* slot) override;
  LockStats lock_stats() const override { return lock_.stats(); }
  void ResetLockStats() override { lock_.ResetStats(); }
  const ReplacementPolicy& policy() const override { return *policy_; }
  ReplacementPolicy* mutable_policy() override { return policy_.get(); }
  std::string name() const override {
    return options_.prefetch ? "serialized+pre" : "serialized";
  }
  bool StateFingerprintSupported() const override {
    return policy_->StateFingerprintSupported();
  }
  // No coordinator-local state beyond the policy: the fingerprint is the
  // policy's. Quiesced callers only (model checker).
  uint64_t StateFingerprint() const override BPW_NO_THREAD_SAFETY_ANALYSIS {
    return policy_->StateFingerprint();
  }

 private:
  class Slot : public ThreadSlot {};

  std::unique_ptr<ReplacementPolicy> policy_;
  Options options_;
  ContentionLock lock_;
  // Declared last so it unregisters before anything it reads is destroyed.
  obs::ScopedMetricSource metrics_source_;
};

}  // namespace bpw
