#include "core/coordinator_factory.h"

#include "core/bp_wrapper.h"
#include "core/clock_coordinator.h"
#include "core/combining_coordinator.h"
#include "core/serialized_coordinator.h"
#include "core/shared_queue_coordinator.h"
#include "core/sharded_coordinator.h"
#include "policy/policy_factory.h"
#include "policy/sharded_policy.h"

namespace bpw {

StatusOr<std::unique_ptr<Coordinator>> CreateCoordinator(
    const SystemConfig& config, size_t num_frames) {
  if (config.coordinator == "clock-lockfree") {
    if (config.policy == "clock") {
      return std::unique_ptr<Coordinator>(new ClockCoordinator(
          std::make_unique<ClockPolicy>(num_frames),
          ClockCoordinator::Options{config.instrumentation}));
    }
    if (config.policy == "gclock") {
      return std::unique_ptr<Coordinator>(new ClockCoordinator(
          std::make_unique<GClockPolicy>(num_frames),
          ClockCoordinator::Options{config.instrumentation}));
    }
    return Status::InvalidArgument(
        "clock-lockfree coordinator requires a clock/gclock policy, got: " +
        config.policy);
  }

  if (config.coordinator == "sharded") {
    // The sharded coordinator owns a ShardedPolicy built from the inner
    // policy name; config.policy here names the *inner* policy.
    const size_t shards = config.policy_shards == 0 ? 1 : config.policy_shards;
    auto sharded = ShardedPolicy::Create(config.policy, shards, num_frames);
    if (!sharded.ok()) return sharded.status();
    ShardedCoordinator::Options options;
    options.queue_size = config.queue_size;
    options.prefetch = config.prefetch;
    options.rebalance_interval = config.rebalance_interval;
    options.instrumentation = config.instrumentation;
    options.test_shard_double_track = config.test_shard_double_track;
    options.test_shard_stale_eviction = config.test_shard_stale_eviction;
    return std::unique_ptr<Coordinator>(
        new ShardedCoordinator(std::move(sharded).value(), options));
  }

  auto policy = CreatePolicy(config.policy, num_frames);
  if (!policy.ok()) return policy.status();

  if (config.coordinator == "serialized") {
    SerializedCoordinator::Options options;
    options.prefetch = config.prefetch;
    options.instrumentation = config.instrumentation;
    return std::unique_ptr<Coordinator>(
        new SerializedCoordinator(std::move(policy).value(), options));
  }
  if (config.coordinator == "shared-queue") {
    SharedQueueCoordinator::Options options;
    options.queue_size = config.queue_size;
    options.batch_threshold = config.batch_threshold;
    options.instrumentation = config.instrumentation;
    return std::unique_ptr<Coordinator>(
        new SharedQueueCoordinator(std::move(policy).value(), options));
  }
  if (config.coordinator == "bp-wrapper") {
    BpWrapperCoordinator::Options options;
    options.queue_size = config.queue_size;
    options.batch_threshold = config.batch_threshold;
    options.prefetch = config.prefetch;
    options.instrumentation = config.instrumentation;
    return std::unique_ptr<Coordinator>(
        new BpWrapperCoordinator(std::move(policy).value(), options));
  }
  if (config.coordinator == "combining") {
    CombiningCoordinator::Options options;
    options.queue_size = config.queue_size;
    options.batch_threshold = config.batch_threshold;
    options.prefetch = config.prefetch;
    options.instrumentation = config.instrumentation;
    options.test_drain_twice = config.test_combine_drain_twice;
    options.test_clear_ready_before_apply =
        config.test_combine_clear_ready_before_apply;
    options.test_skip_release = config.test_combine_skip_release;
    return std::unique_ptr<Coordinator>(
        new CombiningCoordinator(std::move(policy).value(), options));
  }
  return Status::InvalidArgument("unknown coordinator: " + config.coordinator);
}

StatusOr<SystemConfig> PaperSystemConfig(const std::string& name) {
  SystemConfig config;
  if (name == "pgClock") {
    config.policy = "clock";
    config.coordinator = "clock-lockfree";
    return config;
  }
  config.policy = "2q";
  if (name == "pg2Q") {
    config.coordinator = "serialized";
    return config;
  }
  if (name == "pgPre") {
    config.coordinator = "serialized";
    config.prefetch = true;
    return config;
  }
  if (name == "pgBat") {
    config.coordinator = "bp-wrapper";
    config.batching = true;
    return config;
  }
  if (name == "pgBatPre") {
    config.coordinator = "bp-wrapper";
    config.batching = true;
    config.prefetch = true;
    return config;
  }
  if (name == "pgBat++") {
    config.coordinator = "combining";
    config.batching = true;
    config.prefetch = true;
    return config;
  }
  if (name == "pgShard") {
    config.coordinator = "sharded";
    config.batching = true;
    config.prefetch = true;
    config.policy_shards = 8;
    return config;
  }
  return Status::InvalidArgument("unknown paper system: " + name);
}

std::vector<std::string> PaperSystemNames() {
  return {"pgClock", "pg2Q", "pgPre", "pgBat", "pgBatPre", "pgBat++",
          "pgShard"};
}

}  // namespace bpw
