#include "workload/trace_file.h"

#include <cstring>

namespace bpw {

namespace {
constexpr char kMagic[4] = {'B', 'P', 'W', 'T'};
constexpr uint32_t kVersion = 1;
constexpr uint8_t kFlagWrite = 1;
constexpr uint8_t kFlagTxBegin = 2;

struct Header {
  char magic[4];
  uint32_t version;
  uint64_t num_pages;
  uint64_t count;
};
}  // namespace

TraceWriter::~TraceWriter() {
  if (file_ != nullptr) Close();
}

Status TraceWriter::Open(const std::string& path, uint64_t num_pages) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("trace writer already open");
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::Internal("cannot create trace file: " + path);
  }
  num_pages_ = num_pages;
  count_ = 0;
  // Placeholder header; rewritten with the final count on Close().
  Header header{};
  std::memcpy(header.magic, kMagic, 4);
  header.version = kVersion;
  header.num_pages = num_pages_;
  header.count = 0;
  if (std::fwrite(&header, sizeof(header), 1, file_) != 1) {
    std::fclose(file_);
    file_ = nullptr;
    return Status::Internal("cannot write trace header");
  }
  return Status::OK();
}

Status TraceWriter::Append(const PageAccess& access) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("trace writer not open");
  }
  uint8_t flags = 0;
  if (access.is_write) flags |= kFlagWrite;
  if (access.begins_transaction) flags |= kFlagTxBegin;
  if (std::fwrite(&access.page, sizeof(access.page), 1, file_) != 1 ||
      std::fwrite(&flags, 1, 1, file_) != 1) {
    return Status::Internal("short write to trace file");
  }
  ++count_;
  return Status::OK();
}

Status TraceWriter::Close() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("trace writer not open");
  }
  Header header{};
  std::memcpy(header.magic, kMagic, 4);
  header.version = kVersion;
  header.num_pages = num_pages_;
  header.count = count_;
  Status status = Status::OK();
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(&header, sizeof(header), 1, file_) != 1) {
    status = Status::Internal("cannot finalize trace header");
  }
  std::fclose(file_);
  file_ = nullptr;
  return status;
}

StatusOr<TraceFile> TraceFile::Load(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("trace file not found: " + path);
  }
  Header header{};
  if (std::fread(&header, sizeof(header), 1, file) != 1) {
    std::fclose(file);
    return Status::Corruption("trace file too short for header");
  }
  if (std::memcmp(header.magic, kMagic, 4) != 0) {
    std::fclose(file);
    return Status::Corruption("bad trace magic");
  }
  if (header.version != kVersion) {
    std::fclose(file);
    return Status::InvalidArgument("unsupported trace version");
  }
  TraceFile trace;
  trace.num_pages_ = header.num_pages;
  trace.accesses_.reserve(header.count);
  for (uint64_t i = 0; i < header.count; ++i) {
    PageAccess access;
    uint8_t flags = 0;
    if (std::fread(&access.page, sizeof(access.page), 1, file) != 1 ||
        std::fread(&flags, 1, 1, file) != 1) {
      std::fclose(file);
      return Status::Corruption("trace file truncated");
    }
    access.is_write = (flags & kFlagWrite) != 0;
    access.begins_transaction = (flags & kFlagTxBegin) != 0;
    trace.accesses_.push_back(access);
  }
  std::fclose(file);
  if (trace.accesses_.empty()) {
    return Status::InvalidArgument("empty trace");
  }
  return trace;
}

PageAccess ReplayTrace::Next() {
  const auto& accesses = file_->accesses();
  PageAccess access = accesses[pos_];
  ++pos_;
  if (pos_ >= accesses.size()) {
    pos_ = 0;
    wrapped_ = true;
  }
  return access;
}

Status RecordTrace(const WorkloadSpec& spec, uint64_t count,
                   const std::string& path) {
  auto generator = CreateTrace(spec, /*thread_id=*/0);
  if (generator == nullptr) {
    return Status::InvalidArgument("unknown workload: " + spec.name);
  }
  TraceWriter writer;
  BPW_RETURN_IF_ERROR(writer.Open(path, generator->footprint_pages()));
  for (uint64_t i = 0; i < count; ++i) {
    BPW_RETURN_IF_ERROR(writer.Append(generator->Next()));
  }
  return writer.Close();
}

}  // namespace bpw
