// Workload factory: builds per-thread trace generators from a WorkloadSpec.
#include "workload/dbt1.h"
#include "workload/dbt2.h"
#include "workload/synthetic.h"
#include "workload/table_scan.h"
#include "workload/trace_generator.h"

namespace bpw {

namespace {
/// Derives a per-thread seed: distinct streams per thread, reproducible per
/// (spec.seed, thread_id).
uint64_t ThreadSeed(const WorkloadSpec& spec, uint32_t thread_id) {
  return spec.seed * 0x9E3779B97F4A7C15ULL + thread_id + 1;
}
}  // namespace

std::unique_ptr<TraceGenerator> CreateTrace(const WorkloadSpec& spec,
                                            uint32_t thread_id) {
  const uint64_t seed = ThreadSeed(spec, thread_id);
  if (spec.name == "tablescan") {
    return std::make_unique<TableScanTrace>(spec.num_pages, thread_id);
  }
  if (spec.name == "dbt1") {
    return std::make_unique<Dbt1Trace>(spec.num_pages, spec.zipf_theta, seed);
  }
  if (spec.name == "dbt2") {
    return std::make_unique<Dbt2Trace>(spec.num_pages, spec.warehouses,
                                       thread_id, seed);
  }
  if (spec.name == "zipfian") {
    return std::make_unique<ZipfianTrace>(spec.num_pages, spec.zipf_theta,
                                          seed);
  }
  if (spec.name == "uniform") {
    return std::make_unique<UniformTrace>(spec.num_pages, seed);
  }
  if (spec.name == "seqloop") {
    return std::make_unique<SequentialLoopTrace>(spec.num_pages, 0);
  }
  return nullptr;
}

std::vector<std::string> KnownWorkloads() {
  return {"tablescan", "dbt1", "dbt2", "zipfian", "uniform", "seqloop"};
}

}  // namespace bpw
