// Dbt2Trace: a TPC-C-like OLTP workload modelled on OSDL DBT-2
// (paper §IV-C: "provides an on-line transaction processing (OLTP)
// workload ... we set the number of warehouses to 50").
//
// The synthetic reconstruction keeps DBT-2's defining properties:
//  - the five-transaction mix at the standard ratios
//    (New-Order 45%, Payment 43%, Order-Status 4%, Delivery 4%,
//     Stock-Level 4%)
//  - per-thread home-warehouse affinity with occasional remote accesses
//  - a significant write fraction (New-Order/Payment/Delivery dirty pages)
//  - very hot tiny tables (warehouse, district) contended by every thread
//  - skewed customer/item access (TPC-C's NURand is approximated with a
//    scrambled Zipfian)
//
// Page layout (fractions of the footprint):
//   [ warehouse+district (1 page per warehouse) | items 5% |
//     customers 30% | stock 45% | orders (append) rest ]
#pragma once

#include "util/random.h"
#include "util/zipfian.h"
#include "workload/trace_generator.h"

namespace bpw {

class Dbt2Trace : public TraceGenerator {
 public:
  Dbt2Trace(uint64_t num_pages, uint32_t warehouses, uint32_t thread_id,
            uint64_t seed);

  PageAccess Next() override;
  uint64_t footprint_pages() const override { return num_pages_; }
  std::string name() const override { return "dbt2"; }

 private:
  void PlanTransaction();

  /// A warehouse for this transaction: the thread's home warehouse 90% of
  /// the time, remote otherwise (TPC-C's remote payment/order share).
  uint32_t PickWarehouse();

  PageId WarehousePage(uint32_t wh) const;
  PageId ItemPage();
  PageId CustomerPage(uint32_t wh);
  PageId StockPage(uint32_t wh);
  PageId OrderPage(uint32_t wh);

  uint64_t num_pages_;
  uint32_t warehouses_;
  uint32_t home_warehouse_;
  Random rng_;
  ScrambledZipfianGenerator item_zipf_;
  ScrambledZipfianGenerator customer_zipf_;

  uint64_t wh_begin_, wh_end_;        // 1 page per warehouse
  uint64_t items_begin_, items_end_;
  uint64_t customers_begin_, customers_end_;
  uint64_t stock_begin_, stock_end_;
  uint64_t orders_begin_, orders_end_;

  std::vector<uint64_t> order_cursors_;  // per warehouse append position

  std::vector<PageAccess> pending_;
  size_t pending_pos_ = 0;
};

}  // namespace bpw
