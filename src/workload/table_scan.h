// TableScan: the paper's synthetic sequential-scan benchmark (§IV-C).
// "It makes concurrent queries, each of which scans an entire table."
// Every thread repeatedly scans the same shared table; one full scan is one
// transaction. Sequential scans are the worst case for a lock-per-access
// policy: every page of the scan is a hit (after warm-up) and every hit
// takes the lock.
#pragma once

#include "workload/trace_generator.h"

namespace bpw {

class TableScanTrace : public TraceGenerator {
 public:
  /// @param table_pages size of the shared table being scanned
  /// @param thread_id   staggers the starting offset per thread, as
  ///        concurrent real queries would be at different scan positions
  TableScanTrace(uint64_t table_pages, uint32_t thread_id);

  PageAccess Next() override;
  uint64_t footprint_pages() const override { return table_pages_; }
  std::string name() const override { return "tablescan"; }

 private:
  uint64_t table_pages_;
  uint64_t pos_;
  uint64_t scanned_in_tx_;
};

}  // namespace bpw
