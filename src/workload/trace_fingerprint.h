// 64-bit fingerprint of a workload's access stream. The benchmark pipeline
// stamps it into BENCH_*.json and bench_compare refuses counter comparisons
// across differing fingerprints: if a refactor changes what a generator
// emits, every baseline derived from the old stream is invalid, and that
// must fail loudly instead of showing up as a mystery counter drift.
#pragma once

#include <cstdint>

#include "workload/trace_generator.h"

namespace bpw {

/// FNV-1a offset basis; the fingerprint of an empty stream.
inline constexpr uint64_t kTraceFingerprintSeed = 0xcbf29ce484222325ULL;

/// Folds one access into a running FNV-1a fingerprint.
uint64_t TraceFingerprintStep(uint64_t fp, const PageAccess& access);

/// Fingerprint of the first `accesses_per_thread` accesses of each of
/// `num_threads` per-thread streams of `spec`, folded in thread order.
/// Deterministic for a given spec. Returns 0 for an unknown workload name.
uint64_t TraceFingerprint(const WorkloadSpec& spec, uint32_t num_threads,
                          uint64_t accesses_per_thread);

}  // namespace bpw
