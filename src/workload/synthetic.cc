#include "workload/synthetic.h"

namespace bpw {

ZipfianTrace::ZipfianTrace(uint64_t num_pages, double theta, uint64_t seed,
                           uint32_t accesses_per_tx, double write_fraction)
    : num_pages_(num_pages),
      rng_(seed),
      zipf_(num_pages, theta),
      accesses_per_tx_(accesses_per_tx > 0 ? accesses_per_tx : 1),
      write_fraction_(write_fraction) {}

PageAccess ZipfianTrace::Next() {
  PageAccess access;
  access.begins_transaction = pos_in_tx_ == 0;
  pos_in_tx_ = (pos_in_tx_ + 1) % accesses_per_tx_;
  access.page = zipf_.Next(rng_);
  access.is_write = rng_.Bernoulli(write_fraction_);
  return access;
}

UniformTrace::UniformTrace(uint64_t num_pages, uint64_t seed,
                           uint32_t accesses_per_tx, double write_fraction)
    : num_pages_(num_pages),
      rng_(seed),
      accesses_per_tx_(accesses_per_tx > 0 ? accesses_per_tx : 1),
      write_fraction_(write_fraction) {}

PageAccess UniformTrace::Next() {
  PageAccess access;
  access.begins_transaction = pos_in_tx_ == 0;
  pos_in_tx_ = (pos_in_tx_ + 1) % accesses_per_tx_;
  access.page = rng_.Uniform(num_pages_);
  access.is_write = rng_.Bernoulli(write_fraction_);
  return access;
}

SequentialLoopTrace::SequentialLoopTrace(uint64_t num_pages,
                                         uint64_t start_offset)
    : num_pages_(num_pages), pos_(start_offset % num_pages) {}

PageAccess SequentialLoopTrace::Next() {
  PageAccess access;
  access.begins_transaction = pos_ == 0;
  access.page = pos_;
  pos_ = (pos_ + 1) % num_pages_;
  return access;
}

}  // namespace bpw
