#include "workload/dbt2.h"

#include <algorithm>

namespace bpw {

Dbt2Trace::Dbt2Trace(uint64_t num_pages, uint32_t warehouses,
                     uint32_t thread_id, uint64_t seed)
    : num_pages_(std::max<uint64_t>(num_pages, 256)),
      warehouses_(std::max<uint32_t>(warehouses, 1)),
      home_warehouse_(thread_id % std::max<uint32_t>(warehouses, 1)),
      rng_(seed),
      item_zipf_(std::max<uint64_t>(1, num_pages_ * 5 / 100), 0.85),
      customer_zipf_(1024, 0.75),
      order_cursors_(warehouses_, 0) {
  wh_begin_ = 0;
  wh_end_ = warehouses_;
  items_begin_ = wh_end_;
  items_end_ = items_begin_ + num_pages_ * 5 / 100;
  customers_begin_ = items_end_;
  customers_end_ = customers_begin_ + num_pages_ * 30 / 100;
  stock_begin_ = customers_end_;
  stock_end_ = stock_begin_ + num_pages_ * 45 / 100;
  orders_begin_ = stock_end_;
  orders_end_ = num_pages_;
}

uint32_t Dbt2Trace::PickWarehouse() {
  if (warehouses_ == 1 || rng_.Uniform(100) < 90) return home_warehouse_;
  return static_cast<uint32_t>(rng_.Uniform(warehouses_));
}

PageId Dbt2Trace::WarehousePage(uint32_t wh) const { return wh_begin_ + wh; }

PageId Dbt2Trace::ItemPage() {
  const uint64_t span = items_end_ - items_begin_;
  return items_begin_ + std::min(item_zipf_.Next(rng_), span - 1);
}

PageId Dbt2Trace::CustomerPage(uint32_t wh) {
  // Each warehouse owns an equal slice of the customer region; the page
  // within the slice is NURand-like (scrambled zipf over 1024 buckets).
  const uint64_t span = customers_end_ - customers_begin_;
  const uint64_t slice = std::max<uint64_t>(1, span / warehouses_);
  const uint64_t offset = customer_zipf_.Next(rng_) % slice;
  return customers_begin_ + std::min(wh * slice + offset, span - 1);
}

PageId Dbt2Trace::StockPage(uint32_t wh) {
  const uint64_t span = stock_end_ - stock_begin_;
  const uint64_t slice = std::max<uint64_t>(1, span / warehouses_);
  const uint64_t offset = rng_.Uniform(slice);
  return stock_begin_ + std::min(wh * slice + offset, span - 1);
}

PageId Dbt2Trace::OrderPage(uint32_t wh) {
  const uint64_t span = orders_end_ - orders_begin_;
  const uint64_t slice = std::max<uint64_t>(1, span / warehouses_);
  const uint64_t offset = order_cursors_[wh] % slice;
  return orders_begin_ + std::min(wh * slice + offset, span - 1);
}

void Dbt2Trace::PlanTransaction() {
  pending_.clear();
  pending_pos_ = 0;
  auto add = [this](PageId page, bool write = false) {
    pending_.push_back(PageAccess{page, write, pending_.empty()});
  };

  const uint32_t wh = PickWarehouse();
  const uint64_t draw = rng_.Uniform(100);
  if (draw < 45) {
    // New-Order: warehouse/district reads, customer read, ~10 order lines
    // (item read + stock write each), order insert.
    add(WarehousePage(wh));
    add(WarehousePage(wh), /*write=*/true);  // district next-o-id bump
    add(CustomerPage(wh));
    const uint64_t lines = 5 + rng_.Uniform(11);  // 5..15 per TPC-C
    for (uint64_t i = 0; i < lines; ++i) {
      add(ItemPage());
      add(StockPage(wh), /*write=*/true);
    }
    add(OrderPage(wh), /*write=*/true);
    ++order_cursors_[wh];
  } else if (draw < 88) {
    // Payment: warehouse + district + customer, all written.
    add(WarehousePage(wh), /*write=*/true);
    const uint32_t cust_wh =
        rng_.Uniform(100) < 85
            ? wh
            : static_cast<uint32_t>(rng_.Uniform(warehouses_));
    add(CustomerPage(cust_wh), /*write=*/true);
    add(OrderPage(wh), /*write=*/true);  // history append
  } else if (draw < 92) {
    // Order-Status: customer read + recent order pages.
    add(CustomerPage(wh));
    for (int i = 0; i < 4; ++i) add(OrderPage(wh));
  } else if (draw < 96) {
    // Delivery: batch of order updates + customer balance updates.
    for (int i = 0; i < 10; ++i) {
      add(OrderPage(wh), /*write=*/true);
      if (i % 2 == 0) add(CustomerPage(wh), /*write=*/true);
    }
  } else {
    // Stock-Level: district read + a swath of stock reads.
    add(WarehousePage(wh));
    for (int i = 0; i < 20; ++i) add(StockPage(wh));
  }
}

PageAccess Dbt2Trace::Next() {
  if (pending_pos_ >= pending_.size()) PlanTransaction();
  return pending_[pending_pos_++];
}

}  // namespace bpw
