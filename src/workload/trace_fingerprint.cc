#include "workload/trace_fingerprint.h"

namespace bpw {

namespace {
inline uint64_t FnvByte(uint64_t fp, uint8_t byte) {
  return (fp ^ byte) * 0x100000001b3ULL;
}
}  // namespace

uint64_t TraceFingerprintStep(uint64_t fp, const PageAccess& access) {
  uint64_t page = access.page;
  for (int i = 0; i < 8; ++i) {
    fp = FnvByte(fp, static_cast<uint8_t>(page & 0xFF));
    page >>= 8;
  }
  const uint8_t flags = static_cast<uint8_t>((access.is_write ? 1 : 0) |
                                             (access.begins_transaction ? 2 : 0));
  return FnvByte(fp, flags);
}

uint64_t TraceFingerprint(const WorkloadSpec& spec, uint32_t num_threads,
                          uint64_t accesses_per_thread) {
  uint64_t fp = kTraceFingerprintSeed;
  for (uint32_t t = 0; t < num_threads; ++t) {
    auto trace = CreateTrace(spec, t);
    if (trace == nullptr) return 0;
    for (uint64_t i = 0; i < accesses_per_thread; ++i) {
      fp = TraceFingerprintStep(fp, trace->Next());
    }
  }
  return fp;
}

}  // namespace bpw
