// TraceGenerator: per-thread page access streams.
//
// The paper drives PostgreSQL with DBT-1 (TPC-W-like), DBT-2 (TPC-C-like)
// and a synthetic TableScan (§IV-C). We cannot run OSDL test kits against a
// real PostgreSQL here, so each workload is reproduced as a deterministic
// generator with the same *access-pattern class*: page popularity skew,
// read/write mix, sequentiality, and transaction grouping. The substitution
// table in DESIGN.md §2 records the mapping.
//
// Each worker thread owns one generator instance seeded with
// (workload seed, thread id): streams are independent and runs are
// reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/types.h"

namespace bpw {

/// One page access in a thread's stream.
struct PageAccess {
  PageId page = 0;
  bool is_write = false;
  /// True on the first access of a new transaction; the driver uses it for
  /// transaction throughput and response-time accounting.
  bool begins_transaction = false;
};

class TraceGenerator {
 public:
  virtual ~TraceGenerator() = default;

  /// Produces the next access of this thread's stream. Infinite.
  virtual PageAccess Next() = 0;

  /// Number of distinct pages this stream can touch (the data set size).
  virtual uint64_t footprint_pages() const = 0;

  virtual std::string name() const = 0;
};

/// Declarative workload description used by the factory and the harness.
struct WorkloadSpec {
  /// "tablescan" | "dbt1" | "dbt2" | "zipfian" | "uniform" | "seqloop"
  std::string name = "dbt2";
  /// Total data set size in pages (the workload's footprint).
  uint64_t num_pages = 1 << 14;
  /// Skew for zipfian-flavoured workloads.
  double zipf_theta = 0.8;
  /// For "dbt2": number of warehouses (home-warehouse affinity per thread).
  uint32_t warehouses = 50;
  /// Base RNG seed; each thread derives its own stream from this.
  uint64_t seed = 42;
};

/// Creates thread `thread_id`'s generator for `spec`, or nullptr for an
/// unknown workload name.
std::unique_ptr<TraceGenerator> CreateTrace(const WorkloadSpec& spec,
                                            uint32_t thread_id);

/// All registered workload names.
std::vector<std::string> KnownWorkloads();

}  // namespace bpw
