#include "workload/table_scan.h"

namespace bpw {

TableScanTrace::TableScanTrace(uint64_t table_pages, uint32_t thread_id)
    : table_pages_(table_pages > 0 ? table_pages : 1),
      // Spread threads across the table so their scan positions interleave.
      pos_((static_cast<uint64_t>(thread_id) * 0x9E3779B97F4A7C15ULL) %
           table_pages_),
      scanned_in_tx_(0) {}

PageAccess TableScanTrace::Next() {
  PageAccess access;
  access.begins_transaction = scanned_in_tx_ == 0;
  access.page = pos_;
  pos_ = (pos_ + 1) % table_pages_;
  scanned_in_tx_ = (scanned_in_tx_ + 1) % table_pages_;
  return access;
}

}  // namespace bpw
