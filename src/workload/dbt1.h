// Dbt1Trace: a TPC-W-like browsing workload modelled on OSDL DBT-1
// (paper §IV-C: "simulates the activities of web users who browse and
// order items from an on-line bookstore").
//
// The synthetic reconstruction keeps DBT-1's defining properties:
//  - read-mostly (the browsing mix dominates; only the buy path writes)
//  - strong popularity skew on items (best sellers / front page)
//  - short index-range scans (search results, "new products" lists)
//  - a small always-hot region (index roots, category pages)
//
// Page layout (fractions of the footprint):
//   [ hot catalog/index 1% | items 59% | customers 30% | orders 10% ]
//
// Transaction mix (per the TPC-W browsing mix's spirit):
//   58% item browse, 20% search scan, 12% best-sellers, 10% buy (writes).
#pragma once

#include "util/random.h"
#include "util/zipfian.h"
#include "workload/trace_generator.h"

namespace bpw {

class Dbt1Trace : public TraceGenerator {
 public:
  Dbt1Trace(uint64_t num_pages, double item_theta, uint64_t seed);

  PageAccess Next() override;
  uint64_t footprint_pages() const override { return num_pages_; }
  std::string name() const override { return "dbt1"; }

 private:
  enum class Tx : uint8_t { kBrowse, kSearch, kBestSellers, kBuy };

  /// Plans the accesses of one transaction into pending_.
  void PlanTransaction();

  PageId HotPage();
  PageId ItemPage();
  PageId CustomerPage();
  PageId OrderPage();

  uint64_t num_pages_;
  Random rng_;
  ZipfianGenerator item_zipf_;       // clustered skew: popular items adjoin
  ScrambledZipfianGenerator customer_zipf_;

  // Region bounds [begin, end)
  uint64_t hot_begin_, hot_end_;
  uint64_t items_begin_, items_end_;
  uint64_t customers_begin_, customers_end_;
  uint64_t orders_begin_, orders_end_;

  uint64_t order_cursor_ = 0;  // append position for buy transactions

  std::vector<PageAccess> pending_;
  size_t pending_pos_ = 0;
};

}  // namespace bpw
