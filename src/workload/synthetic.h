// Simple synthetic streams: zipfian, uniform, and a per-thread sequential
// loop. Used by unit tests, microbenchmarks, and as building blocks of the
// DBT-like workloads.
#pragma once

#include "util/random.h"
#include "util/zipfian.h"
#include "workload/trace_generator.h"

namespace bpw {

/// Skewed random accesses (scrambled Zipfian), `accesses_per_tx` per
/// transaction, optional write fraction.
class ZipfianTrace : public TraceGenerator {
 public:
  ZipfianTrace(uint64_t num_pages, double theta, uint64_t seed,
               uint32_t accesses_per_tx = 10, double write_fraction = 0.0);

  PageAccess Next() override;
  uint64_t footprint_pages() const override { return num_pages_; }
  std::string name() const override { return "zipfian"; }

 private:
  uint64_t num_pages_;
  Random rng_;
  ScrambledZipfianGenerator zipf_;
  uint32_t accesses_per_tx_;
  double write_fraction_;
  uint32_t pos_in_tx_ = 0;
};

/// Uniform random accesses.
class UniformTrace : public TraceGenerator {
 public:
  UniformTrace(uint64_t num_pages, uint64_t seed,
               uint32_t accesses_per_tx = 10, double write_fraction = 0.0);

  PageAccess Next() override;
  uint64_t footprint_pages() const override { return num_pages_; }
  std::string name() const override { return "uniform"; }

 private:
  uint64_t num_pages_;
  Random rng_;
  uint32_t accesses_per_tx_;
  double write_fraction_;
  uint32_t pos_in_tx_ = 0;
};

/// Endless sequential sweep over the whole footprint; one transaction per
/// full pass. (A single-stream building block; the TableScan workload of
/// the paper is the multi-threaded use of this over a shared table.)
class SequentialLoopTrace : public TraceGenerator {
 public:
  SequentialLoopTrace(uint64_t num_pages, uint64_t start_offset = 0);

  PageAccess Next() override;
  uint64_t footprint_pages() const override { return num_pages_; }
  std::string name() const override { return "seqloop"; }

 private:
  uint64_t num_pages_;
  uint64_t pos_;
};

}  // namespace bpw
