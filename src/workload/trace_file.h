// Trace capture and replay.
//
// Records a page-access stream to a compact binary file and replays it as
// a TraceGenerator. This is how buffer-replacement research is usually
// validated (the LIRS/2Q/ARC papers all replay storage traces); here it
// also lets an interesting generated workload be frozen and re-run
// bit-identically against every policy/coordinator combination.
//
// File format (little-endian):
//   header:  magic "BPWT", uint32 version, uint64 num_pages, uint64 count
//   records: count x { uint64 page, uint8 flags }   flags: 1=write, 2=tx
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"
#include "workload/trace_generator.h"

namespace bpw {

/// Streams PageAccess records into a trace file.
class TraceWriter {
 public:
  TraceWriter() = default;
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Creates/truncates `path`. `num_pages` is the footprint the replayed
  /// trace will report.
  Status Open(const std::string& path, uint64_t num_pages);

  /// Appends one access. Must be called between Open and Close.
  Status Append(const PageAccess& access);

  /// Finalizes the header (record count) and closes the file.
  Status Close();

  uint64_t count() const { return count_; }

 private:
  std::FILE* file_ = nullptr;
  uint64_t num_pages_ = 0;
  uint64_t count_ = 0;
};

/// Loads a trace file fully into memory.
class TraceFile {
 public:
  /// Parses `path`; fails on bad magic/version/truncation.
  static StatusOr<TraceFile> Load(const std::string& path);

  uint64_t num_pages() const { return num_pages_; }
  const std::vector<PageAccess>& accesses() const { return accesses_; }

 private:
  uint64_t num_pages_ = 0;
  std::vector<PageAccess> accesses_;
};

/// Replays a loaded trace as a TraceGenerator, looping endlessly (the
/// driver decides run length). Each worker thread should replay its own
/// recorded stream; `ReplayTrace` is cheap to copy-construct from a shared
/// TraceFile.
class ReplayTrace : public TraceGenerator {
 public:
  explicit ReplayTrace(const TraceFile& file)
      : file_(&file) {}

  PageAccess Next() override;
  uint64_t footprint_pages() const override { return file_->num_pages(); }
  std::string name() const override { return "replay"; }

  /// True once the replay position has wrapped at least once.
  bool wrapped() const { return wrapped_; }

 private:
  const TraceFile* file_;
  size_t pos_ = 0;
  bool wrapped_ = false;
};

/// Convenience: records `count` accesses of `spec`'s thread-0 stream into
/// `path`.
Status RecordTrace(const WorkloadSpec& spec, uint64_t count,
                   const std::string& path);

}  // namespace bpw
