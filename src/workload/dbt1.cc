#include "workload/dbt1.h"

#include <algorithm>

namespace bpw {

Dbt1Trace::Dbt1Trace(uint64_t num_pages, double item_theta, uint64_t seed)
    : num_pages_(std::max<uint64_t>(num_pages, 64)),
      rng_(seed),
      item_zipf_(std::max<uint64_t>(1, num_pages_ * 59 / 100), item_theta),
      customer_zipf_(std::max<uint64_t>(1, num_pages_ * 30 / 100),
                     item_theta) {
  hot_begin_ = 0;
  hot_end_ = std::max<uint64_t>(1, num_pages_ / 100);
  items_begin_ = hot_end_;
  items_end_ = items_begin_ + num_pages_ * 59 / 100;
  customers_begin_ = items_end_;
  customers_end_ = customers_begin_ + num_pages_ * 30 / 100;
  orders_begin_ = customers_end_;
  orders_end_ = num_pages_;
}

PageId Dbt1Trace::HotPage() {
  return hot_begin_ + rng_.Uniform(hot_end_ - hot_begin_);
}

PageId Dbt1Trace::ItemPage() {
  const uint64_t span = items_end_ - items_begin_;
  return items_begin_ + std::min(item_zipf_.Next(rng_), span - 1);
}

PageId Dbt1Trace::CustomerPage() {
  const uint64_t span = customers_end_ - customers_begin_;
  return customers_begin_ + std::min(customer_zipf_.Next(rng_), span - 1);
}

PageId Dbt1Trace::OrderPage() {
  const uint64_t span = orders_end_ - orders_begin_;
  return orders_begin_ + order_cursor_ % span;
}

void Dbt1Trace::PlanTransaction() {
  pending_.clear();
  pending_pos_ = 0;
  auto add = [this](PageId page, bool write = false) {
    pending_.push_back(PageAccess{page, write, pending_.empty()});
  };

  const uint64_t draw = rng_.Uniform(100);
  if (draw < 58) {
    // Item browse: index root, the item, its detail page, related items.
    add(HotPage());
    const PageId item = ItemPage();
    add(item);
    add(std::min(item + 1, items_end_ - 1));
    add(ItemPage());
    add(ItemPage());
    add(CustomerPage());
  } else if (draw < 78) {
    // Search: index root + a short range scan of result pages.
    add(HotPage());
    const uint64_t span = items_end_ - items_begin_;
    const uint64_t scan_len = 8 + rng_.Uniform(8);
    const PageId start = items_begin_ + rng_.Uniform(span);
    for (uint64_t i = 0; i < scan_len; ++i) {
      add(items_begin_ + (start - items_begin_ + i) % span);
    }
  } else if (draw < 90) {
    // Best sellers: re-scan of the hot region plus top items.
    for (PageId p = hot_begin_; p < hot_end_ && pending_.size() < 24; ++p) {
      add(p);
    }
    for (int i = 0; i < 6; ++i) add(ItemPage());
  } else {
    // Buy: customer + cart items, then order insert (the write path).
    add(CustomerPage());
    add(HotPage());
    for (int i = 0; i < 3; ++i) add(ItemPage());
    add(CustomerPage(), /*write=*/true);
    add(OrderPage(), /*write=*/true);
    ++order_cursor_;
  }
}

PageAccess Dbt1Trace::Next() {
  if (pending_pos_ >= pending_.size()) PlanTransaction();
  return pending_[pending_pos_++];
}

}  // namespace bpw
