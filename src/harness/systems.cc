#include "harness/systems.h"

namespace bpw {

StatusOr<std::vector<MatrixCell>> RunSystemMatrix(
    const DriverConfig& base, const std::vector<std::string>& systems,
    const std::vector<uint32_t>& thread_counts,
    const std::function<void(DriverConfig&)>& mutate) {
  std::vector<MatrixCell> cells;
  cells.reserve(systems.size() * thread_counts.size());
  for (const auto& system_name : systems) {
    auto system = PaperSystemConfig(system_name);
    if (!system.ok()) return system.status();
    for (const uint32_t threads : thread_counts) {
      DriverConfig config = base;
      config.system = system.value();
      config.num_threads = threads;
      if (mutate) mutate(config);
      auto result = RunDriver(config);
      if (!result.ok()) return result.status();
      cells.push_back(
          MatrixCell{system_name, threads, std::move(result).value()});
    }
  }
  return cells;
}

StatusOr<std::vector<MatrixCell>> RunSystemMatrixSim(
    const DriverConfig& base, const std::vector<std::string>& systems,
    const std::vector<uint32_t>& thread_counts, const SimCosts& costs,
    const std::function<void(DriverConfig&)>& mutate) {
  std::vector<MatrixCell> cells;
  cells.reserve(systems.size() * thread_counts.size());
  for (const auto& system_name : systems) {
    auto system = PaperSystemConfig(system_name);
    if (!system.ok()) return system.status();
    for (const uint32_t threads : thread_counts) {
      DriverConfig config = base;
      config.system = system.value();
      config.num_threads = threads;
      if (mutate) mutate(config);
      auto result = RunSimulation(config, costs);
      if (!result.ok()) return result.status();
      cells.push_back(
          MatrixCell{system_name, threads, std::move(result).value()});
    }
  }
  return cells;
}

DriverConfig ScalabilityRunConfig(const std::string& workload_name,
                                  uint64_t footprint_pages,
                                  uint64_t duration_ms) {
  DriverConfig config;
  config.workload.name = workload_name;
  config.workload.num_pages = footprint_pages;
  config.duration_ms = duration_ms;
  config.warmup_ms = duration_ms / 4;
  config.num_frames = 0;  // buffer >= working set: the zero-miss setting
  config.prewarm = true;
  config.storage_latency = StorageLatencyModel::None();
  return config;
}

}  // namespace bpw
