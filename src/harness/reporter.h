// Table/CSV rendering of experiment results, so every bench binary prints
// rows shaped like the paper's figures and tables.
#pragma once

#include <string>
#include <vector>

#include "harness/systems.h"

namespace bpw {

/// A rendered table: header plus string cells, column-aligned by Print.
class TableReporter {
 public:
  explicit TableReporter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Adds a row from already-formatted doubles with `precision` decimals.
  void AddNumericRow(const std::string& label,
                     const std::vector<double>& values, int precision = 1);

  /// Renders to stdout with aligned columns.
  void Print(const std::string& title) const;

  /// Renders as CSV (for plotting).
  std::string ToCsv() const;

  /// Renders as a JSON array of row objects keyed by the header; cells that
  /// are complete numbers are emitted unquoted. Machine-readable companion
  /// of Print()/ToCsv() for downstream tooling.
  std::string ToJson() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string FormatDouble(double value, int precision = 1);

/// Renders the standard scalability triple (throughput / response time /
/// lock contention) the way Figs. 6-7 lay it out: one table per metric,
/// systems as rows, thread counts as columns.
void PrintScalabilityTables(const std::string& workload_title,
                            const std::vector<MatrixCell>& cells,
                            const std::vector<std::string>& systems,
                            const std::vector<uint32_t>& thread_counts);

}  // namespace bpw
