#include "harness/reporter.h"

#include <cstdio>

#include "obs/json.h"

namespace bpw {

TableReporter::TableReporter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TableReporter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TableReporter::AddNumericRow(const std::string& label,
                                  const std::vector<double>& values,
                                  int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, precision));
  rows_.push_back(std::move(row));
}

void TableReporter::Print(const std::string& title) const {
  if (!title.empty()) std::printf("%s\n", title.c_str());
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%-*s%s", static_cast<int>(widths[c]), cell.c_str(),
                  c + 1 == widths.size() ? "\n" : "  ");
    }
  };
  print_row(header_);
  size_t total = header_.size() > 0 ? (header_.size() - 1) * 2 : 0;
  for (size_t w : widths) total += w;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
  std::printf("\n");
}

namespace {

// RFC 4180 field escaping: cells containing a comma, quote, or newline are
// quoted, with embedded quotes doubled. Policy/system labels are free-form
// strings, so an unescaped cell would silently shift every column after it.
std::string CsvField(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TableReporter::ToCsv() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += CsvField(row[c]);
      out += c + 1 == row.size() ? '\n' : ',';
    }
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string TableReporter::ToJson() const {
  std::string out = "[";
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out += ',';
    out += '{';
    const auto& row = rows_[r];
    for (size_t c = 0; c < header_.size(); ++c) {
      if (c > 0) out += ',';
      out += obs::JsonString(header_[c]);
      out += ':';
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += obs::LooksLikeJsonNumber(cell) ? cell : obs::JsonString(cell);
    }
    out += '}';
  }
  out += ']';
  return out;
}

void PrintScalabilityTables(const std::string& workload_title,
                            const std::vector<MatrixCell>& cells,
                            const std::vector<std::string>& systems,
                            const std::vector<uint32_t>& thread_counts) {
  auto find = [&](const std::string& system,
                  uint32_t threads) -> const DriverResult* {
    for (const auto& cell : cells) {
      if (cell.system == system && cell.threads == threads) {
        return &cell.result;
      }
    }
    return nullptr;
  };

  std::vector<std::string> header{"system"};
  for (uint32_t t : thread_counts) {
    header.push_back(std::to_string(t) + " thr");
  }

  struct Metric {
    const char* title;
    int precision;
    double (*get)(const DriverResult&);
  };
  const Metric metrics[] = {
      {"Throughput (transactions/sec)", 0,
       [](const DriverResult& r) { return r.throughput_tps; }},
      {"Average response time (us)", 1,
       [](const DriverResult& r) { return r.avg_response_us; }},
      {"Average lock contention (per 1M accesses)", 1,
       [](const DriverResult& r) { return r.contentions_per_million; }},
  };
  for (const Metric& metric : metrics) {
    TableReporter table(header);
    for (const auto& system : systems) {
      std::vector<double> values;
      values.reserve(thread_counts.size());
      for (uint32_t t : thread_counts) {
        const DriverResult* r = find(system, t);
        values.push_back(r == nullptr ? 0.0 : metric.get(*r));
      }
      table.AddNumericRow(system, values, metric.precision);
    }
    table.Print(workload_title + " — " + metric.title);
  }
}

}  // namespace bpw
