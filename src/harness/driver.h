// Driver: runs one configured system under one workload with N worker
// threads and measures exactly what the paper reports:
//   - throughput (transactions per second)
//   - average (and percentile) transaction response time
//   - average lock contention (contention events per million page accesses,
//     the §IV-D definition)
//   - hit ratio, and lock acquisition+holding time per access (Fig. 2)
//
// Run phases: a warm-up (optionally preceded by a sequential pre-warm of
// the buffer, as the paper does for the zero-miss scalability runs),
// followed by a timed measurement window. Workers reset their local
// counters at the warm-up/measure transition; global lock counters are
// snapshot-subtracted.
#pragma once

#include <cstdint>
#include <vector>

#include "core/coordinator_factory.h"
#include "obs/contention_profiler.h"
#include "obs/stats_sampler.h"
#include "storage/storage_engine.h"
#include "util/histogram.h"
#include "util/status.h"
#include "workload/trace_generator.h"

namespace bpw {

struct DriverConfig {
  uint32_t num_threads = 4;

  /// Measurement window. If transactions_per_thread is non-zero the run is
  /// count-based instead (each thread executes exactly that many
  /// transactions, no phases) — used by deterministic tests.
  uint64_t duration_ms = 400;
  uint64_t warmup_ms = 100;
  uint64_t transactions_per_thread = 0;

  WorkloadSpec workload;
  SystemConfig system;

  /// Buffer size in frames. 0 = the workload's full footprint, i.e. the
  /// paper's zero-miss scalability setting ("we set the buffer large enough
  /// to hold the whole working sets ... and pre-warm the buffer").
  size_t num_frames = 0;
  size_t page_size = 4096;

  StorageLatencyModel storage_latency;  // default: no latency

  /// Non-critical-section computation per page access (SpinWork
  /// iterations): the transaction-processing work between buffer requests.
  /// Larger values shrink the relative weight of the replacement-policy
  /// critical section (an Altix-like profile); smaller values grow it (the
  /// PowerEdge profile of §IV-D, where hardware prefetching accelerated
  /// only the non-critical code).
  uint64_t think_work = 64;

  /// Sequentially fault in the whole working set before the run.
  bool prewarm = true;

  /// If non-zero, a StatsSampler thread snapshots the default metrics
  /// registry every N ms for the whole run (warm-up included) and the
  /// cumulative series lands in DriverResult::metrics_samples.
  uint64_t metrics_interval_ms = 0;

  /// Enables the contention profiler for this run: accumulators reset at
  /// the warm-up/measure transition (so warm-up noise is excluded, same as
  /// the lock counters) and DriverResult::contention carries the
  /// measurement-window snapshot. For Fig. 2-comparable wait/hold totals
  /// the system config should also select LockInstrumentation::kTiming —
  /// the profiler shares those clock reads. No-op under BPW_PROF=0 builds.
  bool profile_contention = false;
};

struct DriverResult {
  double measure_seconds = 0;
  uint64_t transactions = 0;
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;

  double throughput_tps = 0;
  double accesses_per_sec = 0;
  double avg_response_us = 0;
  double p95_response_us = 0;
  double hit_ratio = 0;

  LockStats lock;  // deltas over the measurement window
  /// The paper's §IV-D metric: blocking lock waits per 1e6 page accesses.
  double contentions_per_million = 0;
  /// Fig. 2 metric (timing instrumentation only): (wait + hold) nanoseconds
  /// averaged per page access.
  double lock_nanos_per_access = 0;

  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  Histogram response_histogram;

  /// Delta of every registered metric (buffer/lock/coord/storage) over the
  /// measurement window — the machine-readable counterpart of the scalar
  /// fields above.
  obs::MetricsSnapshot metrics;
  /// Cumulative sampler series (≥2 entries when metrics_interval_ms > 0:
  /// one at start, one per tick, one at stop).
  std::vector<obs::MetricsSnapshot> metrics_samples;

  /// Per-site lock wait/hold attribution and commit-phase breakdown over
  /// the measurement window. Empty unless config.profile_contention (and
  /// always empty under BPW_PROF=0 builds, where no sites register).
  obs::ProfSnapshot contention;

  /// Sampler health (meaningful when metrics_interval_ms > 0): ticks whose
  /// snapshot outran the sampling interval, and the whole periods those
  /// over-long ticks swallowed. Nonzero means metrics_samples
  /// under-represents the run.
  uint64_t sampler_overruns = 0;
  uint64_t sampler_skipped_ticks = 0;
};

/// Runs the experiment described by `config`. Creates storage, pool,
/// policy, coordinator, workers; returns merged metrics.
StatusOr<DriverResult> RunDriver(const DriverConfig& config);

}  // namespace bpw
