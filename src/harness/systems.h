// Experiment matrix helpers: run the paper's five systems across thread
// counts / parameter sweeps and collect the rows the benches print.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "harness/driver.h"
#include "sim/sim_driver.h"

namespace bpw {

/// One measured cell of an experiment matrix.
struct MatrixCell {
  std::string system;
  uint32_t threads = 0;
  DriverResult result;
};

/// Runs `base` once per (system × thread count). `mutate` (optional) is
/// applied to the per-cell config after system/thread substitution, for
/// sweeps that vary more than those two axes. Stops at the first error.
StatusOr<std::vector<MatrixCell>> RunSystemMatrix(
    const DriverConfig& base, const std::vector<std::string>& systems,
    const std::vector<uint32_t>& thread_counts,
    const std::function<void(DriverConfig&)>& mutate = nullptr);

/// Like RunSystemMatrix, but each cell runs on the multiprocessor
/// simulator (src/sim) instead of host threads. `threads` is the number of
/// *simulated processors*; durations are simulated milliseconds.
StatusOr<std::vector<MatrixCell>> RunSystemMatrixSim(
    const DriverConfig& base, const std::vector<std::string>& systems,
    const std::vector<uint32_t>& thread_counts, const SimCosts& costs,
    const std::function<void(DriverConfig&)>& mutate = nullptr);

/// Convenience: a DriverConfig preset for the paper's scalability runs
/// (zero-miss, pre-warmed, counted locks) on workload `workload_name`.
DriverConfig ScalabilityRunConfig(const std::string& workload_name,
                                  uint64_t footprint_pages,
                                  uint64_t duration_ms);

}  // namespace bpw
