#include "harness/driver.h"

#include <atomic>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "util/clock.h"
#include "util/logging.h"

namespace bpw {

namespace {

enum class Phase : int { kWarmup, kMeasure, kStop };

struct WorkerOutput {
  Histogram response;   // transaction response times, nanoseconds
  uint64_t transactions = 0;
  AccessStats access;
  uint64_t errors = 0;
  uint64_t spin_sink = 0;  // keeps SpinWork alive
};

void WorkerLoop(BufferPool& pool, const DriverConfig& config,
                uint32_t thread_id, const std::atomic<int>& phase,
                WorkerOutput& out) {
  auto session = pool.CreateSession();
  auto trace = CreateTrace(config.workload, thread_id);
  if (trace == nullptr) {
    ++out.errors;
    return;
  }

  const bool count_mode = config.transactions_per_thread > 0;
  int seen_phase = static_cast<int>(Phase::kWarmup);
  uint64_t tx_start_nanos = 0;
  bool in_tx = false;

  while (true) {
    const PageAccess access = trace->Next();
    if (access.begins_transaction) {
      const uint64_t now = NowNanos();
      if (in_tx) {
        out.response.Record(now - tx_start_nanos);
        ++out.transactions;
      }
      tx_start_nanos = now;
      in_tx = true;

      if (count_mode) {
        if (out.transactions >= config.transactions_per_thread) break;
      } else {
        const int current = phase.load(std::memory_order_relaxed);
        if (current == static_cast<int>(Phase::kStop)) break;
        if (current != seen_phase) {
          // Warm-up ended: shed everything counted so far.
          seen_phase = current;
          out.response.Reset();
          out.transactions = 0;
          session->ResetStats();
        }
      }
    }

    auto handle = pool.FetchPage(*session, access.page);
    if (!handle.ok()) {
      ++out.errors;
      continue;
    }
    if (access.is_write) handle.value().MarkDirty();
    handle.value().Release();

    if (config.think_work > 0) {
      out.spin_sink += SpinWork(config.think_work);
    }
  }
  pool.FlushSession(*session);
  out.access = session->stats();
}

}  // namespace

StatusOr<DriverResult> RunDriver(const DriverConfig& config) {
  if (config.num_threads == 0) {
    return Status::InvalidArgument("need at least one worker thread");
  }
  auto probe = CreateTrace(config.workload, 0);
  if (probe == nullptr) {
    return Status::InvalidArgument("unknown workload: " +
                                   config.workload.name);
  }
  const uint64_t footprint = probe->footprint_pages();
  probe.reset();

  const size_t num_frames =
      config.num_frames != 0 ? config.num_frames : footprint;

  StorageEngine storage(footprint, config.page_size, config.storage_latency);

  auto coordinator = CreateCoordinator(config.system, num_frames);
  if (!coordinator.ok()) return coordinator.status();

  BufferPoolConfig pool_config;
  pool_config.num_frames = num_frames;
  pool_config.page_size = config.page_size;
  BufferPool pool(pool_config, &storage, std::move(coordinator).value());

  if (config.prewarm) {
    auto warm_session = pool.CreateSession();
    const uint64_t warm_pages = std::min<uint64_t>(footprint, num_frames);
    auto status = pool.Prewarm(*warm_session, 0, warm_pages);
    if (!status.ok()) return status;
    pool.FlushSession(*warm_session);
  }

  // The registry accumulates across runs in one process; snapshot-subtract
  // the measurement window the same way the lock counters are handled.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  std::unique_ptr<obs::StatsSampler> sampler;
  if (config.metrics_interval_ms > 0) {
    sampler = std::make_unique<obs::StatsSampler>(&registry,
                                                  config.metrics_interval_ms);
    sampler->Start();
  }

  // Remember the profiler's prior state so a profiled run inside a larger
  // process (benchmarks run many drivers back to back) doesn't leak its
  // enablement into the next run.
  const bool prof_was_enabled = obs::ProfilerEnabled();
  if (config.profile_contention) obs::SetProfilerEnabled(true);

  std::atomic<int> phase{static_cast<int>(Phase::kWarmup)};
  std::vector<WorkerOutput> outputs(config.num_threads);
  std::vector<std::thread> workers;
  workers.reserve(config.num_threads);

  LockStats lock_before;
  obs::MetricsSnapshot metrics_before;
  uint64_t measure_start = 0;
  uint64_t measure_end = 0;
  const bool count_mode = config.transactions_per_thread > 0;
  // Count mode measures the whole run, so the before-snapshot must precede
  // the workers' existence: a fast worker can otherwise finish before the
  // snapshot and its registry increments vanish from the delta.
  if (count_mode) {
    metrics_before = registry.Snapshot();
    if (config.profile_contention) obs::ResetProfiler();
    measure_start = NowNanos();
  }
  for (uint32_t t = 0; t < config.num_threads; ++t) {
    workers.emplace_back(WorkerLoop, std::ref(pool), std::cref(config), t,
                         std::cref(phase), std::ref(outputs[t]));
  }
  if (count_mode) {
    for (auto& w : workers) w.join();
    measure_end = NowNanos();
    lock_before = LockStats{};  // whole run counts
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(config.warmup_ms));
    lock_before = pool.coordinator().lock_stats();
    metrics_before = registry.Snapshot();
    // Zero the profiler at the same instant the lock counters are
    // snapshotted: both then cover exactly the measurement window, which is
    // what lets the report's totals be compared against LockStats.
    if (config.profile_contention) obs::ResetProfiler();
    measure_start = NowNanos();
    phase.store(static_cast<int>(Phase::kMeasure),
                std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config.duration_ms));
    phase.store(static_cast<int>(Phase::kStop), std::memory_order_relaxed);
    measure_end = NowNanos();
    for (auto& w : workers) w.join();
  }

  const LockStats lock_after = pool.coordinator().lock_stats();
  const obs::MetricsSnapshot metrics_after = registry.Snapshot();
  // Stop before the pool (and its metric sources) can be torn down.
  if (sampler != nullptr) sampler->Stop();

  DriverResult result;
  if (config.profile_contention) {
    result.contention = obs::CollectProfSnapshot();
    obs::SetProfilerEnabled(prof_was_enabled);
  }
  if (sampler != nullptr) {
    result.sampler_overruns = sampler->overruns();
    result.sampler_skipped_ticks = sampler->skipped_ticks();
  }
  result.measure_seconds =
      static_cast<double>(measure_end - measure_start) / 1e9;
  for (const auto& out : outputs) {
    if (out.errors > 0) {
      return Status::Internal("worker reported errors during the run");
    }
    result.transactions += out.transactions;
    result.hits += out.access.hits;
    result.misses += out.access.misses;
    result.response_histogram.Merge(out.response);
  }
  result.accesses = result.hits + result.misses;
  if (result.measure_seconds > 0) {
    result.throughput_tps =
        static_cast<double>(result.transactions) / result.measure_seconds;
    result.accesses_per_sec =
        static_cast<double>(result.accesses) / result.measure_seconds;
  }
  result.avg_response_us = result.response_histogram.Mean() / 1000.0;
  result.p95_response_us = result.response_histogram.Percentile(95) / 1000.0;
  result.hit_ratio =
      result.accesses == 0
          ? 0.0
          : static_cast<double>(result.hits) / result.accesses;

  result.lock.acquisitions = lock_after.acquisitions - lock_before.acquisitions;
  result.lock.contentions = lock_after.contentions - lock_before.contentions;
  result.lock.trylock_failures =
      lock_after.trylock_failures - lock_before.trylock_failures;
  result.lock.hold_nanos = lock_after.hold_nanos - lock_before.hold_nanos;
  result.lock.wait_nanos = lock_after.wait_nanos - lock_before.wait_nanos;
  if (result.accesses > 0) {
    result.contentions_per_million =
        static_cast<double>(result.lock.contentions) * 1e6 /
        static_cast<double>(result.accesses);
    result.lock_nanos_per_access =
        static_cast<double>(result.lock.hold_nanos +
                            result.lock.wait_nanos) /
        static_cast<double>(result.accesses);
  }
  result.evictions = pool.evictions();
  result.writebacks = pool.writebacks();
  result.metrics = metrics_after.DeltaFrom(metrics_before);
  if (sampler != nullptr) result.metrics_samples = sampler->samples();
  return result;
}

}  // namespace bpw
