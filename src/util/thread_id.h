// Small dense thread ids. std::this_thread::get_id() values are opaque and
// sparse; observability wants compact ids that can index sharded counter
// cells, tag trace events, and prefix log lines identically.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/thread_annotations.h"

namespace bpw {

namespace internal {
inline std::atomic<uint32_t> g_next_thread_id{1} BPW_RELAXED_OK(
    "id allocator; only uniqueness matters");
}  // namespace internal

/// Returns a small id unique to the calling thread, assigned on first use
/// (main thread is usually 1). Ids are never reused within a process.
inline uint32_t CurrentThreadId() {
  thread_local uint32_t id =
      internal::g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace bpw
