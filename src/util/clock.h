// Monotonic time sources and a calibrated busy-wait used to simulate
// CPU work (transaction "think" computation) and storage latency.
#pragma once

#include <chrono>
#include <cstdint>

namespace bpw {

/// Nanoseconds from a monotonic clock.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Microseconds from a monotonic clock.
inline uint64_t NowMicros() { return NowNanos() / 1000; }

/// Spins the CPU for approximately `iters` dependent arithmetic operations.
/// Used to model per-access non-critical-section computation: unlike a
/// sleep, it consumes CPU the way real transaction-processing code does,
/// which is what makes lock contention experiments meaningful.
/// Returns a value that must be consumed to stop the compiler from deleting
/// the loop.
uint64_t SpinWork(uint64_t iters);

/// Busy-waits until `nanos` wall-clock nanoseconds have elapsed. Used for
/// simulated storage latency where wall-clock accuracy matters more than
/// CPU-cycle accounting.
void BusyWaitNanos(uint64_t nanos);

/// A scoped stopwatch measuring elapsed nanoseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(NowNanos()) {}
  uint64_t ElapsedNanos() const { return NowNanos() - start_; }
  void Restart() { start_ = NowNanos(); }

 private:
  uint64_t start_;
};

}  // namespace bpw
