// Cache-line alignment helpers. The BP-Wrapper per-thread queues and the
// contention-counting lock rely on padding to avoid false sharing.
#pragma once

#include <cstddef>
#include <new>

#include "util/thread_annotations.h"

namespace bpw {

// 64 bytes on every mainstream x86/ARM server part; fixed rather than
// std::hardware_destructive_interference_size so the ABI does not vary with
// compiler tuning flags.
inline constexpr size_t kCacheLineSize = 64;

/// Wraps T so that distinct instances in an array never share a cache line.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{} BPW_RELAXED_OK("storage wrapper; the wrapped type's user owns ordering");

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

}  // namespace bpw
