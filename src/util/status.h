// Status / StatusOr: lightweight error propagation without exceptions,
// following the Arrow/RocksDB idiom for database-engine code.
#pragma once

#include <cassert>
#include <string>
#include <utility>

namespace bpw {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kCorruption,
  kResourceExhausted,
  kFailedPrecondition,
  kAborted,
  kOutOfRange,
  kInternal,
  kIOError,
};

/// A Status encodes the result of an operation that can fail. The OK status
/// carries no allocation; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }

  /// Human-readable rendering, e.g. "Corruption: lru list broken".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// StatusOr<T> holds either a value or an error status.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK status to the caller.
#define BPW_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::bpw::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

}  // namespace bpw
