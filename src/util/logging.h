// Minimal leveled logging. Database-engine hot paths must never log, so the
// macros are cheap to skip and used only in setup / teardown / error paths.
#pragma once

#include <sstream>
#include <string>

namespace bpw {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that is emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one log line to stderr as "[LEVEL <monotonic seconds> t<tid>] msg".
/// The timestamp and thread id use the same monotonic clock / dense ids as
/// trace events (obs/trace_recorder.h), so log lines correlate with spans.
/// Thread-safe.
void LogMessage(LogLevel level, const std::string& msg);

namespace internal {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= GetLogLevel()) LogMessage(level_, stream_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= GetLogLevel()) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define BPW_LOG_DEBUG ::bpw::internal::LogLine(::bpw::LogLevel::kDebug)
#define BPW_LOG_INFO ::bpw::internal::LogLine(::bpw::LogLevel::kInfo)
#define BPW_LOG_WARN ::bpw::internal::LogLine(::bpw::LogLevel::kWarn)
#define BPW_LOG_ERROR ::bpw::internal::LogLine(::bpw::LogLevel::kError)

}  // namespace bpw
