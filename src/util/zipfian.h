// Zipfian-distributed sampling over [0, n), used by the DBT-1/DBT-2-like
// workload generators to model skewed page popularity.
#pragma once

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace bpw {

/// Draws values in [0, n) with probability proportional to 1 / (i+1)^theta.
/// Uses the Gray et al. rejection-inversion-free method from the YCSB
/// generator: O(1) per sample after O(1) setup (with an approximation of the
/// generalized harmonic number that is exact in the limit and accurate to
/// <0.1% for n >= 100).
class ZipfianGenerator {
 public:
  /// @param n      size of the key space (must be >= 1)
  /// @param theta  skew parameter in [0, 1); 0 is uniform-ish, 0.99 is the
  ///               YCSB default "hot" skew
  ZipfianGenerator(uint64_t n, double theta);

  /// Samples the next value in [0, n). Item 0 is the most popular.
  uint64_t Next(Random& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

/// A scrambled Zipfian: same popularity distribution, but hot items are
/// scattered across the key space instead of clustered at 0. This models
/// e.g. hot customer rows spread over a table's pages.
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t n, double theta) : zipf_(n, theta) {}

  uint64_t Next(Random& rng);

 private:
  static uint64_t FnvHash64(uint64_t v);

  ZipfianGenerator zipf_;
};

}  // namespace bpw
