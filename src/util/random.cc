#include "util/random.h"

namespace bpw {

namespace {
inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Random::Random(uint64_t seed) { Reseed(seed); }

void Random::Reseed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
  // A zero state would be absorbing; SplitMix64 cannot produce four zeros
  // from any seed, but keep the guarantee explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  // Lemire's nearly-divisionless bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Random::UniformRange(uint64_t lo, uint64_t hi) {
  return lo + Uniform(hi - lo + 1);
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace bpw
