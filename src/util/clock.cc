#include "util/clock.h"

namespace bpw {

uint64_t SpinWork(uint64_t iters) {
  // A dependent multiply-xor chain: one iteration is a handful of cycles and
  // cannot be vectorized or constant-folded away across the asm barrier.
  uint64_t x = 0x2545F4914F6CDD1DULL + iters;
  for (uint64_t i = 0; i < iters; ++i) {
    x ^= x >> 12;
    x *= 0x9E6C63D0876A9A75ULL;
    asm volatile("" : "+r"(x));
  }
  return x;
}

void BusyWaitNanos(uint64_t nanos) {
  if (nanos == 0) return;
  const uint64_t deadline = NowNanos() + nanos;
  while (NowNanos() < deadline) {
    // Yield pipeline resources politely while spinning.
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
}

}  // namespace bpw
