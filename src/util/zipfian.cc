#include "util/zipfian.h"

#include <cassert>
#include <cmath>

namespace bpw {

namespace {
// Above this size, computing the exact harmonic sum is too slow; switch to
// the Euler-Maclaurin approximation of the generalized harmonic number.
constexpr uint64_t kExactZetaLimit = 1 << 20;
}  // namespace

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  if (n <= kExactZetaLimit) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
    return sum;
  }
  // Exact prefix + integral approximation of the tail.
  double sum = Zeta(kExactZetaLimit, theta);
  double a = static_cast<double>(kExactZetaLimit);
  double b = static_cast<double>(n);
  sum += (std::pow(b, 1 - theta) - std::pow(a, 1 - theta)) / (1 - theta);
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n >= 1);
  assert(theta >= 0 && theta < 1);
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1 - std::pow(2.0 / static_cast<double>(n_), 1 - theta_)) /
         (1 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Random& rng) {
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

uint64_t ScrambledZipfianGenerator::FnvHash64(uint64_t v) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 8; ++i) {
    hash ^= (v >> (i * 8)) & 0xff;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t ScrambledZipfianGenerator::Next(Random& rng) {
  uint64_t raw = zipf_.Next(rng);
  return FnvHash64(raw) % zipf_.n();
}

}  // namespace bpw
