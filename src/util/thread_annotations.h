// Clang Thread Safety Analysis macros (-Wthread-safety).
//
// BP-Wrapper's contribution is a lock *protocol* — private per-thread
// queues, TryLock-first batched commits, prefetch-before-lock — and a
// protocol is exactly the kind of invariant a compiler can check. These
// macros declare, on the locks in src/sync and the structures they protect,
// which capability guards what; a clang build with -Wthread-safety then
// rejects any access path that does not provably hold the right lock
// (tests/negative_compile/ keeps the rejection working).
//
// Under gcc (or any non-clang compiler) every macro expands to nothing, so
// the annotations are free documentation there; CI's static-analysis job is
// the gate that compiles them for real.
//
// Vocabulary (see clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//   BPW_CAPABILITY(x)        the class is a lock ("capability") named x
//   BPW_SCOPED_CAPABILITY    the class is an RAII guard managing a capability
//   BPW_GUARDED_BY(mu)       reads/writes of this member require holding mu
//   BPW_PT_GUARDED_BY(mu)    dereferences of this pointer require holding mu
//   BPW_ACQUIRE(...)         the function acquires the capability
//   BPW_TRY_ACQUIRE(b, ...)  ...acquires it iff the function returns b
//   BPW_RELEASE(...)         the function releases the capability
//   BPW_REQUIRES(...)        caller must hold the capability (exclusive)
//   BPW_REQUIRES_SHARED(...) caller must hold it at least shared
//   BPW_EXCLUDES(...)        caller must NOT hold the capability
//   BPW_ASSERT_CAPABILITY(x) runtime/contract assertion that x is held
//   BPW_RETURN_CAPABILITY(x) the function returns a reference to capability x
//   BPW_NO_THREAD_SAFETY_ANALYSIS  opt this function out (lock internals,
//                                  quiesced-only test surfaces)
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define BPW_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BPW_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define BPW_CAPABILITY(x) BPW_THREAD_ANNOTATION(capability(x))
#define BPW_SCOPED_CAPABILITY BPW_THREAD_ANNOTATION(scoped_lockable)

#define BPW_GUARDED_BY(x) BPW_THREAD_ANNOTATION(guarded_by(x))
#define BPW_PT_GUARDED_BY(x) BPW_THREAD_ANNOTATION(pt_guarded_by(x))

#define BPW_ACQUIRED_BEFORE(...) \
  BPW_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define BPW_ACQUIRED_AFTER(...) \
  BPW_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define BPW_REQUIRES(...) \
  BPW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define BPW_REQUIRES_SHARED(...) \
  BPW_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define BPW_ACQUIRE(...) \
  BPW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BPW_ACQUIRE_SHARED(...) \
  BPW_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define BPW_RELEASE(...) \
  BPW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BPW_RELEASE_SHARED(...) \
  BPW_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define BPW_TRY_ACQUIRE(...) \
  BPW_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define BPW_TRY_ACQUIRE_SHARED(...) \
  BPW_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define BPW_EXCLUDES(...) BPW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define BPW_ASSERT_CAPABILITY(x) BPW_THREAD_ANNOTATION(assert_capability(x))
#define BPW_ASSERT_SHARED_CAPABILITY(x) \
  BPW_THREAD_ANNOTATION(assert_shared_capability(x))

#define BPW_RETURN_CAPABILITY(x) BPW_THREAD_ANNOTATION(lock_returned(x))

#define BPW_NO_THREAD_SAFETY_ANALYSIS \
  BPW_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Layer-2 annotations, read by tools/bpw_atomiclint (not by clang).
//
// Clang's -Wthread-safety proves lock *coverage*; it says nothing about the
// lock-free paths. These macros declare the memory-ordering protocol those
// paths rely on, and bpw_atomiclint checks the declared shape against the
// code. All of them expand to nothing under every compiler — they exist for
// the analyzer and for the reader.
//
//   BPW_PUBLISHED_BY(stamp)  this atomic field is payload published by a
//                            release-or-stronger write of `stamp` (a sibling
//                            field). Relaxed accesses to the payload are
//                            legal; in exchange, every function that writes
//                            it must release-publish the stamp, and every
//                            function that reads it must acquire-observe the
//                            stamp (or an acquire fence).
//   BPW_SEQLOCK_STAMP        this atomic field is a seqlock version counter:
//                            odd while a writer is mid-flight. Readers of
//                            payload published by it must load it at least
//                            twice and test oddness (`v & 1`).
//   BPW_RELAXED_OK(reason)   memory_order_relaxed on this field (or, as a
//                            standalone statement, on this line and the
//                            next) is deliberate — say why.
//   BPW_LOCK_CLASS(name)     merge this lock field into the named ordering
//                            class (all pgShard shard locks are one "shard"
//                            class: instances are interchangeable for
//                            deadlock purposes).
//   BPW_LOCK_LEAF            no blocking acquisition is permitted while a
//                            lock of this class is held. Encodes pgShard's
//                            "never two shard locks" as a checkable
//                            zero-out-degree rule.
//
// Layer-3 annotations, read by tools/bpw_holdlint (the interprocedural
// critical-section prover):
//
//   BPW_BOUNDED_BY(expr)     placed on (or on the line above) a loop that
//                            is not structurally bounded: `expr` names the
//                            quantity that bounds its trip count
//                            (batch_size, num_shards, ...). Under a lock,
//                            every while/for(;;)/do loop must either be a
//                            classic counted loop, a range-for, or carry
//                            this annotation; the same rule proves CAS
//                            retry loops bounded on the lock-free paths.
//   BPW_HOLD_EFFECT_OK(effect, reason)
//                            on a function declaration: the named effect
//                            (alloc | block | io | log | clock | loop |
//                            indirect) is deliberate in this function, so
//                            strike it from the function's transitive
//                            effect summary — callers holding a lock
//                            across it prove clean against the cleansed
//                            summary. The reason string is the on-record
//                            justification; prefer restructuring over
//                            annotating.
// ---------------------------------------------------------------------------
#define BPW_PUBLISHED_BY(stamp)  // analyzer-only
#define BPW_SEQLOCK_STAMP        // analyzer-only
#define BPW_RELAXED_OK(reason)   // analyzer-only
#define BPW_LOCK_CLASS(name)     // analyzer-only
#define BPW_LOCK_LEAF            // analyzer-only
#define BPW_BOUNDED_BY(expr)     // analyzer-only
#define BPW_HOLD_EFFECT_OK(effect, reason)  // analyzer-only
