// Latency histogram with exponential buckets, used for transaction response
// times and lock hold/wait measurements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bpw {

/// Records non-negative values (typically nanoseconds) into
/// exponentially-sized buckets and answers mean / percentile / max queries.
/// Not thread-safe: each worker records into its own histogram and the
/// driver merges them at the end of a run.
class Histogram {
 public:
  Histogram();

  /// Records one observation.
  void Record(uint64_t value);

  /// Records `count` observations of `value` at once. Used to reconstruct a
  /// Histogram from externally-accumulated per-bucket counts (the contention
  /// profiler's sharded atomic buckets): feed each bucket's count at its
  /// BucketLow(). min/max/sum then reflect bucket lower bounds, not the
  /// original samples — a conservative under-estimate, consistent with the
  /// bucketed percentiles.
  void Add(uint64_t value, uint64_t count);

  /// Merges another histogram's observations into this one.
  void Merge(const Histogram& other);

  /// Removes all observations.
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const;
  uint64_t max() const { return max_; }
  double sum() const { return sum_; }
  double Mean() const;

  /// Returns the (approximate) value at percentile p in [0, 100].
  /// Within-bucket interpolation is linear.
  double Percentile(double p) const;

  /// Multi-line human-readable summary (count/mean/p50/p95/p99/max).
  std::string ToString() const;

  /// Number of buckets (exposed for tests).
  static constexpr int kNumBuckets = 64 * 4;

  // Bucket i covers [BucketLow(i), BucketLow(i+1)). Buckets are
  // sub-exponential: 4 linear steps per power of two. Public so external
  // accumulators (the contention profiler's atomic shards) can bucket with
  // the exact same scheme and reconstruct a Histogram via Add().
  static int BucketFor(uint64_t value);
  static uint64_t BucketLow(int bucket);

  /// Observations in bucket `bucket` (0 for out-of-range indices). Lets
  /// serializers round-trip a histogram exactly: Add(BucketLow(i),
  /// BucketCount(i)) over non-empty buckets rebuilds identical percentiles.
  uint64_t BucketCount(int bucket) const {
    return (bucket >= 0 && bucket < kNumBuckets)
               ? buckets_[static_cast<size_t>(bucket)]
               : 0;
  }

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_;
  uint64_t min_;
  uint64_t max_;
  double sum_;
};

}  // namespace bpw
