#include "util/logging.h"

#include <atomic>
#include <cstdio>

#include "sync/mutex.h"
#include "util/clock.h"
#include "util/thread_annotations.h"
#include "util/thread_id.h"

namespace bpw {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)} BPW_RELAXED_OK(
    "log-level knob; loggers may observe a change late");
Mutex g_log_mutex;  // serializes the fprintf so lines never interleave

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& msg) {
  // The timestamp is the same monotonic clock trace events carry (seconds
  // vs the trace's microseconds), so a log line can be lined up with the
  // spans around it in a trace viewer; the thread id matches the trace tid.
  const double mono_seconds = static_cast<double>(NowNanos()) / 1e9;
  MutexGuard guard(g_log_mutex);
  std::fprintf(stderr, "[%s %.6f t%02u] %s\n", LevelTag(level), mono_seconds,
               CurrentThreadId(), msg.c_str());
}

}  // namespace bpw
