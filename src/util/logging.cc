#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace bpw {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> guard(g_log_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), msg.c_str());
}

}  // namespace bpw
