// Deterministic, fast pseudo-random number generation for workloads and
// tests. Uses xoshiro256++, which is both faster and of higher quality than
// std::mt19937_64 for the simulation purposes here.
#pragma once

#include <cstdint>

namespace bpw {

/// xoshiro256++ PRNG. Deterministic for a given seed; not thread-safe, so
/// each worker thread owns its own instance (which is exactly what the
/// workload generators do).
class Random {
 public:
  /// Seeds the generator. The seed is expanded through SplitMix64 so that
  /// small consecutive seeds produce uncorrelated streams.
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a value uniformly distributed in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Returns a value uniformly distributed in [lo, hi]. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Returns a double uniformly distributed in [0, 1).
  double NextDouble();

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Skips ahead: mixes `n` into the state so derived generators diverge.
  void Reseed(uint64_t seed);

 private:
  uint64_t s_[4];
};

}  // namespace bpw
