// Core identifier types shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace bpw {

/// Identifier of a logical data page on storage. Pages are the unit of
/// caching, replacement, and I/O throughout the library.
using PageId = uint64_t;

/// Identifier of a buffer frame (a slot in the in-memory buffer pool).
using FrameId = uint32_t;

/// Sentinel meaning "no page".
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Sentinel meaning "no frame".
inline constexpr FrameId kInvalidFrameId = std::numeric_limits<FrameId>::max();

/// Default page size, matching the PostgreSQL default the paper's
/// implementation used (8 KB).
inline constexpr size_t kDefaultPageSize = 8192;

}  // namespace bpw
