#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

namespace bpw {

Histogram::Histogram() : buckets_(kNumBuckets, 0) { Reset(); }

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = std::numeric_limits<uint64_t>::max();
  max_ = 0;
  sum_ = 0;
}

int Histogram::BucketFor(uint64_t value) {
  if (value < 4) return static_cast<int>(value);
  // log2(value) >= 2 here. Use the top two bits below the leading bit as the
  // linear sub-bucket index.
  int log2 = 63 - std::countl_zero(value);
  int sub = static_cast<int>((value >> (log2 - 2)) & 0x3);
  int bucket = log2 * 4 + sub - 4;  // value 4 (log2=2, sub=0) -> bucket 4
  return std::min(bucket, kNumBuckets - 1);
}

uint64_t Histogram::BucketLow(int bucket) {
  if (bucket < 4) return static_cast<uint64_t>(bucket);
  int log2 = (bucket + 4) / 4;
  int sub = (bucket + 4) % 4;
  return (1ULL << log2) + (static_cast<uint64_t>(sub) << (log2 - 2));
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketFor(value)]++;
  count_++;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value);
}

void Histogram::Add(uint64_t value, uint64_t count) {
  if (count == 0) return;
  buckets_[BucketFor(value)] += count;
  count_ += count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

uint64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (static_cast<double>(seen + buckets_[i]) >= target) {
      double lo = static_cast<double>(BucketLow(i));
      double hi = i + 1 < kNumBuckets ? static_cast<double>(BucketLow(i + 1))
                                      : static_cast<double>(max_);
      double frac = (target - static_cast<double>(seen)) /
                    static_cast<double>(buckets_[i]);
      double v = lo + frac * (hi - lo);
      return std::clamp(v, static_cast<double>(min()),
                        static_cast<double>(max_));
    }
    seen += buckets_[i];
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%.0f p95=%.0f p99=%.0f max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                Percentile(50), Percentile(95), Percentile(99),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace bpw
