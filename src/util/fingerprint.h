// Order-sensitive and order-insensitive 64-bit fingerprint accumulators,
// used by the model checker's visited-state dedup (BufferPool / Coordinator /
// ReplacementPolicy StateFingerprint implementations). Not cryptographic;
// collisions only cost a wrongly-pruned subtree in exploration, and the
// mixing below makes them astronomically unlikely at model-checking scales
// (thousands of states).
#pragma once

#include <cstdint>

namespace bpw {

/// SplitMix64 finalizer: full-avalanche 64-bit mixing.
inline uint64_t MixFingerprint(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Sequence-sensitive accumulator: Combine(a) then Combine(b) differs from
/// the reverse order.
class Fingerprint {
 public:
  void Combine(uint64_t value) {
    hash_ = MixFingerprint(hash_ ^ MixFingerprint(value));
  }
  /// For members whose iteration order is unspecified (unordered containers):
  /// XOR of mixed element hashes is order-independent.
  void CombineUnordered(uint64_t value) { unordered_ ^= MixFingerprint(value); }

  uint64_t value() const { return MixFingerprint(hash_ ^ unordered_); }

 private:
  uint64_t hash_ = 0x6A09E667F3BCC909ULL;
  uint64_t unordered_ = 0;
};

}  // namespace bpw
