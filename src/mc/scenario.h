// Model-checking scenarios: small, fully deterministic buffer-pool
// workloads the explorer runs under the cooperative scheduler.
//
// A scenario owns the recipe for one execution: build a fresh storage +
// pool + coordinator + policy stack (so every execution starts from the
// identical initial state), pre-stamp every page, run N worker threads
// through fixed access traces, and diagnose the outcome. The *schedule* is
// the only free variable — it is supplied by the explorer (or a replay
// file) through the scheduler's Chooser.
//
// Diagnosis, in priority order:
//   1. scheduler verdicts (deadlock among the workers, livelock via the
//      decision budget);
//   2. worker-observed failures: FetchPage errors and stamp mismatches (a
//      handle whose bytes belong to a different page — the corruption the
//      victim-revalidation mutation re-introduces);
//   3. post-run structural integrity (BufferPool::CheckIntegrity);
//   4. serial-equivalence: for single-threaded scenarios, the per-op
//      hit/miss pattern must match a reference run on a mutation-free
//      stack (catches ordering bugs like skipping the commit-before-victim
//      rule, which corrupt the policy's decisions without corrupting any
//      data structure);
//   5. certifier races: unordered GUARDED_BY-claimed access pairs.
#pragma once

#include <string>
#include <vector>

#include "mc/cooperative_scheduler.h"
#include "util/status.h"
#include "util/types.h"

namespace bpw {
namespace mc {

struct ScenarioConfig {
  std::string name = "eviction";
  /// "serialized", "shared-queue", "bp-wrapper", "combining", or "sharded".
  std::string coordinator = "shared-queue";
  /// Any CreatePolicy name; only fingerprint-supporting policies (lru,
  /// fifo, clock, gclock) enable state dedup.
  std::string policy = "lru";
  int threads = 2;
  int pages = 4;
  int frames = 2;
  size_t queue_size = 4;
  size_t batch_threshold = 2;
  /// Sharded coordinator only: policy shard count and rebalance cadence
  /// (commit calls per shard between exchanges; 0 disables).
  size_t policy_shards = 1;
  size_t rebalance_interval = 0;
  int ops_per_thread = 3;
  /// Explicit per-thread access trace; when empty, thread t's op j accesses
  /// page (t*2 + j) % pages.
  std::vector<PageId> trace;
  /// Compare per-op hit/miss against a mutation-free reference run
  /// (single-threaded scenarios only; ignored otherwise).
  bool check_serial_equivalence = false;

  // Mutation knobs (reintroduce known-bad behaviour so the checker can
  // prove it finds them):
  bool mutate_skip_victim_revalidation = false;   // BufferPoolConfig knob
  bool mutate_skip_commit_before_victim = false;  // BpWrapperCoordinator knob
  bool mutate_commit_without_lock = false;        // SharedQueueCoordinator knob
  // CombiningCoordinator knobs (the seeded handoff bugs):
  bool mutate_combine_skip_release = false;       // slot never recycled
  bool mutate_combine_drain_twice = false;        // slot applied twice
  bool mutate_combine_clear_ready = false;        // batch dropped unapplied
  // ShardedCoordinator knobs (the seeded cross-shard conservation bugs):
  bool mutate_shard_double_track = false;    // page resident in two shards
  bool mutate_shard_stale_eviction = false;  // delivery to a stale shard index

  uint64_t max_decisions = 10000;
};

enum class ViolationKind {
  kNone,
  kInvariant,
  kRace,
  kDeadlock,
  kLivelock,
  kError,  // harness-level failure (bad config, divergent replay, ...)
};

const char* ViolationKindName(ViolationKind kind);

struct Violation {
  ViolationKind kind = ViolationKind::kNone;
  std::string message;
};

/// Everything one execution produced.
struct ExecutionResult {
  /// Aborted mid-run by the explorer (branch pruned): no diagnosis, no
  /// trace semantics.
  bool pruned = false;
  bool violated = false;
  Violation violation;
  /// Chosen thread per decision, in order — replaying these choices
  /// reproduces the execution exactly.
  std::vector<int> decisions;
  /// Candidate-set signatures parallel to `decisions` (divergence checks).
  std::vector<uint64_t> signatures;
  uint64_t races_checked = 0;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config) : config_(std::move(config)) {}

  /// Named presets (the CLI's --scenario values):
  ///   "eviction" — 2 threads contending for 2 frames over 4 pages through
  ///                a SharedQueueCoordinator (the acceptance scenario);
  ///   "handoff"  — 2 threads through BpWrapperCoordinator (TryLock commit
  ///                handoffs and the lock fallback path);
  ///   "race"     — 2 threads, all-hit trace through SharedQueueCoordinator
  ///                (every hit crosses the shared queue; the stage for the
  ///                commit-without-lock mutation);
  ///   "serial"   — 1 thread through BpWrapperCoordinator with a trace
  ///                whose hit/miss pattern is sensitive to the
  ///                commit-before-victim rule; serial equivalence on.
  ///   "combine"  — 3 threads (two publishers + a combiner) through
  ///                CombiningCoordinator on an all-hit trace: every
  ///                publication-slot transition (publish, claim, recycle,
  ///                cooperative handoff) is exercised, and the
  ///                conservation invariant is checked at quiesce.
  ///   "shard"    — 2 threads through ShardedCoordinator (2 policy shards,
  ///                rebalance cadence 1) on a hit-then-evict trace: ring
  ///                commits, cross-shard victim borrowing, the rebalance
  ///                exchange, and the quiesced cross-shard conservation
  ///                oracle are all on the path. The stage for the
  ///                shard_double_track / shard_stale_eviction mutations.
  static StatusOr<ScenarioConfig> Preset(const std::string& name);
  static std::vector<std::string> PresetNames();

  const ScenarioConfig& config() const { return config_; }

  /// The page sequence worker `thread` accesses.
  std::vector<PageId> TraceFor(int thread) const;

  /// Builds a fresh stack and runs one complete execution under `sched`,
  /// with `chooser` deciding every scheduling choice. The scheduler must
  /// already be installed as the global ScheduleController.
  ExecutionResult RunOnce(CooperativeScheduler& sched,
                          CooperativeScheduler::Chooser chooser);

 private:
  ScenarioConfig config_;
};

}  // namespace mc
}  // namespace bpw
