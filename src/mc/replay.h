// Replay files: the model checker's reproduction artifacts.
//
// A violation found by exploration is only useful if it can be re-executed
// on demand, so the explorer's decision trace is written to a small
// versioned text file that carries everything needed to rebuild the run:
// the full scenario configuration (not just a preset name — presets can
// drift) and the chosen thread id at every scheduling decision.
//
//   bpw-mc-replay 1
//   scenario eviction
//   param coordinator shared-queue
//   param threads 2
//   ...
//   violation invariant
//   choices 0 0 1 0 1
//   end
//
// Replay semantics: decision i takes choices[i]. Past the end of the list
// (or when the listed thread is not an enabled candidate — possible after
// minimization shortened the trace) the replayer falls back to a stable
// default: continue the current thread if it is enabled, else the lowest
// enabled id. Fallbacks are counted and reported, but only the resulting
// *outcome* decides whether a shrunk trace still reproduces the violation.
//
// The minimizer shrinks a violating trace while preserving the violation
// kind: first a binary search for the shortest violating prefix, then a
// backwards greedy pass dropping single entries. Both steps only ever
// remove entries, so minimization is monotone by construction.
#pragma once

#include <string>
#include <vector>

#include "mc/cooperative_scheduler.h"
#include "mc/scenario.h"
#include "util/status.h"

namespace bpw {
namespace mc {

struct ReplayFile {
  int version = 1;
  ScenarioConfig config;
  /// Informational: the violation kind the trace was recorded for ("none"
  /// for clean traces).
  std::string violation_kind = "none";
  std::vector<int> choices;
};

std::string SerializeReplay(const ReplayFile& replay);
StatusOr<ReplayFile> ParseReplay(const std::string& text);
Status WriteReplayFile(const ReplayFile& replay, const std::string& path);
StatusOr<ReplayFile> ReadReplayFile(const std::string& path);

struct ReplayOutcome {
  ExecutionResult result;
  /// Decisions where the recorded choice was unusable (missing or not an
  /// enabled candidate) and the default rule ran instead.
  uint64_t fallbacks = 0;
};

/// Re-executes the replay's scenario under its recorded choices. `sched`
/// must be installed as the process-global controller.
ReplayOutcome RunReplay(const ReplayFile& replay, CooperativeScheduler& sched);

/// A canonical text rendering of an execution (every decision, every
/// candidate signature, and the outcome). Two runs of the same replay must
/// serialize bit-identically — the determinism contract the tests pin down.
std::string SerializeRunRecord(const ExecutionResult& result);

struct MinimizeStats {
  uint64_t attempts = 0;    // candidate traces executed
  uint64_t shrunk_from = 0; // original length
  uint64_t shrunk_to = 0;   // final length
};

/// Shrinks `replay` to a shorter trace producing the same violation kind.
/// Returns the input unchanged if it does not reproduce a violation.
ReplayFile MinimizeReplay(const ReplayFile& replay, CooperativeScheduler& sched,
                          MinimizeStats* stats = nullptr);

}  // namespace mc
}  // namespace bpw
