#include "mc/replay.h"

#include <fstream>
#include <sstream>

namespace bpw {
namespace mc {

namespace {

constexpr char kMagic[] = "bpw-mc-replay";

std::string JoinPages(const std::vector<PageId>& pages) {
  std::ostringstream out;
  for (size_t i = 0; i < pages.size(); ++i) {
    if (i > 0) out << ",";
    out << pages[i];
  }
  return out.str();
}

bool ParsePages(const std::string& text, std::vector<PageId>* pages) {
  pages->clear();
  if (text.empty()) return true;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    try {
      pages->push_back(static_cast<PageId>(std::stoull(item)));
    } catch (...) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string SerializeReplay(const ReplayFile& replay) {
  const ScenarioConfig& c = replay.config;
  std::ostringstream out;
  out << kMagic << " " << replay.version << "\n";
  out << "scenario " << c.name << "\n";
  out << "param coordinator " << c.coordinator << "\n";
  out << "param policy " << c.policy << "\n";
  out << "param threads " << c.threads << "\n";
  out << "param pages " << c.pages << "\n";
  out << "param frames " << c.frames << "\n";
  out << "param queue_size " << c.queue_size << "\n";
  out << "param batch_threshold " << c.batch_threshold << "\n";
  out << "param policy_shards " << c.policy_shards << "\n";
  out << "param rebalance_interval " << c.rebalance_interval << "\n";
  out << "param ops_per_thread " << c.ops_per_thread << "\n";
  if (!c.trace.empty()) out << "param trace " << JoinPages(c.trace) << "\n";
  out << "param serial_equivalence " << (c.check_serial_equivalence ? 1 : 0)
      << "\n";
  out << "param mutate_skip_victim_revalidation "
      << (c.mutate_skip_victim_revalidation ? 1 : 0) << "\n";
  out << "param mutate_skip_commit_before_victim "
      << (c.mutate_skip_commit_before_victim ? 1 : 0) << "\n";
  out << "param mutate_commit_without_lock "
      << (c.mutate_commit_without_lock ? 1 : 0) << "\n";
  out << "param mutate_shard_double_track "
      << (c.mutate_shard_double_track ? 1 : 0) << "\n";
  out << "param mutate_shard_stale_eviction "
      << (c.mutate_shard_stale_eviction ? 1 : 0) << "\n";
  out << "param max_decisions " << c.max_decisions << "\n";
  out << "violation " << replay.violation_kind << "\n";
  out << "choices";
  for (int choice : replay.choices) out << " " << choice;
  out << "\n";
  out << "end\n";
  return out.str();
}

StatusOr<ReplayFile> ParseReplay(const std::string& text) {
  ReplayFile replay;
  std::istringstream in(text);
  std::string line;

  if (!std::getline(in, line)) {
    return Status::InvalidArgument("replay: empty input");
  }
  {
    std::istringstream header(line);
    std::string magic;
    header >> magic >> replay.version;
    if (magic != kMagic) {
      return Status::InvalidArgument("replay: bad magic '" + magic + "'");
    }
    if (replay.version != 1) {
      return Status::InvalidArgument("replay: unsupported version " +
                                     std::to_string(replay.version));
    }
  }

  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "end") {
      saw_end = true;
      break;
    }
    if (keyword == "scenario") {
      fields >> replay.config.name;
    } else if (keyword == "violation") {
      fields >> replay.violation_kind;
    } else if (keyword == "choices") {
      int choice;
      while (fields >> choice) replay.choices.push_back(choice);
    } else if (keyword == "param") {
      std::string key, value;
      fields >> key >> value;
      ScenarioConfig& c = replay.config;
      try {
        if (key == "coordinator") {
          c.coordinator = value;
        } else if (key == "policy") {
          c.policy = value;
        } else if (key == "threads") {
          c.threads = std::stoi(value);
        } else if (key == "pages") {
          c.pages = std::stoi(value);
        } else if (key == "frames") {
          c.frames = std::stoi(value);
        } else if (key == "queue_size") {
          c.queue_size = std::stoull(value);
        } else if (key == "batch_threshold") {
          c.batch_threshold = std::stoull(value);
        } else if (key == "policy_shards") {
          c.policy_shards = std::stoull(value);
        } else if (key == "rebalance_interval") {
          c.rebalance_interval = std::stoull(value);
        } else if (key == "ops_per_thread") {
          c.ops_per_thread = std::stoi(value);
        } else if (key == "trace") {
          if (!ParsePages(value, &c.trace)) {
            return Status::InvalidArgument("replay: bad trace '" + value + "'");
          }
        } else if (key == "serial_equivalence") {
          c.check_serial_equivalence = value == "1";
        } else if (key == "mutate_skip_victim_revalidation") {
          c.mutate_skip_victim_revalidation = value == "1";
        } else if (key == "mutate_skip_commit_before_victim") {
          c.mutate_skip_commit_before_victim = value == "1";
        } else if (key == "mutate_commit_without_lock") {
          c.mutate_commit_without_lock = value == "1";
        } else if (key == "mutate_shard_double_track") {
          c.mutate_shard_double_track = value == "1";
        } else if (key == "mutate_shard_stale_eviction") {
          c.mutate_shard_stale_eviction = value == "1";
        } else if (key == "max_decisions") {
          c.max_decisions = std::stoull(value);
        } else {
          // Unknown params are skipped so v1 readers tolerate additive
          // extensions.
        }
      } catch (...) {
        return Status::InvalidArgument("replay: bad value for param '" + key +
                                       "': '" + value + "'");
      }
    } else {
      return Status::InvalidArgument("replay: unknown keyword '" + keyword +
                                     "'");
    }
  }
  if (!saw_end) {
    return Status::InvalidArgument("replay: truncated (no 'end' line)");
  }
  return replay;
}

Status WriteReplayFile(const ReplayFile& replay, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("replay: cannot open '" + path + "' for writing");
  }
  out << SerializeReplay(replay);
  out.flush();
  if (!out) return Status::IOError("replay: write to '" + path + "' failed");
  return Status::OK();
}

StatusOr<ReplayFile> ReadReplayFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("replay: cannot open '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseReplay(text.str());
}

ReplayOutcome RunReplay(const ReplayFile& replay, CooperativeScheduler& sched) {
  ReplayOutcome outcome;
  Scenario scenario(replay.config);
  size_t next = 0;
  uint64_t fallbacks = 0;
  ExecutionResult result = scenario.RunOnce(
      sched, [&replay, &next, &fallbacks](const DecisionContext& ctx) {
        int wanted = -1;
        if (next < replay.choices.size()) {
          wanted = replay.choices[next];
        }
        ++next;
        for (const Candidate& c : ctx.candidates) {
          if (c.thread == wanted) return wanted;
        }
        // Default rule: keep the current thread running when possible so a
        // truncated trace plays out with no gratuitous switches, else take
        // the lowest enabled id.
        ++fallbacks;
        for (const Candidate& c : ctx.candidates) {
          if (c.thread == ctx.current) return c.thread;
        }
        return ctx.candidates.front().thread;
      });
  // Fallbacks past the recorded trace are expected (the trace stops at the
  // violation; the run still has to wind down); only fallbacks *inside* it
  // indicate the trace no longer matches the scenario.
  outcome.fallbacks = fallbacks;
  outcome.result = std::move(result);
  return outcome;
}

std::string SerializeRunRecord(const ExecutionResult& result) {
  std::ostringstream out;
  out << "decisions";
  for (int choice : result.decisions) out << " " << choice;
  out << "\n";
  out << "signatures";
  for (uint64_t sig : result.signatures) out << " " << sig;
  out << "\n";
  out << "pruned " << (result.pruned ? 1 : 0) << "\n";
  out << "violated " << (result.violated ? 1 : 0) << "\n";
  out << "kind " << ViolationKindName(result.violation.kind) << "\n";
  out << "message " << result.violation.message << "\n";
  return out.str();
}

ReplayFile MinimizeReplay(const ReplayFile& replay, CooperativeScheduler& sched,
                          MinimizeStats* stats) {
  MinimizeStats local;
  local.shrunk_from = replay.choices.size();
  auto reproduces = [&](const std::vector<int>& choices,
                        ViolationKind kind) {
    ++local.attempts;
    ReplayFile candidate = replay;
    candidate.choices = choices;
    const ReplayOutcome outcome = RunReplay(candidate, sched);
    return outcome.result.violated && outcome.result.violation.kind == kind;
  };

  // Establish the baseline: what the full trace reproduces.
  ReplayOutcome baseline = RunReplay(replay, sched);
  if (!baseline.result.violated) {
    local.shrunk_to = replay.choices.size();
    if (stats != nullptr) *stats = local;
    return replay;  // nothing to preserve; refuse to "minimize" a clean run
  }
  const ViolationKind kind = baseline.result.violation.kind;

  // Phase 1: binary-search the shortest violating prefix. Violation is not
  // guaranteed monotone in prefix length, so verify the final answer.
  std::vector<int> best = replay.choices;
  size_t lo = 0, hi = best.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    std::vector<int> prefix(best.begin(), best.begin() + mid);
    if (reproduces(prefix, kind)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  {
    std::vector<int> prefix(best.begin(), best.begin() + hi);
    if (reproduces(prefix, kind)) best = std::move(prefix);
  }

  // Phase 2: greedy single-entry drops, scanning backwards so indices
  // stay valid as the tail shrinks.
  for (size_t i = best.size(); i-- > 0;) {
    std::vector<int> shorter = best;
    shorter.erase(shorter.begin() + i);
    if (reproduces(shorter, kind)) best = std::move(shorter);
  }

  ReplayFile minimized = replay;
  minimized.choices = std::move(best);
  minimized.violation_kind = ViolationKindName(kind);
  local.shrunk_to = minimized.choices.size();
  if (stats != nullptr) *stats = local;
  return minimized;
}

}  // namespace mc
}  // namespace bpw
