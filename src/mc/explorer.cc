#include "mc/explorer.h"

#include <chrono>

#include "util/fingerprint.h"

namespace bpw {
namespace mc {

namespace {

// Two pending actions commute iff both are attributed to shared objects and
// the objects differ. Unattributed actions (obj == nullptr) conservatively
// conflict with everything. Object pointers are only comparable within the
// execution that produced them, which is why node candidate snapshots are
// refreshed on every pass-through.
bool Independent(const Candidate& a, const Candidate& b) {
  return a.obj != nullptr && b.obj != nullptr && a.obj != b.obj;
}

const Candidate* FindCandidate(const std::vector<Candidate>& candidates,
                               int thread) {
  for (const Candidate& c : candidates) {
    if (c.thread == thread) return &c;
  }
  return nullptr;
}

}  // namespace

int Explorer::Choose(const DecisionContext& ctx) {
  const size_t d = depth_++;
  stats_.max_depth = std::max<uint64_t>(stats_.max_depth, depth_);

  if (d < nodes_.size()) {
    // Prefix replay: same decisions must present the same candidates.
    Node& node = nodes_[d];
    if (node.signature != ctx.candidate_signature) {
      diverged_ = true;
      return CooperativeScheduler::kAbortExecution;
    }
    node.candidates = ctx.candidates;  // refresh obj pointers
    return node.chosen;
  }

  // Frontier: a decision never taken before.
  Node node;
  node.signature = ctx.candidate_signature;
  node.candidates = ctx.candidates;
  if (!nodes_.empty()) {
    const Node& parent = nodes_.back();
    node.preemptions_before =
        parent.preemptions_before + (parent.chosen_preemptive ? 1 : 0);
    if (options_.use_sleep_sets) {
      // Sleep-set inheritance: a thread asleep at the parent stays asleep
      // here unless the branch just taken could interact with its pending
      // action.
      const Candidate* branch = FindCandidate(parent.candidates, parent.chosen);
      for (int asleep : parent.sleep) {
        const Candidate* pending = FindCandidate(parent.candidates, asleep);
        // A sleeping thread missing from this node's candidates stopped
        // being enabled; its sleep entry is moot.
        if (branch == nullptr || pending == nullptr) continue;
        if (FindCandidate(node.candidates, asleep) == nullptr) continue;
        if (Independent(*pending, *branch)) node.sleep.insert(asleep);
      }
    }
  }

  if (options_.use_state_dedup && ctx.fingerprint_supported) {
    Fingerprint key;
    key.Combine(ctx.state_fingerprint);
    for (int asleep : node.sleep) {
      key.Combine(static_cast<uint64_t>(asleep));
    }
    node.dedup_key = key.value();
    node.dedup_valid = true;
    const int remaining = options_.preemption_bound - node.preemptions_before;
    auto it = visited_.find(node.dedup_key);
    if (it != visited_.end() && it->second >= remaining) {
      ++stats_.state_dedup_pruned;
      node.pruned_by_dedup = true;
      nodes_.push_back(std::move(node));
      return CooperativeScheduler::kAbortExecution;
    }
  }

  if (!AdvanceNode(node)) {
    // Every candidate is asleep (all interleavings from here are covered
    // on other branches): cut the execution.
    ++stats_.sleep_set_pruned;
    node.barren = true;
    nodes_.push_back(std::move(node));
    return CooperativeScheduler::kAbortExecution;
  }
  const int chosen = node.chosen;
  nodes_.push_back(std::move(node));
  return chosen;
}

bool Explorer::AdvanceNode(Node& node) {
  for (const Candidate& c : node.candidates) {
    if (node.sleep.count(c.thread) != 0) continue;
    if (node.tried.count(c.thread) != 0) continue;
    if (c.preemptive &&
        node.preemptions_before >= options_.preemption_bound) {
      ++stats_.budget_skipped;
      continue;
    }
    node.chosen = c.thread;
    node.chosen_preemptive = c.preemptive;
    node.tried.insert(c.thread);
    return true;
  }
  return false;
}

bool Explorer::Backtrack() {
  while (!nodes_.empty()) {
    Node& node = nodes_.back();
    if (node.pruned_by_dedup || node.barren) {
      // Nothing was explored *from* this node on this path; its coverage
      // lives elsewhere. Do not mark it visited.
      nodes_.pop_back();
      continue;
    }
    if (node.chosen >= 0 && options_.use_sleep_sets) {
      // The subtree under the previous choice is complete: the thread goes
      // to sleep so sibling branches skip re-deriving its interleavings.
      node.sleep.insert(node.chosen);
    }
    node.chosen = -1;
    if (AdvanceNode(node)) return true;
    if (node.dedup_valid) {
      const int remaining = options_.preemption_bound - node.preemptions_before;
      auto it = visited_.find(node.dedup_key);
      if (it == visited_.end() || it->second < remaining) {
        visited_[node.dedup_key] = remaining;
      }
    }
    nodes_.pop_back();
  }
  return false;
}

ExploreResult Explorer::Run(CooperativeScheduler& sched) {
  ExploreResult result;
  nodes_.clear();
  visited_.clear();
  stats_ = ExploreStats();
  const auto start = std::chrono::steady_clock::now();

  bool exhausted = false;
  bool capped = false;
  while (true) {
    if (options_.max_executions != 0 &&
        stats_.executions >= options_.max_executions) {
      capped = true;
      break;
    }
    if (options_.time_limit_ms != 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
      if (static_cast<uint64_t>(elapsed.count()) >= options_.time_limit_ms) {
        capped = true;
        break;
      }
    }

    depth_ = 0;
    diverged_ = false;
    ExecutionResult exec = scenario_.RunOnce(
        sched, [this](const DecisionContext& ctx) { return Choose(ctx); });
    ++stats_.executions;
    stats_.decision_points += exec.decisions.size();
    stats_.races_checked += exec.races_checked;

    if (diverged_) {
      result.found_violation = true;
      result.violation.kind = ViolationKind::kError;
      result.violation.message =
          "nondeterministic scenario: identical decision prefixes produced "
          "different candidate sets (depth " +
          std::to_string(depth_) + ")";
      result.stats = stats_;
      return result;
    }
    if (exec.violated) {
      result.found_violation = true;
      result.violation = exec.violation;
      result.violating_choices = exec.decisions;
      result.violating_signatures = exec.signatures;
      if (options_.stop_at_first_violation) {
        result.stats = stats_;
        return result;
      }
    }

    if (!Backtrack()) {
      exhausted = true;
      break;
    }
  }

  stats_.complete = exhausted && !capped;
  result.stats = stats_;
  return result;
}

}  // namespace mc
}  // namespace bpw
