// Explorer: stateless DFS over the scheduling decisions of a Scenario.
//
// The search is CHESS-shaped with two classic reductions layered on top:
//
//   Preemption bounding (Musuvathi & Qadeer): a context switch away from a
//   thread that could have continued costs one unit of a small budget
//   (default 2); forced switches (blocked/finished/yielded threads) are
//   free. Almost every real concurrency bug needs very few preemptions, so
//   a tiny bound covers the bug-dense fraction of an exponential space.
//
//   Sleep sets (Godefroind): after fully exploring choice t at a node, t
//   goes to sleep there; a child node inherits the sleeping threads whose
//   pending actions are independent of the branch taken (different shared
//   objects, as reported by the schedule-point obj tags). A node whose
//   every candidate sleeps has nothing new to offer and the execution is
//   cut. This is the persistent-set flavour of DPOR that needs no clock
//   vectors on the search side.
//
//   State dedup: scenarios whose stacks support structural fingerprints
//   (pool + coordinator + policy + per-slot queues, all logical state, no
//   pointers) prune nodes whose (fingerprint, sleep set) was already fully
//   explored with at least the remaining preemption budget. Insertion
//   happens only when a subtree completes, so cycles cannot hide work.
//
// Every node snapshots its candidate set and verifies it by signature on
// each revisit — a scenario whose candidate sets differ between identical
// decision prefixes is nondeterministic (a harness bug), reported as such
// rather than silently mis-explored.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "mc/cooperative_scheduler.h"
#include "mc/scenario.h"

namespace bpw {
namespace mc {

struct ExploreOptions {
  int preemption_bound = 2;
  uint64_t max_executions = 0;  // 0 = no cap
  uint64_t time_limit_ms = 0;   // 0 = no limit
  bool use_sleep_sets = true;
  bool use_state_dedup = true;
  /// Stop at the first violation (the only mode the CLI uses; kept as a
  /// knob so tests can count violations in small spaces).
  bool stop_at_first_violation = true;
};

struct ExploreStats {
  uint64_t executions = 0;
  uint64_t decision_points = 0;  // across all executions
  uint64_t sleep_set_pruned = 0;
  uint64_t state_dedup_pruned = 0;
  uint64_t budget_skipped = 0;  // candidates skipped for the bound
  uint64_t max_depth = 0;
  uint64_t races_checked = 0;
  /// True iff the bounded space was exhausted (no caps hit, no violation
  /// short-circuit).
  bool complete = false;
};

struct ExploreResult {
  bool found_violation = false;
  Violation violation;
  /// Decision trace of the violating execution (replay recipe).
  std::vector<int> violating_choices;
  std::vector<uint64_t> violating_signatures;
  ExploreStats stats;
};

class Explorer {
 public:
  Explorer(Scenario scenario, ExploreOptions options)
      : scenario_(std::move(scenario)), options_(options) {}

  /// Runs the search. `sched` must be installed as the process-global
  /// controller for the duration.
  ExploreResult Run(CooperativeScheduler& sched);

 private:
  struct Node {
    uint64_t signature = 0;
    std::vector<Candidate> candidates;  // refreshed every pass-through
    std::set<int> sleep;
    std::set<int> tried;
    int chosen = -1;
    bool chosen_preemptive = false;
    int preemptions_before = 0;
    uint64_t dedup_key = 0;
    bool dedup_valid = false;
    bool pruned_by_dedup = false;
    bool barren = false;  // every candidate asleep on arrival
  };

  /// The per-decision callback: replays the committed prefix, then extends
  /// the frontier. Returns the chosen thread or kAbortExecution.
  int Choose(const DecisionContext& ctx);
  /// Picks the next unexplored, budget-respecting, awake candidate at
  /// `node`; returns false if none remains.
  bool AdvanceNode(Node& node);
  /// Post-execution stack unwind; returns false when the space is done.
  bool Backtrack();

  Scenario scenario_;
  ExploreOptions options_;
  std::vector<Node> nodes_;
  size_t depth_ = 0;  // decisions seen in the current execution
  bool diverged_ = false;
  ExploreStats stats_;
  // (fingerprint ^ sleep-set) -> largest remaining preemption budget whose
  // subtree completed from an identical state.
  std::unordered_map<uint64_t, int> visited_;
};

}  // namespace mc
}  // namespace bpw
