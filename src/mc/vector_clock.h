// Vector clocks and the happens-before race certifier.
//
// The certifier is the dynamic half of PR 4's static lock-discipline story:
// Clang's -Wthread-safety proves that *call sites* claim the right
// capabilities, but an ASSERT_CAPABILITY like
// ReplacementPolicy::AssertExclusiveAccess is a claim the analysis accepts
// on faith. Under the model checker every such claim (and every explicit
// BPW_MC_ACCESS_* site) becomes an event, and this module checks the claims
// against the real synchronization order:
//
//   - each worker thread carries a vector clock C_t;
//   - lock releases copy C_t into the lock's clock; acquires join it back
//     (release→acquire edges), condition-variable notify/wake likewise;
//   - each tracked location x keeps the clocks of its last writes (W_x) and
//     reads (R_x); a write must happen-after all previous accesses, a read
//     must happen-after all previous writes (the standard vector-clock race
//     condition, djit+/FastTrack family).
//
// Because the cooperative scheduler serializes execution, an unordered pair
// is never a *physically* racing pair here — it is a pair that the locking
// protocol fails to order, i.e. a real data race in some uncontrolled run.
// Atomics are deliberately not instrumented: the library's lock-free paths
// (frame tags, pin counts, CLOCK ref bits) are synchronized by atomics the
// happens-before model above cannot see, and instrumenting them would only
// manufacture false positives.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace bpw {
namespace mc {

/// Fixed-width vector clock over worker thread ids [0, n).
class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(size_t num_threads) : clock_(num_threads, 0) {}

  uint64_t at(size_t t) const { return t < clock_.size() ? clock_[t] : 0; }
  size_t size() const { return clock_.size(); }

  void Tick(size_t t) {
    if (t >= clock_.size()) clock_.resize(t + 1, 0);
    ++clock_[t];
  }

  void Set(size_t t, uint64_t v) {
    if (t >= clock_.size()) clock_.resize(t + 1, 0);
    clock_[t] = v;
  }

  /// Pointwise maximum (the join of two clocks).
  void Join(const VectorClock& other) {
    if (other.clock_.size() > clock_.size()) {
      clock_.resize(other.clock_.size(), 0);
    }
    for (size_t t = 0; t < other.clock_.size(); ++t) {
      if (other.clock_[t] > clock_[t]) clock_[t] = other.clock_[t];
    }
  }

  /// True iff this clock happens-before-or-equals `other` (pointwise <=).
  bool LessEq(const VectorClock& other) const {
    for (size_t t = 0; t < clock_.size(); ++t) {
      if (clock_[t] > other.at(t)) return false;
    }
    return true;
  }

  std::string ToString() const;

 private:
  std::vector<uint64_t> clock_;
};

/// One unordered access pair found by the certifier.
struct RaceReport {
  std::string object;    // the access label ("policy.exclusive", ...)
  int first_thread = -1;
  std::string first_point;
  bool first_is_write = false;
  int second_thread = -1;
  std::string second_point;
  bool second_is_write = false;

  std::string ToString() const;
};

/// Happens-before checker over the Access events the cooperative scheduler
/// forwards. Single-threaded by construction (the scheduler serializes all
/// hook calls), so no internal locking.
class RaceCertifier {
 public:
  explicit RaceCertifier(size_t num_threads) : num_threads_(num_threads) {}

  /// An access by worker `t` (with clock `vc`) to the location identified by
  /// `obj`, labelled `point`. Records at most one race per location (the
  /// first is the actionable one; repeats are noise).
  void OnAccess(size_t t, const VectorClock& vc, const void* obj,
                const char* point, bool is_write);

  const std::vector<RaceReport>& races() const { return races_; }
  uint64_t accesses_checked() const { return accesses_checked_; }

 private:
  struct LocationState {
    std::string label;
    // Clock of the last write / the joined last reads, plus provenance for
    // reporting.
    VectorClock write_clock;
    VectorClock read_clock;
    int last_writer = -1;
    std::string last_write_point;
    std::unordered_map<size_t, std::string> last_read_points;
    bool race_reported = false;
  };

  size_t num_threads_;
  std::unordered_map<const void*, LocationState> locations_;
  std::vector<RaceReport> races_;
  uint64_t accesses_checked_ = 0;
};

}  // namespace mc
}  // namespace bpw
