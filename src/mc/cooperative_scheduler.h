// CooperativeScheduler: the CHESS-style serializing scheduler behind the
// model checker.
//
// It subclasses testing::ScheduleController, so every BPW_SCHEDULE_POINT /
// lock hook / cooperative yield / condvar-bridge call in the library routes
// here while it is installed — the same hook path the seeded-random stress
// controller uses, with a different decision source behind it.
//
// Execution model:
//   - A scenario spawns N worker threads; each calls AttachWorker(id) first
//     and DetachWorker(id) last. Exactly one attached worker runs at a time;
//     everyone else is parked on the internal monitor.
//   - Each hook that represents a *serialization point* (Perturb, Yield,
//     LockReleased) parks the calling worker and runs the scheduling
//     decision: build the candidate set (enabled, non-sleeping-per-caller,
//     CHESS-fair), ask the installed Chooser which thread runs next, wake
//     it. Forced switches (current thread blocked on a modelled lock,
//     waiting on the condvar bridge, or finished) work the same way but
//     offer no "continue current" candidate.
//   - Locks are modelled: LockWillAcquire parks the caller until the model
//     says the lock is free, so the *real* mutex acquisition that follows
//     never blocks in the OS. LockAcquired/LockReleased maintain the model
//     and drive the vector clocks; TryLock failures are recorded for the
//     certifier but never block.
//   - The condition-variable bridge (PrepareWait/CommitWait/NotifyAll)
//     parks waiters cooperatively; NotifyAll re-enables them.
//
// Fairness (CHESS's yield rule): a worker that calls Yield is marked
// passive; while any non-passive enabled worker exists, passive workers are
// not offered as candidates, and being scheduled clears the flag. This is
// what keeps retry loops ("yield until the pin holder releases") from
// turning the DFS into an infinite chain of do-nothing switches.
//
// Abort protocol: Abort() (from the Chooser pruning a branch, or from
// deadlock/livelock detection) releases every parked worker and turns every
// subsequent hook into a no-op; the workers then run to completion as plain
// concurrent threads on the real locks. CommitWait returns false to aborted
// cv waiters so single-flight loops unwind instead of waiting for a wakeup
// that will never come.
//
// Threads that never attached (the scenario's main thread, any library
// background thread) are invisible: every hook returns immediately for
// them.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mc/vector_clock.h"
#include "testing/schedule_point.h"

namespace bpw {
namespace mc {

/// One schedulable worker at a decision point.
struct Candidate {
  int thread = -1;
  /// The point the worker is parked at (the action it performs next).
  const char* point = nullptr;
  /// The shared object that action touches (nullptr = unattributed; DPOR
  /// treats it as dependent with everything). Only meaningful within the
  /// execution that produced it.
  const void* obj = nullptr;
  /// True if scheduling this candidate preempts the current worker (the
  /// parking worker stays enabled and this is a different, non-forced,
  /// non-post-yield switch). The explorer charges these against the bound.
  bool preemptive = false;
};

/// Everything a decision source sees at one decision point.
struct DecisionContext {
  std::vector<Candidate> candidates;  // sorted by thread id, never empty
  /// Worker that was running (and is a candidate) — or -1 on a forced
  /// switch.
  int current = -1;
  uint64_t decision_index = 0;
  /// Combined structural fingerprint: scenario state (pool/coordinator/
  /// policy, via the installed fingerprint provider) mixed with per-worker
  /// control state (parked point, op progress, passivity). Zero when no
  /// provider is installed.
  uint64_t state_fingerprint = 0;
  bool fingerprint_supported = false;
  /// Stable signature of the candidate set (threads + point names), for
  /// detecting divergent replays.
  uint64_t candidate_signature = 0;
};

/// Violations the scheduler itself detects (scenario-level invariant
/// violations are diagnosed by the scenario after the run).
enum class SchedulerVerdict {
  kNone,
  kDeadlock,  // live workers, no enabled candidate
  kLivelock,  // decision budget exhausted
};

class CooperativeScheduler : public testing::ScheduleController {
 public:
  /// Picks the next worker from ctx.candidates; returns its thread id, or
  /// kAbortExecution to abandon the execution (branch pruned). Runs on the
  /// parking worker's thread with the scheduler monitor held — it must not
  /// call back into the scheduler, but may read quiesced scenario state
  /// (every other worker is parked).
  using Chooser = std::function<int(const DecisionContext&)>;
  static constexpr int kAbortExecution = -1;

  struct Config {
    int num_threads = 2;
    /// Decision-depth cap: exceeding it is reported as a livelock.
    uint64_t max_decisions = 20000;
  };

  CooperativeScheduler();
  ~CooperativeScheduler() override;

  /// Resets all per-execution state. Call before each scenario run, after
  /// Install().
  void BeginRun(const Config& config, Chooser chooser);

  /// Optional provider of the scenario's structural state fingerprint,
  /// called with all workers parked. Cleared by BeginRun.
  void SetFingerprintProvider(std::function<uint64_t()> provider,
                              bool supported);

  // --- Worker-side API ----------------------------------------------------

  /// First call in a worker body. Parks until every worker has attached and
  /// this worker is scheduled first.
  void AttachWorker(int id);
  /// Last call in a worker body: hands control to the next worker.
  void DetachWorker(int id);
  /// Reports scenario progress (the index of the op the worker is about to
  /// execute) for state fingerprinting.
  void MarkProgress(int op_index);

  // --- ScheduleController hook overrides ----------------------------------
  void Perturb(const char* point, const void* obj) override;
  void LockWillAcquire(const void* lock, const char* point) override;
  void LockAcquired(const void* lock, const char* point) override;
  void LockTryFailed(const void* lock, const char* point) override;
  void LockReleased(const void* lock, const char* point) override;
  void Yield(const char* point) override;
  void Access(const void* obj, const char* point, bool is_write) override;
  bool PrepareWait(const void* cv) override;
  bool CommitWait(const void* cv) override;
  void NotifyAll(const void* cv) override;

  // --- Results ------------------------------------------------------------

  /// True once the execution was abandoned (prune, violation, or error).
  bool aborted() const;
  SchedulerVerdict verdict() const;
  std::string verdict_detail() const;
  uint64_t decisions_made() const;
  /// The chosen thread id at every decision point, in order — the exact
  /// recipe a replay needs to reproduce this execution.
  const std::vector<int>& decision_trace() const { return decision_trace_; }
  /// Per-decision candidate signatures (parallel to decision_trace), used
  /// by replays to detect divergence.
  const std::vector<uint64_t>& decision_signatures() const {
    return decision_signatures_;
  }
  const RaceCertifier& certifier() const { return certifier_; }

 private:
  enum class Phase {
    kNotAttached,
    kRunnable,     // parked at a point, can be scheduled
    kRunning,      // the one live worker
    kBlockedLock,  // parked until its lock is model-free
    kBlockedCv,    // parked until NotifyAll
    kFinished,
  };

  struct Worker {
    Phase phase = Phase::kNotAttached;
    bool passive = false;  // set by Yield, cleared on schedule (CHESS rule)
    const char* point = nullptr;
    const void* obj = nullptr;
    const void* waiting_lock = nullptr;
    const void* waiting_cv = nullptr;
    bool cv_signalled = false;
    int op_index = -1;
    VectorClock clock;
  };

  // All private helpers assume mu_ is held.
  bool EnabledLocked(int id) const;
  void BuildCandidatesLocked(int parking, bool parking_enabled,
                             DecisionContext& ctx) const;
  uint64_t ThreadStateHashLocked() const;
  /// Runs one scheduling decision on behalf of `parking` (which has already
  /// updated its own phase). Sets running_ or aborts.
  void ScheduleNextLocked(int parking, bool parking_enabled);
  /// Parks the calling worker until it is scheduled (or the run aborts).
  void WaitUntilScheduledLocked(std::unique_lock<std::mutex>& lk, int id);
  /// Full "decision point" sequence for a still-enabled worker: mark
  /// runnable, schedule, wait.
  void ParkAtPoint(int id, const char* point, const void* obj);
  void AbortLocked(SchedulerVerdict verdict, std::string detail);

  // Raw std::mutex/std::condition_variable on purpose: the scheduler's own
  // monitor must not re-enter the instrumented bpw wrappers (every wrapper
  // hook would recurse straight back into the scheduler).
  // bpw-lint-allow-file(raw-mutex)
  mutable std::mutex mu_;
  std::condition_variable cv_;

  Config config_;
  Chooser chooser_;
  std::function<uint64_t()> fingerprint_provider_;
  bool fingerprint_supported_ = false;

  std::vector<Worker> workers_;
  int attached_ = 0;
  int running_ = -1;
  bool started_ = false;
  bool aborted_ = false;
  SchedulerVerdict verdict_ = SchedulerVerdict::kNone;
  std::string verdict_detail_;

  uint64_t decisions_ = 0;
  std::vector<int> decision_trace_;
  std::vector<uint64_t> decision_signatures_;

  // Lock model: which worker holds each modelled lock.
  std::unordered_map<const void*, int> lock_holder_;
  // Release clocks for locks and condition variables (happens-before
  // edges carried lock-release → lock-acquire and notify → wake).
  std::unordered_map<const void*, VectorClock> lock_clock_;
  std::unordered_map<const void*, VectorClock> cv_clock_;

  RaceCertifier certifier_{0};
};

/// Worker-id binding for the calling thread (thread-local). Scenario worker
/// bodies run entirely between AttachWorker and DetachWorker, which manage
/// this; exposed for tests.
int CurrentWorkerId();

}  // namespace mc
}  // namespace bpw
