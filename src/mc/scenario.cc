#include "mc/scenario.h"

#include <memory>
#include <sstream>
#include <thread>

#include "buffer/buffer_pool.h"
#include "core/bp_wrapper.h"
#include "core/combining_coordinator.h"
#include "core/serialized_coordinator.h"
#include "core/shared_queue_coordinator.h"
#include "core/sharded_coordinator.h"
#include "policy/policy_factory.h"
#include "policy/sharded_policy.h"
#include "storage/storage_engine.h"
#include "util/fingerprint.h"

namespace bpw {
namespace mc {

namespace {

constexpr size_t kPageSize = 256;

std::unique_ptr<Coordinator> BuildCoordinator(const ScenarioConfig& config,
                                              size_t frames, bool faithful,
                                              std::string* error) {
  if (config.coordinator == "sharded") {
    // The sharded coordinator owns a ShardedPolicy; config.policy names the
    // inner per-shard policy.
    const size_t shards =
        config.policy_shards == 0 ? 1 : config.policy_shards;
    auto sharded = ShardedPolicy::Create(config.policy, shards, frames);
    if (!sharded.ok()) {
      *error = sharded.status().ToString();
      return nullptr;
    }
    ShardedCoordinator::Options options;
    options.queue_size = config.queue_size;
    options.rebalance_interval = config.rebalance_interval;
    options.test_shard_double_track =
        !faithful && config.mutate_shard_double_track;
    options.test_shard_stale_eviction =
        !faithful && config.mutate_shard_stale_eviction;
    return std::make_unique<ShardedCoordinator>(std::move(sharded).value(),
                                                options);
  }
  auto policy = CreatePolicy(config.policy, frames);
  if (!policy.ok()) {
    *error = policy.status().ToString();
    return nullptr;
  }
  if (config.coordinator == "serialized") {
    return std::make_unique<SerializedCoordinator>(std::move(policy).value());
  }
  if (config.coordinator == "shared-queue") {
    SharedQueueCoordinator::Options options;
    options.queue_size = config.queue_size;
    options.batch_threshold = config.batch_threshold;
    options.test_commit_without_lock =
        !faithful && config.mutate_commit_without_lock;
    return std::make_unique<SharedQueueCoordinator>(std::move(policy).value(),
                                                    options);
  }
  if (config.coordinator == "bp-wrapper") {
    BpWrapperCoordinator::Options options;
    options.queue_size = config.queue_size;
    options.batch_threshold = config.batch_threshold;
    options.test_skip_commit_before_victim =
        !faithful && config.mutate_skip_commit_before_victim;
    return std::make_unique<BpWrapperCoordinator>(std::move(policy).value(),
                                                  options);
  }
  if (config.coordinator == "combining") {
    CombiningCoordinator::Options options;
    options.queue_size = config.queue_size;
    options.batch_threshold = config.batch_threshold;
    options.test_skip_release =
        !faithful && config.mutate_combine_skip_release;
    options.test_drain_twice =
        !faithful && config.mutate_combine_drain_twice;
    options.test_clear_ready_before_apply =
        !faithful && config.mutate_combine_clear_ready;
    return std::make_unique<CombiningCoordinator>(std::move(policy).value(),
                                                  options);
  }
  *error = "unknown coordinator '" + config.coordinator +
           "' (serialized, shared-queue, bp-wrapper, combining, sharded)";
  return nullptr;
}

/// One scenario stack, built identically for every execution.
struct Stack {
  std::unique_ptr<StorageEngine> storage;
  std::unique_ptr<BufferPool> pool;
  Coordinator* coordinator = nullptr;  // owned by pool
  std::vector<std::unique_ptr<BufferPool::Session>> sessions;

  static std::unique_ptr<Stack> Build(const ScenarioConfig& config,
                                      bool faithful, std::string* error) {
    auto stack = std::make_unique<Stack>();
    stack->storage = std::make_unique<StorageEngine>(
        static_cast<uint64_t>(config.pages), kPageSize,
        StorageLatencyModel::None(), /*materialize=*/true);
    // Pre-stamp every page so a worker can verify that the bytes a handle
    // exposes belong to the page it asked for.
    std::vector<uint8_t> buf(kPageSize, 0);
    for (PageId p = 0; p < static_cast<PageId>(config.pages); ++p) {
      StorageEngine::StampPage(buf.data(), kPageSize, p, /*version=*/1);
      Status status = stack->storage->WritePage(p, buf.data());
      if (!status.ok()) {
        *error = status.ToString();
        return nullptr;
      }
    }
    auto coordinator = BuildCoordinator(
        config, static_cast<size_t>(config.frames), faithful, error);
    if (coordinator == nullptr) return nullptr;
    stack->coordinator = coordinator.get();
    BufferPoolConfig pool_config;
    pool_config.num_frames = static_cast<size_t>(config.frames);
    pool_config.page_size = kPageSize;
    pool_config.table_shards = 4;
    pool_config.test_skip_victim_revalidation =
        !faithful && config.mutate_skip_victim_revalidation;
    stack->pool = std::make_unique<BufferPool>(pool_config, stack->storage.get(),
                                               std::move(coordinator));
    // Sessions are created on the scenario thread, not the workers, so the
    // coordinator sees registrations in a fixed order regardless of
    // schedule.
    for (int t = 0; t < config.threads; ++t) {
      stack->sessions.push_back(stack->pool->CreateSession());
    }
    return stack;
  }
};

struct WorkerLog {
  std::vector<char> outcomes;  // 'H' / 'M' per completed op
  std::string failure;         // first fetch error or stamp mismatch
};

/// Runs `thread`'s trace against the stack. `sched` may be null (reference
/// replays run unscheduled on the caller's thread).
void RunTrace(BufferPool& pool, BufferPool::Session& session,
              const std::vector<PageId>& trace, CooperativeScheduler* sched,
              WorkerLog& log) {
  for (size_t j = 0; j < trace.size(); ++j) {
    if (sched != nullptr) sched->MarkProgress(static_cast<int>(j));
    const PageId page = trace[j];
    const uint64_t misses_before = session.stats().misses;
    auto handle = pool.FetchPage(session, page);
    if (!handle.ok()) {
      if (log.failure.empty() && (sched == nullptr || !sched->aborted())) {
        std::ostringstream out;
        out << "op " << j << ": FetchPage(" << page
            << ") failed: " << handle.status().ToString();
        log.failure = out.str();
      }
      continue;
    }
    const auto [word, version] = StorageEngine::ReadStamp(handle.value().data());
    if (word != page * 0x9E3779B97F4A7C15ULL + version) {
      if (log.failure.empty() && (sched == nullptr || !sched->aborted())) {
        std::ostringstream out;
        out << "op " << j << ": page " << page
            << " handle holds foreign bytes (stamp word " << word
            << ", version " << version
            << ") — a pinned frame was overwritten";
        log.failure = out.str();
      }
    }
    log.outcomes.push_back(session.stats().misses == misses_before ? 'H' : 'M');
  }
}

std::string OutcomeString(const std::vector<char>& outcomes) {
  return std::string(outcomes.begin(), outcomes.end());
}

}  // namespace

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kNone: return "none";
    case ViolationKind::kInvariant: return "invariant";
    case ViolationKind::kRace: return "race";
    case ViolationKind::kDeadlock: return "deadlock";
    case ViolationKind::kLivelock: return "livelock";
    case ViolationKind::kError: return "error";
  }
  return "?";
}

StatusOr<ScenarioConfig> Scenario::Preset(const std::string& name) {
  ScenarioConfig config;
  config.name = name;
  if (name == "eviction") {
    // The acceptance scenario: 2 threads, 4 pages, 2 frames, shared queue
    // with batch threshold 2. Constant eviction pressure; every miss path
    // and the victim-revalidation window are exercised.
    return config;
  }
  if (name == "handoff") {
    config.coordinator = "bp-wrapper";
    return config;
  }
  if (name == "race") {
    // All threads walk the same two resident-after-warmup pages: maximal
    // hit traffic through the shared queue, no evictions. This is the
    // stage for the commit-without-lock mutation.
    config.coordinator = "shared-queue";
    config.pages = 2;
    config.frames = 2;
    config.ops_per_thread = 4;
    return config;
  }
  if (name == "serial") {
    // Single-threaded, so the op order is schedule-independent and per-op
    // hit/miss must match a reference stack exactly. The trace is chosen
    // so the BP-Wrapper commit-before-victim rule is load-bearing: the hit
    // on page 0 sits queued when the miss on page 2 evicts. Committed
    // first (faithful), LRU evicts page 1 and the final op hits; skipped
    // (mutated), LRU evicts page 0 and the final op misses.
    config.coordinator = "bp-wrapper";
    config.threads = 1;
    config.pages = 3;
    config.frames = 2;
    config.trace = {0, 1, 0, 2, 0};
    config.check_serial_equivalence = true;
    return config;
  }
  if (name == "combine") {
    // Two publishers + one combiner through the flat-combining commit
    // path. All three threads walk the two resident-after-first-touch
    // pages, with batch threshold 2 and 4 ops: each thread publishes its
    // batch at least once, a TryLock winner adopts whatever peers have
    // posted, losers run the bounded cooperative-handoff spin, and the
    // quiesced conservation check (published == drained + pending) plus
    // the pseudo-capability race certification close the run.
    config.coordinator = "combining";
    config.threads = 3;
    config.pages = 2;
    config.frames = 2;
    config.ops_per_thread = 4;
    config.batch_threshold = 2;
    return config;
  }
  if (name == "shard") {
    // Two threads through the sharded coordinator: 2 policy shards over 4
    // pages and 2 frames, rebalance cadence 1 so every commit call crosses
    // the exchange (and, mutated, the double-track plant). The trace hits
    // page 0 while it is resident, then misses, so the hit is queued in
    // the private ring when the miss-path commit replays it — the plant
    // seed (last_committed) and the stale-home memo both get real values
    // within four ops. Quiesce runs the cross-shard conservation oracle.
    config.coordinator = "sharded";
    config.policy = "lru";
    config.policy_shards = 2;
    config.rebalance_interval = 1;
    config.threads = 2;
    config.pages = 4;
    config.frames = 2;
    config.queue_size = 4;
    config.ops_per_thread = 4;
    config.trace = {0, 0, 1, 2};
    return config;
  }
  return Status::InvalidArgument("unknown scenario '" + name + "'");
}

std::vector<std::string> Scenario::PresetNames() {
  return {"eviction", "handoff", "race", "serial", "combine", "shard"};
}

std::vector<PageId> Scenario::TraceFor(int thread) const {
  if (!config_.trace.empty()) return config_.trace;
  std::vector<PageId> trace;
  trace.reserve(static_cast<size_t>(config_.ops_per_thread));
  for (int j = 0; j < config_.ops_per_thread; ++j) {
    trace.push_back(static_cast<PageId>(
        (thread * 2 + j) % config_.pages));
  }
  return trace;
}

ExecutionResult Scenario::RunOnce(CooperativeScheduler& sched,
                                  CooperativeScheduler::Chooser chooser) {
  ExecutionResult result;
  auto fail = [&result](ViolationKind kind, std::string message) {
    result.violated = true;
    result.violation.kind = kind;
    result.violation.message = std::move(message);
  };

  std::string build_error;
  auto stack = Stack::Build(config_, /*faithful=*/false, &build_error);
  if (stack == nullptr) {
    fail(ViolationKind::kError, "scenario setup failed: " + build_error);
    return result;
  }

  CooperativeScheduler::Config sched_config;
  sched_config.num_threads = config_.threads;
  sched_config.max_decisions = config_.max_decisions;
  sched.BeginRun(sched_config, std::move(chooser));

  BufferPool* pool = stack->pool.get();
  Coordinator* coordinator = stack->coordinator;
  auto* sessions = &stack->sessions;
  sched.SetFingerprintProvider(
      [pool, coordinator, sessions]() {
        Fingerprint fp;
        fp.Combine(pool->StateFingerprint());
        fp.Combine(coordinator->StateFingerprint());
        for (const auto& session : *sessions) {
          fp.Combine(coordinator->SlotStateFingerprint(session->slot()));
        }
        return fp.value();
      },
      coordinator->StateFingerprintSupported());

  std::vector<WorkerLog> logs(static_cast<size_t>(config_.threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(config_.threads));
  for (int t = 0; t < config_.threads; ++t) {
    workers.emplace_back([this, t, &sched, pool, sessions, &logs] {
      sched.AttachWorker(t);
      RunTrace(*pool, *(*sessions)[static_cast<size_t>(t)], TraceFor(t),
               &sched, logs[static_cast<size_t>(t)]);
      sched.DetachWorker(t);
    });
  }
  for (auto& worker : workers) worker.join();

  result.decisions = sched.decision_trace();
  result.signatures = sched.decision_signatures();
  result.races_checked = sched.certifier().accesses_checked();

  // --- Diagnosis (priority order; see header) -----------------------------
  if (sched.verdict() == SchedulerVerdict::kDeadlock) {
    fail(ViolationKind::kDeadlock, sched.verdict_detail());
    return result;
  }
  if (sched.verdict() == SchedulerVerdict::kLivelock) {
    fail(ViolationKind::kLivelock, sched.verdict_detail());
    return result;
  }
  if (sched.aborted()) {
    const std::string detail = sched.verdict_detail();
    if (!detail.empty()) {
      fail(ViolationKind::kError, detail);
    } else {
      result.pruned = true;  // explorer cut this branch; nothing to diagnose
    }
    return result;
  }

  for (int t = 0; t < config_.threads; ++t) {
    const WorkerLog& log = logs[static_cast<size_t>(t)];
    if (!log.failure.empty()) {
      fail(ViolationKind::kInvariant,
           "thread " + std::to_string(t) + ": " + log.failure);
      return result;
    }
  }

  Status integrity = stack->pool->CheckIntegrity();
  if (!integrity.ok()) {
    fail(ViolationKind::kInvariant,
         "post-run integrity check failed: " + integrity.ToString());
    return result;
  }

  if (config_.check_serial_equivalence && config_.threads == 1) {
    std::string ref_error;
    auto reference = Stack::Build(config_, /*faithful=*/true, &ref_error);
    if (reference == nullptr) {
      fail(ViolationKind::kError, "reference setup failed: " + ref_error);
      return result;
    }
    WorkerLog ref_log;
    // Runs on this (unregistered) thread: every scheduler hook no-ops.
    RunTrace(*reference->pool, *reference->sessions[0], TraceFor(0),
             /*sched=*/nullptr, ref_log);
    if (ref_log.outcomes != logs[0].outcomes) {
      fail(ViolationKind::kInvariant,
           "serial equivalence broken: per-op outcomes " +
               OutcomeString(logs[0].outcomes) + " vs reference " +
               OutcomeString(ref_log.outcomes));
      return result;
    }
  }

  if (!sched.certifier().races().empty()) {
    fail(ViolationKind::kRace, sched.certifier().races().front().ToString());
    return result;
  }

  return result;
}

}  // namespace mc
}  // namespace bpw
