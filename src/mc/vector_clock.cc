#include "mc/vector_clock.h"

#include <sstream>

namespace bpw {
namespace mc {

std::string VectorClock::ToString() const {
  std::ostringstream out;
  out << "[";
  for (size_t t = 0; t < clock_.size(); ++t) {
    if (t > 0) out << " ";
    out << clock_[t];
  }
  out << "]";
  return out.str();
}

std::string RaceReport::ToString() const {
  std::ostringstream out;
  out << "race on '" << object << "': thread " << first_thread << " "
      << (first_is_write ? "write" : "read") << " at " << first_point
      << " is unordered with thread " << second_thread << " "
      << (second_is_write ? "write" : "read") << " at " << second_point;
  return out.str();
}

namespace {

// The prior accessor that makes `prior` not happen-before `now`: any
// component where prior's epoch exceeds now's knowledge of that thread.
int OffendingThread(const VectorClock& prior, const VectorClock& now) {
  for (size_t u = 0; u < prior.size(); ++u) {
    if (prior.at(u) > now.at(u)) return static_cast<int>(u);
  }
  return -1;
}

}  // namespace

void RaceCertifier::OnAccess(size_t t, const VectorClock& vc, const void* obj,
                             const char* point, bool is_write) {
  ++accesses_checked_;
  const char* label = point != nullptr ? point : "?";
  LocationState& loc = locations_[obj];
  if (loc.label.empty()) loc.label = label;

  auto report = [&](const VectorClock& prior, bool prior_is_write) {
    if (loc.race_reported) return;
    const int u = OffendingThread(prior, vc);
    RaceReport race;
    race.object = loc.label;
    race.first_thread = u;
    race.first_is_write = prior_is_write;
    if (prior_is_write) {
      race.first_point = loc.last_write_point;
    } else {
      auto it = loc.last_read_points.find(static_cast<size_t>(u));
      race.first_point =
          it != loc.last_read_points.end() ? it->second : "<unknown read>";
    }
    race.second_thread = static_cast<int>(t);
    race.second_point = label;
    race.second_is_write = is_write;
    races_.push_back(std::move(race));
    loc.race_reported = true;
  };

  // The djit+ conditions: a write must happen-after every prior access, a
  // read must happen-after every prior write. W_x / R_x hold per-thread
  // epochs of the last accesses, so LessEq against the accessor's clock is
  // exactly "all prior accesses are ordered before me".
  if (is_write) {
    if (!loc.write_clock.LessEq(vc)) {
      report(loc.write_clock, /*prior_is_write=*/true);
    } else if (!loc.read_clock.LessEq(vc)) {
      report(loc.read_clock, /*prior_is_write=*/false);
    }
    loc.write_clock.Set(t, vc.at(t));
    loc.last_writer = static_cast<int>(t);
    loc.last_write_point = label;
  } else {
    if (!loc.write_clock.LessEq(vc)) {
      report(loc.write_clock, /*prior_is_write=*/true);
    }
    loc.read_clock.Set(t, vc.at(t));
    loc.last_read_points[t] = label;
  }
}

}  // namespace mc
}  // namespace bpw
