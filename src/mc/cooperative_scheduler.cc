#include "mc/cooperative_scheduler.h"

#include <sstream>

#include "util/fingerprint.h"

// The scheduler's monitor is a raw std::mutex by necessity: going through
// the instrumented bpw wrappers would recurse every hook straight back
// into the scheduler. See the class comment.
// bpw-lint-allow-file(raw-mutex)
//
// The *Locked suffix in this file refers to that monitor, not to a
// ContentionLock: hold times here are test-harness bookkeeping (exactly
// one worker runs at a time by design), so the critical-section hygiene
// rules for the production lock do not apply.
// bpw-lint-allow-file(critical-section-alloc)

namespace bpw {
namespace mc {

namespace {

thread_local int g_worker_id = -1;

// Point names are string literals, but fingerprints must be stable across
// executions (and across ASLR), so hash contents, never pointers.
uint64_t HashPointName(const char* point) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a 64
  if (point != nullptr) {
    for (const char* p = point; *p != '\0'; ++p) {
      h ^= static_cast<unsigned char>(*p);
      h *= 1099511628211ULL;
    }
  }
  return h;
}

const char* PhaseName(int phase) {
  switch (phase) {
    case 0: return "not-attached";
    case 1: return "runnable";
    case 2: return "running";
    case 3: return "blocked-lock";
    case 4: return "blocked-cv";
    case 5: return "finished";
    default: return "?";
  }
}

}  // namespace

int CurrentWorkerId() { return g_worker_id; }

CooperativeScheduler::CooperativeScheduler() = default;
CooperativeScheduler::~CooperativeScheduler() = default;

void CooperativeScheduler::BeginRun(const Config& config, Chooser chooser) {
  std::unique_lock<std::mutex> lk(mu_);
  config_ = config;
  chooser_ = std::move(chooser);
  fingerprint_provider_ = nullptr;
  fingerprint_supported_ = false;
  workers_.assign(static_cast<size_t>(config_.num_threads), Worker());
  attached_ = 0;
  running_ = -1;
  started_ = false;
  aborted_ = false;
  verdict_ = SchedulerVerdict::kNone;
  verdict_detail_.clear();
  decisions_ = 0;
  decision_trace_.clear();
  decision_signatures_.clear();
  lock_holder_.clear();
  lock_clock_.clear();
  cv_clock_.clear();
  certifier_ = RaceCertifier(static_cast<size_t>(config_.num_threads));
}

void CooperativeScheduler::SetFingerprintProvider(
    std::function<uint64_t()> provider, bool supported) {
  std::unique_lock<std::mutex> lk(mu_);
  fingerprint_provider_ = std::move(provider);
  fingerprint_supported_ = supported;
}

// --- Worker lifecycle ------------------------------------------------------

void CooperativeScheduler::AttachWorker(int id) {
  g_worker_id = id;
  std::unique_lock<std::mutex> lk(mu_);
  Worker& w = workers_[static_cast<size_t>(id)];
  w.phase = Phase::kRunnable;
  w.point = "worker.start";
  // Start each worker's clock at epoch 1 in its own component so "never
  // accessed" (epoch 0) is distinguishable from "accessed before any
  // synchronization" in the certifier's per-location clocks.
  w.clock = VectorClock(static_cast<size_t>(config_.num_threads));
  w.clock.Tick(static_cast<size_t>(id));
  ++attached_;
  if (attached_ == config_.num_threads) {
    started_ = true;
    // All workers present: run the first scheduling decision. Forced (no
    // thread was running), so it costs no preemption.
    ScheduleNextLocked(/*parking=*/-1, /*parking_enabled=*/false);
  }
  WaitUntilScheduledLocked(lk, id);
}

void CooperativeScheduler::DetachWorker(int id) {
  std::unique_lock<std::mutex> lk(mu_);
  Worker& w = workers_[static_cast<size_t>(id)];
  w.phase = Phase::kFinished;
  w.point = "worker.finish";
  if (running_ == id) running_ = -1;
  g_worker_id = -1;
  if (!aborted_) {
    ScheduleNextLocked(/*parking=*/-1, /*parking_enabled=*/false);
  }
}

void CooperativeScheduler::MarkProgress(int op_index) {
  const int id = g_worker_id;
  if (id < 0) return;
  std::unique_lock<std::mutex> lk(mu_);
  workers_[static_cast<size_t>(id)].op_index = op_index;
}

// --- Hook overrides --------------------------------------------------------

void CooperativeScheduler::Perturb(const char* point, const void* obj) {
  const int id = g_worker_id;
  if (id < 0) return;
  ParkAtPoint(id, point, obj);
}

void CooperativeScheduler::LockWillAcquire(const void* lock,
                                           const char* point) {
  const int id = g_worker_id;
  if (id < 0) return;
  std::unique_lock<std::mutex> lk(mu_);
  Worker& w = workers_[static_cast<size_t>(id)];
  // Park until the model says the lock is free. The real acquisition that
  // follows this hook then succeeds without blocking in the OS (nobody can
  // race us to it: execution is serialized until we pass LockAcquired).
  while (!aborted_ && lock_holder_.count(lock) != 0) {
    w.phase = Phase::kBlockedLock;
    w.waiting_lock = lock;
    w.point = point;
    w.obj = lock;
    ScheduleNextLocked(id, /*parking_enabled=*/false);
    WaitUntilScheduledLocked(lk, id);
  }
  w.waiting_lock = nullptr;
}

void CooperativeScheduler::LockAcquired(const void* lock, const char* point) {
  (void)point;
  const int id = g_worker_id;
  if (id < 0) return;
  std::unique_lock<std::mutex> lk(mu_);
  if (aborted_) return;
  lock_holder_[lock] = id;
  Worker& w = workers_[static_cast<size_t>(id)];
  auto it = lock_clock_.find(lock);
  if (it != lock_clock_.end()) w.clock.Join(it->second);  // release→acquire
}

void CooperativeScheduler::LockTryFailed(const void* lock, const char* point) {
  // A failed TryLock neither blocks nor synchronizes (no happens-before
  // edge): nothing to model. The BPW_SCHEDULE_POINT before the attempt
  // already made the outcome schedule-dependent.
  (void)lock;
  (void)point;
}

void CooperativeScheduler::LockReleased(const void* lock, const char* point) {
  const int id = g_worker_id;
  if (id < 0) return;
  std::unique_lock<std::mutex> lk(mu_);
  if (aborted_) return;
  Worker& w = workers_[static_cast<size_t>(id)];
  lock_holder_.erase(lock);
  lock_clock_[lock] = w.clock;
  w.clock.Tick(static_cast<size_t>(id));
  // A release enables blocked waiters — a mandatory decision point for any
  // exploration that wants to see handoffs.
  w.phase = Phase::kRunnable;
  w.point = point;
  w.obj = lock;
  ScheduleNextLocked(id, /*parking_enabled=*/true);
  WaitUntilScheduledLocked(lk, id);
}

void CooperativeScheduler::Yield(const char* point) {
  const int id = g_worker_id;
  if (id < 0) {
    std::this_thread::yield();
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  if (aborted_) return;
  Worker& w = workers_[static_cast<size_t>(id)];
  // CHESS's fairness rule: a yielding thread declares itself unable to make
  // progress until someone else runs. Marking it passive (a) removes it
  // from the candidate set while non-passive threads exist, and (b) makes
  // switching away from it free — it asked for the switch.
  w.passive = true;
  w.phase = Phase::kRunnable;
  w.point = point;
  w.obj = nullptr;
  ScheduleNextLocked(id, /*parking_enabled=*/true);
  WaitUntilScheduledLocked(lk, id);
}

void CooperativeScheduler::Access(const void* obj, const char* point,
                                  bool is_write) {
  const int id = g_worker_id;
  if (id < 0) return;
  std::unique_lock<std::mutex> lk(mu_);
  if (aborted_) return;
  certifier_.OnAccess(static_cast<size_t>(id),
                      workers_[static_cast<size_t>(id)].clock, obj, point,
                      is_write);
}

bool CooperativeScheduler::PrepareWait(const void* cv) {
  const int id = g_worker_id;
  if (id < 0) return false;  // unmanaged thread: use the real condvar
  std::unique_lock<std::mutex> lk(mu_);
  if (aborted_) return false;
  workers_[static_cast<size_t>(id)].waiting_cv = cv;
  return true;
}

bool CooperativeScheduler::CommitWait(const void* cv) {
  const int id = g_worker_id;
  if (id < 0) return true;
  std::unique_lock<std::mutex> lk(mu_);
  Worker& w = workers_[static_cast<size_t>(id)];
  if (aborted_) {
    w.waiting_cv = nullptr;
    return false;
  }
  if (!w.cv_signalled) {
    // Nothing arrived between PrepareWait and here: block until NotifyAll.
    w.phase = Phase::kBlockedCv;
    w.point = "cv.wait";
    w.obj = cv;
    ScheduleNextLocked(id, /*parking_enabled=*/false);
    WaitUntilScheduledLocked(lk, id);
    if (aborted_) {
      w.waiting_cv = nullptr;
      return false;
    }
  }
  w.cv_signalled = false;
  w.waiting_cv = nullptr;
  auto it = cv_clock_.find(cv);
  if (it != cv_clock_.end()) w.clock.Join(it->second);  // notify→wake
  return true;
}

void CooperativeScheduler::NotifyAll(const void* cv) {
  const int id = g_worker_id;
  if (id < 0) return;
  std::unique_lock<std::mutex> lk(mu_);
  if (aborted_) return;
  Worker& w = workers_[static_cast<size_t>(id)];
  cv_clock_[cv].Join(w.clock);
  w.clock.Tick(static_cast<size_t>(id));
  for (auto& other : workers_) {
    if (other.waiting_cv == cv) {
      other.cv_signalled = true;
      if (other.phase == Phase::kBlockedCv) other.phase = Phase::kRunnable;
    }
  }
}

// --- Results ---------------------------------------------------------------

bool CooperativeScheduler::aborted() const {
  std::unique_lock<std::mutex> lk(mu_);
  return aborted_;
}

SchedulerVerdict CooperativeScheduler::verdict() const {
  std::unique_lock<std::mutex> lk(mu_);
  return verdict_;
}

std::string CooperativeScheduler::verdict_detail() const {
  std::unique_lock<std::mutex> lk(mu_);
  return verdict_detail_;
}

uint64_t CooperativeScheduler::decisions_made() const {
  std::unique_lock<std::mutex> lk(mu_);
  return decisions_;
}

// --- Internals (mu_ held) --------------------------------------------------

bool CooperativeScheduler::EnabledLocked(int id) const {
  const Worker& w = workers_[static_cast<size_t>(id)];
  switch (w.phase) {
    case Phase::kRunnable:
      return true;
    case Phase::kBlockedLock:
      return lock_holder_.count(w.waiting_lock) == 0;
    default:
      return false;
  }
}

void CooperativeScheduler::BuildCandidatesLocked(int parking,
                                                 bool parking_enabled,
                                                 DecisionContext& ctx) const {
  std::vector<Candidate> all;
  bool any_nonpassive = false;
  for (int id = 0; id < config_.num_threads; ++id) {
    if (!EnabledLocked(id)) continue;
    const Worker& w = workers_[static_cast<size_t>(id)];
    Candidate c;
    c.thread = id;
    c.point = w.point;
    c.obj = w.obj;
    all.push_back(c);
    if (!w.passive) any_nonpassive = true;
  }
  // Fairness filter: while anyone non-passive can run, yielded threads wait
  // their turn (they declared they cannot progress alone).
  for (Candidate& c : all) {
    if (any_nonpassive && workers_[static_cast<size_t>(c.thread)].passive) {
      continue;
    }
    // Charging rule: switching away from an enabled, non-passive current
    // thread is a preemption; staying, forced switches, and post-yield
    // switches are free.
    c.preemptive = parking_enabled && parking >= 0 && c.thread != parking &&
                   !workers_[static_cast<size_t>(parking)].passive;
    ctx.candidates.push_back(c);
  }
  for (const Candidate& c : ctx.candidates) {
    if (c.thread == parking) {
      ctx.current = parking;
      break;
    }
  }
}

uint64_t CooperativeScheduler::ThreadStateHashLocked() const {
  Fingerprint fp;
  for (const Worker& w : workers_) {
    fp.Combine(static_cast<uint64_t>(w.phase));
    fp.Combine(w.passive ? 1 : 0);
    fp.Combine(static_cast<uint64_t>(static_cast<int64_t>(w.op_index)));
    fp.Combine(HashPointName(w.point));
    fp.Combine(w.cv_signalled ? 1 : 0);
  }
  return fp.value();
}

void CooperativeScheduler::ScheduleNextLocked(int parking,
                                              bool parking_enabled) {
  if (aborted_) return;
  running_ = -1;
  if (decisions_ >= config_.max_decisions) {
    std::ostringstream out;
    out << "decision budget (" << config_.max_decisions
        << ") exhausted: no execution of this scenario should need this many "
           "steps; likely a livelock (e.g. an eviction retry loop that never "
           "observes progress)";
    AbortLocked(SchedulerVerdict::kLivelock, out.str());
    return;
  }

  DecisionContext ctx;
  BuildCandidatesLocked(parking, parking_enabled, ctx);
  if (ctx.candidates.empty()) {
    bool all_finished = true;
    for (const Worker& w : workers_) {
      if (w.phase != Phase::kFinished) all_finished = false;
    }
    if (all_finished) return;  // clean completion, nothing to schedule
    std::ostringstream out;
    out << "deadlock: no enabled worker;";
    for (int id = 0; id < config_.num_threads; ++id) {
      const Worker& w = workers_[static_cast<size_t>(id)];
      out << " t" << id << "=" << PhaseName(static_cast<int>(w.phase)) << "@"
          << (w.point != nullptr ? w.point : "?");
    }
    AbortLocked(SchedulerVerdict::kDeadlock, out.str());
    return;
  }

  ctx.decision_index = decisions_;
  {
    Fingerprint sig;
    for (const Candidate& c : ctx.candidates) {
      sig.Combine(static_cast<uint64_t>(c.thread));
      sig.Combine(HashPointName(c.point));
    }
    ctx.candidate_signature = sig.value();
  }
  Fingerprint fp;
  fp.Combine(ThreadStateHashLocked());
  if (fingerprint_provider_) {
    // Safe to call with mu_ held: providers read quiesced structural state
    // without synchronization (every worker is parked right now) and must
    // not touch instrumented locks.
    fp.Combine(fingerprint_provider_());
    ctx.fingerprint_supported = fingerprint_supported_;
  }
  ctx.state_fingerprint = fp.value();

  const int chosen = chooser_ ? chooser_(ctx) : ctx.candidates.front().thread;
  if (chosen == kAbortExecution) {
    AbortLocked(SchedulerVerdict::kNone, "");  // branch pruned by explorer
    return;
  }
  bool valid = false;
  for (const Candidate& c : ctx.candidates) {
    if (c.thread == chosen) valid = true;
  }
  if (!valid) {
    std::ostringstream out;
    out << "chooser picked thread " << chosen
        << " which is not an enabled candidate at decision "
        << ctx.decision_index;
    AbortLocked(SchedulerVerdict::kNone, out.str());
    return;
  }

  ++decisions_;
  decision_trace_.push_back(chosen);
  decision_signatures_.push_back(ctx.candidate_signature);
  Worker& next = workers_[static_cast<size_t>(chosen)];
  next.phase = Phase::kRunning;
  next.passive = false;  // being scheduled resets the yield flag
  running_ = chosen;
  cv_.notify_all();
}

void CooperativeScheduler::WaitUntilScheduledLocked(
    std::unique_lock<std::mutex>& lk, int id) {
  cv_.wait(lk, [&] { return aborted_ || running_ == id; });
}

void CooperativeScheduler::ParkAtPoint(int id, const char* point,
                                       const void* obj) {
  std::unique_lock<std::mutex> lk(mu_);
  if (aborted_) return;
  Worker& w = workers_[static_cast<size_t>(id)];
  w.phase = Phase::kRunnable;
  w.point = point;
  w.obj = obj;
  ScheduleNextLocked(id, /*parking_enabled=*/true);
  WaitUntilScheduledLocked(lk, id);
}

void CooperativeScheduler::AbortLocked(SchedulerVerdict verdict,
                                       std::string detail) {
  aborted_ = true;
  if (verdict_ == SchedulerVerdict::kNone && verdict != SchedulerVerdict::kNone) {
    verdict_ = verdict;
    verdict_detail_ = std::move(detail);
  } else if (verdict == SchedulerVerdict::kNone && !detail.empty() &&
             verdict_detail_.empty()) {
    verdict_detail_ = std::move(detail);
  }
  // Release everyone: hooks are no-ops from here on, so the workers drain on
  // the real synchronization primitives (the real lock graph is acyclic —
  // the only nesting is commit-lock → queue-lock — so they cannot deadlock).
  running_ = -1;
  cv_.notify_all();
}

}  // namespace mc
}  // namespace bpw
