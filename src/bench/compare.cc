#include "bench/compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "bench/runner.h"
#include "bench/stats.h"

namespace bpw {
namespace bench {

namespace {

struct WallMetricDef {
  const char* name;
  bool higher_is_better;
};

constexpr WallMetricDef kWallMetrics[] = {
    {"throughput_tps", true},
    {"avg_response_us", false},
    {"p95_response_us", false},
    {"contentions_per_million", false},
};

std::vector<double> TrialSeries(const JsonValue& case_obj,
                                const std::string& metric) {
  std::vector<double> out;
  const JsonValue* trials = case_obj.Find("trials");
  if (trials == nullptr || !trials->is_array()) return out;
  for (const JsonValue& t : trials->array) {
    out.push_back(t.NumberOr(metric, 0));
  }
  return out;
}

double MeanOf(const std::vector<double>& v) {
  if (v.empty()) return 0;
  double sum = 0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

std::map<std::string, double> CounterMap(const JsonValue& case_obj) {
  std::map<std::string, double> out;
  const JsonValue* counters = case_obj.Find("counters");
  if (counters == nullptr || !counters->is_object()) return out;
  for (const auto& [name, value] : counters->object) {
    if (value.is_number()) out[name] = value.number_value;
  }
  return out;
}

Status ValidateDocument(const JsonValue& doc, const char* which) {
  if (!doc.is_object()) {
    return Status::InvalidArgument(std::string(which) +
                                   ": not a JSON object");
  }
  const double version = doc.NumberOr("schema_version", -1);
  if (version != kBenchSchemaVersion) {
    return Status::InvalidArgument(
        std::string(which) + ": unsupported schema_version " +
        std::to_string(version) + " (want " +
        std::to_string(kBenchSchemaVersion) + ")");
  }
  const JsonValue* cases = doc.Find("cases");
  if (cases == nullptr || !cases->is_array()) {
    return Status::InvalidArgument(std::string(which) + ": missing cases[]");
  }
  return Status::OK();
}

void CompareEnvironments(const JsonValue& baseline, const JsonValue& candidate,
                         CompareReport& report) {
  const JsonValue* base_env = baseline.Find("environment");
  const JsonValue* cand_env = candidate.Find("environment");
  if (base_env == nullptr || cand_env == nullptr) return;
  for (const char* key : {"compiler", "build_type", "cxx_flags", "os",
                          "arch"}) {
    const std::string b = base_env->StringOr(key, "");
    const std::string c = cand_env->StringOr(key, "");
    if (b != c) {
      report.notes.push_back(std::string("environment.") + key +
                             " differs: '" + b + "' vs '" + c +
                             "' — wall-clock deltas are not comparable");
    }
  }
  const double bt = base_env->NumberOr("hardware_threads", 0);
  const double ct = cand_env->NumberOr("hardware_threads", 0);
  if (bt != ct) {
    report.notes.push_back(
        "environment.hardware_threads differs: " + std::to_string(bt) +
        " vs " + std::to_string(ct) +
        " — wall-clock deltas are not comparable");
  }
}

void CompareWall(const std::string& name, const JsonValue& base_case,
                 const JsonValue& cand_case, const CompareOptions& options,
                 CompareReport& report) {
  for (const WallMetricDef& metric : kWallMetrics) {
    const std::vector<double> base = TrialSeries(base_case, metric.name);
    const std::vector<double> cand = TrialSeries(cand_case, metric.name);
    if (base.empty() || cand.empty()) continue;

    WallVerdict v;
    v.case_name = name;
    v.metric = metric.name;
    v.higher_is_better = metric.higher_is_better;
    v.baseline_mean = MeanOf(base);
    v.candidate_mean = MeanOf(cand);
    v.rel_delta = RelativeDelta(v.baseline_mean, v.candidate_mean);

    const BootstrapCI ci =
        BootstrapMeanDiff(base, cand, options.resamples, options.confidence,
                          options.bootstrap_seed);
    v.ci_lo = ci.lo;
    v.ci_hi = ci.hi;

    if (!ci.valid) {
      v.kind = WallVerdictKind::kInsufficientSamples;
      report.wall.push_back(v);
      continue;
    }

    // A zero baseline defeats the relative test (division by zero); any
    // non-trivial absolute appearance counts as a full-size delta.
    double effective_rel = v.rel_delta;
    if (v.baseline_mean == 0 && std::fabs(v.candidate_mean) > 1e-12) {
      effective_rel = v.candidate_mean > 0 ? 1.0 : -1.0;
    }

    // Direction-adjusted: positive `bad` means the metric moved the wrong
    // way. The CI must exclude zero on the bad side.
    const double bad_rel =
        metric.higher_is_better ? -effective_rel : effective_rel;
    const bool significant_worse =
        metric.higher_is_better ? ci.hi < 0 : ci.lo > 0;
    const bool significant_better =
        metric.higher_is_better ? ci.lo > 0 : ci.hi < 0;

    if (bad_rel >= options.min_rel_delta && significant_worse) {
      v.kind = WallVerdictKind::kRegression;
      report.wall_regression = true;
    } else if (-bad_rel >= options.min_rel_delta && significant_better) {
      v.kind = WallVerdictKind::kImprovement;
    } else {
      v.kind = WallVerdictKind::kNoChange;
    }
    report.wall.push_back(v);
  }
}

void CompareCounters(const std::string& name, const JsonValue& base_case,
                     const JsonValue& cand_case, CompareReport& report) {
  const auto base = CounterMap(base_case);
  const auto cand = CounterMap(cand_case);
  std::set<std::string> keys;
  for (const auto& [k, _] : base) keys.insert(k);
  for (const auto& [k, _] : cand) keys.insert(k);
  for (const std::string& key : keys) {
    CounterVerdict v;
    v.case_name = name;
    v.counter = key;
    const auto b = base.find(key);
    const auto c = cand.find(key);
    v.present_in_baseline = b != base.end();
    v.present_in_candidate = c != cand.end();
    if (v.present_in_baseline) v.baseline = b->second;
    if (v.present_in_candidate) v.candidate = c->second;
    v.match = v.present_in_baseline && v.present_in_candidate &&
              v.baseline == v.candidate;
    if (!v.match) report.counter_drift = true;
    report.counters.push_back(v);
  }
}

}  // namespace

StatusOr<CompareReport> CompareBenchResults(const JsonValue& baseline,
                                            const JsonValue& candidate,
                                            const CompareOptions& options) {
  Status s = ValidateDocument(baseline, "baseline");
  if (!s.ok()) return s;
  s = ValidateDocument(candidate, "candidate");
  if (!s.ok()) return s;

  CompareReport report;
  CompareEnvironments(baseline, candidate, report);

  const JsonValue& base_cases = *baseline.Find("cases");
  const JsonValue& cand_cases = *candidate.Find("cases");
  std::map<std::string, const JsonValue*> cand_by_name;
  for (const JsonValue& c : cand_cases.array) {
    cand_by_name[c.StringOr("name", "")] = &c;
  }

  std::set<std::string> seen;
  for (const JsonValue& base_case : base_cases.array) {
    const std::string name = base_case.StringOr("name", "");
    seen.insert(name);
    const auto it = cand_by_name.find(name);
    if (it == cand_by_name.end()) {
      report.notes.push_back("case '" + name +
                             "' missing from candidate");
      // A vanished deterministic case means the gated signal is gone:
      // treat as drift rather than silently narrowing coverage.
      if (base_case.BoolOr("deterministic", false)) {
        report.counter_drift = true;
      }
      continue;
    }
    const JsonValue& cand_case = *it->second;

    const JsonValue* base_wl = base_case.Find("workload");
    const JsonValue* cand_wl = cand_case.Find("workload");
    const std::string base_fp =
        base_wl != nullptr ? base_wl->StringOr("fingerprint", "") : "";
    const std::string cand_fp =
        cand_wl != nullptr ? cand_wl->StringOr("fingerprint", "") : "";
    if (base_fp != cand_fp) {
      report.fingerprint_drift = true;
      report.notes.push_back("case '" + name +
                             "': workload fingerprint changed (" + base_fp +
                             " -> " + cand_fp +
                             ") — baselines for this case are invalid");
    }

    CompareWall(name, base_case, cand_case, options, report);
    if (base_case.BoolOr("deterministic", false) ||
        cand_case.BoolOr("deterministic", false)) {
      CompareCounters(name, base_case, cand_case, report);
    }
  }
  for (const auto& [name, _] : cand_by_name) {
    if (seen.count(name) == 0) {
      report.notes.push_back("case '" + name +
                             "' is new in candidate (no baseline)");
    }
  }
  return report;
}

namespace {

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

const char* KindLabel(WallVerdictKind kind) {
  switch (kind) {
    case WallVerdictKind::kRegression: return "REGRESSION";
    case WallVerdictKind::kImprovement: return "improvement";
    case WallVerdictKind::kInsufficientSamples: return "n<2 (report-only)";
    case WallVerdictKind::kNoChange: return "ok";
  }
  return "?";
}

}  // namespace

std::string RenderCompareReport(const CompareReport& report,
                                const CompareOptions& options) {
  std::string out;
  for (const std::string& note : report.notes) {
    out += "note: " + note + "\n";
  }

  size_t counter_mismatches = 0;
  for (const CounterVerdict& v : report.counters) {
    if (v.match) continue;
    ++counter_mismatches;
    out += "COUNTER DRIFT " + v.case_name + " " + v.counter + ": ";
    if (!v.present_in_baseline) {
      out += "missing from baseline, candidate=" + FormatDouble(v.candidate, 0);
    } else if (!v.present_in_candidate) {
      out += "baseline=" + FormatDouble(v.baseline, 0) +
             ", missing from candidate";
    } else {
      out += FormatDouble(v.baseline, 0) + " -> " +
             FormatDouble(v.candidate, 0);
    }
    out += "\n";
  }

  for (const WallVerdict& v : report.wall) {
    const bool interesting = v.kind == WallVerdictKind::kRegression ||
                             v.kind == WallVerdictKind::kImprovement;
    if (!interesting) continue;
    out += std::string(v.kind == WallVerdictKind::kRegression
                           ? "WALL REGRESSION "
                           : "wall improvement ") +
           v.case_name + " " + v.metric + ": " +
           FormatDouble(v.baseline_mean, 2) + " -> " +
           FormatDouble(v.candidate_mean, 2) + " (" +
           FormatDouble(v.rel_delta * 100.0, 1) + "%, CI [" +
           FormatDouble(v.ci_lo, 2) + ", " + FormatDouble(v.ci_hi, 2) +
           "])\n";
  }

  const size_t counters_checked = report.counters.size();
  out += "summary: " + std::to_string(counters_checked) +
         " counters checked, " + std::to_string(counter_mismatches) +
         " drifted; " + std::to_string(report.wall.size()) +
         " wall metrics compared, " +
         std::to_string(std::count_if(
             report.wall.begin(), report.wall.end(),
             [](const WallVerdict& v) {
               return v.kind == WallVerdictKind::kRegression;
             })) +
         " regressed (wall gate " +
         (options.gate_wall ? "ON" : "off — report-only") + ")\n";
  out += std::string("verdict: ") +
         (report.ShouldFail(options) ? "FAIL" : "PASS") + "\n";
  return out;
}

}  // namespace bench
}  // namespace bpw
