// Statistics helpers for the benchmark pipeline: summary statistics,
// percentiles, throughput aggregation, and bootstrap confidence intervals.
//
// These back both the runner (per-case trial summaries in BENCH_*.json) and
// bench_compare (candidate-vs-baseline judgement), so they must behave for
// adversarial inputs: n = 1, constant series, heavy-tailed samples. All
// randomness (the bootstrap resampler) is seeded explicitly — two compares
// of the same files produce byte-identical verdicts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bpw {
namespace bench {

/// Five-number-ish summary of a sample vector. Zeroed when n == 0.
struct Summary {
  size_t n = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;  ///< sample stddev (n-1 denominator); 0 when n < 2
  double p50 = 0;
  double p95 = 0;
};

Summary Summarize(const std::vector<double>& samples);

/// Percentile with linear interpolation between closest ranks: for sorted
/// x[0..n-1] the rank is pct/100 * (n-1). pct is clamped to [0, 100];
/// n == 1 returns the single sample; n == 0 returns 0.
double Percentile(std::vector<double> samples, double pct);

/// Aggregate rate from per-trial (count, seconds) pairs: sum(counts) /
/// sum(seconds). Unlike a mean of per-trial rates this weights trials by
/// their actual window, so a short straggler trial cannot dominate.
/// Returns 0 when the total window is <= 0.
double AggregateRate(const std::vector<double>& counts,
                     const std::vector<double>& seconds);

/// Relative delta (candidate - baseline) / |baseline|; 0 when baseline is 0.
double RelativeDelta(double baseline, double candidate);

/// A two-sided bootstrap confidence interval. `valid` is false when either
/// side has fewer than 2 samples (a single trial carries no spread
/// information — callers must degrade to report-only point comparison).
struct BootstrapCI {
  double lo = 0;
  double hi = 0;
  bool valid = false;
};

/// Percentile-bootstrap CI for mean(candidate) - mean(baseline): resamples
/// each side with replacement `resamples` times and takes the
/// (1-confidence)/2 tails of the resampled difference distribution.
/// Deterministic for a given seed. Constant series yield a zero-width
/// (but valid) interval.
BootstrapCI BootstrapMeanDiff(const std::vector<double>& baseline,
                              const std::vector<double>& candidate,
                              int resamples, double confidence,
                              uint64_t seed);

}  // namespace bench
}  // namespace bpw
