#include "bench/suite.h"

#include <deque>

#include "core/coordinator_factory.h"
#include "sync/mutex.h"

namespace bpw {
namespace bench {

namespace {

SystemConfig MustSystem(const char* name) {
  auto system = PaperSystemConfig(name);
  // Built-in suites only reference the named paper systems (plus pgBat++);
  // a failure here is a programming error, surfaced as a default config
  // rather than UB.
  return system.ok() ? std::move(system).value() : SystemConfig{};
}

/// Host, duration-based: wall-clock samples, bootstrap-judged.
BenchCase HostWall(const std::string& name, const char* workload,
                   uint64_t pages, const char* system, uint32_t threads,
                   uint64_t duration_ms) {
  BenchCase c;
  c.name = name;
  c.mode = ExecMode::kHost;
  c.config.workload.name = workload;
  c.config.workload.num_pages = pages;
  c.config.num_threads = threads;
  c.config.duration_ms = duration_ms;
  c.config.warmup_ms = duration_ms / 4;
  c.config.num_frames = 0;  // zero-miss: measure coordination, not I/O
  c.config.prewarm = true;
  c.config.think_work = 32;
  c.config.system = MustSystem(system);
  return c;
}

/// Simulator, count-based: every number deterministic, counters gated.
BenchCase SimDet(const std::string& name, const char* workload,
                 uint64_t pages, const char* system, uint32_t procs,
                 uint64_t tx_per_proc, uint64_t access_work) {
  BenchCase c;
  c.name = name;
  c.mode = ExecMode::kSim;
  c.deterministic = true;
  c.config.workload.name = workload;
  c.config.workload.num_pages = pages;
  c.config.num_threads = procs;
  c.config.transactions_per_thread = tx_per_proc;
  c.config.num_frames = 0;
  c.config.prewarm = true;
  c.config.system = MustSystem(system);
  c.sim_costs.access_work = access_work;
  return c;
}

/// Host, count-based, single worker: real code paths (pool, coordinator,
/// metrics registry) with a fully deterministic schedule.
BenchCase HostDet(const std::string& name, const char* workload,
                  uint64_t pages, const char* system, uint64_t transactions,
                  size_t frames) {
  BenchCase c;
  c.name = name;
  c.mode = ExecMode::kHost;
  c.deterministic = true;
  c.config.workload.name = workload;
  c.config.workload.num_pages = pages;
  c.config.num_threads = 1;
  c.config.transactions_per_thread = transactions;
  c.config.num_frames = frames;
  c.config.prewarm = true;
  c.config.think_work = 0;
  c.config.system = MustSystem(system);
  return c;
}

std::deque<BenchSuite> BuildBuiltinSuites() {
  std::deque<BenchSuite> suites;

  {
    // Fast enough for a ctest smoke run and for per-PR CI, yet covering
    // every signal class: host wall-clock under contention, host
    // deterministic counters (real pool with evictions), and simulated
    // multi-processor contention counters for both a serialized and a
    // BP-Wrapper system.
    BenchSuite smoke;
    smoke.name = "smoke";
    smoke.description =
        "fast wall-clock + deterministic-counter coverage for CI";
    smoke.trials = 5;
    smoke.warmup_trials = 1;
    smoke.cases = {
        HostWall("wall.host.dbt2.pgBatPre.t4", "dbt2", 4096, "pgBatPre", 4,
                 /*duration_ms=*/80),
        HostWall("wall.host.dbt2.pg2Q.t4", "dbt2", 4096, "pg2Q", 4,
                 /*duration_ms=*/80),
        HostDet("det.host.dbt2.pgBatPre.t1", "dbt2", 2048, "pgBatPre",
                /*transactions=*/2000, /*frames=*/1024),
        HostDet("det.host.tablescan.pg2Q.t1", "tablescan", 1024, "pg2Q",
                /*transactions=*/1500, /*frames=*/512),
        SimDet("det.sim.dbt2.pgBatPre.p8", "dbt2", 4096, "pgBatPre", 8,
               /*tx_per_proc=*/400, /*access_work=*/3500),
        SimDet("det.sim.dbt2.pg2Q.p8", "dbt2", 4096, "pg2Q", 8,
               /*tx_per_proc=*/400, /*access_work=*/3500),
        SimDet("det.sim.tablescan.pgBatPre.p4", "tablescan", 1024,
               "pgBatPre", 4, /*tx_per_proc=*/300, /*access_work=*/1500),
    };
    suites.push_back(std::move(smoke));
  }

  {
    // The paper-figure trajectory: the five systems on the simulator at the
    // Fig. 6 endpoints plus host wall anchors. Slower; run when touching
    // the coordination paths, not on every CI push.
    BenchSuite paper;
    paper.name = "paper";
    paper.description =
        "five-system matrix at Fig. 6/7 operating points (sim det + host wall)";
    paper.trials = 5;
    paper.warmup_trials = 1;
    for (const std::string& system : PaperSystemNames()) {
      for (uint32_t procs : {1u, 4u, 16u}) {
        paper.cases.push_back(
            SimDet("det.sim.dbt2." + system + ".p" + std::to_string(procs),
                   "dbt2", 8192, system.c_str(), procs,
                   /*tx_per_proc=*/400, /*access_work=*/3500));
      }
      paper.cases.push_back(
          SimDet("det.sim.tablescan." + system + ".p8", "tablescan", 2048,
                 system.c_str(), 8, /*tx_per_proc=*/300,
                 /*access_work=*/1500));
    }
    paper.cases.push_back(HostWall("wall.host.dbt2.pgBatPre.t8", "dbt2",
                                   8192, "pgBatPre", 8,
                                   /*duration_ms=*/150));
    paper.cases.push_back(HostWall("wall.host.dbt2.pg2Q.t8", "dbt2", 8192,
                                   "pg2Q", 8, /*duration_ms=*/150));
    suites.push_back(std::move(paper));
  }

  {
    // The Fig. 6 high-processor endpoint, framed as a head-to-head:
    // pgBatPre (the paper's best) against pgBat++ (flat combining + early
    // lock release). Everything is simulator-deterministic, so
    // bench_compare gates the lock-acquisition/contention counters
    // exactly — the committed baseline IS the record that combining
    // retires multiple batches per acquisition.
    BenchSuite fig6;
    fig6.name = "fig6";
    fig6.description =
        "Fig. 6 endpoint duel: pgBatPre vs pgBat++ lock counters at p4/p16";
    fig6.trials = 1;  // all cases deterministic; trials buy nothing
    fig6.warmup_trials = 0;
    for (const char* system : {"pgBatPre", "pgBat++"}) {
      for (uint32_t procs : {4u, 16u}) {
        fig6.cases.push_back(
            SimDet(std::string("det.sim.dbt2.") + system + ".p" +
                       std::to_string(procs),
                   "dbt2", 8192, system, procs,
                   /*tx_per_proc=*/400, /*access_work=*/3500));
      }
      fig6.cases.push_back(SimDet(std::string("det.sim.tablescan.") + system +
                                      ".p16",
                                  "tablescan", 2048, system, 16,
                                  /*tx_per_proc=*/300, /*access_work=*/1500));
    }
    suites.push_back(std::move(fig6));
  }

  {
    // The sharded scaling sweep: pgShard against the previous best
    // (pgBat++) and the paper's best (pgBatPre), first at the Fig. 6
    // p16 operating point (the acceptance head-to-head for the
    // lock-acquisition counter), then at p64/p128 under the NUMA cost
    // mode (2 nodes) — the regime past the paper's largest machine,
    // where cross-node coherence transfers punish every shared-line
    // touch the hit path makes. All deterministic; bench_compare gates
    // the lock and shard-rebalance counters exactly.
    BenchSuite fig8;
    fig8.name = "fig8";
    fig8.description =
        "sharded scaling: pgBatPre vs pgBat++ vs pgShard at p16 and "
        "NUMA p64/p128";
    fig8.trials = 1;
    fig8.warmup_trials = 0;
    for (const char* system : {"pgBatPre", "pgBat++", "pgShard"}) {
      fig8.cases.push_back(SimDet(std::string("det.sim.dbt2.") + system +
                                      ".p16",
                                  "dbt2", 8192, system, 16,
                                  /*tx_per_proc=*/400, /*access_work=*/3500));
      for (uint32_t procs : {64u, 128u}) {
        BenchCase numa = SimDet(std::string("det.sim.dbt2.") + system +
                                    ".p" + std::to_string(procs) + ".numa2",
                                "dbt2", 8192, system, procs,
                                /*tx_per_proc=*/200, /*access_work=*/3500);
        numa.sim_costs.numa_nodes = 2;
        fig8.cases.push_back(std::move(numa));
      }
    }
    {
      // Eviction-pressure point: the prewarmed cases above never miss, so
      // their commit stream (and the shard_rebalances gate) is empty. This
      // one undersizes the pool so the miss path — commits, borrows, and
      // the rebalance cadence — carries real, gated counts.
      BenchCase evict = SimDet("det.sim.dbt2.pgShard.p16.evict", "dbt2",
                               8192, "pgShard", 16,
                               /*tx_per_proc=*/400, /*access_work=*/3500);
      evict.config.num_frames = 1024;
      evict.config.prewarm = false;
      fig8.cases.push_back(std::move(evict));

      // Same point with sharded ARC: the only stack whose rebalance
      // exchange (the batched cross-shard target-p blend) actually runs,
      // so coord.shard_rebalances is gated at a non-zero value.
      BenchCase arc = SimDet("det.sim.dbt2.shardedARC.p16.evict", "dbt2",
                             8192, "pgShard", 16,
                             /*tx_per_proc=*/400, /*access_work=*/3500);
      arc.config.system.policy = "arc";
      arc.config.num_frames = 1024;
      arc.config.prewarm = false;
      fig8.cases.push_back(std::move(arc));
    }
    suites.push_back(std::move(fig8));
  }

  {
    // Lock-path microscope: tiny non-critical work so the ContentionLock
    // is the whole story, across the three coordination designs
    // (serialized, batched TryLock, flat combining). Deterministic.
    BenchSuite micro_lock;
    micro_lock.name = "micro_lock";
    micro_lock.description =
        "lock-path duel at near-zero think time: pg2Q vs pgBatPre vs pgBat++";
    micro_lock.trials = 1;
    micro_lock.warmup_trials = 0;
    for (const char* system : {"pg2Q", "pgBatPre", "pgBat++"}) {
      micro_lock.cases.push_back(
          SimDet(std::string("det.sim.tablescan.") + system + ".p16.hot",
                 "tablescan", 1024, system, 16,
                 /*tx_per_proc=*/300, /*access_work=*/500));
    }
    suites.push_back(std::move(micro_lock));
  }

  return suites;
}

Mutex g_suites_mu;

// A deque so RegisterSuite growth never invalidates pointers FindSuite
// handed out.
std::deque<BenchSuite>& Suites() {
  static std::deque<BenchSuite>* suites =
      new std::deque<BenchSuite>(BuildBuiltinSuites());
  return *suites;
}

}  // namespace

const BenchSuite* FindSuite(const std::string& name) {
  MutexGuard lock(g_suites_mu);
  for (const BenchSuite& suite : Suites()) {
    if (suite.name == name) return &suite;
  }
  return nullptr;
}

std::vector<std::string> KnownSuiteNames() {
  MutexGuard lock(g_suites_mu);
  std::vector<std::string> names;
  names.reserve(Suites().size());
  for (const BenchSuite& suite : Suites()) names.push_back(suite.name);
  return names;
}

void RegisterSuite(BenchSuite suite) {
  MutexGuard lock(g_suites_mu);
  for (BenchSuite& existing : Suites()) {
    if (existing.name == suite.name) {
      existing = std::move(suite);
      return;
    }
  }
  Suites().push_back(std::move(suite));
}

}  // namespace bench
}  // namespace bpw
