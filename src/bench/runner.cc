#include "bench/runner.h"

#include <cinttypes>
#include <cstdio>

#include "bench/stats.h"
#include "obs/json.h"
#include "workload/trace_fingerprint.h"

namespace bpw {
namespace bench {

namespace {

TrialSample SampleFrom(const DriverResult& r) {
  TrialSample s;
  s.throughput_tps = r.throughput_tps;
  s.accesses_per_sec = r.accesses_per_sec;
  s.avg_response_us = r.avg_response_us;
  s.p95_response_us = r.p95_response_us;
  s.contentions_per_million = r.contentions_per_million;
  s.hit_ratio = r.hit_ratio;
  s.measure_seconds = r.measure_seconds;
  return s;
}

/// Registry metrics that are exactly reproducible for deterministic cases.
/// Timing-valued registry entries (storage.*_nanos, histogram stats) are
/// deliberately absent.
constexpr const char* kDeterministicRegistryKeys[] = {
    "coord.commit_batches",   "coord.committed_entries",
    "coord.stale_commits",    "coord.lock_fallbacks",
    "coord.queue_lock_acquisitions",
    // Flat-combining ("combining" coordinator / pgBat++) only:
    "coord.published_batches", "coord.combined_batches",
    // Sharded ("sharded" coordinator / pgShard) only: the rebalance
    // exchange count is a deterministic function of the commit stream.
    "coord.shard_rebalances",
};

void FillCounters(const DriverResult& r, CaseResult& out) {
  out.counters["accesses"] = r.accesses;
  out.counters["hits"] = r.hits;
  out.counters["misses"] = r.misses;
  out.counters["evictions"] = r.evictions;
  out.counters["writebacks"] = r.writebacks;
  out.counters["lock.acquisitions"] = r.lock.acquisitions;
  out.counters["lock.contentions"] = r.lock.contentions;
  out.counters["lock.trylock_failures"] = r.lock.trylock_failures;
  for (const char* key : kDeterministicRegistryKeys) {
    const auto it = r.metrics.values.find(key);
    if (it != r.metrics.values.end()) {
      out.counters[key] = static_cast<uint64_t>(it->second);
    }
  }
}

StatusOr<DriverResult> RunOnce(const BenchCase& c) {
  if (c.mode == ExecMode::kSim) return RunSimulation(c.config, c.sim_costs);
  return RunDriver(c.config);
}

std::string HexFingerprint(uint64_t fp) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, fp);
  return buf;
}

}  // namespace

StatusOr<SuiteRunResult> RunSuite(const BenchSuite& suite,
                                  const RunnerOptions& options) {
  SuiteRunResult result;
  result.suite = suite.name;
  result.description = suite.description;
  result.trials = options.trials > 0 ? options.trials : suite.trials;
  result.warmup_trials =
      options.warmup_trials >= 0 ? options.warmup_trials : suite.warmup_trials;
  if (result.trials < 1) {
    return Status::InvalidArgument("suite needs at least one trial");
  }
  result.env = CollectEnvFingerprint();

  for (const BenchCase& c : suite.cases) {
    CaseResult cr;
    cr.name = c.name;
    cr.mode = c.mode;
    cr.deterministic = c.deterministic;
    cr.workload = c.config.workload;
    cr.threads = c.config.num_threads;
    cr.system = c.config.system;
    cr.workload_fingerprint =
        TraceFingerprint(c.config.workload, c.config.num_threads,
                         kFingerprintAccessesPerThread);

    // Deterministic cases: one exact pass — a repeat reproduces the same
    // counters by construction, so extra trials buy nothing.
    const int warmups = c.deterministic ? 0 : result.warmup_trials;
    const int trials = c.deterministic ? 1 : result.trials;
    if (options.verbose) {
      std::fprintf(stderr, "[bpw_bench] %s: %d warmup + %d trial(s)...\n",
                   c.name.c_str(), warmups, trials);
    }
    for (int i = 0; i < warmups + trials; ++i) {
      auto run = RunOnce(c);
      if (!run.ok()) {
        return Status::Internal("case '" + c.name +
                                "' failed: " + run.status().ToString());
      }
      if (i < warmups) continue;
      cr.trials.push_back(SampleFrom(run.value()));
      if (c.deterministic) FillCounters(run.value(), cr);
    }
    result.cases.push_back(std::move(cr));
  }
  return result;
}

namespace {

std::string TrialJson(const TrialSample& t) {
  using obs::JsonNumber;
  std::string out = "{";
  out += "\"throughput_tps\":" + JsonNumber(t.throughput_tps);
  out += ",\"accesses_per_sec\":" + JsonNumber(t.accesses_per_sec);
  out += ",\"avg_response_us\":" + JsonNumber(t.avg_response_us);
  out += ",\"p95_response_us\":" + JsonNumber(t.p95_response_us);
  out += ",\"contentions_per_million\":" + JsonNumber(t.contentions_per_million);
  out += ",\"hit_ratio\":" + JsonNumber(t.hit_ratio);
  out += ",\"measure_seconds\":" + JsonNumber(t.measure_seconds);
  out += "}";
  return out;
}

std::string SummaryJson(const Summary& s) {
  using obs::JsonNumber;
  std::string out = "{";
  out += "\"n\":" + JsonNumber(static_cast<double>(s.n));
  out += ",\"mean\":" + JsonNumber(s.mean);
  out += ",\"stddev\":" + JsonNumber(s.stddev);
  out += ",\"min\":" + JsonNumber(s.min);
  out += ",\"max\":" + JsonNumber(s.max);
  out += ",\"p50\":" + JsonNumber(s.p50);
  out += ",\"p95\":" + JsonNumber(s.p95);
  out += "}";
  return out;
}

std::string CaseJson(const CaseResult& c) {
  using obs::JsonNumber;
  using obs::JsonString;
  std::string out = "{";
  out += "\"name\":" + JsonString(c.name);
  out += ",\"mode\":" +
         JsonString(c.mode == ExecMode::kSim ? "sim" : "host");
  out += ",\"deterministic\":" +
         std::string(c.deterministic ? "true" : "false");

  out += ",\"workload\":{";
  out += "\"name\":" + JsonString(c.workload.name);
  out += ",\"pages\":" + JsonNumber(static_cast<double>(c.workload.num_pages));
  out += ",\"seed\":" + JsonNumber(static_cast<double>(c.workload.seed));
  out += ",\"threads\":" + JsonNumber(c.threads);
  out += ",\"fingerprint\":" + JsonString(HexFingerprint(c.workload_fingerprint));
  out += "}";

  out += ",\"system\":{";
  out += "\"policy\":" + JsonString(c.system.policy);
  out += ",\"coordinator\":" + JsonString(c.system.coordinator);
  out += ",\"prefetch\":" + std::string(c.system.prefetch ? "true" : "false");
  out += ",\"queue\":" + JsonNumber(static_cast<double>(c.system.queue_size));
  out += ",\"threshold\":" +
         JsonNumber(static_cast<double>(c.system.batch_threshold));
  out += "}";

  out += ",\"trials\":[";
  for (size_t i = 0; i < c.trials.size(); ++i) {
    if (i > 0) out += ',';
    out += TrialJson(c.trials[i]);
  }
  out += "]";

  std::vector<double> tps, resp, cont;
  for (const TrialSample& t : c.trials) {
    tps.push_back(t.throughput_tps);
    resp.push_back(t.avg_response_us);
    cont.push_back(t.contentions_per_million);
  }
  out += ",\"summary\":{";
  out += "\"throughput_tps\":" + SummaryJson(Summarize(tps));
  out += ",\"avg_response_us\":" + SummaryJson(Summarize(resp));
  out += ",\"contentions_per_million\":" + SummaryJson(Summarize(cont));
  out += "}";

  if (c.deterministic) {
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : c.counters) {
      if (!first) out += ',';
      first = false;
      out += JsonString(name) + ":" + JsonNumber(static_cast<double>(value));
    }
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace

std::string SuiteResultToJson(const SuiteRunResult& result) {
  using obs::JsonNumber;
  using obs::JsonString;
  std::string out = "{";
  out += "\"schema\":" + JsonString(kBenchSchemaName);
  out += ",\"schema_version\":" + JsonNumber(kBenchSchemaVersion);
  out += ",\"suite\":" + JsonString(result.suite);
  out += ",\"description\":" + JsonString(result.description);
  out += ",\"trials\":" + JsonNumber(result.trials);
  out += ",\"warmup_trials\":" + JsonNumber(result.warmup_trials);
  out += ",\"environment\":" + EnvFingerprintToJson(result.env);
  out += ",\"cases\":[";
  for (size_t i = 0; i < result.cases.size(); ++i) {
    if (i > 0) out += ',';
    out += CaseJson(result.cases[i]);
  }
  out += "]}\n";
  return out;
}

Status WriteStringToFile(const std::string& content,
                         const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != content.size() || !close_ok) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace bench
}  // namespace bpw
