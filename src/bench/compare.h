// Candidate-vs-baseline judgement over two bpw-bench JSON documents.
//
// Two gates with different physics:
//  - deterministic counters (and workload fingerprints): exact equality.
//    Any drift is a real behaviour change — flagged regardless of options.
//  - wall-clock metrics: percentile-bootstrap CI on the difference of
//    trial means. A metric is only called a regression when the relative
//    delta clears `min_rel_delta` AND the CI excludes zero in the bad
//    direction; on shared CI runners these stay report-only unless
//    `gate_wall` is set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bench/json_reader.h"
#include "util/status.h"

namespace bpw {
namespace bench {

struct CompareOptions {
  double confidence = 0.95;
  int resamples = 4000;
  /// Minimum |relative delta| before a wall metric can be called a
  /// regression/improvement — CI width alone does not flag noise-level
  /// shifts.
  double min_rel_delta = 0.05;
  uint64_t bootstrap_seed = 0x5eedbe9c;
  /// When true, wall regressions fail the gate (dedicated perf hardware);
  /// when false they are report-only and only deterministic drift fails.
  bool gate_wall = false;
};

enum class WallVerdictKind {
  kNoChange,
  kRegression,
  kImprovement,
  kInsufficientSamples,  ///< < 2 trials on a side: point delta, report-only
};

struct WallVerdict {
  std::string case_name;
  std::string metric;
  bool higher_is_better = true;
  double baseline_mean = 0;
  double candidate_mean = 0;
  double rel_delta = 0;  ///< signed, (cand-base)/|base|
  double ci_lo = 0;      ///< bootstrap CI of (cand-base) mean difference
  double ci_hi = 0;
  WallVerdictKind kind = WallVerdictKind::kNoChange;
};

struct CounterVerdict {
  std::string case_name;
  std::string counter;
  /// kuint64max-safe: counters are stored as doubles from JSON but are
  /// integral by construction.
  double baseline = 0;
  double candidate = 0;
  bool present_in_baseline = true;
  bool present_in_candidate = true;
  bool match = false;
};

struct CompareReport {
  std::vector<WallVerdict> wall;
  std::vector<CounterVerdict> counters;  ///< mismatches AND matches
  std::vector<std::string> notes;        ///< env diffs, case set changes
  bool counter_drift = false;      ///< any counter mismatch
  bool fingerprint_drift = false;  ///< any workload fingerprint change
  bool wall_regression = false;    ///< any kRegression wall verdict

  /// True when the comparison should fail under `options`.
  bool ShouldFail(const CompareOptions& options) const {
    return counter_drift || fingerprint_drift ||
           (options.gate_wall && wall_regression);
  }
};

/// Compares two parsed bpw-bench documents. Fails (Status) on schema
/// mismatch or malformed documents; drift is reported via CompareReport,
/// not via Status.
StatusOr<CompareReport> CompareBenchResults(const JsonValue& baseline,
                                            const JsonValue& candidate,
                                            const CompareOptions& options);

/// Human-readable verdict (one line per signal, mismatches first).
std::string RenderCompareReport(const CompareReport& report,
                                const CompareOptions& options);

}  // namespace bench
}  // namespace bpw
