// Environment fingerprint stamped into every BENCH_*.json so a baseline
// comparison can tell "the code regressed" apart from "the machine changed".
// Wall-clock metrics are only comparable within one fingerprint; the
// deterministic counters are comparable across fingerprints by design.
#pragma once

#include <string>

namespace bpw {
namespace bench {

struct EnvFingerprint {
  unsigned hardware_threads = 0;  ///< std::thread::hardware_concurrency()
  std::string compiler;           ///< e.g. "gcc 13.2.0"
  std::string build_type;         ///< CMAKE_BUILD_TYPE baked in at compile
  std::string cxx_flags;          ///< CMAKE_CXX_FLAGS baked in at compile
  std::string os;                 ///< "linux" | "darwin" | "windows" | "?"
  std::string arch;               ///< "x86_64" | "aarch64" | "?"
  unsigned pointer_bits = 0;
  long cxx_standard = 0;          ///< __cplusplus
  bool assertions_enabled = false;  ///< !defined(NDEBUG)
};

/// Collects the fingerprint of this binary + host.
EnvFingerprint CollectEnvFingerprint();

/// One JSON object (obs/json.h escaping).
std::string EnvFingerprintToJson(const EnvFingerprint& env);

}  // namespace bench
}  // namespace bpw
