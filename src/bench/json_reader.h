// Minimal JSON parser for the benchmark pipeline: bench_compare must read
// back the BENCH_*.json files that obs/json.h writes, and the container has
// no JSON library to lean on. Full JSON (RFC 8259) minus \uXXXX surrogate
// pairs (escapes decode to code points <= 0xFFFF as UTF-8); numbers parse
// as double, which is exact for the integer counters the compare gate cares
// about (all far below 2^53).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace bpw {
namespace bench {

/// A parsed JSON document node. Object member order is preserved.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const JsonValue* Find(const std::string& key) const;

  /// Typed conveniences returning a default when the shape mismatches.
  double NumberOr(const std::string& key, double def) const;
  std::string StringOr(const std::string& key, const std::string& def) const;
  bool BoolOr(const std::string& key, bool def) const;
};

/// Parses one JSON document; trailing non-whitespace is an error.
StatusOr<JsonValue> ParseJson(const std::string& text);

/// Reads and parses a JSON file.
StatusOr<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace bench
}  // namespace bpw
