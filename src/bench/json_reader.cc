#include "bench/json_reader.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bpw {
namespace bench {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number_value : def;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_value : def;
}

bool JsonValue::BoolOr(const std::string& key, bool def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->bool_value : def;
}

namespace {

/// Recursive-descent parser over the whole input string. Depth-limited so a
/// hostile file cannot blow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue root;
    Status s = ParseValue(root, 0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Fail(const std::string& what) const {
    return Status::Corruption("JSON parse error at byte " +
                              std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    const size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return ParseString(out.string_value);
      case 't':
        if (!ConsumeLiteral("true")) return Fail("bad literal");
        out.kind = JsonValue::Kind::kBool;
        out.bool_value = true;
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Fail("bad literal");
        out.kind = JsonValue::Kind::kBool;
        out.bool_value = false;
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Fail("bad literal");
        out.kind = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      Status s = ParseString(key);
      if (!s.ok()) return s;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      JsonValue value;
      s = ParseValue(value, depth + 1);
      if (!s.ok()) return s;
      out.object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      Status s = ParseValue(value, depth + 1);
      if (!s.ok()) return s;
      out.array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string& out) {
    ++pos_;  // opening '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad hex digit in \\u escape");
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs unsupported;
          // obs/json.h never emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue& out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == '+' || c == '-' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("unexpected character");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str()) {
      return Fail("malformed number '" + token + "'");
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number_value = v;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

StatusOr<JsonValue> ParseJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IOError("read failed for " + path);
  return ParseJson(content);
}

}  // namespace bench
}  // namespace bpw
