// Suite runner: executes a BenchSuite (warmup + repeated trials per wall
// case, one exact pass per deterministic case) and renders the result as
// schema-versioned JSON ("bpw-bench/1") with an environment fingerprint,
// per-trial samples, and the deterministic counter block bench_compare
// gates on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bench/env_fingerprint.h"
#include "bench/suite.h"
#include "util/status.h"

namespace bpw {
namespace bench {

/// Bumped on any incompatible change to the JSON layout; bench_compare
/// refuses to compare documents of different versions.
inline constexpr int kBenchSchemaVersion = 1;
inline constexpr const char* kBenchSchemaName = "bpw-bench/1";

struct RunnerOptions {
  int trials = 0;          ///< 0 = suite default
  int warmup_trials = -1;  ///< <0 = suite default
  bool verbose = false;    ///< per-case progress on stderr
};

/// One measured trial of a wall case (or the single pass of a
/// deterministic case — whose wall numbers are reproducible on the sim and
/// informational on the host).
struct TrialSample {
  double throughput_tps = 0;
  double accesses_per_sec = 0;
  double avg_response_us = 0;
  double p95_response_us = 0;
  double contentions_per_million = 0;
  double hit_ratio = 0;
  double measure_seconds = 0;
};

struct CaseResult {
  std::string name;
  ExecMode mode = ExecMode::kHost;
  bool deterministic = false;
  /// Fingerprint of the case's access streams (workload drift detector).
  uint64_t workload_fingerprint = 0;
  WorkloadSpec workload;
  uint32_t threads = 0;
  SystemConfig system;
  std::vector<TrialSample> trials;
  /// Deterministic cases only: exactly-reproducible work counters, keyed
  /// by the obs metric vocabulary. Values are integral.
  std::map<std::string, uint64_t> counters;
};

struct SuiteRunResult {
  std::string suite;
  std::string description;
  int trials = 0;
  int warmup_trials = 0;
  EnvFingerprint env;
  std::vector<CaseResult> cases;
};

/// Runs every case of `suite`. Fails on the first case error (a bench
/// matrix with holes is not a baseline).
StatusOr<SuiteRunResult> RunSuite(const BenchSuite& suite,
                                  const RunnerOptions& options);

/// The schema-versioned JSON document (one object, newline-terminated).
std::string SuiteResultToJson(const SuiteRunResult& result);

/// Writes `content` to `path` atomically enough for our purposes
/// (truncate + write + close, error-checked).
Status WriteStringToFile(const std::string& content, const std::string& path);

/// Number of accesses per thread folded into workload fingerprints. Fixed:
/// changing it invalidates every recorded fingerprint.
inline constexpr uint64_t kFingerprintAccessesPerThread = 4096;

}  // namespace bench
}  // namespace bpw
