#include "bench/stats.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace bpw {
namespace bench {

double Percentile(std::vector<double> samples, double pct) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  pct = std::clamp(pct, 0.0, 100.0);
  const double rank = pct / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

Summary Summarize(const std::vector<double>& samples) {
  Summary s;
  s.n = samples.size();
  if (samples.empty()) return s;
  s.min = samples[0];
  s.max = samples[0];
  double sum = 0;
  for (double v : samples) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(s.n);
  if (s.n >= 2) {
    double sq = 0;
    for (double v : samples) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(s.n - 1));
  }
  s.p50 = Percentile(samples, 50);
  s.p95 = Percentile(samples, 95);
  return s;
}

double AggregateRate(const std::vector<double>& counts,
                     const std::vector<double>& seconds) {
  double total_count = 0;
  double total_seconds = 0;
  const size_t n = std::min(counts.size(), seconds.size());
  for (size_t i = 0; i < n; ++i) {
    total_count += counts[i];
    total_seconds += seconds[i];
  }
  return total_seconds > 0 ? total_count / total_seconds : 0;
}

double RelativeDelta(double baseline, double candidate) {
  return baseline == 0 ? 0 : (candidate - baseline) / std::fabs(baseline);
}

namespace {

double MeanOf(const std::vector<double>& v) {
  double sum = 0;
  for (double x : v) sum += x;
  return v.empty() ? 0 : sum / static_cast<double>(v.size());
}

double ResampledMean(const std::vector<double>& v, Random& rng) {
  double sum = 0;
  for (size_t i = 0; i < v.size(); ++i) sum += v[rng.Uniform(v.size())];
  return sum / static_cast<double>(v.size());
}

}  // namespace

BootstrapCI BootstrapMeanDiff(const std::vector<double>& baseline,
                              const std::vector<double>& candidate,
                              int resamples, double confidence,
                              uint64_t seed) {
  BootstrapCI ci;
  if (baseline.size() < 2 || candidate.size() < 2 || resamples < 1) {
    // No spread information: report the point difference, flagged invalid.
    ci.lo = ci.hi = MeanOf(candidate) - MeanOf(baseline);
    return ci;
  }
  confidence = std::clamp(confidence, 0.5, 0.9999);
  Random rng(seed);
  std::vector<double> diffs;
  diffs.reserve(static_cast<size_t>(resamples));
  for (int i = 0; i < resamples; ++i) {
    diffs.push_back(ResampledMean(candidate, rng) -
                    ResampledMean(baseline, rng));
  }
  const double tail = (1.0 - confidence) / 2.0 * 100.0;
  ci.lo = Percentile(diffs, tail);
  ci.hi = Percentile(std::move(diffs), 100.0 - tail);
  ci.valid = true;
  return ci;
}

}  // namespace bench
}  // namespace bpw
