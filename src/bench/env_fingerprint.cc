#include "bench/env_fingerprint.h"

#include <thread>

#include "obs/json.h"

// CMake bakes these in (src/CMakeLists.txt); fall back for other builds.
#ifndef BPW_BUILD_TYPE
#define BPW_BUILD_TYPE "unknown"
#endif
#ifndef BPW_CXX_FLAGS
#define BPW_CXX_FLAGS ""
#endif

namespace bpw {
namespace bench {

EnvFingerprint CollectEnvFingerprint() {
  EnvFingerprint env;
  env.hardware_threads = std::thread::hardware_concurrency();
#if defined(__clang__)
  env.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  env.compiler = std::string("gcc ") + std::to_string(__GNUC__) + "." +
                 std::to_string(__GNUC_MINOR__) + "." +
                 std::to_string(__GNUC_PATCHLEVEL__);
#else
  env.compiler = "unknown";
#endif
  env.build_type = BPW_BUILD_TYPE;
  env.cxx_flags = BPW_CXX_FLAGS;
#if defined(__linux__)
  env.os = "linux";
#elif defined(__APPLE__)
  env.os = "darwin";
#elif defined(_WIN32)
  env.os = "windows";
#else
  env.os = "?";
#endif
#if defined(__x86_64__) || defined(_M_X64)
  env.arch = "x86_64";
#elif defined(__aarch64__)
  env.arch = "aarch64";
#else
  env.arch = "?";
#endif
  env.pointer_bits = static_cast<unsigned>(sizeof(void*) * 8);
  env.cxx_standard = __cplusplus;
#if defined(NDEBUG)
  env.assertions_enabled = false;
#else
  env.assertions_enabled = true;
#endif
  return env;
}

std::string EnvFingerprintToJson(const EnvFingerprint& env) {
  using obs::JsonNumber;
  using obs::JsonString;
  std::string out = "{";
  out += "\"hardware_threads\":" + JsonNumber(env.hardware_threads);
  out += ",\"compiler\":" + JsonString(env.compiler);
  out += ",\"build_type\":" + JsonString(env.build_type);
  out += ",\"cxx_flags\":" + JsonString(env.cxx_flags);
  out += ",\"os\":" + JsonString(env.os);
  out += ",\"arch\":" + JsonString(env.arch);
  out += ",\"pointer_bits\":" + JsonNumber(env.pointer_bits);
  out += ",\"cxx_standard\":" + JsonNumber(static_cast<double>(env.cxx_standard));
  out += ",\"assertions_enabled\":" +
         std::string(env.assertions_enabled ? "true" : "false");
  out += "}";
  return out;
}

}  // namespace bench
}  // namespace bpw
