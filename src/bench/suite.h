// Declarative benchmark suites for the bpw_bench orchestrator.
//
// A suite is a named list of fully-specified cases; the runner executes
// them with warmup + repeated trials and writes schema-versioned JSON. Two
// kinds of case coexist on purpose (the variance-aware-gate design):
//
//  - wall cases: host threads, duration-based windows. Their metrics are
//    noisy on shared runners, so bench_compare judges them with bootstrap
//    confidence intervals and (by default) reports rather than gates.
//  - deterministic cases: count-based runs — single-threaded on the host,
//    or any processor count on the discrete-event simulator (which is
//    single-threaded and deterministic by construction). Their work
//    counters (lock acquisitions, blocking-Lock fallbacks, batch-commit
//    totals, hits/misses/evictions) are exactly reproducible, so
//    bench_compare gates them with exact equality: the CI signal that
//    cannot be blamed on a busy runner.
#pragma once

#include <string>
#include <vector>

#include "harness/driver.h"
#include "sim/sim_driver.h"

namespace bpw {
namespace bench {

enum class ExecMode { kHost, kSim };

struct BenchCase {
  std::string name;
  ExecMode mode = ExecMode::kHost;
  DriverConfig config;
  SimCosts sim_costs;  // kSim only
  /// Deterministic cases run count-based exactly once (repeating them
  /// reproduces identical numbers) and contribute gated counters.
  bool deterministic = false;
};

struct BenchSuite {
  std::string name;
  std::string description;
  int trials = 5;         ///< measured trials per wall case
  int warmup_trials = 1;  ///< discarded leading trials per wall case
  std::vector<BenchCase> cases;
};

/// Finds a built-in or registered suite; nullptr when unknown.
const BenchSuite* FindSuite(const std::string& name);

/// Names of every known suite, built-ins first.
std::vector<std::string> KnownSuiteNames();

/// Registers (or replaces, by name) a suite — tests and downstream tools
/// can add their own matrices next to the built-ins.
void RegisterSuite(BenchSuite suite);

}  // namespace bench
}  // namespace bpw
