// Multiprocessor buffer-manager simulator (discrete-event).
//
// Why this exists: the paper's evaluation sweeps 1..16 *physical
// processors* (SGI Altix 350, PowerEdge 1900). This reproduction host has
// one core, and lock contention is a parallelism phenomenon — with a single
// core a blocking lock is almost never observed held, because the holder
// and the requester never run simultaneously. Per the substitution policy
// (DESIGN.md §2) the missing hardware is simulated: N virtual processors
// execute the workload in *simulated time*, with calibrated costs for the
// non-critical-section work, the policy bookkeeping, processor-cache
// coherence, lock acquisition, and context switches.
//
// Fidelity:
//  - The *replacement algorithms are the real ones* — the simulator hosts
//    actual ReplacementPolicy objects and an exact residency map, so hit
//    ratios and victim choices are not modelled, they are computed.
//  - The BP-Wrapper protocol is executed faithfully: per-processor FIFO
//    queues, TryLock at the batch threshold on every subsequent access,
//    blocking Lock only when the queue fills, commit-before-miss, and
//    §IV-B tag re-validation at commit.
//  - The flat-combining extension ("combining" / pgBat++) is executed the
//    same way: batches publish into per-processor slots, a TryLock winner
//    drains every visible slot in one lock-holding period, losers hand
//    off cooperatively instead of retrying, and the slot recycling books
//    its time after the lock is already free (early release).
//  - The lock is a FIFO-granted, work-conserving resource in simulated
//    time (waiters spin/wake in parallel, so the lock never idles while
//    requests are queued — the SMP behaviour). A blocking request that
//    finds it held is one *contention event* (the §IV-D metric); the
//    waiter additionally books a context-switch latency. A TryLock that
//    finds it held just fails.
//  - Cache-coherence costs scale with the processor count: with P
//    processors a fraction (P-1)/P of lock acquisitions find the lock word
//    and the policy nodes in another processor's cache. This is what makes
//    one-lock-per-access collapse on big machines while costing little on
//    one processor — and it is exactly the cost the §III-B prefetch moves
//    out of the lock-holding period.
//
// The simulation is single-threaded and deterministic for a given config.
#pragma once

#include "harness/driver.h"

namespace bpw {

/// Calibrated per-operation costs, in simulated nanoseconds, sized after
/// the paper's hardware era (§III-A measures multi-microsecond per-access
/// lock times at batch size 1 on 16 processors).
///
/// Costs marked [coh] are cache-coherence costs: they are multiplied by
/// (P-1)/P for P processors, and skipped entirely where the prefetch
/// technique applies (the §III-B effect: the misses resolve during the
/// requester's own computation before the lock is taken).
struct SimCosts {
  uint64_t access_work = 3000;  ///< non-critical work per page access
  uint64_t record = 15;         ///< appending to the private FIFO queue
  uint64_t lock_grab = 600;     ///< [coh] acquisition: CAS + line transfer
  uint64_t warmup_acq = 800;    ///< [coh] per-acquisition cold misses
                                ///< (lock metadata, list heads)
  uint64_t warmup_entry = 30;   ///< [coh] per-entry cold-miss share
  uint64_t policy_op = 50;      ///< per-entry policy update (cache-warm)
  uint64_t trylock = 30;        ///< a TryLock attempt (success or failure)
  uint64_t context_switch = 5000;  ///< waiter's block/wake latency
  uint64_t handoff = 150;       ///< [coh] extra lock occupancy per
                                ///< contended grant (waiters hammering the
                                ///< lock line) — gives the mild post-
                                ///< saturation throughput decline
  uint64_t clock_hit = 15;      ///< pgClock's atomic reference-bit set
  uint64_t victim_search = 500;  ///< victim selection under the lock
  uint64_t io_read = 0;          ///< simulated disk read on miss
  uint64_t io_write = 0;         ///< simulated write-back of a dirty page
  // --- Flat-combining costs (used only by the "combining" coordinator;
  // --- existing modes' timing math is untouched by these).
  uint64_t publish = 40;      ///< copying the queue into the publication
                              ///< slot (cache-local store burst)
  uint64_t slot_claim = 80;   ///< [coh] combiner claiming + reading one
                              ///< peer's publication slot line
  uint64_t recycle = 30;      ///< post-release slot recycle store (runs
                              ///< OUTSIDE the lock: early release)
  uint64_t handoff_spin = 120;  ///< bounded cooperative-handoff poll after
                                ///< a failed TryLock with a batch published
  // --- Sharded costs (used only by the "sharded" coordinator).
  uint64_t stamp = 15;  ///< seqlock hit-stamp publish (CAS + two stores),
                        ///< the sharded hit path's only shared-state touch
  // --- NUMA cost mode. With numa_nodes > 1, the [coh] remote-cache
  // fraction splits into same-node transfers (cost x1) and cross-node
  // transfers (cost x numa_remote_mult): processors are distributed over
  // the nodes in equal blocks, so of a processor's P-1 peers, node_size-1
  // are local and the rest pay the cross-node multiplier. numa_nodes = 1
  // preserves the original integer-exact (P-1)/P scaling bit-for-bit, so
  // every existing baseline is untouched.
  uint64_t numa_nodes = 1;
  double numa_remote_mult = 2.0;
  /// Uniform jitter applied to access_work (0.1 = ±10%), breaking lockstep.
  double jitter = 0.1;
};

/// Runs the experiment of `config` on the simulator with `costs`.
/// `config.num_threads` is the number of simulated processors;
/// `config.duration_ms` / `warmup_ms` are *simulated* milliseconds;
/// `transactions_per_thread` selects count mode as in the real driver.
/// Storage latency comes from `costs.io_read/io_write`, not from
/// config.storage_latency.
StatusOr<DriverResult> RunSimulation(const DriverConfig& config,
                                     const SimCosts& costs = SimCosts());

}  // namespace bpw
