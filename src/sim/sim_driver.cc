#include "sim/sim_driver.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <vector>

#include "policy/policy_factory.h"
#include "policy/sharded_policy.h"
#include "util/random.h"

namespace bpw {

namespace {

// ------------------------------------------------------------------ SimLock
// A FIFO-granted, work-conserving exclusive resource in simulated time.
// Because the engine processes processors in non-decreasing time order,
// chaining requests onto `next_free` yields fair FIFO grants; the lock
// never idles while requests are queued (waiters spin or are woken in
// parallel on other processors — SMP behaviour). A waiter's own
// context-switch latency is booked into its wait accounting, not into the
// lock occupancy.
class SimLock {
 public:
  explicit SimLock(const SimCosts& costs) : costs_(costs) {}

  /// Blocking acquisition at time `t`, occupying the lock for
  /// `occupancy_nanos` (acquisition + critical section). Returns the
  /// caller's release time.
  uint64_t AcquireBlocking(uint64_t t, uint64_t occupancy_nanos,
                           bool measuring) {
    uint64_t enter;
    uint64_t occupy = occupancy_nanos;
    bool contended;
    if (next_free_ <= t) {
      enter = t;
      contended = false;
    } else {
      // The paper's §IV-D contention event: the request cannot be
      // satisfied immediately and the thread blocks.
      enter = next_free_;
      occupy += costs_.handoff;
      contended = true;
    }
    const uint64_t release = enter + occupy;
    next_free_ = release;
    if (measuring) {
      stats_.acquisitions++;
      stats_.hold_nanos += occupy;
      if (contended) {
        stats_.contentions++;
        stats_.wait_nanos += (enter - t) + costs_.context_switch;
      }
    }
    return release;
  }

  /// Non-blocking attempt at time `t`. On success the caller owns the lock
  /// for `occupancy_nanos`; returns true and sets *release.
  bool TryAcquire(uint64_t t, uint64_t occupancy_nanos, bool measuring,
                  uint64_t* release) {
    if (next_free_ > t) {
      if (measuring) stats_.trylock_failures++;
      return false;
    }
    *release = t + occupancy_nanos;
    next_free_ = *release;
    if (measuring) {
      stats_.acquisitions++;
      stats_.hold_nanos += occupancy_nanos;
    }
    return true;
  }

  const LockStats& stats() const { return stats_; }

 private:
  const SimCosts& costs_;
  uint64_t next_free_ = 0;
  LockStats stats_;
};

// --------------------------------------------------------------- Simulation
enum class Mode { kClockLockFree, kSerialized, kBpWrapper, kCombining,
                  kSharded };

struct QueueEntry {
  PageId page;
  FrameId frame;
};

struct Proc {
  uint64_t now = 0;
  std::unique_ptr<TraceGenerator> trace;
  std::vector<QueueEntry> queue;  // BP-Wrapper private FIFO
  // Sharded mode: one private ring per policy shard (drop-oldest overflow).
  std::vector<std::vector<QueueEntry>> shard_queues;
  // Flat-combining publication slot ("combining" mode only): a published
  // batch waits here until this processor or a peer combiner drains it.
  std::vector<QueueEntry> pub;
  bool pub_ready = false;
  uint64_t pub_time = 0;          // when the publication became visible
  uint64_t pub_blocked_until = 0;  // recycle completion after a peer drain
  Random rng{0};

  bool in_tx = false;
  uint64_t tx_start = 0;
  uint64_t transactions = 0;  // measured transactions
  uint64_t hits = 0;
  uint64_t misses = 0;
  Histogram response;
  bool done = false;
};

struct ProcOrder {
  const std::vector<Proc>* procs;
  bool operator()(uint32_t a, uint32_t b) const {
    return (*procs)[a].now > (*procs)[b].now;  // min-heap on time
  }
};

class Simulation {
 public:
  Simulation(const DriverConfig& config, const SimCosts& costs)
      : config_(config), costs_(costs), lock_(costs_) {}

  StatusOr<DriverResult> Run();

 private:
  bool Measuring(uint64_t t) const {
    return t >= warmup_end_ && (count_mode_ || t < measure_end_);
  }

  /// Coherence-scaled cost: with P processors, a fraction (P-1)/P of
  /// acquisitions find the relevant cache lines in a remote cache. With
  /// numa_nodes > 1 the remote fraction further splits into same-node and
  /// cross-node transfers, the latter costing numa_remote_mult times as
  /// much (see SimCosts). The single-node path keeps the original integer
  /// math so pre-NUMA baselines reproduce bit-for-bit.
  uint64_t Coh(uint64_t nanos) const {
    const uint64_t p = config_.num_threads;
    if (p <= 1) return 0;
    const uint64_t nodes = std::max<uint64_t>(1, costs_.numa_nodes);
    if (nodes <= 1) return nanos * (p - 1) / p;
    const uint64_t node_size = (p + nodes - 1) / nodes;
    const uint64_t local_peers = node_size - 1;
    const uint64_t remote_peers = p > node_size ? p - node_size : 0;
    const double weight =
        (static_cast<double>(local_peers) +
         static_cast<double>(remote_peers) * costs_.numa_remote_mult) /
        static_cast<double>(p);
    return static_cast<uint64_t>(static_cast<double>(nanos) * weight);
  }

  /// Lock occupancy for one acquisition committing `n` policy updates.
  /// With prefetch, the [coh] warm-up components vanish from the critical
  /// section (§III-B); the acquisition CAS itself cannot be prefetched
  /// away.
  uint64_t Occupancy(size_t n_entries, uint64_t extra = 0) const {
    uint64_t occupancy = Coh(costs_.lock_grab) + extra +
                         static_cast<uint64_t>(n_entries) * costs_.policy_op;
    if (!prefetch_) {
      occupancy += Coh(costs_.warmup_acq) +
                   static_cast<uint64_t>(n_entries) * Coh(costs_.warmup_entry);
    }
    return occupancy;
  }

  /// Applies the queued accesses to the policy in arrival order, skipping
  /// entries whose frame was re-used since recording (§IV-B tag check).
  /// `measuring` gates the coord.* counters the way SimLock gates LockStats,
  /// so the metrics delta covers the measurement window only.
  void CommitQueue(Proc& proc, bool measuring);

  /// One batch of entries through the policy with the §IV-B tag check
  /// (shared by CommitQueue and the combining drains).
  void CommitEntries(const std::vector<QueueEntry>& entries, bool measuring);

  /// Lock occupancy of one flat-combining acquisition: the combiner's own
  /// batch plus `peers` adopted slots holding `peer_entries` entries. Each
  /// adopted slot costs one coherence-scaled line claim; with prefetch the
  /// per-entry warm-up vanishes (own entries via §III-B before the lock,
  /// peer entries via the slot-directed prefetch at claim time).
  uint64_t CombineOccupancy(size_t own_entries, size_t peers,
                            size_t peer_entries, uint64_t extra = 0) const {
    const size_t n = own_entries + peer_entries;
    uint64_t occupancy = Coh(costs_.lock_grab) + extra +
                         static_cast<uint64_t>(n) * costs_.policy_op +
                         static_cast<uint64_t>(peers) * Coh(costs_.slot_claim);
    if (!prefetch_) {
      occupancy += Coh(costs_.warmup_acq) +
                   static_cast<uint64_t>(n) * Coh(costs_.warmup_entry);
    }
    return occupancy;
  }

  /// The peers whose publications are visible to a combiner acquiring at
  /// time `t` (their publish happened before the acquisition).
  size_t ReadyPeers(const Proc& combiner, uint64_t t,
                    size_t* peer_entries) const {
    size_t peers = 0;
    *peer_entries = 0;
    for (const Proc& peer : procs_) {
      if (&peer == &combiner || !peer.pub_ready || peer.pub_time > t) continue;
      ++peers;
      *peer_entries += peer.pub.size();
    }
    return peers;
  }

  /// The locked apply phase of one combining acquisition entered at `t`:
  /// drain own publication + own queue + every visible peer slot. The
  /// post-commit phase (slot recycling) books its time AFTER `release` —
  /// outside the lock occupancy — which is the early-release effect.
  void CommitCombine(Proc& proc, uint64_t t, uint64_t release, bool measuring);

  void StepAccess(Proc& proc);
  void HandleHit(Proc& proc, PageId page, FrameId frame);
  void HandleMiss(Proc& proc, PageId page, bool is_write);

  /// The sharded miss path: commit the home shard's ring and evict/register
  /// under that shard's own lock (peers' locks stay untouched unless the
  /// victim search borrows a frame from another shard).
  void HandleMissSharded(Proc& proc, PageId page, bool is_write);

  /// Commits one shard ring (arrival order, §IV-B tag check) and advances
  /// that shard's rebalance cadence — the sim twin of
  /// ShardedCoordinator::CommitShardLocked.
  void CommitShard(Proc& proc, size_t shard, bool measuring);

  DriverConfig config_;
  SimCosts costs_;
  SimLock lock_;

  Mode mode_ = Mode::kSerialized;
  bool prefetch_ = false;
  size_t queue_size_ = 64;
  size_t batch_threshold_ = 32;

  std::unique_ptr<ReplacementPolicy> policy_;
  // Residency map: page -> frame and ready time (covers single-flight I/O:
  // a page being read in is "resident" with a ready_time in the future).
  struct Resident {
    FrameId frame;
    uint64_t ready_time;
  };
  std::unordered_map<PageId, Resident> residency_;
  std::vector<PageId> frame_page_;  // frame -> page (tag array)
  std::vector<bool> frame_dirty_;
  std::vector<FrameId> free_frames_;

  std::vector<Proc> procs_;
  bool count_mode_ = false;
  uint64_t warmup_end_ = 0;
  uint64_t measure_end_ = 0;

  uint64_t evictions_ = 0;
  uint64_t writebacks_ = 0;
  uint64_t stale_commits_ = 0;
  // Measured-window batch-commit statistics, mirroring the names the host
  // BpWrapperCoordinator registers with the metrics registry so BENCH json
  // carries one counter vocabulary across both execution modes.
  uint64_t commit_batches_ = 0;
  uint64_t committed_entries_ = 0;
  uint64_t lock_fallbacks_ = 0;
  // Combining-only counters, mirroring CombiningCoordinator's metrics.
  uint64_t published_batches_ = 0;
  uint64_t combined_batches_ = 0;
  // Sharded-only state, mirroring ShardedCoordinator. The adapter pointer
  // aliases policy_ (owned there); each shard gets its own SimLock so
  // commits for different shards never contend.
  ShardedPolicy* sharded_ = nullptr;
  size_t num_shards_ = 1;
  size_t rebalance_interval_ = 16;
  std::vector<std::unique_ptr<SimLock>> shard_locks_;
  std::vector<uint64_t> shard_commit_counts_;
  uint64_t shard_rebalances_ = 0;
  uint64_t hit_drops_ = 0;
  uint64_t borrow_evictions_ = 0;
};

void Simulation::CommitEntries(const std::vector<QueueEntry>& entries,
                               bool measuring) {
  // The simulator models contention in virtual time on one real thread, so
  // exclusive access to the policy always holds.
  policy_->AssertExclusiveAccess();
  uint64_t stale = 0;
  for (const QueueEntry& entry : entries) {
    if (entry.frame < frame_page_.size() &&
        frame_page_[entry.frame] == entry.page) {
      policy_->OnHit(entry.page, entry.frame);
    } else {
      ++stale;
    }
  }
  if (measuring && !entries.empty()) {
    ++commit_batches_;
    committed_entries_ += entries.size() - stale;
    stale_commits_ += stale;
  }
}

void Simulation::CommitQueue(Proc& proc, bool measuring) {
  CommitEntries(proc.queue, measuring);
  proc.queue.clear();
}

void Simulation::CommitShard(Proc& proc, size_t shard, bool measuring) {
  CommitEntries(proc.shard_queues[shard], measuring);
  proc.shard_queues[shard].clear();
  // Rebalance cadence (per commit call, as in the host coordinator).
  if (rebalance_interval_ == 0 || num_shards_ <= 1) return;
  if (++shard_commit_counts_[shard] < rebalance_interval_) return;
  shard_commit_counts_[shard] = 0;
  if (!sharded_->RebalanceSupported()) return;
  // Single real thread: the signal-board exchange collapses to reading
  // every shard's export directly and applying the mean under this
  // shard's lock — same blended value the host protocol converges to.
  uint64_t sum = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    ReplacementPolicy* peer = sharded_->shard(i);
    peer->AssertExclusiveAccess();  // single real thread; see CommitQueue
    sum += peer->RebalanceExport();
  }
  ReplacementPolicy* own = sharded_->shard(shard);
  own->AssertExclusiveAccess();  // single real thread; see CommitQueue
  own->RebalanceApply(sum / num_shards_);
  if (measuring) ++shard_rebalances_;
}

void Simulation::CommitCombine(Proc& proc, uint64_t t, uint64_t release,
                               bool measuring) {
  // Own publication first (oldest history), then the queue remainder —
  // per-processor FIFO order, exactly as the host coordinator drains.
  uint64_t post_commit = 0;
  if (proc.pub_ready) {
    CommitEntries(proc.pub, measuring);
    proc.pub.clear();
    proc.pub_ready = false;
    post_commit += costs_.recycle;
  }
  CommitQueue(proc, measuring);
  // Adopt every peer batch that was visible at acquisition time. The
  // owner's slot stays blocked until the post-release recycle store lands.
  for (Proc& peer : procs_) {
    if (&peer == &proc || !peer.pub_ready || peer.pub_time > t) continue;
    CommitEntries(peer.pub, measuring);
    peer.pub.clear();
    peer.pub_ready = false;
    post_commit += costs_.recycle;
    peer.pub_blocked_until = release + post_commit;
    if (measuring) ++combined_batches_;
  }
  // Early release: the recycle stores run on this processor after the lock
  // is already free, so they lengthen the combiner's day, not the lock's.
  proc.now += post_commit;
}

void Simulation::HandleHit(Proc& proc, PageId page, FrameId frame) {
  policy_->AssertExclusiveAccess();  // single real thread; see CommitQueue
  switch (mode_) {
    case Mode::kClockLockFree:
      proc.now += costs_.clock_hit;
      policy_->OnHit(page, frame);
      return;
    case Mode::kSerialized: {
      proc.now =
          lock_.AcquireBlocking(proc.now, Occupancy(1), Measuring(proc.now));
      policy_->OnHit(page, frame);
      return;
    }
    case Mode::kBpWrapper: {
      proc.now += costs_.record;
      proc.queue.push_back(QueueEntry{page, frame});
      if (proc.queue.size() < batch_threshold_) return;
      const uint64_t occupancy = Occupancy(proc.queue.size());
      uint64_t release;
      proc.now += costs_.trylock;
      bool measuring = Measuring(proc.now);
      if (lock_.TryAcquire(proc.now, occupancy, measuring, &release)) {
        proc.now = release;
        CommitQueue(proc, measuring);
        return;
      }
      if (proc.queue.size() < queue_size_) return;  // keep recording
      // The queue is full: the paper's blocking-Lock fallback.
      measuring = Measuring(proc.now);
      if (measuring) ++lock_fallbacks_;
      proc.now = lock_.AcquireBlocking(proc.now, occupancy, measuring);
      CommitQueue(proc, measuring);
      return;
    }
    case Mode::kSharded: {
      // The generalized-pgClock hit path: a private ring append plus the
      // seqlock stamp publish. No threshold check, no TryLock, no
      // fallback — a hit never touches any lock, for any policy.
      proc.now += costs_.record + costs_.stamp;
      auto& queue = proc.shard_queues[ShardedPolicy::ShardOf(page,
                                                             num_shards_)];
      if (queue.size() >= queue_size_) {
        queue.erase(queue.begin());  // drop-oldest: freshest history wins
        if (Measuring(proc.now)) ++hit_drops_;
      }
      queue.push_back(QueueEntry{page, frame});
      return;
    }
    case Mode::kCombining: {
      proc.now += costs_.record;
      proc.queue.push_back(QueueEntry{page, frame});
      if (proc.queue.size() < batch_threshold_) return;
      // Publish the batch so ANY lock holder can retire it. The slot may
      // still be blocked by a peer's in-flight post-release recycle.
      if (!proc.pub_ready && proc.now >= proc.pub_blocked_until) {
        std::swap(proc.pub, proc.queue);
        proc.queue.clear();
        proc.pub_ready = true;
        proc.now += costs_.publish;
        proc.pub_time = proc.now;
        if (Measuring(proc.now)) ++published_batches_;
      }
      proc.now += costs_.trylock;
      const uint64_t t = proc.now;
      bool measuring = Measuring(t);
      size_t peer_entries = 0;
      const size_t peers = ReadyPeers(proc, t, &peer_entries);
      const size_t own_entries =
          (proc.pub_ready ? proc.pub.size() : 0) + proc.queue.size();
      const uint64_t occupancy =
          CombineOccupancy(own_entries, peers, peer_entries);
      uint64_t release;
      if (lock_.TryAcquire(t, occupancy, measuring, &release)) {
        proc.now = release;
        CommitCombine(proc, t, release, measuring);
        return;
      }
      if (proc.pub_ready) {
        // Cooperative handoff: the published batch is the current holder's
        // problem now — one bounded poll of the slot, never a block.
        proc.now += costs_.handoff_spin;
        return;
      }
      if (proc.queue.size() < queue_size_) return;  // keep recording
      // Queue full and the slot still blocked: the blocking-Lock fallback.
      measuring = Measuring(proc.now);
      if (measuring) ++lock_fallbacks_;
      const uint64_t enter = proc.now;
      proc.now = lock_.AcquireBlocking(proc.now, occupancy, measuring);
      CommitCombine(proc, enter, proc.now, measuring);
      return;
    }
  }
}

void Simulation::HandleMissSharded(Proc& proc, PageId page, bool is_write) {
  policy_->AssertExclusiveAccess();  // single real thread; see CommitQueue
  const size_t home = ShardedPolicy::ShardOf(page, num_shards_);
  FrameId frame;
  bool write_back = false;
  {
    // Phase 1: under the HOME shard's lock only — commit that shard's
    // ring, then pick a victim (or take a free frame).
    const bool need_evict = free_frames_.empty();
    const uint64_t occupancy =
        Occupancy(proc.shard_queues[home].size(),
                  need_evict ? costs_.victim_search : 0);
    const bool measuring = Measuring(proc.now);
    proc.now =
        shard_locks_[home]->AcquireBlocking(proc.now, occupancy, measuring);
    CommitShard(proc, home, measuring);
    if (need_evict) {
      auto victim = policy_->ChooseVictim([](FrameId) { return true; }, page);
      if (!victim.ok()) return;  // cannot happen: no pins in the simulator
      frame = victim->frame;
      // A victim from a non-home shard means the home shard had nothing
      // evictable and the search borrowed: the borrowed shard's lock was
      // taken for its own victim scan.
      const size_t victim_home =
          ShardedPolicy::ShardOf(victim->page, num_shards_);
      if (victim_home != home) {
        proc.now = shard_locks_[victim_home]->AcquireBlocking(
            proc.now, Occupancy(0, costs_.victim_search), measuring);
        if (measuring) ++borrow_evictions_;
      }
      residency_.erase(victim->page);
      frame_page_[frame] = kInvalidPageId;
      write_back = frame_dirty_[frame];
      frame_dirty_[frame] = false;
      ++evictions_;
    } else {
      frame = free_frames_.back();
      free_frames_.pop_back();
    }
  }
  // Outside every lock: write back the dirty victim, then read the page.
  if (write_back) {
    proc.now += costs_.io_write;
    ++writebacks_;
  }
  proc.now += costs_.io_read;

  // Phase 2: under the home shard's lock — register the new page.
  proc.now = shard_locks_[home]->AcquireBlocking(proc.now, Occupancy(1),
                                                 Measuring(proc.now));
  policy_->OnMiss(page, frame);
  frame_page_[frame] = page;
  frame_dirty_[frame] = is_write;
  residency_[page] = Resident{frame, proc.now};
}

void Simulation::HandleMiss(Proc& proc, PageId page, bool is_write) {
  if (mode_ == Mode::kSharded) {
    HandleMissSharded(proc, page, is_write);
    return;
  }
  policy_->AssertExclusiveAccess();  // single real thread; see CommitQueue
  // Phase 1: under the lock — commit any queued accesses, then pick a
  // victim (or take a free frame).
  FrameId frame;
  bool write_back = false;
  {
    size_t queued = 0;
    if (mode_ == Mode::kBpWrapper) queued = proc.queue.size();
    if (mode_ == Mode::kCombining) {
      queued = proc.queue.size() + (proc.pub_ready ? proc.pub.size() : 0);
    }
    const bool need_evict = free_frames_.empty();
    const uint64_t occupancy =
        Occupancy(queued, need_evict ? costs_.victim_search : 0);
    const bool measuring = Measuring(proc.now);
    proc.now = lock_.AcquireBlocking(proc.now, occupancy, measuring);
    if (mode_ == Mode::kBpWrapper) CommitQueue(proc, measuring);
    if (mode_ == Mode::kCombining) {
      // Fresh history before the victim decision: own publication, then
      // the queue remainder (the host DrainOwnLocked order). Peers are not
      // adopted on the miss path, matching the host coordinator.
      if (proc.pub_ready) {
        CommitEntries(proc.pub, measuring);
        proc.pub.clear();
        proc.pub_ready = false;
        proc.pub_blocked_until = proc.now + costs_.recycle;
      }
      CommitQueue(proc, measuring);
    }
    if (need_evict) {
      auto victim = policy_->ChooseVictim([](FrameId) { return true; }, page);
      if (!victim.ok()) return;  // cannot happen: no pins in the simulator
      frame = victim->frame;
      residency_.erase(victim->page);
      frame_page_[frame] = kInvalidPageId;
      write_back = frame_dirty_[frame];
      frame_dirty_[frame] = false;
      ++evictions_;
    } else {
      frame = free_frames_.back();
      free_frames_.pop_back();
    }
  }
  // Outside the lock: write back the dirty victim, then read the page.
  if (write_back) {
    proc.now += costs_.io_write;
    ++writebacks_;
  }
  proc.now += costs_.io_read;

  // Phase 2: under the lock — register the new page.
  proc.now = lock_.AcquireBlocking(proc.now, Occupancy(1), Measuring(proc.now));
  policy_->OnMiss(page, frame);
  frame_page_[frame] = page;
  frame_dirty_[frame] = is_write;
  residency_[page] = Resident{frame, proc.now};
}

void Simulation::StepAccess(Proc& proc) {
  const PageAccess access = proc.trace->Next();

  if (access.begins_transaction) {
    if (proc.in_tx && Measuring(proc.tx_start)) {
      proc.response.Record(proc.now - proc.tx_start);
      ++proc.transactions;
    }
    proc.tx_start = proc.now;
    proc.in_tx = true;
    if (count_mode_ && proc.transactions >= config_.transactions_per_thread) {
      proc.done = true;
      return;
    }
  }

  // Non-critical-section work (hash lookup + transaction processing). The
  // §III-B prefetch issues overlap with this computation, which is why the
  // prefetched warm-up costs appear on neither side of the lock.
  uint64_t work = costs_.access_work;
  if (costs_.jitter > 0) {
    const double factor =
        1.0 + costs_.jitter * (2.0 * proc.rng.NextDouble() - 1.0);
    work = static_cast<uint64_t>(static_cast<double>(work) * factor);
  }
  proc.now += work;

  const bool measuring = Measuring(proc.now);
  auto it = residency_.find(access.page);
  if (it != residency_.end()) {
    // Hit — possibly on a page whose read-in completes later (single-flight
    // wait).
    if (it->second.ready_time > proc.now) proc.now = it->second.ready_time;
    const FrameId frame = it->second.frame;
    if (access.is_write) frame_dirty_[frame] = true;
    if (measuring) ++proc.hits;
    HandleHit(proc, access.page, frame);
  } else {
    if (measuring) ++proc.misses;
    HandleMiss(proc, access.page, access.is_write);
  }
}

StatusOr<DriverResult> Simulation::Run() {
  if (config_.num_threads == 0) {
    return Status::InvalidArgument("simulator needs >= 1 processor");
  }
  // Resolve the system under test.
  if (config_.system.coordinator == "clock-lockfree") {
    mode_ = Mode::kClockLockFree;
    if (config_.system.policy != "clock" &&
        config_.system.policy != "gclock") {
      return Status::InvalidArgument(
          "clock-lockfree simulation requires clock/gclock");
    }
  } else if (config_.system.coordinator == "serialized") {
    mode_ = Mode::kSerialized;
  } else if (config_.system.coordinator == "bp-wrapper") {
    mode_ = Mode::kBpWrapper;
  } else if (config_.system.coordinator == "combining") {
    mode_ = Mode::kCombining;
  } else if (config_.system.coordinator == "sharded") {
    mode_ = Mode::kSharded;
  } else {
    return Status::InvalidArgument("unknown coordinator: " +
                                   config_.system.coordinator);
  }
  prefetch_ = config_.system.prefetch;
  queue_size_ = std::max<size_t>(1, config_.system.queue_size);
  batch_threshold_ =
      std::clamp<size_t>(config_.system.batch_threshold, 1, queue_size_);

  auto probe = CreateTrace(config_.workload, 0);
  if (probe == nullptr) {
    return Status::InvalidArgument("unknown workload: " +
                                   config_.workload.name);
  }
  const uint64_t footprint = probe->footprint_pages();
  probe.reset();
  const size_t num_frames =
      config_.num_frames != 0 ? config_.num_frames : footprint;

  if (mode_ == Mode::kSharded) {
    num_shards_ = std::max<size_t>(1, config_.system.policy_shards);
    rebalance_interval_ = config_.system.rebalance_interval;
    auto sharded =
        ShardedPolicy::Create(config_.system.policy, num_shards_, num_frames);
    if (!sharded.ok()) return sharded.status();
    sharded_ = sharded.value().get();
    policy_ = std::move(sharded).value();
    shard_locks_.reserve(num_shards_);
    shard_commit_counts_.assign(num_shards_, 0);
    for (size_t i = 0; i < num_shards_; ++i) {
      shard_locks_.push_back(std::make_unique<SimLock>(costs_));
    }
  } else {
    auto policy = CreatePolicy(config_.system.policy, num_frames);
    if (!policy.ok()) return policy.status();
    policy_ = std::move(policy).value();
  }

  frame_page_.assign(num_frames, kInvalidPageId);
  frame_dirty_.assign(num_frames, false);
  free_frames_.reserve(num_frames);
  for (size_t i = num_frames; i-- > 0;) {
    free_frames_.push_back(static_cast<FrameId>(i));
  }

  if (config_.prewarm) {
    // Fault pages in "before time zero": the paper's pre-warmed zero-miss
    // setting.
    policy_->AssertExclusiveAccess();  // single real thread; see CommitQueue
    const uint64_t warm = std::min<uint64_t>(footprint, num_frames);
    for (PageId p = 0; p < warm; ++p) {
      const FrameId frame = free_frames_.back();
      free_frames_.pop_back();
      policy_->OnMiss(p, frame);
      frame_page_[frame] = p;
      residency_[p] = Resident{frame, 0};
    }
  }

  count_mode_ = config_.transactions_per_thread > 0;
  warmup_end_ = count_mode_ ? 0 : config_.warmup_ms * 1'000'000ULL;
  measure_end_ = warmup_end_ + config_.duration_ms * 1'000'000ULL;

  procs_.resize(config_.num_threads);
  for (uint32_t i = 0; i < config_.num_threads; ++i) {
    procs_[i].trace = CreateTrace(config_.workload, i);
    procs_[i].rng.Reseed(config_.workload.seed * 977 + i);
    if (mode_ == Mode::kSharded) procs_[i].shard_queues.resize(num_shards_);
  }

  std::priority_queue<uint32_t, std::vector<uint32_t>, ProcOrder> heap(
      ProcOrder{&procs_});
  for (uint32_t i = 0; i < config_.num_threads; ++i) heap.push(i);

  while (!heap.empty()) {
    const uint32_t idx = heap.top();
    heap.pop();
    Proc& proc = procs_[idx];
    if (proc.done) continue;
    if (!count_mode_ && proc.now >= measure_end_) continue;
    StepAccess(proc);
    if (!proc.done) heap.push(idx);
  }

  DriverResult result;
  result.measure_seconds =
      count_mode_ ? 0.0
                  : static_cast<double>(measure_end_ - warmup_end_) / 1e9;
  uint64_t max_now = 0;
  for (Proc& proc : procs_) {
    result.transactions += proc.transactions;
    result.hits += proc.hits;
    result.misses += proc.misses;
    result.response_histogram.Merge(proc.response);
    max_now = std::max(max_now, proc.now);
  }
  if (count_mode_) {
    result.measure_seconds = static_cast<double>(max_now) / 1e9;
  }
  result.accesses = result.hits + result.misses;
  if (result.measure_seconds > 0) {
    result.throughput_tps =
        static_cast<double>(result.transactions) / result.measure_seconds;
    result.accesses_per_sec =
        static_cast<double>(result.accesses) / result.measure_seconds;
  }
  result.avg_response_us = result.response_histogram.Mean() / 1000.0;
  result.p95_response_us = result.response_histogram.Percentile(95) / 1000.0;
  result.hit_ratio = result.accesses == 0
                         ? 0.0
                         : static_cast<double>(result.hits) /
                               static_cast<double>(result.accesses);
  if (mode_ == Mode::kSharded) {
    // The single global lock is never touched in sharded mode; the
    // system's lock behaviour is the sum over the per-shard locks.
    for (const auto& lock : shard_locks_) result.lock += lock->stats();
  } else {
    result.lock = lock_.stats();
  }
  if (result.accesses > 0) {
    result.contentions_per_million =
        static_cast<double>(result.lock.contentions) * 1e6 /
        static_cast<double>(result.accesses);
    result.lock_nanos_per_access =
        static_cast<double>(result.lock.hold_nanos +
                            result.lock.wait_nanos) /
        static_cast<double>(result.accesses);
  }
  result.evictions = evictions_;
  result.writebacks = writebacks_;
  // Same snapshot vocabulary the host driver pulls from the metrics
  // registry, so downstream tooling (bpw_bench, bench_compare) reads one
  // counter namespace regardless of execution mode. All deterministic.
  result.metrics.Add("coord.commit_batches",
                     static_cast<double>(commit_batches_));
  result.metrics.Add("coord.committed_entries",
                     static_cast<double>(committed_entries_));
  result.metrics.Add("coord.stale_commits",
                     static_cast<double>(stale_commits_));
  result.metrics.Add("coord.lock_fallbacks",
                     static_cast<double>(lock_fallbacks_));
  if (mode_ == Mode::kCombining) {
    // Only the combining mode has these, so existing baselines' counter
    // sets are unchanged for every other coordinator.
    result.metrics.Add("coord.published_batches",
                       static_cast<double>(published_batches_));
    result.metrics.Add("coord.combined_batches",
                       static_cast<double>(combined_batches_));
  }
  if (mode_ == Mode::kSharded) {
    // Only the sharded mode has these (same baseline-stability reasoning
    // as the combining block above).
    result.metrics.Add("coord.shard_rebalances",
                       static_cast<double>(shard_rebalances_));
    result.metrics.Add("coord.hit_drops", static_cast<double>(hit_drops_));
    result.metrics.Add("coord.borrow_evictions",
                       static_cast<double>(borrow_evictions_));
  }
  result.metrics.Add("buffer.hits", static_cast<double>(result.hits));
  result.metrics.Add("buffer.misses", static_cast<double>(result.misses));
  result.metrics.Add("buffer.evictions", static_cast<double>(evictions_));
  result.metrics.Add("buffer.writebacks", static_cast<double>(writebacks_));
  return result;
}

}  // namespace

StatusOr<DriverResult> RunSimulation(const DriverConfig& config,
                                     const SimCosts& costs) {
  Simulation sim(config, costs);
  return sim.Run();
}

}  // namespace bpw
