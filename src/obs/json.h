// Tiny JSON emission helpers shared by the observability exporters (metrics
// JSON-lines, Chrome trace files, bpw_run --json). Writing only — parsing
// JSON is someone else's problem.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace bpw {
namespace obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// `"s"` with escaping.
inline std::string JsonString(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

/// Formats a double the way JSON expects: no NaN/Inf (emitted as 0), integral
/// values without a fractional part, everything else with enough digits to
/// round-trip metric values.
inline std::string JsonNumber(double v) {
  if (!(v == v) || v > 1.7e308 || v < -1.7e308) return "0";
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) && v < 9.2e18 &&
      v > -9.2e18) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

/// True if `s` is a complete JSON number token (so CSV-ish string cells can
/// be emitted unquoted when they are numeric).
inline bool LooksLikeJsonNumber(const std::string& s) {
  if (s.empty()) return false;
  size_t i = 0;
  if (s[i] == '-') ++i;
  if (i == s.size()) return false;
  bool digits = false, dot = false, exp = false;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (c >= '0' && c <= '9') {
      digits = true;
    } else if (c == '.' && !dot && !exp) {
      dot = true;
    } else if ((c == 'e' || c == 'E') && digits && !exp) {
      exp = true;
      if (i + 1 < s.size() && (s[i + 1] == '+' || s[i + 1] == '-')) ++i;
      digits = false;
    } else {
      return false;
    }
  }
  return digits;
}

}  // namespace obs
}  // namespace bpw
