#include "obs/stats_sampler.h"

#include <chrono>

#include "obs/contention_profiler.h"
#include "obs/trace_recorder.h"
#include "util/clock.h"

namespace bpw {
namespace obs {

StatsSampler::StatsSampler(MetricsRegistry* registry, uint64_t interval_ms)
    : registry_(registry), interval_ms_(interval_ms == 0 ? 1 : interval_ms) {}

StatsSampler::~StatsSampler() { Stop(); }

void StatsSampler::Start() {
  {
    MutexGuard guard(mu_);
    if (running_) return;
    running_ = true;
    stop_ = false;
  }
  SampleNow();
  thread_ = std::thread(&StatsSampler::Loop, this);
}

void StatsSampler::Stop() {
  {
    MutexGuard guard(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    MutexGuard guard(mu_);
    running_ = false;
  }
  SampleNow();
}

MetricsSnapshot StatsSampler::SampleNow() {
  MetricsSnapshot snap = registry_->Snapshot();
#if BPW_PROF
  // Piggyback one contention-counter sample per tick into the trace stream:
  // this is what turns the profiler's cumulative per-site totals into the
  // wait_ns/hold_ns time series Perfetto plots alongside the span events.
  if (TraceEnabled() && ProfilerEnabled()) {
    EmitProfTraceCounters(NowNanos());
  }
#endif
  Append(snap);
  return snap;
}

void StatsSampler::Append(MetricsSnapshot snap) {
  MutexGuard guard(mu_);
  samples_.push_back(std::move(snap));
}

void StatsSampler::Loop() {
  mu_.lock();
  while (!stop_) {
    // Plain wait_for (not the predicate overload): stop_ is guarded_by mu_
    // and the explicit re-check below keeps the access visibly under the
    // lock for the analysis. A spurious wake-up just samples early.
    cv_.wait_for(mu_, std::chrono::milliseconds(interval_ms_));
    if (stop_) break;
    mu_.unlock();
    // Snapshot without holding mu_: sources may do real work and SampleNow
    // re-takes mu_ only to append.
    const uint64_t sample_start = NowNanos();
    SampleNow();
    const uint64_t took = NowNanos() - sample_start;
    // A snapshot that outruns its own interval means the series silently
    // under-samples; count the overrun and how many whole periods it ate so
    // bpw_run can surface the gap instead of presenting a lossless series.
    const uint64_t interval_nanos = interval_ms_ * 1'000'000ull;
    if (took > interval_nanos) {
      overruns_.fetch_add(1, std::memory_order_relaxed);
      skipped_ticks_.fetch_add(took / interval_nanos,
                               std::memory_order_relaxed);
    }
    mu_.lock();
  }
  mu_.unlock();
}

std::vector<MetricsSnapshot> StatsSampler::samples() const {
  MutexGuard guard(mu_);
  return samples_;
}

std::string StatsSampler::ToJsonLines() const {
  const std::vector<MetricsSnapshot> series = samples();
  std::string out;
  for (const auto& snap : series) {
    out += snap.ToJson();
    out += '\n';
  }
  return out;
}

std::vector<MetricsSnapshot> StatsSampler::Deltas(
    const std::vector<MetricsSnapshot>& series) {
  std::vector<MetricsSnapshot> deltas;
  if (series.size() < 2) return deltas;
  deltas.reserve(series.size() - 1);
  for (size_t i = 1; i < series.size(); ++i) {
    deltas.push_back(series[i].DeltaFrom(series[i - 1]));
  }
  return deltas;
}

}  // namespace obs
}  // namespace bpw
