#include "obs/contention_profiler.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <string_view>

#include "obs/trace_recorder.h"
#include "util/cacheline.h"
#include "util/clock.h"
#include "util/thread_id.h"

#include "util/thread_annotations.h"

namespace bpw {
namespace obs {

namespace {

struct SiteEntry {
  const char* file = nullptr;
  int line = 0;
  const char* label = nullptr;
  ProfSiteKind kind = ProfSiteKind::kLock;
};

/// One shard of one path's accumulators. Cacheline-aligned so two threads
/// recording into neighbouring shards never share a line; the histogram
/// bucket arrays trail the hot counters so the common "bump four words"
/// case touches the first line only when the bucketed value is small.
struct alignas(kCacheLineSize) ProfCell {
  std::atomic<uint64_t> uncontended{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> contended{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> wait_nanos{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> hold_nanos{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint32_t> wait_buckets[Histogram::kNumBuckets] BPW_RELAXED_OK("histogram bucket counter") = {};
  std::atomic<uint32_t> hold_buckets[Histogram::kNumBuckets] BPW_RELAXED_OK("histogram bucket counter") = {};
};

struct PathEntry {
  ProfSiteId parent = kInvalidProfSite;  // parent *path* id
  ProfSiteId site = kInvalidProfSite;    // leaf site id
  int depth = 0;
  std::string label;  // full ';'-joined path, stable after publication
  std::unique_ptr<ProfCell[]> cells;  // kProfShards cells
  std::atomic<uint32_t> cur_waiters{0} BPW_RELAXED_OK("waiter gauge; transient over/undershoot is fine");
  std::atomic<uint32_t> max_waiters{0} BPW_RELAXED_OK("high-watermark; monotonic CAS loop tolerates races");
};

// Registration tables. Entries are immutable once published: writers append
// under `lock` and publish by bumping the count with release order; readers
// load the count with acquire and index without locking. Sized statically so
// recording never dereferences a reallocating container.
//
// The lock is a raw std::mutex, not the repo's SpinLock: registration runs
// lazily from worker threads (function-local statics in BPW_PROF_SITE /
// BPW_PROF_PHASE), and SpinLock carries BPW_SCHEDULE_POINT hooks. The
// profiler is part of the measuring instrument — if its registry acquired a
// schedule-pointed lock, the model checker would see extra decision points
// on the first execution of a scenario only (registration is once per
// process), breaking deterministic replay; stress perturbation would widen
// windows inside the profiler instead of the code under test.
struct Registry {
  std::mutex lock;  // bpw-lint-allow(raw-mutex)
  std::atomic<uint32_t> site_count{0};
  std::atomic<uint32_t> path_count{0};
  SiteEntry sites[kMaxProfSites];
  PathEntry paths[kMaxProfPaths];
};

Registry& Reg() {
  // Leaked on purpose: locks may record during static destruction.
  static Registry* instance = new Registry();
  return *instance;
}

/// Looks up (or registers) the path `parent_path -> site`. Lock-free on the
/// hit path; the miss path allocates the shard cells *before* taking the
/// registry lock so the critical section stays allocation-free.
ProfSiteId PathFor(ProfSiteId parent_path, ProfSiteId site) {
  if (site == kInvalidProfSite) return kInvalidProfSite;
  Registry& reg = Reg();
  const uint32_t published = reg.path_count.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < published; ++i) {
    if (reg.paths[i].parent == parent_path && reg.paths[i].site == site) {
      return i;
    }
  }
  auto cells = std::make_unique<ProfCell[]>(kProfShards);
  // bpw-lint-allow(raw-mutex): see Registry — must stay schedule-point free.
  std::lock_guard<std::mutex> guard(reg.lock);
  BPW_RELAXED_OK("count re-read under the registry mutex; the release store that bumps it is the publication");
  const uint32_t count = reg.path_count.load(std::memory_order_relaxed);
  for (uint32_t i = published; i < count; ++i) {
    if (reg.paths[i].parent == parent_path && reg.paths[i].site == site) {
      return i;
    }
  }
  if (count >= kMaxProfPaths) return kInvalidProfSite;
  PathEntry& entry = reg.paths[count];
  entry.parent = parent_path;
  entry.site = site;
  if (parent_path != kInvalidProfSite) {
    entry.depth = reg.paths[parent_path].depth + 1;
    entry.label = reg.paths[parent_path].label;
    entry.label += ';';
    entry.label += reg.sites[site].label;
  } else {
    entry.depth = 0;
    entry.label = reg.sites[site].label;
  }
  entry.cells = std::move(cells);
  reg.path_count.store(count + 1, std::memory_order_release);
  return count;
}

ProfCell& CellFor(PathEntry& path) {
  return path.cells[CurrentThreadId() & (kProfShards - 1)];
}

PathEntry* PathAt(ProfSiteId path) {
  Registry& reg = Reg();
  if (path >= reg.path_count.load(std::memory_order_acquire)) return nullptr;
  return &reg.paths[path];
}

/// Per-thread stack of open BPW_PROF_PHASE scopes. Strict RAII nesting
/// makes pop-from-top always correct.
struct PhaseFrame {
  ProfSiteId path = kInvalidProfSite;
  uint64_t start_nanos = 0;
  uint64_t child_nanos = 0;  // inclusive time of directly nested phases
};
struct PhaseStack {
  PhaseFrame frames[kMaxProfPhaseDepth];
  int depth = 0;
};
thread_local PhaseStack tls_phase_stack;

}  // namespace

void SetProfilerEnabled(bool enabled) {
  internal::g_prof_enabled.store(enabled, std::memory_order_relaxed);
}

ProfSiteId RegisterProfSite(const char* file, int line, const char* label,
                            ProfSiteKind kind) {
  Registry& reg = Reg();
  const uint32_t published = reg.site_count.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < published; ++i) {
    if (reg.sites[i].kind == kind &&
        std::string_view(reg.sites[i].label) == label) {
      return i;
    }
  }
  // bpw-lint-allow(raw-mutex): see Registry — must stay schedule-point free.
  std::lock_guard<std::mutex> guard(reg.lock);
  BPW_RELAXED_OK("count re-read under the registry mutex; the release store that bumps it is the publication");
  const uint32_t count = reg.site_count.load(std::memory_order_relaxed);
  for (uint32_t i = published; i < count; ++i) {
    if (reg.sites[i].kind == kind &&
        std::string_view(reg.sites[i].label) == label) {
      return i;
    }
  }
  if (count >= kMaxProfSites) return kInvalidProfSite;
  reg.sites[count] = SiteEntry{file, line, label, kind};
  reg.site_count.store(count + 1, std::memory_order_release);
  return count;
}

ProfSiteId ProfRootPath(ProfSiteId site) {
  return PathFor(kInvalidProfSite, site);
}

void ProfRecordAcquire(ProfSiteId site, bool contended, uint64_t wait_nanos) {
  if (site == kInvalidProfSite || !ProfilerEnabled()) return;
  PathEntry* path = PathAt(site);
  if (path == nullptr) return;
  ProfCell& cell = CellFor(*path);
  if (contended) {
    cell.contended.fetch_add(1, std::memory_order_relaxed);
    cell.wait_nanos.fetch_add(wait_nanos, std::memory_order_relaxed);
    // The wait histogram samples *contended* acquisitions only; folding the
    // uncontended majority's zeros in would bury the distribution the
    // profiler exists to show.
    cell.wait_buckets[Histogram::BucketFor(wait_nanos)].fetch_add(
        1, std::memory_order_relaxed);
  } else {
    cell.uncontended.fetch_add(1, std::memory_order_relaxed);
  }
}

void ProfRecordHold(ProfSiteId site, uint64_t hold_nanos) {
  if (site == kInvalidProfSite || !ProfilerEnabled()) return;
  PathEntry* path = PathAt(site);
  if (path == nullptr) return;
  ProfCell& cell = CellFor(*path);
  cell.hold_nanos.fetch_add(hold_nanos, std::memory_order_relaxed);
  cell.hold_buckets[Histogram::BucketFor(hold_nanos)].fetch_add(
      1, std::memory_order_relaxed);
}

// The waiter pair deliberately does NOT re-check ProfilerEnabled(): the
// lock paths latch one `prof` decision per acquisition and call Enter/Exit
// under that same decision, so a mid-wait toggle of the global flag cannot
// unbalance cur_waiters.
void ProfWaiterEnter(ProfSiteId site) {
  if (site == kInvalidProfSite) return;
  PathEntry* path = PathAt(site);
  if (path == nullptr) return;
  const uint32_t depth =
      path->cur_waiters.fetch_add(1, std::memory_order_relaxed) + 1;
  uint32_t max = path->max_waiters.load(std::memory_order_relaxed);
  while (depth > max && !path->max_waiters.compare_exchange_weak(
                            max, depth, std::memory_order_relaxed)) {
  }
}

void ProfWaiterExit(ProfSiteId site) {
  if (site == kInvalidProfSite) return;
  PathEntry* path = PathAt(site);
  if (path == nullptr) return;
  path->cur_waiters.fetch_sub(1, std::memory_order_relaxed);
}

ScopedProfPhase::ScopedProfPhase(ProfSiteId site) {
  // Active when either consumer wants the data: the accumulators (profiler)
  // or the span stream (tracer). Inactive scopes stay at kInvalidProfSite
  // and the destructor is a single branch.
  if (!ProfilerEnabled() && !TraceEnabled()) return;
  PhaseStack& stack = tls_phase_stack;
  if (stack.depth >= kMaxProfPhaseDepth) return;
  const ProfSiteId parent =
      stack.depth > 0 ? stack.frames[stack.depth - 1].path : kInvalidProfSite;
  path_ = PathFor(parent, site);
  if (path_ == kInvalidProfSite) return;
  PhaseFrame& frame = stack.frames[stack.depth++];
  frame.path = path_;
  frame.start_nanos = NowNanos();
  frame.child_nanos = 0;
}

ScopedProfPhase::~ScopedProfPhase() {
  if (path_ == kInvalidProfSite) return;
  PhaseStack& stack = tls_phase_stack;
  const PhaseFrame frame = stack.frames[--stack.depth];
  const uint64_t now = NowNanos();
  const uint64_t inclusive = now - frame.start_nanos;
  const uint64_t exclusive =
      inclusive - std::min(frame.child_nanos, inclusive);
  if (stack.depth > 0) {
    stack.frames[stack.depth - 1].child_nanos += inclusive;
  }
  if (PathEntry* path = PathAt(path_)) {
    ProfCell& cell = CellFor(*path);
    cell.uncontended.fetch_add(1, std::memory_order_relaxed);
    cell.wait_nanos.fetch_add(inclusive, std::memory_order_relaxed);
    cell.hold_nanos.fetch_add(exclusive, std::memory_order_relaxed);
    cell.wait_buckets[Histogram::BucketFor(inclusive)].fetch_add(
        1, std::memory_order_relaxed);
    cell.hold_buckets[Histogram::BucketFor(exclusive)].fetch_add(
        1, std::memory_order_relaxed);
  }
  if (TraceEnabled()) {
    TraceEmit(TraceEventKind::kProfPhase, frame.start_nanos, inclusive,
              path_);
  }
}

void EmitProfTraceCounters(uint64_t now_nanos) {
  Registry& reg = Reg();
  const uint32_t count = reg.path_count.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < count; ++i) {
    PathEntry& path = reg.paths[i];
    if (reg.sites[path.site].kind != ProfSiteKind::kLock) continue;
    uint64_t wait = 0;
    uint64_t hold = 0;
    for (size_t s = 0; s < kProfShards; ++s) {
      wait += path.cells[s].wait_nanos.load(std::memory_order_relaxed);
      hold += path.cells[s].hold_nanos.load(std::memory_order_relaxed);
    }
    if (wait == 0 && hold == 0) continue;
    // Counter encoding: dur word = path id, arg = value (trace_recorder.h).
    TraceEmit(TraceEventKind::kProfCounterWait, now_nanos, i, wait);
    TraceEmit(TraceEventKind::kProfCounterHold, now_nanos, i, hold);
  }
}

const char* ProfPathLabel(ProfSiteId path) {
  PathEntry* entry = PathAt(path);
  return entry == nullptr ? "?" : entry->label.c_str();
}

uint64_t ProfSnapshot::TotalLockNanos() const {
  uint64_t total = 0;
  for (const ProfSiteSnapshot& site : sites) {
    if (site.kind == ProfSiteKind::kLock) {
      total += site.wait_nanos + site.hold_nanos;
    }
  }
  return total;
}

const ProfSiteSnapshot* ProfSnapshot::Find(const std::string& label) const {
  for (const ProfSiteSnapshot& site : sites) {
    if (site.label == label) return &site;
  }
  return nullptr;
}

ProfSnapshot CollectProfSnapshot() {
  Registry& reg = Reg();
  ProfSnapshot snap;
  const uint32_t count = reg.path_count.load(std::memory_order_acquire);
  snap.sites.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PathEntry& path = reg.paths[i];
    const SiteEntry& site = reg.sites[path.site];
    ProfSiteSnapshot row;
    row.label = path.label;
    row.file = site.file;
    row.line = site.line;
    row.kind = site.kind;
    row.depth = path.depth;
    row.max_waiters = path.max_waiters.load(std::memory_order_relaxed);
    uint64_t wait_buckets[Histogram::kNumBuckets] = {};
    uint64_t hold_buckets[Histogram::kNumBuckets] = {};
    for (size_t s = 0; s < kProfShards; ++s) {
      const ProfCell& cell = path.cells[s];
      row.uncontended += cell.uncontended.load(std::memory_order_relaxed);
      row.contended += cell.contended.load(std::memory_order_relaxed);
      row.wait_nanos += cell.wait_nanos.load(std::memory_order_relaxed);
      row.hold_nanos += cell.hold_nanos.load(std::memory_order_relaxed);
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        wait_buckets[b] += cell.wait_buckets[b].load(std::memory_order_relaxed);
        hold_buckets[b] += cell.hold_buckets[b].load(std::memory_order_relaxed);
      }
    }
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      row.wait_hist.Add(Histogram::BucketLow(b), wait_buckets[b]);
      row.hold_hist.Add(Histogram::BucketLow(b), hold_buckets[b]);
    }
    snap.sites.push_back(std::move(row));
  }
  std::sort(snap.sites.begin(), snap.sites.end(),
            [](const ProfSiteSnapshot& a, const ProfSiteSnapshot& b) {
              return a.label < b.label;
            });
  return snap;
}

void ResetProfiler() {
  Registry& reg = Reg();
  const uint32_t count = reg.path_count.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < count; ++i) {
    PathEntry& path = reg.paths[i];
    // cur_waiters is deliberately left alone: threads blocked across the
    // reset still own their ProfWaiterExit decrement.
    path.max_waiters.store(0, std::memory_order_relaxed);
    for (size_t s = 0; s < kProfShards; ++s) {
      ProfCell& cell = path.cells[s];
      cell.uncontended.store(0, std::memory_order_relaxed);
      cell.contended.store(0, std::memory_order_relaxed);
      cell.wait_nanos.store(0, std::memory_order_relaxed);
      cell.hold_nanos.store(0, std::memory_order_relaxed);
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        cell.wait_buckets[b].store(0, std::memory_order_relaxed);
        cell.hold_buckets[b].store(0, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace obs
}  // namespace bpw
