// StatsSampler: a background thread that snapshots a MetricsRegistry on a
// fixed interval into an in-memory time series, so a run shows contention
// *over time* instead of one end-of-run aggregate. Dumps as JSON-lines (one
// snapshot object per line) for plotting.
//
// Start() records an initial snapshot and Stop() records a final one, so a
// started-and-stopped sampler always holds at least two samples regardless
// of interval vs run length. SampleNow() works without the thread for
// deterministic tests.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "sync/mutex.h"
#include "util/thread_annotations.h"

namespace bpw {
namespace obs {

class StatsSampler {
 public:
  /// @param registry     snapshotted registry (not owned; must outlive this)
  /// @param interval_ms  sampling period of the background thread
  StatsSampler(MetricsRegistry* registry, uint64_t interval_ms);
  ~StatsSampler();

  StatsSampler(const StatsSampler&) = delete;
  StatsSampler& operator=(const StatsSampler&) = delete;

  /// Takes an initial sample and starts the sampling thread. No-op if
  /// already running.
  void Start();

  /// Stops and joins the thread, taking one final sample. Idempotent.
  void Stop();

  /// Takes one snapshot immediately on the calling thread and appends it.
  MetricsSnapshot SampleNow();

  /// Copy of the series collected so far (cumulative snapshots).
  std::vector<MetricsSnapshot> samples() const;

  /// One JSON object per line, cumulative values (see Deltas for rates).
  std::string ToJsonLines() const;

  /// Pairwise deltas of a cumulative series: result[i] = series[i+1] -
  /// series[i] (empty for fewer than two samples). Counter deltas divided
  /// by the snapshot's t_ms gap give rates.
  static std::vector<MetricsSnapshot> Deltas(
      const std::vector<MetricsSnapshot>& series);

  /// Ticks where taking the snapshot itself ran longer than the sampling
  /// interval. A nonzero value means the series under-samples: gaps in the
  /// time axis are sampler lag, not workload behaviour — which is why
  /// bpw_run surfaces these in its obs-health summary instead of letting
  /// the data loss stay silent.
  uint64_t overruns() const {
    return overruns_.load(std::memory_order_relaxed);
  }
  /// Whole sampling periods covered by over-long snapshots — the number of
  /// samples the series is missing relative to a perfectly paced sampler.
  uint64_t skipped_ticks() const {
    return skipped_ticks_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  void Append(MetricsSnapshot snap);

  MetricsRegistry* registry_;
  const uint64_t interval_ms_;

  mutable Mutex mu_;
  std::condition_variable_any cv_;  // waits on the annotated Mutex directly
  bool stop_ BPW_GUARDED_BY(mu_) = false;
  bool running_ BPW_GUARDED_BY(mu_) = false;
  std::thread thread_;  // Start/Stop discipline; never touched by Loop()
  std::vector<MetricsSnapshot> samples_ BPW_GUARDED_BY(mu_);
  std::atomic<uint64_t> overruns_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> skipped_ticks_{0} BPW_RELAXED_OK("stats counter");
};

}  // namespace obs
}  // namespace bpw
