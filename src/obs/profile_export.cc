#include "obs/profile_export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/json_reader.h"
#include "obs/json.h"

namespace bpw {
namespace obs {

namespace {

void AppendHistJson(std::string* out, const char* name,
                    const Histogram& hist) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"count\":%llu,\"mean\":%.1f,\"p50\":%.0f,"
                "\"p95\":%.0f,\"p99\":%.0f,\"max\":%llu",
                name, static_cast<unsigned long long>(hist.count()),
                hist.Mean(), hist.Percentile(50), hist.Percentile(95),
                hist.Percentile(99),
                static_cast<unsigned long long>(hist.max()));
  *out += buf;
  // Sparse [bucket_low, count] pairs: the exact distribution, so a reader
  // can rebuild the histogram rather than trust pre-computed percentiles.
  *out += ",\"buckets\":[";
  bool first = true;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    const uint64_t n = hist.BucketCount(b);
    if (n == 0) continue;
    if (!first) *out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "[%llu,%llu]",
                  static_cast<unsigned long long>(Histogram::BucketLow(b)),
                  static_cast<unsigned long long>(n));
    *out += buf;
  }
  *out += "]}";
}

void AppendFoldedLine(std::string* out, const std::string& stack,
                      uint64_t weight) {
  if (weight == 0) return;
  *out += stack;
  *out += ' ';
  *out += std::to_string(weight);
  *out += '\n';
}

}  // namespace

std::string ProfSnapshotToJson(const ProfSnapshot& snapshot) {
  std::string out = "{\"total_lock_nanos\":";
  out += std::to_string(snapshot.TotalLockNanos());
  out += ",\"sites\":[";
  bool first = true;
  char buf[256];
  for (const ProfSiteSnapshot& site : snapshot.sites) {
    if (!first) out += ',';
    first = false;
    out += "{\"label\":";
    out += JsonString(site.label);
    out += ",\"kind\":";
    out += site.kind == ProfSiteKind::kLock ? "\"lock\"" : "\"phase\"";
    out += ",\"file\":";
    out += JsonString(site.file);
    std::snprintf(
        buf, sizeof(buf),
        ",\"line\":%d,\"depth\":%d,\"uncontended\":%llu,"
        "\"contended\":%llu,\"wait_nanos\":%llu,\"hold_nanos\":%llu,"
        "\"max_waiters\":%llu,",
        site.line, site.depth,
        static_cast<unsigned long long>(site.uncontended),
        static_cast<unsigned long long>(site.contended),
        static_cast<unsigned long long>(site.wait_nanos),
        static_cast<unsigned long long>(site.hold_nanos),
        static_cast<unsigned long long>(site.max_waiters));
    out += buf;
    AppendHistJson(&out, "wait", site.wait_hist);
    out += ',';
    AppendHistJson(&out, "hold", site.hold_hist);
    out += '}';
  }
  out += "]}";
  return out;
}

namespace {

uint64_t U64Or(const bench::JsonValue& obj, const std::string& key) {
  return static_cast<uint64_t>(obj.NumberOr(key, 0));
}

void HistFromJson(const bench::JsonValue& site, const char* name,
                  Histogram* hist) {
  const bench::JsonValue* h = site.Find(name);
  if (h == nullptr) return;
  const bench::JsonValue* buckets = h->Find("buckets");
  if (buckets == nullptr || !buckets->is_array()) return;
  for (const bench::JsonValue& pair : buckets->array) {
    if (!pair.is_array() || pair.array.size() != 2) continue;
    hist->Add(static_cast<uint64_t>(pair.array[0].number_value),
              static_cast<uint64_t>(pair.array[1].number_value));
  }
}

}  // namespace

StatusOr<ProfSnapshot> ProfSnapshotFromJson(const std::string& text) {
  StatusOr<bench::JsonValue> parsed = bench::ParseJson(text);
  if (!parsed.ok()) return parsed.status();
  const bench::JsonValue* root = &parsed.value();
  // A full bpw_run --json document embeds the report under "contention".
  if (root->Find("sites") == nullptr && root->Find("contention") != nullptr) {
    root = root->Find("contention");
  }
  const bench::JsonValue* sites = root->Find("sites");
  if (sites == nullptr || !sites->is_array()) {
    return Status::InvalidArgument(
        "not a contention report: no \"sites\" array (expected the JSON "
        "from bpw_run --contention-report)");
  }
  ProfSnapshot snapshot;
  snapshot.sites.reserve(sites->array.size());
  for (const bench::JsonValue& s : sites->array) {
    if (!s.is_object()) {
      return Status::InvalidArgument("contention report: non-object site");
    }
    ProfSiteSnapshot row;
    row.label = s.StringOr("label", "?");
    row.file = s.StringOr("file", "");
    row.line = static_cast<int>(s.NumberOr("line", 0));
    row.kind = s.StringOr("kind", "lock") == "phase" ? ProfSiteKind::kPhase
                                                     : ProfSiteKind::kLock;
    row.depth = static_cast<int>(s.NumberOr("depth", 0));
    row.uncontended = U64Or(s, "uncontended");
    row.contended = U64Or(s, "contended");
    row.wait_nanos = U64Or(s, "wait_nanos");
    row.hold_nanos = U64Or(s, "hold_nanos");
    row.max_waiters = U64Or(s, "max_waiters");
    HistFromJson(s, "wait", &row.wait_hist);
    HistFromJson(s, "hold", &row.hold_hist);
    snapshot.sites.push_back(std::move(row));
  }
  return snapshot;
}

std::string ProfSnapshotToTable(const ProfSnapshot& snapshot) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-40s %10s %10s %14s %14s %10s %10s %6s\n",
                "site", "events", "contended", "wait_ns", "hold_ns",
                "wait_p95", "hold_p95", "maxw");
  out += buf;
  for (const ProfSiteSnapshot& site : snapshot.sites) {
    if (site.events() == 0) continue;
    // Phase rows indent by depth so the commit-phase tree reads as one.
    std::string label(static_cast<size_t>(site.depth) * 2, ' ');
    label += site.label;
    const char* mark = site.kind == ProfSiteKind::kLock ? "L" : "P";
    std::snprintf(
        buf, sizeof(buf),
        "%-40s %10llu %10llu %14llu %14llu %10.0f %10.0f %6llu %s\n",
        label.c_str(), static_cast<unsigned long long>(site.events()),
        static_cast<unsigned long long>(site.contended),
        static_cast<unsigned long long>(site.wait_nanos),
        static_cast<unsigned long long>(site.hold_nanos),
        site.wait_hist.Percentile(95), site.hold_hist.Percentile(95),
        static_cast<unsigned long long>(site.max_waiters), mark);
    out += buf;
  }
  return out;
}

std::string ProfSnapshotToFolded(const ProfSnapshot& snapshot) {
  std::string out;
  for (const ProfSiteSnapshot& site : snapshot.sites) {
    if (site.kind == ProfSiteKind::kLock) {
      AppendFoldedLine(&out, site.label + ";wait", site.wait_nanos);
      AppendFoldedLine(&out, site.label + ";hold", site.hold_nanos);
    } else {
      // Exclusive time: nested phases are separate rows of this snapshot,
      // so inclusive weights would double-count in the flame graph.
      AppendFoldedLine(&out, site.label, site.hold_nanos);
    }
  }
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  if (path == "-") {
    return std::fwrite(content.data(), 1, content.size(), stdout) ==
           content.size();
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  return std::fclose(f) == 0 && written == content.size();
}

namespace {

/// One side of the reconciliation: a label with its score and its rank
/// (descending by score, 1-based) within that side.
struct RankedRow {
  std::string label;
  double score = 0;
  int rank = 0;
};

std::vector<RankedRow> RankDescending(std::map<std::string, double> scores) {
  std::vector<RankedRow> rows;
  rows.reserve(scores.size());
  for (auto& [label, score] : scores) rows.push_back({label, score, 0});
  std::sort(rows.begin(), rows.end(), [](const RankedRow& a,
                                         const RankedRow& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.label < b.label;  // deterministic tie-break
  });
  for (size_t i = 0; i < rows.size(); ++i) rows[i].rank = int(i) + 1;
  return rows;
}

}  // namespace

StatusOr<std::string> ReconcileHoldCosts(const std::string& costs_json,
                                         const ProfSnapshot& snapshot) {
  StatusOr<bench::JsonValue> parsed = bench::ParseJson(costs_json);
  if (!parsed.ok()) return parsed.status();
  const bench::JsonValue* sites = parsed.value().Find("sites");
  if (sites == nullptr || !sites->is_array()) {
    return Status::InvalidArgument(
        "not a static-costs document: no \"sites\" array (expected the "
        "JSON from bpw_holdlint --costs)");
  }

  // Static side: label -> max hold-site weight. Sites without a profiler
  // label (a policy's `this` capability, say) have no measured counterpart
  // and are skipped — the join is over instrumented locks.
  std::map<std::string, double> static_score;
  for (const bench::JsonValue& s : sites->array) {
    if (!s.is_object()) continue;
    const std::string label = s.StringOr("label", "");
    if (label.empty()) continue;
    const double w = s.NumberOr("weight", 0);
    auto [it, inserted] = static_score.emplace(label, w);
    if (!inserted && w > it->second) it->second = w;
  }

  // Measured side: mean per-acquisition hold nanoseconds of each lock row.
  std::map<std::string, double> measured_score;
  for (const ProfSiteSnapshot& site : snapshot.sites) {
    if (site.kind != ProfSiteKind::kLock) continue;
    if (site.hold_hist.count() == 0) continue;
    measured_score[site.label] = site.hold_hist.Mean();
  }

  // Ranks are computed within the joined label set: a workload only
  // exercises one coordinator, and "the static model ranks an unexercised
  // lock higher" is not a divergence worth flagging. Static-only labels
  // are still listed (unranked) so a site the workload never contended
  // stays visible.
  std::map<std::string, double> joined_static = static_score;
  for (auto it = joined_static.begin(); it != joined_static.end();) {
    it = measured_score.count(it->first) == 0 ? joined_static.erase(it)
                                              : std::next(it);
  }
  const std::vector<RankedRow> stat = RankDescending(joined_static);
  const std::vector<RankedRow> meas = RankDescending(measured_score);
  std::map<std::string, const RankedRow*> stat_by_label, meas_by_label;
  for (const RankedRow& r : stat) stat_by_label[r.label] = &r;
  for (const RankedRow& r : meas) meas_by_label[r.label] = &r;

  // Render in measured order (the measured ranking is ground truth for
  // "where did hold time actually go"), then static-only rows.
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-28s %12s %6s %14s %6s %7s  %s\n",
                "label", "static-wt", "s-rank", "measured-ns", "m-rank",
                "d-rank", "verdict");
  out += line;
  int divergent = 0;
  auto emit = [&](const std::string& label, const RankedRow* s,
                  const RankedRow* m) {
    std::string verdict;
    std::string drank = "-";
    if (s != nullptr && m != nullptr) {
      const int d = s->rank - m->rank;
      drank = std::to_string(d);
      if (d >= 2 || d <= -2) {
        verdict = "DIVERGES";
        ++divergent;
      } else {
        verdict = "agrees";
      }
    } else if (s == nullptr) {
      verdict = "measured only (site not in static costs)";
    } else {
      verdict = "static only (never contended in this run)";
    }
    std::snprintf(line, sizeof(line), "%-28s %12s %6s %14s %6s %7s  %s\n",
                  label.c_str(),
                  s != nullptr ? std::to_string(int64_t(s->score)).c_str()
                               : "-",
                  s != nullptr && s->rank > 0 ? std::to_string(s->rank).c_str()
                                              : "-",
                  m != nullptr ? std::to_string(int64_t(m->score)).c_str()
                               : "-",
                  m != nullptr ? std::to_string(m->rank).c_str() : "-",
                  drank.c_str(), verdict.c_str());
    out += line;
  };
  for (const RankedRow& m : meas) {
    auto s = stat_by_label.find(m.label);
    emit(m.label, s != stat_by_label.end() ? s->second : nullptr, &m);
  }
  for (const auto& [label, score] : static_score) {
    if (meas_by_label.count(label) > 0) continue;
    const RankedRow unranked{label, score, 0};
    emit(label, &unranked, nullptr);
  }
  std::snprintf(line, sizeof(line),
                "\n%zu measured lock site(s), %zu static label(s), "
                "%d rank divergence(s) (|d-rank| >= 2)\n",
                meas.size(), static_score.size(), divergent);
  out += line;
  return out;
}

}  // namespace obs
}  // namespace bpw
