#include "obs/profile_export.h"

#include <cstdio>
#include <string>

#include "bench/json_reader.h"
#include "obs/json.h"

namespace bpw {
namespace obs {

namespace {

void AppendHistJson(std::string* out, const char* name,
                    const Histogram& hist) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"count\":%llu,\"mean\":%.1f,\"p50\":%.0f,"
                "\"p95\":%.0f,\"p99\":%.0f,\"max\":%llu",
                name, static_cast<unsigned long long>(hist.count()),
                hist.Mean(), hist.Percentile(50), hist.Percentile(95),
                hist.Percentile(99),
                static_cast<unsigned long long>(hist.max()));
  *out += buf;
  // Sparse [bucket_low, count] pairs: the exact distribution, so a reader
  // can rebuild the histogram rather than trust pre-computed percentiles.
  *out += ",\"buckets\":[";
  bool first = true;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    const uint64_t n = hist.BucketCount(b);
    if (n == 0) continue;
    if (!first) *out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "[%llu,%llu]",
                  static_cast<unsigned long long>(Histogram::BucketLow(b)),
                  static_cast<unsigned long long>(n));
    *out += buf;
  }
  *out += "]}";
}

void AppendFoldedLine(std::string* out, const std::string& stack,
                      uint64_t weight) {
  if (weight == 0) return;
  *out += stack;
  *out += ' ';
  *out += std::to_string(weight);
  *out += '\n';
}

}  // namespace

std::string ProfSnapshotToJson(const ProfSnapshot& snapshot) {
  std::string out = "{\"total_lock_nanos\":";
  out += std::to_string(snapshot.TotalLockNanos());
  out += ",\"sites\":[";
  bool first = true;
  char buf[256];
  for (const ProfSiteSnapshot& site : snapshot.sites) {
    if (!first) out += ',';
    first = false;
    out += "{\"label\":";
    out += JsonString(site.label);
    out += ",\"kind\":";
    out += site.kind == ProfSiteKind::kLock ? "\"lock\"" : "\"phase\"";
    out += ",\"file\":";
    out += JsonString(site.file);
    std::snprintf(
        buf, sizeof(buf),
        ",\"line\":%d,\"depth\":%d,\"uncontended\":%llu,"
        "\"contended\":%llu,\"wait_nanos\":%llu,\"hold_nanos\":%llu,"
        "\"max_waiters\":%llu,",
        site.line, site.depth,
        static_cast<unsigned long long>(site.uncontended),
        static_cast<unsigned long long>(site.contended),
        static_cast<unsigned long long>(site.wait_nanos),
        static_cast<unsigned long long>(site.hold_nanos),
        static_cast<unsigned long long>(site.max_waiters));
    out += buf;
    AppendHistJson(&out, "wait", site.wait_hist);
    out += ',';
    AppendHistJson(&out, "hold", site.hold_hist);
    out += '}';
  }
  out += "]}";
  return out;
}

namespace {

uint64_t U64Or(const bench::JsonValue& obj, const std::string& key) {
  return static_cast<uint64_t>(obj.NumberOr(key, 0));
}

void HistFromJson(const bench::JsonValue& site, const char* name,
                  Histogram* hist) {
  const bench::JsonValue* h = site.Find(name);
  if (h == nullptr) return;
  const bench::JsonValue* buckets = h->Find("buckets");
  if (buckets == nullptr || !buckets->is_array()) return;
  for (const bench::JsonValue& pair : buckets->array) {
    if (!pair.is_array() || pair.array.size() != 2) continue;
    hist->Add(static_cast<uint64_t>(pair.array[0].number_value),
              static_cast<uint64_t>(pair.array[1].number_value));
  }
}

}  // namespace

StatusOr<ProfSnapshot> ProfSnapshotFromJson(const std::string& text) {
  StatusOr<bench::JsonValue> parsed = bench::ParseJson(text);
  if (!parsed.ok()) return parsed.status();
  const bench::JsonValue* root = &parsed.value();
  // A full bpw_run --json document embeds the report under "contention".
  if (root->Find("sites") == nullptr && root->Find("contention") != nullptr) {
    root = root->Find("contention");
  }
  const bench::JsonValue* sites = root->Find("sites");
  if (sites == nullptr || !sites->is_array()) {
    return Status::InvalidArgument(
        "not a contention report: no \"sites\" array (expected the JSON "
        "from bpw_run --contention-report)");
  }
  ProfSnapshot snapshot;
  snapshot.sites.reserve(sites->array.size());
  for (const bench::JsonValue& s : sites->array) {
    if (!s.is_object()) {
      return Status::InvalidArgument("contention report: non-object site");
    }
    ProfSiteSnapshot row;
    row.label = s.StringOr("label", "?");
    row.file = s.StringOr("file", "");
    row.line = static_cast<int>(s.NumberOr("line", 0));
    row.kind = s.StringOr("kind", "lock") == "phase" ? ProfSiteKind::kPhase
                                                     : ProfSiteKind::kLock;
    row.depth = static_cast<int>(s.NumberOr("depth", 0));
    row.uncontended = U64Or(s, "uncontended");
    row.contended = U64Or(s, "contended");
    row.wait_nanos = U64Or(s, "wait_nanos");
    row.hold_nanos = U64Or(s, "hold_nanos");
    row.max_waiters = U64Or(s, "max_waiters");
    HistFromJson(s, "wait", &row.wait_hist);
    HistFromJson(s, "hold", &row.hold_hist);
    snapshot.sites.push_back(std::move(row));
  }
  return snapshot;
}

std::string ProfSnapshotToTable(const ProfSnapshot& snapshot) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-40s %10s %10s %14s %14s %10s %10s %6s\n",
                "site", "events", "contended", "wait_ns", "hold_ns",
                "wait_p95", "hold_p95", "maxw");
  out += buf;
  for (const ProfSiteSnapshot& site : snapshot.sites) {
    if (site.events() == 0) continue;
    // Phase rows indent by depth so the commit-phase tree reads as one.
    std::string label(static_cast<size_t>(site.depth) * 2, ' ');
    label += site.label;
    const char* mark = site.kind == ProfSiteKind::kLock ? "L" : "P";
    std::snprintf(
        buf, sizeof(buf),
        "%-40s %10llu %10llu %14llu %14llu %10.0f %10.0f %6llu %s\n",
        label.c_str(), static_cast<unsigned long long>(site.events()),
        static_cast<unsigned long long>(site.contended),
        static_cast<unsigned long long>(site.wait_nanos),
        static_cast<unsigned long long>(site.hold_nanos),
        site.wait_hist.Percentile(95), site.hold_hist.Percentile(95),
        static_cast<unsigned long long>(site.max_waiters), mark);
    out += buf;
  }
  return out;
}

std::string ProfSnapshotToFolded(const ProfSnapshot& snapshot) {
  std::string out;
  for (const ProfSiteSnapshot& site : snapshot.sites) {
    if (site.kind == ProfSiteKind::kLock) {
      AppendFoldedLine(&out, site.label + ";wait", site.wait_nanos);
      AppendFoldedLine(&out, site.label + ";hold", site.hold_nanos);
    } else {
      // Exclusive time: nested phases are separate rows of this snapshot,
      // so inclusive weights would double-count in the flame graph.
      AppendFoldedLine(&out, site.label, site.hold_nanos);
    }
  }
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  if (path == "-") {
    return std::fwrite(content.data(), 1, content.size(), stdout) ==
           content.size();
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  return std::fclose(f) == 0 && written == content.size();
}

}  // namespace obs
}  // namespace bpw
