// MetricsRegistry: named counters / gauges / histograms with a snapshot
// surface for the sampler and exporters.
//
// Hot-path discipline (the same reasoning as ContentionLock's layout): a
// counter increment from a worker thread must never bounce a shared cache
// line. Counter therefore shards its value across kCacheLineSize-aligned
// per-thread cells indexed by CurrentThreadId(); Add() is one relaxed
// fetch_add on the caller's cell and Sum() folds the cells. The
// BPW_METRIC_ADD macro additionally gates on a process-wide enabled flag so
// an instrumented hot path pays at most one relaxed atomic add (one relaxed
// load + branch when disabled).
//
// Components that already maintain their own atomic counters (ContentionLock,
// StorageEngine, the coordinators) do not mirror every increment into the
// registry — that would double the hot-path cost. They register a *source*:
// a callback the registry invokes at snapshot time to contribute named
// values. Duplicate names accumulate, so two coordinators alive at once sum
// into one series.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sync/mutex.h"
#include "sync/spinlock.h"
#include "util/cacheline.h"
#include "util/histogram.h"
#include "util/thread_annotations.h"
#include "util/thread_id.h"

namespace bpw {
namespace obs {

namespace internal {
inline std::atomic<bool> g_metrics_enabled{true} BPW_RELAXED_OK(
    "recording switch; increments may observe a toggle late");
}  // namespace internal

/// Process-wide recording switch consulted by BPW_METRIC_ADD. Snapshots and
/// sources are unaffected — only macro-guarded hot-path increments stop.
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
inline void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

/// Monotonic counter sharded across cacheline-padded cells so concurrent
/// writers from different threads never contend.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Add(uint64_t n) {
    cells_[CurrentThreadId() & (kShards - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum of all cells. Concurrent-writer safe; the result is a moment-in-
  /// time lower bound, exact once writers quiesce.
  uint64_t Sum() const {
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every cell with atomic stores; safe against concurrent Add()
  /// (increments racing the reset land in the new epoch or are dropped,
  /// never torn).
  void Reset() {
    for (auto& cell : cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  CacheAligned<std::atomic<uint64_t>> cells_[kShards];
};

/// A point-in-time signed value (queue depth, free frames, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0} BPW_RELAXED_OK("stats gauge");
};

/// Thread-safe wrapper over util's Histogram for off-hot-path distributions
/// (a Record is a short spinlock critical section; do not put this on a
/// per-access path).
class HistogramMetric {
 public:
  void Record(uint64_t v) {
    SpinLockGuard guard(lock_);
    hist_.Record(v);
  }

  Histogram snapshot() const {
    SpinLockGuard guard(lock_);
    return hist_;
  }

  void Reset() {
    SpinLockGuard guard(lock_);
    hist_.Reset();
  }

 private:
  mutable SpinLock lock_;
  Histogram hist_ BPW_GUARDED_BY(lock_);
};

/// One snapshot of every registered metric, keyed by name. std::map keeps
/// JSON output deterministically ordered.
struct MetricsSnapshot {
  uint64_t wall_nanos = 0;  ///< NowNanos() at snapshot time (monotonic)
  std::map<std::string, double> values;

  /// Accumulates (duplicate names sum — see the source discussion above).
  void Add(const std::string& name, double v) { values[name] += v; }

  double value(const std::string& name, double def = 0.0) const {
    auto it = values.find(name);
    return it == values.end() ? def : it->second;
  }

  /// Pointwise `this - earlier` (names missing from `earlier` count as 0).
  /// Meaningful for counter-like series; gauges subtract too, so interpret
  /// those as net change.
  MetricsSnapshot DeltaFrom(const MetricsSnapshot& earlier) const;

  /// One JSON object: {"t_ms":<monotonic ms>,"values":{"name":v,...}}.
  std::string ToJson() const;
};

/// Callback contributing values to a snapshot.
using MetricSourceFn = std::function<void(MetricsSnapshot&)>;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the library's components register into.
  static MetricsRegistry& Default();

  /// Returns the counter named `name`, creating it on first use. The pointer
  /// stays valid for the registry's lifetime, so components cache it and
  /// increment without any lookup.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  HistogramMetric* GetHistogram(const std::string& name);

  /// Registers a snapshot-time contributor. Returns an id for Unregister.
  /// The callback must stay valid until UnregisterSource returns (use
  /// ScopedMetricSource to tie it to the owning object's lifetime).
  uint64_t RegisterSource(MetricSourceFn fn);
  void UnregisterSource(uint64_t id);

  /// Reads every counter/gauge/histogram and invokes every source.
  /// Histograms contribute <name>.count/.mean/.p50/.p95/.max.
  MetricsSnapshot Snapshot() const;

  /// Resets owned counters and histograms (sources own their own state).
  void ResetCounters();

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      BPW_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ BPW_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_
      BPW_GUARDED_BY(mu_);
  std::vector<std::pair<uint64_t, MetricSourceFn>> sources_
      BPW_GUARDED_BY(mu_);
  uint64_t next_source_id_ BPW_GUARDED_BY(mu_) = 1;
};

/// RAII registration of a metric source: unregisters on destruction, so a
/// component whose last member this is can safely hand `this` to the
/// callback.
class ScopedMetricSource {
 public:
  ScopedMetricSource() = default;
  ScopedMetricSource(MetricsRegistry* registry, MetricSourceFn fn)
      : registry_(registry), id_(registry->RegisterSource(std::move(fn))) {}
  ~ScopedMetricSource() { Release(); }

  ScopedMetricSource(ScopedMetricSource&& other) noexcept {
    *this = std::move(other);
  }
  ScopedMetricSource& operator=(ScopedMetricSource&& other) noexcept {
    if (this != &other) {
      Release();
      registry_ = other.registry_;
      id_ = other.id_;
      other.registry_ = nullptr;
      other.id_ = 0;
    }
    return *this;
  }

 private:
  void Release() {
    if (registry_ != nullptr) {
      registry_->UnregisterSource(id_);
      registry_ = nullptr;
    }
  }

  MetricsRegistry* registry_ = nullptr;
  uint64_t id_ = 0;
};

}  // namespace obs
}  // namespace bpw

/// Hot-path increment: nothing when metrics are disabled, one relaxed
/// sharded atomic add when enabled. `counter` is an obs::Counter* (may be
/// null before registration).
#define BPW_METRIC_ADD(counter, n)                             \
  do {                                                         \
    ::bpw::obs::Counter* bpw_metric_c_ = (counter);            \
    if (bpw_metric_c_ != nullptr && ::bpw::obs::MetricsEnabled()) \
      bpw_metric_c_->Add(n);                                   \
  } while (0)
