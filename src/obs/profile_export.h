// Exporters for contention-profiler snapshots: JSON (machine), aligned text
// table (humans), and folded stacks (flamegraph tooling).
//
// The folded format is the lingua franca of flamegraph.pl / inferno /
// speedscope: one line per stack, frames joined with ';', a space, and an
// integer weight. Profiler paths are already ';'-joined, so phase rows
// export directly with their *exclusive* nanoseconds as the weight (a
// parent's self time and its children's times then sum to the parent's
// inclusive time, which is what makes the flame widths truthful). Lock rows
// split into two synthetic leaf frames, `<site>;wait` and `<site>;hold`, so
// one graph shows where threads bled time against each lock and which side
// — queueing or the critical section — is to blame.
#pragma once

#include <string>

#include "obs/contention_profiler.h"
#include "util/status.h"

namespace bpw {
namespace obs {

/// One JSON object:
/// {"total_lock_nanos":N,"sites":[{"label":...,"kind":"lock"|"phase",
///  "file":...,"line":N,"depth":N,"uncontended":N,"contended":N,
///  "wait_nanos":N,"hold_nanos":N,"max_waiters":N,
///  "wait":{"count":N,"mean":N,"p50":N,"p95":N,"p99":N,"max":N,
///          "buckets":[[low,count],...]},
///  "hold":{...}},...]}
/// Sites keep snapshot order (sorted by label), so output is deterministic.
/// The sparse bucket pairs carry the full distribution: feeding each pair
/// to Histogram::Add reproduces the histogram exactly, which is what lets
/// ProfSnapshotFromJson round-trip percentiles instead of approximating
/// them from the summary stats.
std::string ProfSnapshotToJson(const ProfSnapshot& snapshot);

/// Inverse of ProfSnapshotToJson. Accepts either a bare report document or
/// a full `bpw_run --json` document (the report is then taken from its
/// "contention" member). Used by tools/bpw_profile to re-render saved
/// reports as folded stacks or tables without re-running the experiment.
StatusOr<ProfSnapshot> ProfSnapshotFromJson(const std::string& text);

/// Aligned per-site table for terminal output. Lock rows show
/// contended/total acquire counts, wait and hold totals with p95s, and max
/// waiter depth; phase rows show entries, inclusive and exclusive totals.
std::string ProfSnapshotToTable(const ProfSnapshot& snapshot);

/// Folded-stack lines ("a;b;c 1234\n"), zero-weight rows omitted, ordered
/// by label. Weights are nanoseconds.
std::string ProfSnapshotToFolded(const ProfSnapshot& snapshot);

/// Writes `content` to `path` ("-" = stdout). Returns false on I/O failure.
/// Shared by the --contention-report flag and tools/bpw_profile.
bool WriteTextFile(const std::string& path, const std::string& content);

/// Static×dynamic hold-time reconciliation (`bpw_profile --reconcile`).
///
/// `costs_json` is the per-hold-site static cost file written by
/// `bpw_holdlint --costs`; `snapshot` is a measured contention report.
/// Joins the two on the profiler label (a hold site inherits the label its
/// lock bound with BindProfSite; a lock's static weight is the MAX over
/// its hold sites — the worst critical section dominates how long the lock
/// can be held), ranks both sides descending, and renders an aligned
/// table: label, static weight/rank, measured mean-hold ns/rank, Δrank.
/// Labels whose ranks diverge by 2 or more positions are flagged — either
/// the static model mis-weighs that section (loops the cost model cannot
/// see through, say) or the workload never exercises the statically-heavy
/// path; both are worth a look before trusting either ranking.
/// Fails only if `costs_json` is not a bpw_holdlint costs document.
StatusOr<std::string> ReconcileHoldCosts(const std::string& costs_json,
                                         const ProfSnapshot& snapshot);

}  // namespace obs
}  // namespace bpw
