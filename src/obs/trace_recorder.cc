#include "obs/trace_recorder.h"

#include <cstdio>

#include "obs/contention_profiler.h"
#include "obs/json.h"
#include "util/thread_annotations.h"

namespace bpw {
namespace obs {

namespace {

struct EventMeta {
  const char* name;
  const char* cat;
  bool span;             // "X" complete event vs "i" instant
  const char* arg_name;  // nullptr = no args object
};

EventMeta MetaFor(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kLockWait:
      return {"lock.wait", "lock", true, nullptr};
    case TraceEventKind::kLockHold:
      return {"lock.hold", "lock", true, nullptr};
    case TraceEventKind::kBatchCommit:
      return {"commit.batch", "commit", true, "batch"};
    case TraceEventKind::kLockFallback:
      return {"lock.fallback", "lock", false, nullptr};
    case TraceEventKind::kEviction:
      return {"pool.evict", "buffer", false, "page"};
    case TraceEventKind::kProfPhase:
      // Name resolved per event from the path id; see ToChromeTrace.
      return {"prof.phase", "prof", true, "path"};
    case TraceEventKind::kProfCounterWait:
    case TraceEventKind::kProfCounterHold:
      // "C" counter events take a dedicated emission path.
      return {"prof.counter", "prof", false, nullptr};
  }
  return {"unknown", "misc", false, nullptr};
}

std::atomic<uint64_t> g_next_recorder_id{1} BPW_RELAXED_OK(
    "id allocator; only uniqueness matters");

// Per-thread cache of the registered ring so the emit fast path is a tls
// compare instead of a mutex. Keyed by the recorder's process-unique id so
// multiple recorders (tests) stay correct, merely slower when interleaved.
struct TlsCache {
  uint64_t owner_id = 0;
  void* buffer = nullptr;
};
thread_local TlsCache tls_cache;

}  // namespace

TraceRecorder::TraceRecorder()
    : recorder_id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {
}

TraceRecorder& TraceRecorder::Default() {
  // Leaked on purpose: worker threads may emit during static destruction.
  static TraceRecorder* instance = new TraceRecorder();
  return *instance;
}

void TraceRecorder::SetBufferCapacity(size_t events) {
  capacity_.store(events < 16 ? 16 : events, std::memory_order_relaxed);
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  if (tls_cache.owner_id == recorder_id_) {
    return static_cast<ThreadBuffer*>(tls_cache.buffer);
  }
  auto buffer = std::make_unique<ThreadBuffer>(
      CurrentThreadId(), capacity_.load(std::memory_order_relaxed));
  ThreadBuffer* raw = buffer.get();
  {
    MutexGuard guard(mu_);
    // Re-use a buffer this thread registered earlier (cache was stolen by
    // another recorder instance in between).
    for (const auto& existing : buffers_) {
      if (existing->tid == raw->tid) {
        tls_cache = {recorder_id_, existing.get()};
        return existing.get();
      }
    }
    buffers_.push_back(std::move(buffer));
  }
  tls_cache = {recorder_id_, raw};
  return raw;
}

void TraceRecorder::Emit(TraceEventKind kind, uint64_t start_nanos,
                         uint64_t dur_nanos, uint64_t arg) {
  if (!enabled()) return;
  ThreadBuffer* buf = BufferForThisThread();
  const uint64_t seq = buf->head.fetch_add(1, std::memory_order_relaxed);
  std::atomic<uint64_t>* w =
      &buf->words[(seq % buf->capacity) * kWordsPerEvent];
  w[0].store((static_cast<uint64_t>(kind) << 32) | buf->tid,
             std::memory_order_relaxed);
  w[1].store(start_nanos, std::memory_order_relaxed);
  w[2].store(dur_nanos, std::memory_order_relaxed);
  w[3].store(arg, std::memory_order_relaxed);
}

uint64_t TraceRecorder::total_events() const {
  MutexGuard guard(mu_);
  uint64_t total = 0;
  for (const auto& buf : buffers_) {
    total += buf->head.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t TraceRecorder::dropped_events() const {
  MutexGuard guard(mu_);
  uint64_t dropped = 0;
  for (const auto& buf : buffers_) {
    const uint64_t head = buf->head.load(std::memory_order_relaxed);
    if (head > buf->capacity) dropped += head - buf->capacity;
  }
  return dropped;
}

std::string TraceRecorder::ToChromeTrace() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
      "\"args\":{\"name\":\"bpwrapper\"}}";

  MutexGuard guard(mu_);
  char buf[256];
  for (const auto& tb : buffers_) {
    // thread_name plus a stable thread_sort_index: thread ids are dense and
    // assigned in spawn order, so sorting by tid keeps worker rows in a
    // deterministic, human-sensible order in Perfetto instead of
    // first-event order.
    std::snprintf(buf, sizeof(buf),
                  ",{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                  "\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"worker-%u\"}}"
                  ",{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                  "\"name\":\"thread_sort_index\","
                  "\"args\":{\"sort_index\":%u}}",
                  tb->tid, tb->tid, tb->tid, tb->tid);
    out += buf;
    const uint64_t head = tb->head.load(std::memory_order_relaxed);
    const uint64_t n = head < tb->capacity ? head : tb->capacity;
    for (uint64_t i = 0; i < n; ++i) {
      const std::atomic<uint64_t>* w = &tb->words[i * kWordsPerEvent];
      const uint64_t w0 = w[0].load(std::memory_order_relaxed);
      const uint64_t start = w[1].load(std::memory_order_relaxed);
      const uint64_t dur = w[2].load(std::memory_order_relaxed);
      const uint64_t arg = w[3].load(std::memory_order_relaxed);
      const auto kind = static_cast<TraceEventKind>(w0 >> 32);
      const uint32_t tid = static_cast<uint32_t>(w0);
      const EventMeta meta = MetaFor(kind);

      if (kind == TraceEventKind::kProfCounterWait ||
          kind == TraceEventKind::kProfCounterHold) {
        // Chrome "C" counter sample. One counter track per site label
        // (name+pid key the track); wait and hold are two series on it.
        const char* series = kind == TraceEventKind::kProfCounterWait
                                 ? "wait_ns"
                                 : "hold_ns";
        std::snprintf(buf, sizeof(buf),
                      ",{\"name\":\"%s\",\"cat\":\"prof\",\"ph\":\"C\","
                      "\"pid\":1,\"ts\":%.3f,\"args\":{\"%s\":%llu}}",
                      ProfPathLabel(static_cast<ProfSiteId>(dur)),
                      static_cast<double>(start) / 1e3, series,
                      static_cast<unsigned long long>(arg));
        out += buf;
        continue;
      }

      const char* name = kind == TraceEventKind::kProfPhase
                             ? ProfPathLabel(static_cast<ProfSiteId>(arg))
                             : meta.name;
      std::snprintf(buf, sizeof(buf),
                    ",{\"name\":\"%s\",\"cat\":\"%s\",\"pid\":1,"
                    "\"tid\":%u,\"ts\":%.3f",
                    name, meta.cat, tid,
                    static_cast<double>(start) / 1e3);
      out += buf;
      if (meta.span) {
        std::snprintf(buf, sizeof(buf), ",\"ph\":\"X\",\"dur\":%.3f",
                      static_cast<double>(dur) / 1e3);
      } else {
        std::snprintf(buf, sizeof(buf), ",\"ph\":\"i\",\"s\":\"t\"");
      }
      out += buf;
      if (meta.arg_name != nullptr) {
        std::snprintf(buf, sizeof(buf), ",\"args\":{\"%s\":%llu}",
                      meta.arg_name, static_cast<unsigned long long>(arg));
        out += buf;
      }
      out += '}';
    }
  }
  out += "]}";
  return out;
}

bool TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ToChromeTrace();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

void TraceRecorder::Clear() {
  MutexGuard guard(mu_);
  for (const auto& buf : buffers_) {
    buf->head.store(0, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace bpw
