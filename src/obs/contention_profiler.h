// ContentionProfiler: per-site lock wait/hold attribution and commit-phase
// breakdown.
//
// The paper's whole argument is quantitative: Fig. 2 measures lock
// *wait + hold* nanoseconds per access, and §V attributes the scalability
// wins to shrinking both. ContentionLock's aggregate counters say how much
// one lock cost in total; this profiler says *where*: every instrumented
// acquisition is attributed to a static ProfSite (file:line + label,
// registered once per call site), and the coordinator commit path is
// further broken into nestable phases so a report shows exactly which
// nanoseconds of the critical section went to queue draining, policy
// updates, or post-commit bookkeeping — the numbers an early-lock-release
// optimization must move out of the hold time.
//
// Data model
//   site   a static code location (BPW_PROF_SITE / BPW_PROF_PHASE macro
//          expansion): label, file, line, kind (lock or phase).
//   path   a chain of sites ("commit;policy_update"): phases nest, so the
//          same site reached under different parents accumulates
//          separately. Lock sites are always root paths. Paths are the
//          accumulation key and the rows of every export.
//
// Accumulation follows MetricsRegistry's hot-path discipline: each path
// owns kProfShards cacheline-aligned cells indexed by CurrentThreadId(), so
// concurrent recorders never bounce a shared line. Each cell holds
// contended/uncontended acquire counts, total wait and hold nanoseconds,
// and log-bucketed wait/hold histograms using util/histogram.h's exact
// bucket scheme (snapshots reconstruct real Histogram objects, so
// percentile queries and merges behave identically to the response-time
// histograms). Per-path max-waiter depth is tracked on the contended path
// only.
//
// Phase accounting: a BPW_PROF_PHASE scope records its *inclusive* time
// (entry to exit) and its *exclusive* time (inclusive minus the inclusive
// time of directly nested phases). Exports report exclusive time so a
// folded stack sums correctly; inclusive time is kept for the parent rows.
//
// Cost model: BPW_PROF=0 builds compile all of this out (macros empty, lock
// hooks removed). BPW_PROF=1 with profiling disabled — the default — costs
// an instrumented lock one relaxed load + branch per acquisition. Enabled,
// an uncontended acquisition pays two clock reads plus two relaxed
// fetch_adds and two histogram-bucket increments (shared with
// LockInstrumentation::kTiming's clock reads where both are on).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/prof_site.h"
#include "util/histogram.h"

namespace bpw {
namespace obs {

enum class ProfSiteKind : uint8_t {
  kLock,   ///< a lock acquisition site (wait + hold attribution)
  kPhase,  ///< a BPW_PROF_PHASE scope (inclusive/exclusive attribution)
};

/// Capacity limits. Sites and paths are static program properties, not
/// per-run data; overflowing registrations return kInvalidProfSite and the
/// overflowed site records nothing (sound, just invisible).
inline constexpr uint32_t kMaxProfSites = 128;
inline constexpr uint32_t kMaxProfPaths = 256;
inline constexpr int kMaxProfPhaseDepth = 16;
inline constexpr size_t kProfShards = 16;

/// Registers a static site. Call once per code location (the BPW_PROF_*
/// macros wrap this in a function-local static). `label` and `file` must
/// have static storage duration (string literals). Re-registering an
/// identical (label, kind) pair returns the existing id.
ProfSiteId RegisterProfSite(const char* file, int line, const char* label,
                            ProfSiteKind kind);

/// Returns the accumulation key (root path id) for a lock site — what a
/// lock binds and what the ProfRecord* functions in prof_site.h expect.
ProfSiteId ProfRootPath(ProfSiteId site);

/// Full ';'-joined label of a path id ("?" if unknown). The pointer stays
/// valid for the process lifetime (the registry is immutable once published
/// and intentionally leaked), which is what lets the trace exporter resolve
/// kProfPhase event names without copying.
const char* ProfPathLabel(ProfSiteId path);

/// One export row: a path with its merged counters and histograms.
struct ProfSiteSnapshot {
  std::string label;  ///< full path, ';'-joined ("commit;policy_update")
  std::string file;   ///< leaf site's file (basename not stripped)
  int line = 0;       ///< leaf site's line
  ProfSiteKind kind = ProfSiteKind::kLock;
  int depth = 0;      ///< 0 for root paths, 1 for their children, ...

  // kLock: acquisition counts split by whether the first non-blocking
  // attempt failed. kPhase: `uncontended` counts scope entries, `contended`
  // is 0.
  uint64_t uncontended = 0;
  uint64_t contended = 0;
  // kLock: total blocked-wait / lock-held nanoseconds.
  // kPhase: total inclusive / exclusive nanoseconds.
  uint64_t wait_nanos = 0;
  uint64_t hold_nanos = 0;
  /// kLock only: maximum concurrent blocked waiters observed.
  uint64_t max_waiters = 0;

  /// Distribution of per-event wait (kLock) or inclusive (kPhase) times.
  Histogram wait_hist;
  /// Distribution of per-event hold (kLock) or exclusive (kPhase) times.
  Histogram hold_hist;

  uint64_t events() const { return uncontended + contended; }
};

/// A consistent-enough snapshot of every registered path, sorted by label.
/// Taken while recorders run it is a moment-in-time lower bound, exact once
/// they quiesce (same contract as MetricsRegistry).
struct ProfSnapshot {
  std::vector<ProfSiteSnapshot> sites;

  /// Sum of wait+hold nanoseconds over kLock rows — the profiler's side of
  /// the Fig. 2 (wait+hold)/access computation.
  uint64_t TotalLockNanos() const;

  const ProfSiteSnapshot* Find(const std::string& label) const;
};

/// Merges every shard of every path into a snapshot.
ProfSnapshot CollectProfSnapshot();

/// Emits one Chrome-trace counter sample (kProfCounterWait/Hold) per active
/// lock path: cumulative wait and hold nanoseconds at `now_nanos`. The
/// stats sampler calls this each tick while both tracing and profiling are
/// on, which is what turns the per-site totals into a time series in the
/// merged trace. Cheap relative to CollectProfSnapshot: sums the shard
/// counters only, no strings or histograms.
void EmitProfTraceCounters(uint64_t now_nanos);

/// Zeroes all accumulators (counts, totals, histograms, waiter maxima).
/// Registrations and lock bindings survive. Safe against concurrent
/// recording: cells are reset with atomic stores, so racing increments land
/// in the new epoch whole.
void ResetProfiler();

/// RAII phase scope. Use through BPW_PROF_PHASE so BPW_PROF=0 builds erase
/// the scope (and its clock reads) entirely; bpw_lint flags direct
/// ScopedProfPhase construction inside critical sections for this reason.
class ScopedProfPhase {
 public:
  explicit ScopedProfPhase(ProfSiteId site);
  ~ScopedProfPhase();

  ScopedProfPhase(const ScopedProfPhase&) = delete;
  ScopedProfPhase& operator=(const ScopedProfPhase&) = delete;

 private:
  ProfSiteId path_ = kInvalidProfSite;  // resolved against the phase stack
};

}  // namespace obs
}  // namespace bpw

#if BPW_PROF

/// Registers (once) and yields the root-path id for a lock site; bind the
/// result with ContentionLock/SpinLock::BindProfSite.
#define BPW_PROF_SITE(label)                                       \
  ([]() -> ::bpw::obs::ProfSiteId {                                \
    static const ::bpw::obs::ProfSiteId bpw_prof_site_id_ =        \
        ::bpw::obs::ProfRootPath(::bpw::obs::RegisterProfSite(     \
            __FILE__, __LINE__, label,                             \
            ::bpw::obs::ProfSiteKind::kLock));                     \
    return bpw_prof_site_id_;                                      \
  }())

#define BPW_PROF_PHASE_CAT2(a, b) a##b
#define BPW_PROF_PHASE_CAT(a, b) BPW_PROF_PHASE_CAT2(a, b)

/// Opens a nestable profiling phase covering the rest of the enclosing
/// scope. Sanctioned inside critical sections (the clock reads it implies
/// are the measurement itself and vanish under BPW_PROF=0) — bpw_lint
/// recognizes exactly this spelling.
#define BPW_PROF_PHASE(label)                                            \
  static const ::bpw::obs::ProfSiteId BPW_PROF_PHASE_CAT(                \
      bpw_prof_phase_site_, __LINE__) =                                  \
      ::bpw::obs::RegisterProfSite(__FILE__, __LINE__, label,            \
                                   ::bpw::obs::ProfSiteKind::kPhase);    \
  ::bpw::obs::ScopedProfPhase BPW_PROF_PHASE_CAT(bpw_prof_phase_,        \
                                                 __LINE__)(              \
      BPW_PROF_PHASE_CAT(bpw_prof_phase_site_, __LINE__))

#else  // !BPW_PROF

#define BPW_PROF_SITE(label) (::bpw::obs::kInvalidProfSite)
#define BPW_PROF_PHASE(label) \
  do {                        \
  } while (0)

#endif  // BPW_PROF
