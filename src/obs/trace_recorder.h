// TraceRecorder: per-thread lock-free ring buffers of timed events, exported
// in Chrome trace-event JSON (load in chrome://tracing or
// https://ui.perfetto.dev).
//
// The paper's aggregate numbers (contentions per million accesses) say *how
// much* the lock hurt; a trace says *when* — which latency spike lines up
// with a blocking Lock() fallback, how batch sizes breathe over a run. The
// recorded kinds mirror exactly the paper's events of interest: lock wait
// spans, lock hold spans, batch-commit spans (arg = batch size),
// blocking-fallback instants, and eviction instants.
//
// Concurrency design: each thread writes only its own ring (registered on
// first emit, owned by the recorder so events survive thread exit). Every
// stored word and the ring head are relaxed atomics, so concurrent export
// is race-free; an export taken while writers are running may see a few
// half-written (torn) events, which is acceptable for a diagnostic trace —
// export after joining workers for exact output. When tracing is disabled
// (the default) an instrumented code path pays one relaxed load + branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sync/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_id.h"

namespace bpw {
namespace obs {

enum class TraceEventKind : uint32_t {
  kLockWait = 0,     ///< span: blocked inside Lock()
  kLockHold = 1,     ///< span: lock held
  kBatchCommit = 2,  ///< span: BP-Wrapper batch commit; arg = batch size
  kLockFallback = 3, ///< instant: queue full, blocking Lock() fallback
  kEviction = 4,     ///< instant: page evicted; arg = page id
  // Contention-profiler events (obs/contention_profiler.h). The arg is a
  // ProfSiteId path; the exporter resolves it to the ';'-joined path label
  // via ProfPathLabel(), so the stored event stays 4 words.
  kProfPhase = 5,        ///< span: one BPW_PROF_PHASE scope; arg = path id
  kProfCounterWait = 6,  ///< counter sample: cumulative lock wait ns.
                         ///< Counters have no duration, so the dur word
                         ///< carries the path id and arg carries the value.
  kProfCounterHold = 7,  ///< counter sample: cumulative lock hold ns,
                         ///< encoded like kProfCounterWait
};

class TraceRecorder {
 public:
  /// The process-wide recorder every instrumented component emits into.
  static TraceRecorder& Default()
      BPW_HOLD_EFFECT_OK(alloc, "one-time lazy singleton construction; "
                                "steady-state calls never allocate");

  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Ring capacity (events) for buffers created after this call. Existing
  /// thread buffers keep their size.
  void SetBufferCapacity(size_t events);

  /// Records one event from the calling thread. No-op when disabled.
  /// `start_nanos` is a NowNanos() monotonic timestamp; spans carry their
  /// duration, instants pass dur_nanos = 0.
  void Emit(TraceEventKind kind, uint64_t start_nanos, uint64_t dur_nanos,
            uint64_t arg);

  /// Total events emitted (including ones overwritten by ring wrap).
  uint64_t total_events() const;
  /// Events lost to ring wrap (oldest-first within each thread).
  uint64_t dropped_events() const;

  /// Renders everything currently buffered as a Chrome trace JSON document.
  std::string ToChromeTrace() const;

  /// ToChromeTrace() to a file. Returns false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// Discards all buffered events (buffers stay registered). Call only
  /// while emitters are quiescent if exact counts matter.
  void Clear();

 private:
  // 4 relaxed-atomic words per event: {kind<<32|tid, start, dur, arg}.
  static constexpr size_t kWordsPerEvent = 4;

  struct ThreadBuffer {
    explicit ThreadBuffer(uint32_t tid_in, size_t capacity_in)
        : tid(tid_in),
          capacity(capacity_in),
          words(new std::atomic<uint64_t>[capacity_in * kWordsPerEvent]()) {}

    const uint32_t tid;
    const size_t capacity;
    // Events ever emitted by this thread. Single-writer; concurrent export
    // reads a stale-or-torn tail by design (trace is best-effort).
    std::atomic<uint64_t> head{0} BPW_RELAXED_OK(
        "single-writer ring index; export tolerates a stale tail");
    std::unique_ptr<std::atomic<uint64_t>[]> words BPW_RELAXED_OK(
        "per-word-atomic ring payload; racy export reads are by design");
  };

  ThreadBuffer* BufferForThisThread();

  // Process-unique, never reused: the per-thread buffer cache keys on this
  // id rather than the recorder's address, so a new recorder allocated where
  // a destroyed one lived can never validate a stale cache entry.
  const uint64_t recorder_id_;

  std::atomic<bool> enabled_{false} BPW_RELAXED_OK(
      "recording switch; emitters may observe a toggle late");
  // 16Ki events/thread (512 KiB). Set while quiesced.
  std::atomic<size_t> capacity_{1 << 14} BPW_RELAXED_OK(
      "configured before threads start emitting");

  mutable Mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ BPW_GUARDED_BY(mu_);
};

/// Convenience wrappers over TraceRecorder::Default() for hot paths.
inline bool TraceEnabled() { return TraceRecorder::Default().enabled(); }
inline void TraceEmit(TraceEventKind kind, uint64_t start_nanos,
                      uint64_t dur_nanos, uint64_t arg = 0) {
  TraceRecorder::Default().Emit(kind, start_nanos, dur_nanos, arg);
}

}  // namespace obs
}  // namespace bpw
