// Minimal contention-profiler hook surface for the locking layer.
//
// src/sync/ locks carry a ProfSiteId and call the ProfRecord* functions on
// their acquire/release paths. Those locks must not pull in the full
// profiler (its registry, histograms, and export types), so this header is
// the dependency floor: the site-id type, the process-wide runtime switch,
// and the out-of-line recording entry points — nothing else.
//
// Build-time gate: BPW_PROF defaults to 1. Configuring with -DBPW_PROF=0
// (the CMake option of the same name) removes every profiling branch from
// the lock hot paths and turns the BPW_PROF_* macros in
// contention_profiler.h into no-ops; the recording functions still link so
// mixed call sites cannot break the build. With BPW_PROF=1 an instrumented
// lock whose profiling is disabled (the default) pays one relaxed load and
// branch per acquisition, the same budget as BPW_METRIC_ADD.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/thread_annotations.h"

#ifndef BPW_PROF
#define BPW_PROF 1
#endif

namespace bpw {
namespace obs {

/// Index of a registered profiling site (see contention_profiler.h).
/// Site ids double as accumulation keys: every lock bound to the same site
/// aggregates into one row (all page-table shards are one site).
using ProfSiteId = uint32_t;
inline constexpr ProfSiteId kInvalidProfSite = 0xFFFFFFFFu;

namespace internal {
inline std::atomic<bool> g_prof_enabled{false} BPW_RELAXED_OK(
    "profiling switch; sites may observe a toggle late");
}  // namespace internal

/// Process-wide profiling switch. Off by default: sites register and locks
/// stay bound either way, only the per-acquisition recording is gated.
inline bool ProfilerEnabled() {
  return internal::g_prof_enabled.load(std::memory_order_relaxed);
}
void SetProfilerEnabled(bool enabled);

/// Records one lock acquisition at `site`. `contended` marks an acquisition
/// whose first non-blocking attempt failed; `wait_nanos` is the time spent
/// blocked/spinning (0 for uncontended acquisitions).
void ProfRecordAcquire(ProfSiteId site, bool contended, uint64_t wait_nanos);

/// Records one lock release: `hold_nanos` spent inside the critical section.
void ProfRecordHold(ProfSiteId site, uint64_t hold_nanos);

/// Waiter-depth bookkeeping around a blocked acquisition; the profiler
/// tracks the maximum concurrent waiter count per site.
void ProfWaiterEnter(ProfSiteId site);
void ProfWaiterExit(ProfSiteId site);

}  // namespace obs
}  // namespace bpw
