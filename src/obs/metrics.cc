#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"
#include "util/clock.h"

namespace bpw {
namespace obs {

MetricsSnapshot MetricsSnapshot::DeltaFrom(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta;
  delta.wall_nanos = wall_nanos - earlier.wall_nanos;
  for (const auto& [name, v] : values) {
    delta.values[name] = v - earlier.value(name);
  }
  return delta;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"t_ms\":";
  out += JsonNumber(static_cast<double>(wall_nanos) / 1e6);
  out += ",\"values\":{";
  bool first = true;
  for (const auto& [name, v] : values) {
    if (!first) out += ',';
    first = false;
    out += JsonString(name);
    out += ':';
    out += JsonNumber(v);
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked on purpose: worker threads and counters handed out by GetCounter
  // may outlive static destruction order.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexGuard guard(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexGuard guard(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexGuard guard(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<HistogramMetric>();
  return slot.get();
}

uint64_t MetricsRegistry::RegisterSource(MetricSourceFn fn) {
  MutexGuard guard(mu_);
  const uint64_t id = next_source_id_++;
  sources_.emplace_back(id, std::move(fn));
  return id;
}

void MetricsRegistry::UnregisterSource(uint64_t id) {
  MutexGuard guard(mu_);
  sources_.erase(
      std::remove_if(sources_.begin(), sources_.end(),
                     [id](const auto& s) { return s.first == id; }),
      sources_.end());
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.wall_nanos = NowNanos();
  MutexGuard guard(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.Add(name, static_cast<double>(counter->Sum()));
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.Add(name, static_cast<double>(gauge->value()));
  }
  for (const auto& [name, hist] : histograms_) {
    const Histogram h = hist->snapshot();
    snap.Add(name + ".count", static_cast<double>(h.count()));
    snap.Add(name + ".mean", h.Mean());
    snap.Add(name + ".p50", h.Percentile(50));
    snap.Add(name + ".p95", h.Percentile(95));
    snap.Add(name + ".max", static_cast<double>(h.max()));
  }
  for (const auto& [id, fn] : sources_) {
    (void)id;
    fn(snap);
  }
  return snap;
}

void MetricsRegistry::ResetCounters() {
  MutexGuard guard(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace obs
}  // namespace bpw
