// FaultInjector: seeded storage-fault injection for the simulated disk.
//
// A production buffer manager must surface I/O errors as Status values, not
// crashes, and must never let a failed or torn write masquerade as a durable
// one. The injector sits under StorageEngine (SetFaultInjector) and, from a
// single PRNG seed, deterministically decides per I/O whether to:
//   - fail the operation (Status::IOError returned to the caller, which the
//     buffer pool must propagate through FetchPage / FlushAll);
//   - delay it (a latency spike, honoured through the engine's configured
//     sleeping or busy-wait latency mode);
//   - tear a write (only the first half of the page stamp reaches the
//     ground-truth store, so a later read's stamp consistency check — and
//     the stress harness — can detect the torn page).
//
// Decisions are counted so tests can reconcile observed failures against
// injected ones ("every lost update must be accounted for by an injected
// fault").
#pragma once

#include <atomic>
#include <cstdint>

#include "sync/spinlock.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace bpw {
namespace testing {

/// Per-operation fault probabilities. All default to "never".
struct FaultPlan {
  uint64_t seed = 1;
  double read_error_probability = 0.0;
  double write_error_probability = 0.0;
  /// Probability of an added latency spike of `latency_spike_nanos`.
  double read_spike_probability = 0.0;
  double write_spike_probability = 0.0;
  uint64_t latency_spike_nanos = 0;
  /// Probability a write is torn: only the first stamp word is persisted.
  double torn_write_probability = 0.0;

  bool enabled() const {
    return read_error_probability > 0 || write_error_probability > 0 ||
           read_spike_probability > 0 || write_spike_probability > 0 ||
           torn_write_probability > 0;
  }
};

/// Counters of injected faults.
struct FaultStats {
  uint64_t read_errors = 0;
  uint64_t write_errors = 0;
  uint64_t latency_spikes = 0;
  uint64_t torn_writes = 0;
};

/// What the storage engine should do to the current I/O.
struct FaultDecision {
  Status status;                    ///< non-OK: fail the I/O with this
  uint64_t extra_latency_nanos = 0; ///< add to the modelled latency
  bool tear_write = false;          ///< persist only half the stamp
};

/// Thread-safe seeded fault source. One instance per StorageEngine under
/// test; decisions are drawn from a single PRNG stream (guarded by a
/// spinlock — fault-injected runs are correctness runs, not benchmarks).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(plan), rng_(plan.seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  FaultDecision ForRead(PageId page);
  FaultDecision ForWrite(PageId page);

  const FaultPlan& plan() const { return plan_; }
  FaultStats stats() const;

 private:
  FaultPlan plan_;
  SpinLock lock_;
  Random rng_ BPW_GUARDED_BY(lock_);

  std::atomic<uint64_t> read_errors_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> write_errors_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> latency_spikes_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> torn_writes_{0} BPW_RELAXED_OK("stats counter");
};

}  // namespace testing
}  // namespace bpw
