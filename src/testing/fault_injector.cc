#include "testing/fault_injector.h"

#include <string>

namespace bpw {
namespace testing {

FaultDecision FaultInjector::ForRead(PageId page) {
  FaultDecision d;
  bool fail = false;
  bool spike = false;
  {
    SpinLockGuard guard(lock_);
    fail = rng_.Bernoulli(plan_.read_error_probability);
    if (!fail) spike = rng_.Bernoulli(plan_.read_spike_probability);
  }
  if (fail) {
    read_errors_.fetch_add(1, std::memory_order_relaxed);
    d.status = Status::IOError("injected read failure on page " +
                               std::to_string(page));
    return d;
  }
  if (spike) {
    latency_spikes_.fetch_add(1, std::memory_order_relaxed);
    d.extra_latency_nanos = plan_.latency_spike_nanos;
  }
  return d;
}

FaultDecision FaultInjector::ForWrite(PageId page) {
  FaultDecision d;
  bool fail = false;
  bool spike = false;
  bool tear = false;
  {
    SpinLockGuard guard(lock_);
    fail = rng_.Bernoulli(plan_.write_error_probability);
    if (!fail) {
      spike = rng_.Bernoulli(plan_.write_spike_probability);
      tear = rng_.Bernoulli(plan_.torn_write_probability);
    }
  }
  if (fail) {
    write_errors_.fetch_add(1, std::memory_order_relaxed);
    d.status = Status::IOError("injected write failure on page " +
                               std::to_string(page));
    return d;
  }
  if (spike) {
    latency_spikes_.fetch_add(1, std::memory_order_relaxed);
    d.extra_latency_nanos = plan_.latency_spike_nanos;
  }
  if (tear) {
    torn_writes_.fetch_add(1, std::memory_order_relaxed);
    d.tear_write = true;
  }
  return d;
}

FaultStats FaultInjector::stats() const {
  FaultStats s;
  s.read_errors = read_errors_.load(std::memory_order_relaxed);
  s.write_errors = write_errors_.load(std::memory_order_relaxed);
  s.latency_spikes = latency_spikes_.load(std::memory_order_relaxed);
  s.torn_writes = torn_writes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace testing
}  // namespace bpw
