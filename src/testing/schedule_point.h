// ScheduleController / BPW_SCHEDULE_POINT: the serialization-point interface
// shared by seeded schedule perturbation (stress testing) and systematic
// exploration (the src/mc model checker).
//
// The paper's protocol (TryLock batching + commit-time re-validation, §IV-B)
// is only correct if it survives adversarial interleavings — the exact
// schedules a TSan-ed loop on a lightly loaded machine rarely produces. A
// BPW_SCHEDULE_POINT(name) is placed at every racy window in the library
// (lock acquisition, the eviction select→latch gap, pin/publish paths).
// Normally it costs one relaxed atomic load and a predicted branch; when a
// ScheduleController is installed, each point calls into the controller's
// virtual hook set. Two controller families implement the hooks:
//
//  - The base ScheduleController (this file): each point consults a
//    per-thread PRNG derived from (controller seed, thread index) and
//    deterministically decides to do nothing, yield, spin, or briefly sleep
//    — widening race windows in stress runs (tests/stress/).
//  - mc::CooperativeScheduler (src/mc/): each point is a *serialization
//    point* where the one-thread-at-a-time scheduler may deterministically
//    context-switch, which is what lets the model checker enumerate
//    interleavings by DFS.
//
// Both modes share one hook path: the decision of "what happens at this
// point" is a virtual call on the installed controller, so instrumented code
// (locks, the buffer pool, coordinators) never knows which mode is driving.
//
// Beyond plain points, the interface carries the events systematic
// exploration needs:
//   - lock transitions  (LockWillAcquire / LockAcquired / LockTryFailed /
//     LockReleased), reported by the src/sync lock wrappers, keep the
//     controller's lock model in sync and feed the happens-before race
//     certifier's vector clocks;
//   - cooperative yields (Yield) replace raw std::this_thread::yield() in
//     retry loops so the model checker can apply the CHESS fairness rule
//     (a yielding thread is deprioritized instead of busy-spinning forever);
//   - guarded-state accesses (Access) let the vector-clock race certifier
//     check that GUARDED_BY fields really are ordered;
//   - a condition-variable bridge (PrepareWait / CommitWait / NotifyAll)
//     lets the buffer pool's single-flight miss path park cooperatively
//     instead of blocking in the OS, which would hang a one-thread-at-a-time
//     scheduler.
//
// Replay model (seeded mode): given the same seed, every thread makes the
// same perturbation decision sequence, so a stress failure found at seed N
// is re-run with --seed=N. The OS scheduler still has the final word, so
// replay is best-effort rather than cycle-exact — in practice the
// perturbations dominate and seeded failures reproduce reliably. (The model
// checker's replay, by contrast, is exact: see src/mc/replay.h.)
//
// Builds that must not carry the check can compile the macros away entirely
// with -DBPW_SCHEDULE_POINTS=0 (see the CMake option of the same name).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "util/random.h"

#include "util/thread_annotations.h"

namespace bpw {
namespace testing {

/// Tuning knobs for schedule perturbation. Probabilities are evaluated
/// independently, in order (sleep, then yield, then spin); the defaults are
/// aggressive on purpose — this runs in stress tests, not production.
struct ScheduleOptions {
  uint64_t seed = 1;
  /// Probability a point parks the thread for a random [1, max_sleep_micros]
  /// microsecond sleep (forces wide reorderings, lets waiters overtake).
  double sleep_probability = 0.002;
  uint64_t max_sleep_micros = 100;
  /// Probability a point calls std::this_thread::yield().
  double yield_probability = 0.05;
  /// Probability a point busy-spins for a random [1, max_spin_iterations]
  /// dependent-arithmetic loop (small, cache-local delays).
  double spin_probability = 0.15;
  uint32_t max_spin_iterations = 256;
};

/// Seeded interleaving perturbator and the virtual decision-source interface
/// for systematic exploration. Install() makes it the process-global
/// controller consulted by every BPW_SCHEDULE_POINT; Uninstall() (or
/// destruction) restores the zero-cost path. Only one controller may be
/// installed at a time.
class ScheduleController {
 public:
  explicit ScheduleController(ScheduleOptions options = ScheduleOptions());
  virtual ~ScheduleController();

  ScheduleController(const ScheduleController&) = delete;
  ScheduleController& operator=(const ScheduleController&) = delete;

  /// Registers this controller as the global one. Must not already have a
  /// controller installed.
  void Install();
  void Uninstall();

  /// The installed controller, or nullptr. Inline relaxed load: this is the
  /// entire cost of a schedule point in a run without a controller.
  static ScheduleController* Current() {
    return g_current.load(std::memory_order_relaxed);
  }

  /// Pins the calling thread's perturbation stream to `index`, making the
  /// per-thread decision sequence independent of which thread happens to hit
  /// a schedule point first. Stress harnesses call this with the worker's
  /// creation index; unbound threads get a first-come index.
  static void BindCurrentThread(uint64_t index);

  /// The index the calling thread was bound to, or kUnboundThread if
  /// BindCurrentThread was never called on it.
  static uint64_t CurrentThreadIndex();
  static constexpr uint64_t kUnboundThread = ~0ULL;

  // --- The decision-source interface -------------------------------------
  // Every hook below is called from instrumented code while this controller
  // is installed. The base implementations are the seeded-random mode; the
  // model checker's cooperative scheduler overrides all of them.

  /// Called by BPW_SCHEDULE_POINT / _OBJ. `obj` identifies the shared
  /// object the surrounding code is about to touch (a lock address, a
  /// page-bucket), or nullptr when the point is not attributable to one
  /// object; the DPOR dependence relation is keyed on it. The seeded mode
  /// ignores `obj`, draws this thread's next perturbation decision and
  /// executes it. Lock-free (thread-local state only), so it is safe inside
  /// any lock implementation.
  virtual void Perturb(const char* point, const void* obj = nullptr);

  /// A blocking acquisition of `lock` is about to be attempted. The
  /// cooperative scheduler parks the caller until its lock model says the
  /// acquisition will succeed without blocking in the OS. No-op in seeded
  /// mode.
  virtual void LockWillAcquire(const void* lock, const char* point);

  /// `lock` was acquired (blocking path or successful TryLock). Feeds the
  /// lock model and joins the lock's release clock into the caller's vector
  /// clock. No-op in seeded mode.
  virtual void LockAcquired(const void* lock, const char* point);

  /// A TryLock on `lock` returned false. No-op in seeded mode.
  virtual void LockTryFailed(const void* lock, const char* point);

  /// `lock` was released (called AFTER the underlying unlock, so a
  /// cooperative switch here hands the lock to a waiter). No-op in seeded
  /// mode.
  virtual void LockReleased(const void* lock, const char* point);

  /// A retry loop is giving other threads a chance to run. Seeded mode
  /// forwards to std::this_thread::yield(); the cooperative scheduler marks
  /// the caller passive (CHESS fairness) and switches.
  virtual void Yield(const char* point);

  /// A guarded-state access for the vector-clock race certifier: the caller
  /// is reading (is_write=false) or writing (is_write=true) the state
  /// identified by `obj`. No-op in seeded mode.
  virtual void Access(const void* obj, const char* point, bool is_write);

  // --- Condition-variable bridge ------------------------------------------
  // A cooperative scheduler cannot let a worker block in the OS on a real
  // condition variable (the scheduler would deadlock with every thread
  // parked). The bridge protocol, used by BufferPool's single-flight miss
  // path:
  //
  //     while (predicate_still_false) {            // caller holds the mutex
  //       if (ctl && ctl->PrepareWait(&cv)) {      // registered: cooperative
  //         mutex.unlock();
  //         const bool ok = ctl->CommitWait(&cv);  // parks until NotifyAll
  //         mutex.lock();
  //         if (!ok) break;                        // run aborted: unwind
  //         continue;                              // re-check the predicate
  //       }
  //       cv.wait(mutex);                          // no controller: real wait
  //     }
  //
  // PrepareWait is called WHILE HOLDING the mutex, so a notifier (which also
  // holds the mutex to change the predicate) cannot slip between the
  // predicate check and the registration — the cooperative equivalent of
  // the atomicity condition variables give a real wait.

  /// Registers the calling thread as a waiter on `cv`. Returns true if the
  /// controller took ownership of the wait (caller must then follow the
  /// bridge protocol above); false to fall back to a real wait. Seeded mode
  /// returns false.
  virtual bool PrepareWait(const void* cv);

  /// Parks until a NotifyAll(cv) wakes this thread. Returns true on a
  /// normal wakeup, false if the run was aborted and the caller must unwind
  /// without waiting for the predicate. Only valid after PrepareWait
  /// returned true.
  virtual bool CommitWait(const void* cv);

  /// Wakes every cooperative waiter registered on `cv`. Called after the
  /// real notify_all (which covers non-cooperative waiters). No-op in
  /// seeded mode.
  virtual void NotifyAll(const void* cv);

  const ScheduleOptions& options() const { return options_; }

  /// Total schedule points observed / points that actually perturbed.
  uint64_t points_observed() const {
    return points_observed_.load(std::memory_order_relaxed);
  }
  uint64_t perturbations() const {
    return perturbations_.load(std::memory_order_relaxed);
  }
  /// Per-kind decision counters; (sleeps, yields, spins). Deterministic for
  /// a fixed seed and fixed per-thread point sequences — the determinism
  /// test compares these across two identical runs.
  uint64_t sleeps() const { return sleeps_.load(std::memory_order_relaxed); }
  uint64_t yields() const { return yields_.load(std::memory_order_relaxed); }
  uint64_t spins() const { return spins_.load(std::memory_order_relaxed); }

 private:
  static std::atomic<ScheduleController*> g_current BPW_RELAXED_OK("test-only controller pointer; installed before workers start");

  ScheduleOptions options_;
  bool installed_ = false;
  // Bumped on every Install so thread-local PRNGs from a previous
  // controller's epoch reseed themselves on first use.
  uint64_t epoch_ = 0;

  std::atomic<uint64_t> points_observed_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> perturbations_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> sleeps_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> yields_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> spins_{0} BPW_RELAXED_OK("stats counter");
};

/// RAII install/uninstall.
class ScopedScheduleController {
 public:
  explicit ScopedScheduleController(ScheduleOptions options)
      : controller_(options) {
    controller_.Install();
  }
  ~ScopedScheduleController() { controller_.Uninstall(); }

  ScheduleController& controller() { return controller_; }

 private:
  ScheduleController controller_;
};

/// Cooperative-aware yield for retry loops (BPW_SCHEDULE_YIELD): routes
/// through the installed controller so the model checker sees the yield
/// (fairness) instead of an invisible OS yield.
inline void ScheduleYield(const char* point) {
  ScheduleController* controller = ScheduleController::Current();
  if (controller != nullptr) {
    controller->Yield(point);
  } else {
    std::this_thread::yield();
  }
}

}  // namespace testing
}  // namespace bpw

// Schedule points default to compiled-in (they are free without a
// controller); -DBPW_SCHEDULE_POINTS=0 removes them entirely.
#ifndef BPW_SCHEDULE_POINTS
#define BPW_SCHEDULE_POINTS 1
#endif

#if BPW_SCHEDULE_POINTS

#define BPW_SCHEDULE_POINT(name)                                      \
  do {                                                                \
    ::bpw::testing::ScheduleController* bpw_sched_controller_ =       \
        ::bpw::testing::ScheduleController::Current();                \
    if (bpw_sched_controller_ != nullptr) {                           \
      bpw_sched_controller_->Perturb(name);                           \
    }                                                                 \
  } while (0)

/// A schedule point attributed to one shared object (lock address,
/// page-bucket): the model checker's DPOR pruning treats two points with
/// different non-null objects as independent.
#define BPW_SCHEDULE_POINT_OBJ(name, obj)                             \
  do {                                                                \
    ::bpw::testing::ScheduleController* bpw_sched_controller_ =       \
        ::bpw::testing::ScheduleController::Current();                \
    if (bpw_sched_controller_ != nullptr) {                           \
      bpw_sched_controller_->Perturb(name, obj);                      \
    }                                                                 \
  } while (0)

/// Controller-aware yield for retry loops: std::this_thread::yield()
/// without a controller, a fairness-visible cooperative yield with one.
#define BPW_SCHEDULE_YIELD(name) ::bpw::testing::ScheduleYield(name)

// Lock-transition reports from the src/sync wrappers. Each costs one
// relaxed load plus a predicted branch when no controller is installed.
#define BPW_SCHED_LOCK_EVENT_(method, lock, name)                     \
  do {                                                                \
    ::bpw::testing::ScheduleController* bpw_sched_controller_ =       \
        ::bpw::testing::ScheduleController::Current();                \
    if (bpw_sched_controller_ != nullptr) {                           \
      bpw_sched_controller_->method(lock, name);                      \
    }                                                                 \
  } while (0)

#define BPW_SCHED_LOCK_WILL_ACQUIRE(lock, name) \
  BPW_SCHED_LOCK_EVENT_(LockWillAcquire, lock, name)
#define BPW_SCHED_LOCK_ACQUIRED(lock, name) \
  BPW_SCHED_LOCK_EVENT_(LockAcquired, lock, name)
#define BPW_SCHED_LOCK_TRY_FAILED(lock, name) \
  BPW_SCHED_LOCK_EVENT_(LockTryFailed, lock, name)
#define BPW_SCHED_LOCK_RELEASED(lock, name) \
  BPW_SCHED_LOCK_EVENT_(LockReleased, lock, name)

// Guarded-state access reports for the vector-clock race certifier.
#define BPW_MC_ACCESS_READ(name, obj)                                 \
  do {                                                                \
    ::bpw::testing::ScheduleController* bpw_sched_controller_ =       \
        ::bpw::testing::ScheduleController::Current();                \
    if (bpw_sched_controller_ != nullptr) {                           \
      bpw_sched_controller_->Access(obj, name, /*is_write=*/false);   \
    }                                                                 \
  } while (0)
#define BPW_MC_ACCESS_WRITE(name, obj)                                \
  do {                                                                \
    ::bpw::testing::ScheduleController* bpw_sched_controller_ =       \
        ::bpw::testing::ScheduleController::Current();                \
    if (bpw_sched_controller_ != nullptr) {                           \
      bpw_sched_controller_->Access(obj, name, /*is_write=*/true);    \
    }                                                                 \
  } while (0)

#else  // !BPW_SCHEDULE_POINTS

#define BPW_SCHEDULE_POINT(name) ((void)0)
#define BPW_SCHEDULE_POINT_OBJ(name, obj) ((void)0)
// The yield still has a runtime job (retry-loop politeness) even with the
// controller machinery compiled out.
#define BPW_SCHEDULE_YIELD(name) ::std::this_thread::yield()
#define BPW_SCHED_LOCK_WILL_ACQUIRE(lock, name) ((void)0)
#define BPW_SCHED_LOCK_ACQUIRED(lock, name) ((void)0)
#define BPW_SCHED_LOCK_TRY_FAILED(lock, name) ((void)0)
#define BPW_SCHED_LOCK_RELEASED(lock, name) ((void)0)
#define BPW_MC_ACCESS_READ(name, obj) ((void)0)
#define BPW_MC_ACCESS_WRITE(name, obj) ((void)0)

#endif  // BPW_SCHEDULE_POINTS
