// ScheduleController / BPW_SCHEDULE_POINT: seeded schedule perturbation for
// concurrency testing.
//
// The paper's protocol (TryLock batching + commit-time re-validation, §IV-B)
// is only correct if it survives adversarial interleavings — the exact
// schedules a TSan-ed loop on a lightly loaded machine rarely produces. A
// BPW_SCHEDULE_POINT(name) is placed at every racy window in the library
// (lock acquisition, the eviction select→latch gap, pin/publish paths).
// Normally it costs one relaxed atomic load and a predicted branch; when a
// ScheduleController is installed, each point consults a per-thread PRNG
// derived from (controller seed, thread index) and deterministically decides
// to do nothing, yield, spin, or briefly sleep — widening race windows and
// exploring interleavings that depend only on the seed.
//
// Replay model: given the same seed, every thread makes the same perturbation
// decision sequence, so a stress failure found at seed N is re-run with
// --seed=N. The OS scheduler still has the final word, so replay is
// best-effort rather than cycle-exact — in practice the perturbations
// dominate and seeded failures reproduce reliably (see tests/stress/).
//
// Builds that must not carry the check can compile the macro away entirely
// with -DBPW_SCHEDULE_POINTS=0 (see the CMake option of the same name).
#pragma once

#include <atomic>
#include <cstdint>

#include "util/random.h"

namespace bpw {
namespace testing {

/// Tuning knobs for schedule perturbation. Probabilities are evaluated
/// independently, in order (sleep, then yield, then spin); the defaults are
/// aggressive on purpose — this runs in stress tests, not production.
struct ScheduleOptions {
  uint64_t seed = 1;
  /// Probability a point parks the thread for a random [1, max_sleep_micros]
  /// microsecond sleep (forces wide reorderings, lets waiters overtake).
  double sleep_probability = 0.002;
  uint64_t max_sleep_micros = 100;
  /// Probability a point calls std::this_thread::yield().
  double yield_probability = 0.05;
  /// Probability a point busy-spins for a random [1, max_spin_iterations]
  /// dependent-arithmetic loop (small, cache-local delays).
  double spin_probability = 0.15;
  uint32_t max_spin_iterations = 256;
};

/// Seeded interleaving perturbator. Install() makes it the process-global
/// controller consulted by every BPW_SCHEDULE_POINT; Uninstall() (or
/// destruction) restores the zero-cost path. Only one controller may be
/// installed at a time.
class ScheduleController {
 public:
  explicit ScheduleController(ScheduleOptions options = ScheduleOptions());
  ~ScheduleController();

  ScheduleController(const ScheduleController&) = delete;
  ScheduleController& operator=(const ScheduleController&) = delete;

  /// Registers this controller as the global one. Must not already have a
  /// controller installed.
  void Install();
  void Uninstall();

  /// The installed controller, or nullptr. Inline relaxed load: this is the
  /// entire cost of a schedule point in a run without a controller.
  static ScheduleController* Current() {
    return g_current.load(std::memory_order_relaxed);
  }

  /// Pins the calling thread's perturbation stream to `index`, making the
  /// per-thread decision sequence independent of which thread happens to hit
  /// a schedule point first. Stress harnesses call this with the worker's
  /// creation index; unbound threads get a first-come index.
  static void BindCurrentThread(uint64_t index);

  /// Called by BPW_SCHEDULE_POINT. Draws this thread's next perturbation
  /// decision and executes it. Lock-free (thread-local state only), so it is
  /// safe inside any lock implementation.
  void Perturb(const char* point);

  const ScheduleOptions& options() const { return options_; }

  /// Total schedule points observed / points that actually perturbed.
  uint64_t points_observed() const {
    return points_observed_.load(std::memory_order_relaxed);
  }
  uint64_t perturbations() const {
    return perturbations_.load(std::memory_order_relaxed);
  }
  /// Per-kind decision counters; (sleeps, yields, spins). Deterministic for
  /// a fixed seed and fixed per-thread point sequences — the determinism
  /// test compares these across two identical runs.
  uint64_t sleeps() const { return sleeps_.load(std::memory_order_relaxed); }
  uint64_t yields() const { return yields_.load(std::memory_order_relaxed); }
  uint64_t spins() const { return spins_.load(std::memory_order_relaxed); }

 private:
  static std::atomic<ScheduleController*> g_current;

  ScheduleOptions options_;
  bool installed_ = false;
  // Bumped on every Install so thread-local PRNGs from a previous
  // controller's epoch reseed themselves on first use.
  uint64_t epoch_ = 0;

  std::atomic<uint64_t> points_observed_{0};
  std::atomic<uint64_t> perturbations_{0};
  std::atomic<uint64_t> sleeps_{0};
  std::atomic<uint64_t> yields_{0};
  std::atomic<uint64_t> spins_{0};
};

/// RAII install/uninstall.
class ScopedScheduleController {
 public:
  explicit ScopedScheduleController(ScheduleOptions options)
      : controller_(options) {
    controller_.Install();
  }
  ~ScopedScheduleController() { controller_.Uninstall(); }

  ScheduleController& controller() { return controller_; }

 private:
  ScheduleController controller_;
};

}  // namespace testing
}  // namespace bpw

// Schedule points default to compiled-in (they are free without a
// controller); -DBPW_SCHEDULE_POINTS=0 removes them entirely.
#ifndef BPW_SCHEDULE_POINTS
#define BPW_SCHEDULE_POINTS 1
#endif

#if BPW_SCHEDULE_POINTS
#define BPW_SCHEDULE_POINT(name)                                      \
  do {                                                                \
    ::bpw::testing::ScheduleController* bpw_sched_controller_ =       \
        ::bpw::testing::ScheduleController::Current();                \
    if (bpw_sched_controller_ != nullptr) {                           \
      bpw_sched_controller_->Perturb(name);                           \
    }                                                                 \
  } while (0)
#else
#define BPW_SCHEDULE_POINT(name) ((void)0)
#endif
