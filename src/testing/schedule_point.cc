#include "testing/schedule_point.h"

#include <cassert>
#include <chrono>
#include <thread>

#include "util/thread_annotations.h"

namespace bpw {
namespace testing {

std::atomic<ScheduleController*> ScheduleController::g_current{nullptr};

namespace {

// Global epoch source: every Install() gets a fresh epoch so thread-local
// PRNG state left over from a previous controller reseeds itself.
std::atomic<uint64_t> g_epoch{0} BPW_RELAXED_OK("epoch allocator; only uniqueness matters");

// First-come index for threads the harness never bound explicitly.
std::atomic<uint64_t> g_unbound_index{1u << 20} BPW_RELAXED_OK("id allocator; only uniqueness matters");

struct ThreadState {
  uint64_t epoch = 0;           // controller epoch the rng was seeded for
  uint64_t index = kUnbound;    // perturbation-stream index
  Random rng{0};

  static constexpr uint64_t kUnbound = ~0ULL;
};

thread_local ThreadState tls;

// SplitMix64 finalizer: decorrelates (seed, thread index) pairs.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

ScheduleController::ScheduleController(ScheduleOptions options)
    : options_(options) {}

ScheduleController::~ScheduleController() {
  if (installed_) Uninstall();
}

void ScheduleController::Install() {
  assert(!installed_);
  epoch_ = g_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  ScheduleController* expected = nullptr;
  const bool swapped = g_current.compare_exchange_strong(
      expected, this, std::memory_order_release);
  assert(swapped && "another ScheduleController is already installed");
  (void)swapped;
  installed_ = true;
}

void ScheduleController::Uninstall() {
  assert(installed_);
  g_current.store(nullptr, std::memory_order_release);
  installed_ = false;
}

void ScheduleController::BindCurrentThread(uint64_t index) {
  tls.index = index;
  tls.epoch = 0;  // force a reseed at the next point
}

uint64_t ScheduleController::CurrentThreadIndex() { return tls.index; }

void ScheduleController::Perturb(const char* /*point*/, const void* /*obj*/) {
  points_observed_.fetch_add(1, std::memory_order_relaxed);
  if (tls.epoch != epoch_) {
    if (tls.index == ThreadState::kUnbound) {
      tls.index = g_unbound_index.fetch_add(1, std::memory_order_relaxed);
    }
    tls.epoch = epoch_;
    tls.rng.Reseed(Mix(options_.seed) ^ Mix(tls.index));
  }

  // One draw decides "perturb at all?" cheaply; the common case (no
  // perturbation) costs a single PRNG step.
  const double u = tls.rng.NextDouble();
  const ScheduleOptions& o = options_;
  if (u < o.sleep_probability) {
    sleeps_.fetch_add(1, std::memory_order_relaxed);
    perturbations_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t micros =
        1 + tls.rng.Uniform(o.max_sleep_micros > 0 ? o.max_sleep_micros : 1);
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
    return;
  }
  if (u < o.sleep_probability + o.yield_probability) {
    yields_.fetch_add(1, std::memory_order_relaxed);
    perturbations_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
    return;
  }
  if (u < o.sleep_probability + o.yield_probability + o.spin_probability) {
    spins_.fetch_add(1, std::memory_order_relaxed);
    perturbations_.fetch_add(1, std::memory_order_relaxed);
    const uint32_t iters = static_cast<uint32_t>(
        1 + tls.rng.Uniform(
                o.max_spin_iterations > 0 ? o.max_spin_iterations : 1));
    // Dependent arithmetic the optimizer cannot delete.
    volatile uint64_t sink = 0;
    uint64_t acc = tls.rng.Next() | 1;
    for (uint32_t i = 0; i < iters; ++i) acc = acc * 2862933555777941757ULL + 1;
    sink = acc;
    (void)sink;
  }
}

// Seeded-random mode ignores lock transitions, guarded accesses, and the
// condvar bridge: real locks and real condition variables do the work. The
// model checker's cooperative scheduler overrides all of these.
void ScheduleController::LockWillAcquire(const void* /*lock*/,
                                         const char* /*point*/) {}
void ScheduleController::LockAcquired(const void* /*lock*/,
                                      const char* /*point*/) {}
void ScheduleController::LockTryFailed(const void* /*lock*/,
                                       const char* /*point*/) {}
void ScheduleController::LockReleased(const void* /*lock*/,
                                      const char* /*point*/) {}

void ScheduleController::Yield(const char* /*point*/) {
  std::this_thread::yield();
}

void ScheduleController::Access(const void* /*obj*/, const char* /*point*/,
                                bool /*is_write*/) {}

bool ScheduleController::PrepareWait(const void* /*cv*/) { return false; }
bool ScheduleController::CommitWait(const void* /*cv*/) { return true; }
void ScheduleController::NotifyAll(const void* /*cv*/) {}

}  // namespace testing
}  // namespace bpw
