#include "storage/storage_engine.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "util/clock.h"

namespace bpw {

StorageEngine::StorageEngine(uint64_t num_pages, size_t page_size,
                             StorageLatencyModel model, bool materialize)
    : num_pages_(num_pages),
      page_size_(page_size),
      model_(model),
      materialize_(materialize),
      verification_(num_pages * 2, 0),
      page_locks_(kLockStripes) {
  if (materialize_) {
    data_.resize(num_pages_ * page_size_, 0);
  }
  // Initialize every page with a version-0 stamp so a freshly-read page is
  // identifiable.
  std::vector<uint8_t> tmp(page_size_, 0);
  for (PageId p = 0; p < num_pages_; ++p) {
    StampPage(tmp.data(), page_size_, p, 0);
    std::memcpy(&verification_[p * 2], tmp.data(), 16);
    if (materialize_) {
      std::memcpy(&data_[p * page_size_], tmp.data(), 16);
    }
  }
  metrics_source_ = obs::ScopedMetricSource(
      &obs::MetricsRegistry::Default(), [this](obs::MetricsSnapshot& snap) {
        const StorageStats s = stats();
        snap.Add("storage.reads", static_cast<double>(s.reads));
        snap.Add("storage.writes", static_cast<double>(s.writes));
        snap.Add("storage.read_nanos", static_cast<double>(s.read_nanos));
        snap.Add("storage.write_nanos", static_cast<double>(s.write_nanos));
      });
}

void StorageEngine::ApplyLatency(uint64_t base_nanos, uint64_t extra_nanos,
                                 std::atomic<uint64_t>& counter) {
  if (base_nanos == 0 && extra_nanos == 0) return;
  uint64_t nanos = base_nanos;
  if (model_.exponential && base_nanos != 0) {
    double u;
    {
      SpinLockGuard guard(rng_lock_);
      u = rng_.NextDouble();
    }
    // Exponential with the configured mean; clamp the tail at 8x mean so a
    // single unlucky draw cannot dominate a short benchmark run.
    double draw = -std::log(1.0 - u) * static_cast<double>(base_nanos);
    nanos = static_cast<uint64_t>(
        std::min(draw, 8.0 * static_cast<double>(base_nanos)));
  }
  // Injected spikes ride on the same wait mechanism as modelled latency, so
  // sleeping and busy-wait configurations both honour them.
  nanos += extra_nanos;
  if (model_.use_sleep) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
  } else {
    BusyWaitNanos(nanos);
  }
  counter.fetch_add(nanos, std::memory_order_relaxed);
}

Status StorageEngine::ReadPage(PageId page, void* buf) {
  if (page >= num_pages_) {
    return Status::OutOfRange("read past end of device");
  }
  uint64_t extra_nanos = 0;
  if (testing::FaultInjector* injector =
          fault_injector_.load(std::memory_order_acquire)) {
    testing::FaultDecision d = injector->ForRead(page);
    if (!d.status.ok()) return d.status;
    extra_nanos = d.extra_latency_nanos;
  }
  ApplyLatency(model_.read_nanos, extra_nanos, read_nanos_);
  {
    SpinLock& lock = LockFor(page);
    lock.lock();
    if (materialize_) {
      std::memcpy(buf, &data_[page * page_size_], page_size_);
    } else {
      std::memset(buf, 0, page_size_);
      std::memcpy(buf, &verification_[page * 2], 2 * sizeof(uint64_t));
    }
    lock.unlock();
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status StorageEngine::WritePage(PageId page, const void* buf) {
  if (page >= num_pages_) {
    return Status::OutOfRange("write past end of device");
  }
  uint64_t extra_nanos = 0;
  bool tear = false;
  if (testing::FaultInjector* injector =
          fault_injector_.load(std::memory_order_acquire)) {
    testing::FaultDecision d = injector->ForWrite(page);
    if (!d.status.ok()) return d.status;
    extra_nanos = d.extra_latency_nanos;
    tear = d.tear_write;
  }
  ApplyLatency(model_.write_nanos, extra_nanos, write_nanos_);
  {
    SpinLock& lock = LockFor(page);
    lock.lock();
    if (materialize_) {
      std::memcpy(&data_[page * page_size_], buf,
                  tear ? sizeof(uint64_t) : page_size_);
    }
    // A torn write persists only the first stamp word: word 0 carries the
    // new (page, version) mix while word 1 keeps the old version, which is
    // exactly the inconsistency StampConsistent() detects.
    std::memcpy(&verification_[page * 2], buf,
                tear ? sizeof(uint64_t) : 2 * sizeof(uint64_t));
    lock.unlock();
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

bool StorageEngine::StampConsistent(PageId page) const {
  const uint64_t word = verification_[page * 2];
  const uint64_t version = verification_[page * 2 + 1];
  return word == page * 0x9E3779B97F4A7C15ULL + version;
}

StorageStats StorageEngine::stats() const {
  StorageStats s;
  s.reads = reads_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.read_nanos = read_nanos_.load(std::memory_order_relaxed);
  s.write_nanos = write_nanos_.load(std::memory_order_relaxed);
  return s;
}

void StorageEngine::ResetStats() {
  reads_.store(0, std::memory_order_relaxed);
  writes_.store(0, std::memory_order_relaxed);
  read_nanos_.store(0, std::memory_order_relaxed);
  write_nanos_.store(0, std::memory_order_relaxed);
}

uint64_t StorageEngine::VerificationWord(PageId page) const {
  return verification_[page * 2];
}

void StorageEngine::StampPage(void* buf, size_t page_size, PageId page,
                              uint64_t version) {
  (void)page_size;
  // Word 0: page id mixed with version (the verification word).
  // Word 1: raw version, so tests can read both back.
  uint64_t w0 = page * 0x9E3779B97F4A7C15ULL + version;
  auto* words = static_cast<uint64_t*>(buf);
  words[0] = w0;
  words[1] = version;
}

std::pair<PageId, uint64_t> StorageEngine::ReadStamp(const void* buf) {
  const auto* words = static_cast<const uint64_t*>(buf);
  return {words[0], words[1]};
}

}  // namespace bpw
