// StorageEngine: the simulated disk under the buffer pool.
//
// The paper's evaluation ran against real RAID arrays; here the storage is
// a latency model plus an in-memory "ground truth" so that tests can verify
// buffer-pool integrity (every read returns the bytes last written for that
// page). Scalability experiments (Figs 6-7) run with zero misses, so the
// latency model only matters for the overall-performance experiment
// (Fig 8), where a miss must cost enough that hit ratio shows up in
// throughput.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "sync/spinlock.h"
#include "testing/fault_injector.h"
#include "util/cacheline.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace bpw {

/// How long a simulated I/O takes.
struct StorageLatencyModel {
  /// Fixed component, applied to every read/write (nanoseconds).
  uint64_t read_nanos = 0;
  uint64_t write_nanos = 0;
  /// If true, the latency is drawn from an exponential distribution with the
  /// configured mean instead of being fixed.
  bool exponential = false;
  /// If true, latency is modelled with a sleeping wait (the thread yields
  /// the CPU, as it would blocked on a real disk); if false, a busy-wait
  /// (models polled/high-speed devices). Sleeping is what the Fig. 8
  /// experiments need: on an over-committed machine, a thread blocked on a
  /// miss must let other transactions run.
  bool use_sleep = false;

  static StorageLatencyModel None() { return {}; }
  static StorageLatencyModel FixedMicros(uint64_t read_us, uint64_t write_us) {
    return {read_us * 1000, write_us * 1000, false, false};
  }
  static StorageLatencyModel SleepingMicros(uint64_t read_us,
                                            uint64_t write_us) {
    return {read_us * 1000, write_us * 1000, false, true};
  }
};

/// Per-engine I/O counters.
struct StorageStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t read_nanos = 0;
  uint64_t write_nanos = 0;
};

/// A page-granular simulated storage device. Thread-safe: concurrent reads
/// and writes of distinct pages proceed in parallel (as on a real array);
/// accesses to the same page are serialized by a striped lock.
class StorageEngine {
 public:
  /// @param num_pages   total pages on the device
  /// @param page_size   bytes per page
  /// @param model       latency model applied to each I/O
  /// @param materialize if true, page contents are stored so reads return
  ///                    real data; if false (default for big benchmarks),
  ///                    only a per-page checksum word is kept, which still
  ///                    lets the buffer pool detect lost updates
  StorageEngine(uint64_t num_pages, size_t page_size,
                StorageLatencyModel model = StorageLatencyModel::None(),
                bool materialize = false);

  /// Reads page `page` into `buf` (page_size bytes). Applies read latency.
  Status ReadPage(PageId page, void* buf);

  /// Writes page `page` from `buf` (page_size bytes). Applies write latency.
  Status WritePage(PageId page, const void* buf);

  uint64_t num_pages() const { return num_pages_; }
  size_t page_size() const { return page_size_; }

  /// Snapshot of I/O counters.
  StorageStats stats() const;
  void ResetStats();

  /// Test hook: the verification word currently stored for `page`.
  uint64_t VerificationWord(PageId page) const;

  /// Test hook: routes every subsequent I/O through `injector` (nullptr to
  /// disable). The injector is not owned and must outlive the traffic.
  /// Injected failures surface as Status::IOError from Read/WritePage;
  /// injected latency honours the engine's sleeping/busy-wait mode; torn
  /// writes persist only the first stamp word so ReadStamp consistency
  /// checks can detect them.
  void SetFaultInjector(testing::FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }

  /// True if the stamp stored for `page` is internally consistent (word 0
  /// matches word 1's version). A torn write breaks this. Quiesced callers
  /// only.
  bool StampConsistent(PageId page) const;

  /// Fills the first 16 bytes of `buf` with a deterministic header for
  /// `page` stamped with `version`; used by tests and the integrity checks.
  static void StampPage(void* buf, size_t page_size, PageId page,
                        uint64_t version);

  /// Extracts the (page, version) stamp written by StampPage.
  static std::pair<PageId, uint64_t> ReadStamp(const void* buf);

 private:
  void ApplyLatency(uint64_t base_nanos, uint64_t extra_nanos,
                    std::atomic<uint64_t>& counter);
  SpinLock& LockFor(PageId page) {
    return page_locks_[page % kLockStripes].value;
  }

  static constexpr size_t kLockStripes = 64;

  uint64_t num_pages_;
  size_t page_size_;
  StorageLatencyModel model_;
  bool materialize_;

  // data_ / verification_ are sharded across the striped page_locks_, a
  // many-to-one guarding the annotation language cannot express (guarded_by
  // names exactly one capability). The stripe discipline — byte ranges of a
  // page are only touched under LockFor(page) — is enforced by keeping all
  // access inside Read/WritePage and verified dynamically by TSan.
  std::vector<uint8_t> data_;           // materialized page contents
  std::vector<uint64_t> verification_;  // first 16 bytes of each page (2 words)
  mutable std::vector<CacheAligned<SpinLock>> page_locks_;

  std::atomic<uint64_t> reads_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> writes_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> read_nanos_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<uint64_t> write_nanos_{0} BPW_RELAXED_OK("stats counter");

  // Latency jitter source; protected by its own lock because Random is not
  // thread-safe. Only used when model_.exponential is set.
  SpinLock rng_lock_;
  Random rng_ BPW_GUARDED_BY(rng_lock_){0xB5D4C1E5u};

  // Optional fault source (test hook; see SetFaultInjector).
  std::atomic<testing::FaultInjector*> fault_injector_{nullptr};

  // Declared last so it unregisters before anything it reads is destroyed.
  obs::ScopedMetricSource metrics_source_;
};

}  // namespace bpw
