// CLOCK-Pro replacement (Jiang, Chen & Zhang, USENIX ATC 2005) — the
// clock-based approximation of LIRS, cited by the paper (§I) among the
// approximations that trade hit ratio for lock-free hits. Included both as
// a policy in its own right and as the LIRS counterpart in approximation-
// vs-original hit-ratio comparisons (like CAR vs ARC).
//
// All pages — hot, resident cold, and non-resident cold (in their "test
// period") — sit on one circular clock list. Three hands sweep it:
//   HAND_cold  finds the replacement victim among resident cold pages and
//              drives promotions (a referenced cold page in its test
//              period becomes hot);
//   HAND_hot   demotes unreferenced hot pages to cold when the hot set
//              outgrows its target;
//   HAND_test  terminates test periods, bounding non-resident metadata and
//              adapting the cold-set target downward.
// The cold-set target `cold_target` adapts upward whenever a page is
// re-accessed during its test period (evidence that a bigger cold set
// would have caught it).
#pragma once

#include <memory>
#include <unordered_map>

#include "policy/intrusive_list.h"
#include "policy/replacement_policy.h"
#include "util/thread_annotations.h"

namespace bpw {

class ClockProPolicy : public ReplacementPolicy {
 public:
  explicit ClockProPolicy(size_t num_frames);

  void OnHit(PageId page, FrameId frame) override BPW_REQUIRES(this);
  void OnMiss(PageId page, FrameId frame) override BPW_REQUIRES(this)
      BPW_HOLD_EFFECT_OK(alloc, "directory node for the loaded page; the "
                                "directory is bounded by the ghost caps");
  StatusOr<Victim> ChooseVictim(const EvictableFn& evictable,
                                PageId incoming) override BPW_REQUIRES(this)
      BPW_HOLD_EFFECT_OK(indirect, "evictable is the pool pin check: it "
                                   "reads frame state and never blocks");
  void OnErase(PageId page, FrameId frame) override BPW_REQUIRES(this);
  Status CheckInvariants() const override BPW_REQUIRES_SHARED(this);
  size_t resident_count() const override BPW_REQUIRES_SHARED(this) {
    return hot_count_ + cold_count_;
  }
  bool IsResident(PageId page) const override BPW_REQUIRES_SHARED(this);
  std::string name() const override { return "clockpro"; }
  size_t ghost_count() const override BPW_REQUIRES_SHARED(this) {
    return nonresident_count_;
  }
  bool IsGhostPage(PageId page) const override BPW_REQUIRES_SHARED(this) {
    auto it = index_.find(page);
    return it != index_.end() && it->second->frame == kInvalidFrameId;
  }

  // Introspection for tests.
  size_t hot_count() const { return hot_count_; }
  size_t cold_count() const { return cold_count_; }
  size_t nonresident_count() const { return nonresident_count_; }
  size_t cold_target() const { return cold_target_; }

 private:
  struct Node {
    PageId page = kInvalidPageId;
    FrameId frame = kInvalidFrameId;  // kInvalidFrameId when non-resident
    bool hot = false;
    bool test = false;  // cold page in its test period
    bool ref = false;
    Link link;  // position on the clock list
  };

  using List = IntrusiveList<Node, &Node::link>;

  /// Next node clockwise, wrapping (nullptr only if the list is empty).
  Node* Clockwise(Node* node) const;

  /// Advances a hand off `node` if it points there (before removal).
  void UnhookHands(Node* node);

  /// Removes `node` from the clock and the index entirely.
  void DropNode(Node* node);

  /// Inserts `node` at the "list head" (just behind HAND_hot).
  void InsertAtHead(Node* node);

  /// HAND_hot: demote one unreferenced hot page to cold.
  void RunHandHot();

  /// HAND_test: terminate one test period (bounds non-resident metadata
  /// and adapts cold_target downward).
  void RunHandTest();

  std::unordered_map<PageId, std::unique_ptr<Node>> index_;
  std::vector<Node*> frame_nodes_;

  List clock_;
  Node* hand_hot_ = nullptr;
  Node* hand_cold_ = nullptr;
  Node* hand_test_ = nullptr;

  size_t cold_target_ = 1;  // mc, adaptive in [1, num_frames]
  size_t hot_count_ = 0;
  size_t cold_count_ = 0;          // resident cold
  size_t nonresident_count_ = 0;   // cold pages in test, evicted
  size_t max_nonresident_;         // == num_frames (the CLOCK-Pro bound)
};

}  // namespace bpw
