// GCLOCK (generalized clock): like CLOCK but with a saturating reference
// counter per frame instead of a single bit, which retains slightly more
// frequency information. PostgreSQL's actual 8.2+ algorithm is GCLOCK with
// usage_count capped at 5; we default to the same cap.
#pragma once

#include <atomic>

#include "policy/replacement_policy.h"
#include "util/thread_annotations.h"

namespace bpw {

class GClockPolicy : public ReplacementPolicy {
 public:
  /// @param max_count saturation cap for the per-frame reference counter.
  explicit GClockPolicy(size_t num_frames, uint32_t max_count = 5);

  void OnHit(PageId page, FrameId frame) override BPW_REQUIRES(this);
  void OnMiss(PageId page, FrameId frame) override BPW_REQUIRES(this);
  StatusOr<Victim> ChooseVictim(const EvictableFn& evictable,
                                PageId incoming) override BPW_REQUIRES(this)
      BPW_HOLD_EFFECT_OK(indirect, "evictable is the pool pin check: it "
                                   "reads frame state and never blocks");
  void OnErase(PageId page, FrameId frame) override BPW_REQUIRES(this);
  Status CheckInvariants() const override BPW_REQUIRES_SHARED(this);
  size_t resident_count() const override BPW_REQUIRES_SHARED(this) {
    return resident_;
  }
  bool IsResident(PageId page) const override BPW_REQUIRES_SHARED(this);
  std::string name() const override { return "gclock"; }
  bool StateFingerprintSupported() const override { return true; }
  uint64_t StateFingerprint() const override BPW_REQUIRES_SHARED(this);

  /// Lock-free hit path (see ClockPolicy::OnHitLockFree).
  void OnHitLockFree(PageId page, FrameId frame);

  uint32_t max_count() const { return max_count_; }

 private:
  struct Node {
    std::atomic<PageId> page{kInvalidPageId} BPW_RELAXED_OK("lock-free hit validation re-checks under the latch");
    std::atomic<bool> resident{false} BPW_RELAXED_OK("lock-free probes tolerate staleness; latch orders transitions");
    std::atomic<uint32_t> count{0} BPW_RELAXED_OK("GCLOCK weight; racy bumps are the algorithm's contract");
  };

  std::vector<Node> nodes_;
  uint32_t max_count_;
  size_t hand_ = 0;
  size_t resident_ = 0;
};

}  // namespace bpw
