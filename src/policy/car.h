// CAR replacement (Bansal & Modha, FAST 2004) — Clock with Adaptive
// Replacement. The paper names CAR as the clock-based approximation of ARC
// (§I): hits only set a reference bit, so CAR scales like CLOCK, but it
// "usually cannot achieve the high hit ratio compared to [the]
// corresponding original algorithm". It is included both as a policy in its
// own right and as the approximation baseline in hit-ratio ablations
// against ARC.
//
// State: two clocks T1 (recency) and T2 (frequency) with per-page reference
// bits, ghost LRU lists B1/B2, and ARC's adaptive target p for |T1|.
#pragma once

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "policy/intrusive_list.h"
#include "policy/replacement_policy.h"
#include "util/thread_annotations.h"

namespace bpw {

class CarPolicy : public ReplacementPolicy {
 public:
  explicit CarPolicy(size_t num_frames);

  void OnHit(PageId page, FrameId frame) override BPW_REQUIRES(this);
  void OnMiss(PageId page, FrameId frame) override BPW_REQUIRES(this)
      BPW_HOLD_EFFECT_OK(alloc, "directory node for the loaded page; the "
                                "directory is bounded by the ghost caps");
  StatusOr<Victim> ChooseVictim(const EvictableFn& evictable,
                                PageId incoming) override BPW_REQUIRES(this)
      BPW_HOLD_EFFECT_OK(indirect, "evictable is the pool pin check: it "
                                   "reads frame state and never blocks");
  void OnErase(PageId page, FrameId frame) override BPW_REQUIRES(this);
  Status CheckInvariants() const override BPW_REQUIRES_SHARED(this);
  size_t resident_count() const override BPW_REQUIRES_SHARED(this) {
    return t1_.size() + t2_.size();
  }
  bool IsResident(PageId page) const override BPW_REQUIRES_SHARED(this);
  std::string name() const override { return "car"; }
  size_t ghost_count() const override BPW_REQUIRES_SHARED(this) {
    return b1_.size() + b2_.size();
  }
  bool IsGhostPage(PageId page) const override BPW_REQUIRES_SHARED(this) {
    auto it = index_.find(page);
    return it != index_.end() &&
           (it->second->list == ListId::kB1 || it->second->list == ListId::kB2);
  }

  // Sharded rebalance: same adaptive-target exchange as ARC (see arc.h).
  bool RebalanceSupported() const override { return true; }
  uint64_t RebalanceExport() const override BPW_REQUIRES_SHARED(this) {
    return p_;
  }
  void RebalanceApply(uint64_t signal) override BPW_REQUIRES(this) {
    p_ = static_cast<size_t>(
        std::min<uint64_t>(signal, num_frames()));
  }

  // Introspection for tests.
  size_t t1_size() const { return t1_.size(); }
  size_t t2_size() const { return t2_.size(); }
  size_t b1_size() const { return b1_.size(); }
  size_t b2_size() const { return b2_.size(); }
  size_t target_p() const { return p_; }

 private:
  enum class ListId : uint8_t { kT1, kT2, kB1, kB2 };

  struct Node {
    PageId page = kInvalidPageId;
    FrameId frame = kInvalidFrameId;
    ListId list = ListId::kT1;
    bool ref = false;
    Link link;
  };

  using List = IntrusiveList<Node, &Node::link>;

  List& ListOf(ListId id);
  void EvictToGhost(Node* node, ListId ghost);
  void DropGhostLru(ListId ghost);

  std::unordered_map<PageId, std::unique_ptr<Node>> index_;
  std::vector<Node*> frame_nodes_;

  // Clocks are lists whose front is the hand position; sweeping pops the
  // front and either evicts or re-appends at the back.
  List t1_, t2_;
  List b1_, b2_;  // front = MRU
  size_t p_ = 0;
};

}  // namespace bpw
