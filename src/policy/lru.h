// LRU replacement: the canonical list-based algorithm the paper uses as its
// running example ("the LRU replacement algorithm removes the buffer page
// from the LRU list and inserts it back to the MRU end", §II). Every access
// mutates the shared list, which is exactly why it needs a lock per access
// without BP-Wrapper.
#pragma once

#include "policy/intrusive_list.h"
#include "policy/replacement_policy.h"
#include "util/thread_annotations.h"

namespace bpw {

class LruPolicy : public ReplacementPolicy {
 public:
  explicit LruPolicy(size_t num_frames);

  void OnHit(PageId page, FrameId frame) override BPW_REQUIRES(this);
  void OnMiss(PageId page, FrameId frame) override BPW_REQUIRES(this);
  StatusOr<Victim> ChooseVictim(const EvictableFn& evictable,
                                PageId incoming) override BPW_REQUIRES(this)
      BPW_HOLD_EFFECT_OK(indirect, "evictable is the pool pin check: it "
                                   "reads frame state and never blocks");
  void OnErase(PageId page, FrameId frame) override BPW_REQUIRES(this);
  Status CheckInvariants() const override BPW_REQUIRES_SHARED(this);
  size_t resident_count() const override BPW_REQUIRES_SHARED(this) {
    return list_.size();
  }
  bool IsResident(PageId page) const override BPW_REQUIRES_SHARED(this);
  std::string name() const override { return "lru"; }
  bool StateFingerprintSupported() const override { return true; }
  uint64_t StateFingerprint() const override BPW_REQUIRES_SHARED(this);

 private:
  struct Node {
    PageId page = kInvalidPageId;
    bool resident = false;
    Link link;
  };

  std::vector<Node> nodes_;                // indexed by FrameId
  IntrusiveList<Node, &Node::link> list_;  // front = MRU, back = LRU
};

}  // namespace bpw
