// A doubly-linked intrusive list with a sentinel, used by every list-based
// replacement policy. Intrusive linking is what real buffer managers use
// (PostgreSQL freelist, LIRS stacks): no allocation on the hot path, and
// O(1) unlink of an arbitrary element.
#pragma once

#include <cassert>
#include <cstddef>

namespace bpw {

/// Embed one Link per list a node can be on.
struct Link {
  Link* prev = nullptr;
  Link* next = nullptr;

  bool linked() const { return prev != nullptr; }
};

/// Intrusive list over nodes of type T that embed a `Link` member at
/// `Member`. Front is the "head" end; policies use front=MRU or front=LRU
/// per their own convention (documented at each use site).
template <typename T, Link T::*Member>
class IntrusiveList {
 public:
  IntrusiveList() { Clear(); }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  /// Unlinks all elements (does not destroy them).
  void Clear() {
    sentinel_.prev = &sentinel_;
    sentinel_.next = &sentinel_;
    size_ = 0;
  }

  bool empty() const { return sentinel_.next == &sentinel_; }
  size_t size() const { return size_; }

  void PushFront(T* node) { InsertAfter(&sentinel_, node); }
  void PushBack(T* node) { InsertAfter(sentinel_.prev, node); }

  /// Inserts `node` immediately before `pos` (pos must be linked here).
  void InsertBefore(T* pos, T* node) { InsertAfter(LinkOf(pos)->prev, node); }

  T* Front() const { return empty() ? nullptr : FromLink(sentinel_.next); }
  T* Back() const { return empty() ? nullptr : FromLink(sentinel_.prev); }

  /// Removes `node` from the list. Node must be linked in this list.
  void Remove(T* node) {
    Link* link = LinkOf(node);
    assert(link->linked());
    link->prev->next = link->next;
    link->next->prev = link->prev;
    link->prev = nullptr;
    link->next = nullptr;
    --size_;
  }

  T* PopFront() {
    T* node = Front();
    if (node != nullptr) Remove(node);
    return node;
  }

  T* PopBack() {
    T* node = Back();
    if (node != nullptr) Remove(node);
    return node;
  }

  /// Moves an already-linked node to the front.
  void MoveToFront(T* node) {
    Remove(node);
    PushFront(node);
  }

  /// Moves an already-linked node to the back.
  void MoveToBack(T* node) {
    Remove(node);
    PushBack(node);
  }

  /// Next element after `node`, or nullptr at the end.
  T* Next(const T* node) const {
    Link* link = LinkOf(const_cast<T*>(node))->next;
    return link == &sentinel_ ? nullptr : FromLink(link);
  }

  /// Previous element before `node`, or nullptr at the front.
  T* Prev(const T* node) const {
    Link* link = LinkOf(const_cast<T*>(node))->prev;
    return link == &sentinel_ ? nullptr : FromLink(link);
  }

  bool Contains(const T* node) const {
    for (const T* it = Front(); it != nullptr; it = Next(it)) {
      if (it == node) return true;
    }
    return false;
  }

 private:
  static Link* LinkOf(T* node) { return &(node->*Member); }
  static T* FromLink(Link* link) {
    // Recover the owning node from the embedded link.
    const auto offset = reinterpret_cast<size_t>(
        &(static_cast<T*>(nullptr)->*Member));
    return reinterpret_cast<T*>(reinterpret_cast<char*>(link) - offset);
  }

  void InsertAfter(Link* pos, T* node) {
    Link* link = LinkOf(node);
    assert(!link->linked());
    link->prev = pos;
    link->next = pos->next;
    pos->next->prev = link;
    pos->next = link;
    ++size_;
  }

  mutable Link sentinel_;
  size_t size_ = 0;
};

}  // namespace bpw
