#include "policy/lru_k.h"

#include <algorithm>

namespace bpw {

LruKPolicy::LruKPolicy(size_t num_frames, Params params)
    : ReplacementPolicy(num_frames), nodes_(num_frames) {
  history_capacity_ =
      params.history_capacity != 0 ? params.history_capacity : num_frames;
}

void LruKPolicy::Reposition(Node& node) {
  order_.erase(node.key);
  node.key = KeyFor(node.t1, node.t2);
  order_.emplace(node.key, static_cast<FrameId>(&node - nodes_.data()));
}

void LruKPolicy::OnHit(PageId page, FrameId frame) {
  if (frame >= nodes_.size()) return;
  Node& node = nodes_[frame];
  if (!node.resident || node.page != page) return;  // stale
  ++time_;
  node.t2 = node.t1;
  node.t1 = time_;
  Reposition(node);
}

void LruKPolicy::OnMiss(PageId page, FrameId frame) {
  ++time_;
  Node& node = nodes_[frame];
  node.page = page;
  node.resident = true;
  auto ghost = ghost_index_.find(page);
  if (ghost != ghost_index_.end()) {
    // Retained history: this access shifts the remembered chain.
    node.t2 = ghost->second.t1;
    ghost_fifo_.Remove(&ghost->second);
    ghost_index_.erase(ghost);
  } else {
    node.t2 = 0;
  }
  node.t1 = time_;
  node.key = KeyFor(node.t1, node.t2);
  order_.emplace(node.key, frame);
  SetPrefetchTarget(frame, &node);
}

StatusOr<ReplacementPolicy::Victim> LruKPolicy::ChooseVictim(
    const EvictableFn& evictable, PageId /*incoming*/) {
  for (auto it = order_.begin(); it != order_.end(); ++it) {
    const FrameId frame = it->second;
    if (!evictable(frame)) continue;
    Node& node = nodes_[frame];
    const PageId page = node.page;
    AddGhost(page, node.t1, node.t2);
    order_.erase(it);
    node.resident = false;
    SetPrefetchTarget(frame, nullptr);
    return Victim{page, frame};
  }
  return Status::ResourceExhausted("lru2: no evictable frame");
}

void LruKPolicy::AddGhost(PageId page, uint64_t t1, uint64_t t2) {
  auto [it, inserted] = ghost_index_.try_emplace(page);
  it->second.page = page;
  it->second.t1 = t1;
  it->second.t2 = t2;
  if (!inserted) {
    ghost_fifo_.MoveToFront(&it->second);
    return;
  }
  ghost_fifo_.PushFront(&it->second);
  BPW_BOUNDED_BY(ghost_fifo_.size() - history_capacity_);
  while (ghost_fifo_.size() > history_capacity_) {
    GhostNode* oldest = ghost_fifo_.PopBack();
    ghost_index_.erase(oldest->page);
  }
}

void LruKPolicy::OnErase(PageId page, FrameId frame) {
  auto ghost = ghost_index_.find(page);
  if (ghost != ghost_index_.end()) {
    ghost_fifo_.Remove(&ghost->second);
    ghost_index_.erase(ghost);
  }
  if (frame >= nodes_.size()) return;
  Node& node = nodes_[frame];
  if (!node.resident || node.page != page) return;
  order_.erase(node.key);
  node.resident = false;
  SetPrefetchTarget(frame, nullptr);
}

Status LruKPolicy::CheckInvariants() const {
  size_t resident = 0;
  for (const Node& node : nodes_) {
    if (!node.resident) continue;
    ++resident;
    auto it = order_.find(node.key);
    if (it == order_.end() ||
        &nodes_[it->second] != &node) {
      return Status::Corruption("lru2: order-map binding broken");
    }
    if (node.t2 != 0 && node.t2 >= node.t1) {
      return Status::Corruption("lru2: history not strictly ordered");
    }
  }
  if (resident != order_.size()) {
    return Status::Corruption("lru2: resident count mismatch");
  }
  if (resident > num_frames()) {
    return Status::Corruption("lru2: above capacity");
  }
  if (ghost_index_.size() != ghost_fifo_.size()) {
    return Status::Corruption("lru2: ghost index/list mismatch");
  }
  if (ghost_fifo_.size() > history_capacity_) {
    return Status::Corruption("lru2: ghost list above capacity");
  }
  return Status::OK();
}

bool LruKPolicy::IsResident(PageId page) const {
  for (const Node& node : nodes_) {
    if (node.resident && node.page == page) return true;
  }
  return false;
}

std::pair<uint64_t, uint64_t> LruKPolicy::HistoryOf(PageId page) const {
  for (const Node& node : nodes_) {
    if (node.resident && node.page == page) return {node.t2, node.t1};
  }
  return {0, 0};
}

}  // namespace bpw
