// ARC replacement (Megiddo & Modha, FAST 2003) — Adaptive Replacement
// Cache, cited by the paper as a representative advanced algorithm whose
// clock approximation (CAR) gives up hit ratio. Keeps two resident LRU
// lists (T1 recency, T2 frequency) plus two ghost lists (B1, B2) and
// continuously adapts the target size `p` of T1.
//
// API note: textbook ARC adapts `p` and runs REPLACE inside one atomic
// step. This library splits a miss into ChooseVictim (eviction, before the
// I/O) and OnMiss (insertion, after the I/O), so the adaptation of `p`
// happens in OnMiss and the REPLACE decision sees a `p` that lags by at
// most one miss — a negligible approximation that keeps policies oblivious
// to the buffer pool's two-phase miss path.
#pragma once

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "policy/intrusive_list.h"
#include "policy/replacement_policy.h"
#include "util/thread_annotations.h"

namespace bpw {

class ArcPolicy : public ReplacementPolicy {
 public:
  explicit ArcPolicy(size_t num_frames);

  void OnHit(PageId page, FrameId frame) override BPW_REQUIRES(this);
  void OnMiss(PageId page, FrameId frame) override BPW_REQUIRES(this)
      BPW_HOLD_EFFECT_OK(alloc, "directory node for the loaded page; the "
                                "directory is bounded by the ghost caps");
  StatusOr<Victim> ChooseVictim(const EvictableFn& evictable,
                                PageId incoming) override BPW_REQUIRES(this)
      BPW_HOLD_EFFECT_OK(indirect, "evictable is the pool pin check: it "
                                   "reads frame state and never blocks");
  void OnErase(PageId page, FrameId frame) override BPW_REQUIRES(this);
  Status CheckInvariants() const override BPW_REQUIRES_SHARED(this);
  size_t resident_count() const override BPW_REQUIRES_SHARED(this) {
    return t1_.size() + t2_.size();
  }
  bool IsResident(PageId page) const override BPW_REQUIRES_SHARED(this);
  std::string name() const override { return "arc"; }
  size_t ghost_count() const override BPW_REQUIRES_SHARED(this) {
    return b1_.size() + b2_.size();
  }
  bool IsGhostPage(PageId page) const override BPW_REQUIRES_SHARED(this) {
    auto it = index_.find(page);
    return it != index_.end() && IsGhost(it->second->list);
  }

  // Sharded rebalance: the adaptive target p is the global signal worth
  // exchanging — a shard seeing only recency traffic would otherwise grow
  // its p forever while a frequency-heavy peer shrinks its own.
  bool RebalanceSupported() const override { return true; }
  uint64_t RebalanceExport() const override BPW_REQUIRES_SHARED(this) {
    return p_;
  }
  void RebalanceApply(uint64_t signal) override BPW_REQUIRES(this) {
    p_ = static_cast<size_t>(
        std::min<uint64_t>(signal, num_frames()));
  }

  // Introspection for tests.
  size_t t1_size() const { return t1_.size(); }
  size_t t2_size() const { return t2_.size(); }
  size_t b1_size() const { return b1_.size(); }
  size_t b2_size() const { return b2_.size(); }
  size_t target_p() const { return p_; }

 private:
  enum class ListId : uint8_t { kT1, kT2, kB1, kB2 };

  struct Node {
    PageId page = kInvalidPageId;
    FrameId frame = kInvalidFrameId;
    ListId list = ListId::kT1;
    Link link;
  };

  using List = IntrusiveList<Node, &Node::link>;

  List& ListOf(ListId id);
  bool IsGhost(ListId id) const {
    return id == ListId::kB1 || id == ListId::kB2;
  }

  /// Moves a resident node out of its T-list into ghost list `ghost`.
  void EvictToGhost(Node* node, ListId ghost);

  /// Deletes the LRU node of a ghost list entirely.
  void DropGhostLru(ListId ghost);

  std::unordered_map<PageId, std::unique_ptr<Node>> index_;
  std::vector<Node*> frame_nodes_;

  List t1_, t2_, b1_, b2_;  // front = MRU
  size_t p_ = 0;            // adaptive target for |T1|
};

}  // namespace bpw
