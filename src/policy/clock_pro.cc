#include "policy/clock_pro.h"

#include <algorithm>

namespace bpw {

ClockProPolicy::ClockProPolicy(size_t num_frames)
    : ReplacementPolicy(num_frames),
      frame_nodes_(num_frames, nullptr),
      max_nonresident_(num_frames) {}

ClockProPolicy::Node* ClockProPolicy::Clockwise(Node* node) const {
  if (node == nullptr) return clock_.Front();
  Node* next = clock_.Next(node);
  return next != nullptr ? next : clock_.Front();
}

void ClockProPolicy::UnhookHands(Node* node) {
  if (hand_hot_ == node) hand_hot_ = Clockwise(node);
  if (hand_cold_ == node) hand_cold_ = Clockwise(node);
  if (hand_test_ == node) hand_test_ = Clockwise(node);
  // If the node is the only element, the hands become the node itself
  // again; clear them so they re-seed from the front after removal.
  if (hand_hot_ == node) hand_hot_ = nullptr;
  if (hand_cold_ == node) hand_cold_ = nullptr;
  if (hand_test_ == node) hand_test_ = nullptr;
}

void ClockProPolicy::DropNode(Node* node) {
  UnhookHands(node);
  clock_.Remove(node);
  if (node->frame != kInvalidFrameId && node->frame < frame_nodes_.size() &&
      frame_nodes_[node->frame] == node) {
    frame_nodes_[node->frame] = nullptr;
    SetPrefetchTarget(node->frame, nullptr);
  }
  index_.erase(node->page);  // destroys *node
}

void ClockProPolicy::InsertAtHead(Node* node) {
  // The "list head" sits just behind HAND_hot: a new page gets a full lap
  // before HAND_hot reaches it.
  if (hand_hot_ != nullptr) {
    clock_.InsertBefore(hand_hot_, node);
  } else {
    clock_.PushBack(node);
  }
}

void ClockProPolicy::RunHandHot() {
  // Demote one unreferenced hot page to (ordinary) cold.
  size_t limit = 2 * clock_.size() + 2;
  BPW_BOUNDED_BY(limit);
  while (limit-- > 0 && hot_count_ > 0) {
    if (hand_hot_ == nullptr) hand_hot_ = clock_.Front();
    Node* node = hand_hot_;
    hand_hot_ = Clockwise(node);
    if (!node->hot) {
      // HAND_hot terminates test periods it passes (the original paper
      // folds HAND_test's duty into HAND_hot's sweep).
      if (node->frame == kInvalidFrameId) {
        if (cold_target_ > 1) --cold_target_;
        --nonresident_count_;
        DropNode(node);
      } else if (node->test) {
        node->test = false;
        if (cold_target_ > 1) --cold_target_;
      }
      continue;
    }
    if (node->ref) {
      node->ref = false;
      continue;
    }
    node->hot = false;
    node->test = false;
    node->ref = false;
    --hot_count_;
    ++cold_count_;
    return;
  }
}

void ClockProPolicy::RunHandTest() {
  // Terminate the test period of one page (bounds non-resident metadata).
  size_t limit = 2 * clock_.size() + 2;
  BPW_BOUNDED_BY(limit);
  while (limit-- > 0 && nonresident_count_ > 0) {
    if (hand_test_ == nullptr) hand_test_ = clock_.Front();
    Node* node = hand_test_;
    hand_test_ = Clockwise(node);
    if (node->hot) continue;
    if (node->frame == kInvalidFrameId) {
      if (cold_target_ > 1) --cold_target_;
      --nonresident_count_;
      DropNode(node);
      return;
    }
  }
}

void ClockProPolicy::OnHit(PageId page, FrameId frame) {
  if (frame >= frame_nodes_.size()) return;
  Node* node = frame_nodes_[frame];
  if (node == nullptr || node->page != page) return;  // stale
  node->ref = true;  // clock-style: a hit is just a reference bit
}

void ClockProPolicy::OnMiss(PageId page, FrameId frame) {
  auto it = index_.find(page);
  if (it != index_.end()) {
    Node* node = it->second.get();
    if (node->frame != kInvalidFrameId) return;  // stale: already resident
    // Re-access within the test period: the cold set was too small to
    // catch this page — grow it, and promote the page to hot.
    cold_target_ = std::min(cold_target_ + 1, num_frames());
    UnhookHands(node);
    clock_.Remove(node);
    --nonresident_count_;
    node->hot = true;
    node->test = false;
    node->ref = false;
    node->frame = frame;
    InsertAtHead(node);
    ++hot_count_;
    const size_t hot_target =
        num_frames() > cold_target_ ? num_frames() - cold_target_ : 1;
    BPW_BOUNDED_BY(hot_count_ - hot_target);
    while (hot_count_ > hot_target) {
      const size_t before = hot_count_;
      RunHandHot();
      if (hot_count_ == before) break;  // everything referenced; give up
    }
  } else {
    auto owned = std::make_unique<Node>();
    Node* node = owned.get();
    node->page = page;
    node->frame = frame;
    node->hot = false;
    node->test = true;  // every first-access cold page starts in test
    node->ref = false;
    index_.emplace(page, std::move(owned));
    InsertAtHead(node);
    ++cold_count_;
  }
  Node* node = index_.at(page).get();
  frame_nodes_[frame] = node;
  SetPrefetchTarget(frame, node);
}

StatusOr<ReplacementPolicy::Victim> ClockProPolicy::ChooseVictim(
    const EvictableFn& evictable, PageId /*incoming*/) {
  // HAND_cold: find a resident cold page with a clear reference bit.
  size_t limit = 4 * clock_.size() + 4;
  size_t skipped_pinned = 0;
  BPW_BOUNDED_BY(limit);
  while (limit-- > 0 && cold_count_ + hot_count_ > 0) {
    if (hand_cold_ == nullptr) hand_cold_ = clock_.Front();
    Node* node = hand_cold_;
    hand_cold_ = Clockwise(node);
    if (node->hot || node->frame == kInvalidFrameId) continue;

    if (node->ref) {
      if (node->test) {
        // Referenced during its test period: promote to hot.
        node->ref = false;
        node->test = false;
        node->hot = true;
        --cold_count_;
        ++hot_count_;
        const size_t hot_target =
            num_frames() > cold_target_ ? num_frames() - cold_target_ : 1;
        if (hot_count_ > hot_target) RunHandHot();
      } else {
        // Referenced ordinary cold page: second chance + a fresh test
        // period at the list head.
        node->ref = false;
        node->test = true;
        UnhookHands(node);
        clock_.Remove(node);
        InsertAtHead(node);
      }
      continue;
    }

    if (!evictable(node->frame)) {
      if (++skipped_pinned > num_frames()) break;
      continue;
    }
    // Victim found.
    const Victim victim{node->page, node->frame};
    frame_nodes_[node->frame] = nullptr;
    SetPrefetchTarget(node->frame, nullptr);
    --cold_count_;
    if (node->test) {
      // Keep it as a non-resident page until its test period ends.
      node->frame = kInvalidFrameId;
      ++nonresident_count_;
      BPW_BOUNDED_BY(nonresident_count_ - max_nonresident_);
      while (nonresident_count_ > max_nonresident_) {
        const size_t before = nonresident_count_;
        RunHandTest();
        if (nonresident_count_ == before) break;
      }
    } else {
      DropNode(node);
    }
    return victim;
  }
  // Fallback for heavy pinning: take any evictable resident page.
  for (Node* node = clock_.Front(); node != nullptr;
       node = clock_.Next(node)) {
    if (node->frame == kInvalidFrameId) continue;
    if (!evictable(node->frame)) continue;
    const Victim victim{node->page, node->frame};
    if (node->hot) {
      --hot_count_;
    } else {
      --cold_count_;
    }
    DropNode(node);
    return victim;
  }
  return Status::ResourceExhausted("clockpro: no evictable frame");
}

void ClockProPolicy::OnErase(PageId page, FrameId frame) {
  auto it = index_.find(page);
  if (it == index_.end()) return;
  Node* node = it->second.get();
  if (node->frame != kInvalidFrameId && node->frame != frame) return;
  if (node->frame == kInvalidFrameId) {
    --nonresident_count_;
  } else if (node->hot) {
    --hot_count_;
  } else {
    --cold_count_;
  }
  DropNode(node);
}

Status ClockProPolicy::CheckInvariants() const {
  size_t hot = 0;
  size_t cold = 0;
  size_t nonres = 0;
  for (const Node* n = clock_.Front(); n != nullptr; n = clock_.Next(n)) {
    if (n->hot) {
      ++hot;
      if (n->frame == kInvalidFrameId) {
        return Status::Corruption("clockpro: non-resident hot page");
      }
      if (n->test) {
        return Status::Corruption("clockpro: hot page in test period");
      }
    } else if (n->frame != kInvalidFrameId) {
      ++cold;
    } else {
      ++nonres;
      if (!n->test) {
        return Status::Corruption("clockpro: non-resident page not in test");
      }
    }
    if (n->frame != kInvalidFrameId) {
      if (n->frame >= frame_nodes_.size() ||
          frame_nodes_[n->frame] != n) {
        return Status::Corruption("clockpro: frame binding broken");
      }
    }
  }
  if (hot != hot_count_) {
    return Status::Corruption("clockpro: hot count mismatch");
  }
  if (cold != cold_count_) {
    return Status::Corruption("clockpro: cold count mismatch");
  }
  if (nonres != nonresident_count_) {
    return Status::Corruption("clockpro: non-resident count mismatch");
  }
  if (hot + cold > num_frames()) {
    return Status::Corruption("clockpro: resident pages above capacity");
  }
  if (index_.size() != clock_.size()) {
    return Status::Corruption("clockpro: index/clock size mismatch");
  }
  if (cold_target_ < 1 || cold_target_ > num_frames()) {
    return Status::Corruption("clockpro: cold target out of range");
  }
  return Status::OK();
}

bool ClockProPolicy::IsResident(PageId page) const {
  auto it = index_.find(page);
  return it != index_.end() && it->second->frame != kInvalidFrameId;
}

}  // namespace bpw
