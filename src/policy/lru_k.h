// LRU-2 replacement (O'Neil, O'Neil & Weikum, SIGMOD 1993) — the LRU-K
// algorithm with K=2. Historically the first of the "deep history"
// database replacement algorithms: it evicts the page whose *second*-most-
// recent reference lies furthest in the past (maximum backward K-distance),
// so one-time scans cannot displace the working set. 2Q (the paper's
// representative advanced policy) was proposed as a constant-time
// approximation of exactly this algorithm, which makes LRU-2 a natural
// member of this library's policy family.
//
// Pages referenced fewer than twice have infinite backward-2 distance and
// are evicted first (LRU among themselves). History of evicted pages is
// retained in a bounded ghost table (the "Retained Information Period"),
// so a page reloaded soon after eviction keeps its reference history.
#pragma once

#include <map>
#include <unordered_map>

#include "policy/intrusive_list.h"
#include "policy/replacement_policy.h"
#include "util/thread_annotations.h"

namespace bpw {

class LruKPolicy : public ReplacementPolicy {
 public:
  struct Params {
    /// Ghost (retained-history) capacity; 0 means num_frames.
    size_t history_capacity = 0;
  };

  explicit LruKPolicy(size_t num_frames)
      : LruKPolicy(num_frames, Params()) {}
  LruKPolicy(size_t num_frames, Params params);

  void OnHit(PageId page, FrameId frame) override BPW_REQUIRES(this);
  void OnMiss(PageId page, FrameId frame) override BPW_REQUIRES(this)
      BPW_HOLD_EFFECT_OK(alloc, "ordered-map insert of the loaded page; "
                                "bounded by num_frames");
  StatusOr<Victim> ChooseVictim(const EvictableFn& evictable,
                                PageId incoming) override BPW_REQUIRES(this)
      BPW_HOLD_EFFECT_OK(indirect, "evictable is the pool pin check: it "
                                   "reads frame state and never blocks");
  void OnErase(PageId page, FrameId frame) override BPW_REQUIRES(this);
  Status CheckInvariants() const override BPW_REQUIRES_SHARED(this);
  size_t resident_count() const override BPW_REQUIRES_SHARED(this) {
    return order_.size();
  }
  bool IsResident(PageId page) const override BPW_REQUIRES_SHARED(this);
  std::string name() const override { return "lru2"; }
  size_t ghost_count() const override BPW_REQUIRES_SHARED(this) {
    return ghost_index_.size();
  }
  bool IsGhostPage(PageId page) const override BPW_REQUIRES_SHARED(this) {
    return ghost_index_.find(page) != ghost_index_.end();
  }

  // Introspection for tests.
  size_t history_size() const { return ghost_index_.size(); }
  /// The (t2, t1) reference history of a resident page; (0,0) if unknown.
  std::pair<uint64_t, uint64_t> HistoryOf(PageId page) const;

 private:
  struct Node {
    PageId page = kInvalidPageId;
    bool resident = false;
    uint64_t t1 = 0;  // most recent reference time (logical)
    uint64_t t2 = 0;  // previous reference time; 0 = none (infinite dist.)
    uint64_t key = 0;  // current position key in order_
  };

  struct GhostNode {
    PageId page = kInvalidPageId;
    uint64_t t1 = 0;
    uint64_t t2 = 0;
    Link link;
  };

  /// Eviction-priority key: pages with < 2 references sort below (evict
  /// first, LRU by t1); others by t2. Keys are unique because each logical
  /// timestamp belongs to exactly one access.
  static uint64_t KeyFor(uint64_t t1, uint64_t t2) {
    constexpr uint64_t kSeenTwice = uint64_t{1} << 62;
    return t2 == 0 ? t1 : kSeenTwice + t2;
  }

  void Reposition(Node& node)
      BPW_HOLD_EFFECT_OK(alloc, "ordered-map re-key of a resident node; the "
                                "map never exceeds num_frames entries");
  void AddGhost(PageId page, uint64_t t1, uint64_t t2)
      BPW_HOLD_EFFECT_OK(
          alloc, "ghost-index node insert; bounded by history_capacity_");

  std::vector<Node> nodes_;             // indexed by FrameId
  std::map<uint64_t, FrameId> order_;   // eviction order: begin() first

  std::unordered_map<PageId, GhostNode> ghost_index_;
  IntrusiveList<GhostNode, &GhostNode::link> ghost_fifo_;  // front = newest
  size_t history_capacity_;

  uint64_t time_ = 0;
};

}  // namespace bpw
