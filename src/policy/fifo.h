// FIFO replacement: evicts pages in arrival order and ignores hits. Included
// as the simplest correct policy — a useful baseline in tests (its behaviour
// is exactly predictable) and benchmarks (it has the cheapest possible hit
// path that still goes through the coordinator).
#pragma once

#include "policy/intrusive_list.h"
#include "policy/replacement_policy.h"

namespace bpw {

class FifoPolicy : public ReplacementPolicy {
 public:
  explicit FifoPolicy(size_t num_frames);

  void OnHit(PageId page, FrameId frame) override;
  void OnMiss(PageId page, FrameId frame) override;
  StatusOr<Victim> ChooseVictim(const EvictableFn& evictable,
                                PageId incoming) override;
  void OnErase(PageId page, FrameId frame) override;
  Status CheckInvariants() const override;
  size_t resident_count() const override { return list_.size(); }
  bool IsResident(PageId page) const override;
  std::string name() const override { return "fifo"; }

 private:
  struct Node {
    PageId page = kInvalidPageId;
    bool resident = false;
    Link link;
  };

  std::vector<Node> nodes_;                // indexed by FrameId
  IntrusiveList<Node, &Node::link> list_;  // front = newest, back = oldest
};

}  // namespace bpw
