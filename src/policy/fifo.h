// FIFO replacement: evicts pages in arrival order and ignores hits. Included
// as the simplest correct policy — a useful baseline in tests (its behaviour
// is exactly predictable) and benchmarks (it has the cheapest possible hit
// path that still goes through the coordinator).
#pragma once

#include "policy/intrusive_list.h"
#include "policy/replacement_policy.h"
#include "util/thread_annotations.h"

namespace bpw {

class FifoPolicy : public ReplacementPolicy {
 public:
  explicit FifoPolicy(size_t num_frames);

  void OnHit(PageId page, FrameId frame) override BPW_REQUIRES(this);
  void OnMiss(PageId page, FrameId frame) override BPW_REQUIRES(this);
  StatusOr<Victim> ChooseVictim(const EvictableFn& evictable,
                                PageId incoming) override BPW_REQUIRES(this)
      BPW_HOLD_EFFECT_OK(indirect, "evictable is the pool pin check: it "
                                   "reads frame state and never blocks");
  void OnErase(PageId page, FrameId frame) override BPW_REQUIRES(this);
  Status CheckInvariants() const override BPW_REQUIRES_SHARED(this);
  size_t resident_count() const override BPW_REQUIRES_SHARED(this) {
    return list_.size();
  }
  bool IsResident(PageId page) const override BPW_REQUIRES_SHARED(this);
  std::string name() const override { return "fifo"; }
  bool StateFingerprintSupported() const override { return true; }
  uint64_t StateFingerprint() const override BPW_REQUIRES_SHARED(this);

 private:
  struct Node {
    PageId page = kInvalidPageId;
    bool resident = false;
    Link link;
  };

  std::vector<Node> nodes_;                // indexed by FrameId
  IntrusiveList<Node, &Node::link> list_;  // front = newest, back = oldest
};

}  // namespace bpw
