// CLOCK replacement: the approximation of LRU that PostgreSQL 8.2 adopted
// precisely because its hit path only sets a reference bit and needs no
// lock. In this library it plays two roles:
//  1. As a regular ReplacementPolicy, it can run under any coordinator
//    (useful in tests and policy comparisons).
//  2. The paper's "pgClock" yardstick system uses ClockCoordinator
//     (src/core/clock_coordinator.h), which exploits the atomic ref bits
//     here to skip the lock entirely on hits.
#pragma once

#include <atomic>

#include "policy/replacement_policy.h"
#include "util/thread_annotations.h"

namespace bpw {

class ClockPolicy : public ReplacementPolicy {
 public:
  explicit ClockPolicy(size_t num_frames);

  void OnHit(PageId page, FrameId frame) override BPW_REQUIRES(this);
  void OnMiss(PageId page, FrameId frame) override BPW_REQUIRES(this);
  StatusOr<Victim> ChooseVictim(const EvictableFn& evictable,
                                PageId incoming) override BPW_REQUIRES(this)
      BPW_HOLD_EFFECT_OK(indirect, "evictable is the pool pin check: it "
                                   "reads frame state and never blocks");
  void OnErase(PageId page, FrameId frame) override BPW_REQUIRES(this);
  Status CheckInvariants() const override BPW_REQUIRES_SHARED(this);
  size_t resident_count() const override BPW_REQUIRES_SHARED(this) {
    return resident_;
  }
  bool IsResident(PageId page) const override BPW_REQUIRES_SHARED(this);
  std::string name() const override { return "clock"; }
  bool StateFingerprintSupported() const override { return true; }
  uint64_t StateFingerprint() const override BPW_REQUIRES_SHARED(this);

  /// Lock-free hit path used by ClockCoordinator: sets the reference bit
  /// with a relaxed atomic store after validating the tag with relaxed
  /// loads. Safe to call concurrently with ChooseVictim.
  void OnHitLockFree(PageId page, FrameId frame);

 private:
  struct Node {
    // `page` is atomic so that OnHitLockFree can validate it without the
    // policy lock; all writes happen under the coordinator's lock.
    std::atomic<PageId> page{kInvalidPageId} BPW_RELAXED_OK("lock-free hit validation re-checks under the latch");
    std::atomic<bool> resident{false} BPW_RELAXED_OK("lock-free probes tolerate staleness; latch orders transitions");
    std::atomic<bool> ref{false} BPW_RELAXED_OK("reference bit; racy sets are the CLOCK contract");
  };

  std::vector<Node> nodes_;  // circular buffer indexed by FrameId
  size_t hand_ = 0;          // next frame the clock hand inspects
  size_t resident_ = 0;
};

}  // namespace bpw
