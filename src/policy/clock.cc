#include "policy/clock.h"

#include "util/fingerprint.h"

namespace bpw {

ClockPolicy::ClockPolicy(size_t num_frames)
    : ReplacementPolicy(num_frames), nodes_(num_frames) {}

void ClockPolicy::OnHit(PageId page, FrameId frame) {
  OnHitLockFree(page, frame);
}

void ClockPolicy::OnHitLockFree(PageId page, FrameId frame) {
  if (frame >= nodes_.size()) return;
  Node& node = nodes_[frame];
  if (!node.resident.load(std::memory_order_relaxed) ||
      node.page.load(std::memory_order_relaxed) != page) {
    return;  // stale access
  }
  node.ref.store(true, std::memory_order_relaxed);
}

void ClockPolicy::OnMiss(PageId page, FrameId frame) {
  Node& node = nodes_[frame];
  node.page.store(page, std::memory_order_relaxed);
  node.ref.store(true, std::memory_order_relaxed);
  node.resident.store(true, std::memory_order_relaxed);
  ++resident_;
  SetPrefetchTarget(frame, &node);
}

StatusOr<ReplacementPolicy::Victim> ClockPolicy::ChooseVictim(
    const EvictableFn& evictable, PageId /*incoming*/) {
  // Two full sweeps suffice in the single-threaded case: the first sweep
  // clears every reference bit, the second finds a ref==0 frame. A third is
  // allowed to paper over evictability churn under concurrency.
  const size_t limit = 3 * nodes_.size();
  for (size_t step = 0; step < limit; ++step) {
    Node& node = nodes_[hand_];
    const auto frame = static_cast<FrameId>(hand_);
    hand_ = (hand_ + 1) % nodes_.size();
    if (!node.resident.load(std::memory_order_relaxed)) continue;
    if (!evictable(frame)) continue;
    if (node.ref.load(std::memory_order_relaxed)) {
      node.ref.store(false, std::memory_order_relaxed);  // second chance
      continue;
    }
    node.resident.store(false, std::memory_order_relaxed);
    --resident_;
    SetPrefetchTarget(frame, nullptr);
    return Victim{node.page.load(std::memory_order_relaxed), frame};
  }
  return Status::ResourceExhausted("clock: no evictable frame");
}

void ClockPolicy::OnErase(PageId page, FrameId frame) {
  if (frame >= nodes_.size()) return;
  Node& node = nodes_[frame];
  if (!node.resident.load(std::memory_order_relaxed) ||
      node.page.load(std::memory_order_relaxed) != page) {
    return;
  }
  node.resident.store(false, std::memory_order_relaxed);
  node.ref.store(false, std::memory_order_relaxed);
  --resident_;
  SetPrefetchTarget(frame, nullptr);
}

Status ClockPolicy::CheckInvariants() const {
  size_t resident = 0;
  for (const Node& n : nodes_) {
    if (n.resident.load(std::memory_order_relaxed)) ++resident;
  }
  if (resident != resident_) {
    return Status::Corruption("clock: resident counter mismatch");
  }
  if (hand_ >= nodes_.size() && !nodes_.empty()) {
    return Status::Corruption("clock: hand out of range");
  }
  return Status::OK();
}

bool ClockPolicy::IsResident(PageId page) const {
  for (const Node& n : nodes_) {
    if (n.resident.load(std::memory_order_relaxed) &&
        n.page.load(std::memory_order_relaxed) == page) {
      return true;
    }
  }
  return false;
}

uint64_t ClockPolicy::StateFingerprint() const {
  // Node array order is frame order already; the hand position is state too
  // (it decides which frame the next sweep inspects first).
  Fingerprint fp;
  for (const Node& n : nodes_) {
    fp.Combine(n.page.load(std::memory_order_relaxed));
    fp.Combine(n.resident.load(std::memory_order_relaxed) ? 1 : 0);
    fp.Combine(n.ref.load(std::memory_order_relaxed) ? 1 : 0);
  }
  fp.Combine(hand_);
  fp.Combine(resident_);
  return fp.value();
}

}  // namespace bpw
