#include "policy/lru.h"

#include "util/fingerprint.h"

namespace bpw {

LruPolicy::LruPolicy(size_t num_frames)
    : ReplacementPolicy(num_frames), nodes_(num_frames) {}

void LruPolicy::OnHit(PageId page, FrameId frame) {
  if (frame >= nodes_.size()) return;
  Node& node = nodes_[frame];
  if (!node.resident || node.page != page) return;  // stale batched access
  list_.MoveToFront(&node);
}

void LruPolicy::OnMiss(PageId page, FrameId frame) {
  Node& node = nodes_[frame];
  node.page = page;
  node.resident = true;
  list_.PushFront(&node);
  SetPrefetchTarget(frame, &node);
}

StatusOr<ReplacementPolicy::Victim> LruPolicy::ChooseVictim(
    const EvictableFn& evictable, PageId /*incoming*/) {
  for (Node* node = list_.Back(); node != nullptr; node = list_.Prev(node)) {
    const auto frame = static_cast<FrameId>(node - nodes_.data());
    if (!evictable(frame)) continue;
    list_.Remove(node);
    node->resident = false;
    SetPrefetchTarget(frame, nullptr);
    return Victim{node->page, frame};
  }
  return Status::ResourceExhausted("lru: no evictable frame");
}

void LruPolicy::OnErase(PageId page, FrameId frame) {
  if (frame >= nodes_.size()) return;
  Node& node = nodes_[frame];
  if (!node.resident || node.page != page) return;
  list_.Remove(&node);
  node.resident = false;
  SetPrefetchTarget(frame, nullptr);
}

Status LruPolicy::CheckInvariants() const {
  size_t linked = 0;
  for (const Node* n = list_.Front(); n != nullptr; n = list_.Next(n)) {
    if (!n->resident) return Status::Corruption("lru: non-resident in list");
    ++linked;
    if (linked > nodes_.size()) {
      return Status::Corruption("lru: list longer than frame count (cycle?)");
    }
  }
  if (linked != list_.size()) {
    return Status::Corruption("lru: list size counter mismatch");
  }
  size_t resident = 0;
  for (const Node& n : nodes_) {
    if (n.resident) ++resident;
  }
  if (resident != linked) {
    return Status::Corruption("lru: resident flags disagree with list");
  }
  return Status::OK();
}

bool LruPolicy::IsResident(PageId page) const {
  for (const Node& n : nodes_) {
    if (n.resident && n.page == page) return true;
  }
  return false;
}

uint64_t LruPolicy::StateFingerprint() const {
  // Recency order is the whole algorithmic state: hash (page, frame) pairs
  // in MRU→LRU order. Frame identity comes from the node's index, never its
  // address, so fingerprints are stable across executions.
  Fingerprint fp;
  for (const Node* n = list_.Front(); n != nullptr; n = list_.Next(n)) {
    fp.Combine(n->page);
    fp.Combine(static_cast<uint64_t>(n - nodes_.data()));
  }
  return fp.value();
}

}  // namespace bpw
