#include "policy/two_q.h"

#include <algorithm>

namespace bpw {

TwoQPolicy::TwoQPolicy(size_t num_frames, Params params)
    : ReplacementPolicy(num_frames), nodes_(num_frames) {
  kin_ = params.kin != 0 ? params.kin : std::max<size_t>(1, num_frames / 4);
  kout_ = params.kout != 0 ? params.kout : std::max<size_t>(1, num_frames / 2);
}

void TwoQPolicy::OnHit(PageId page, FrameId frame) {
  if (frame >= nodes_.size()) return;
  Node& node = nodes_[frame];
  if (node.where == Where::kNone || node.page != page) return;  // stale
  if (node.where == Where::kAm) {
    am_.MoveToFront(&node);
  }
  // Hits in A1in deliberately do nothing: 2Q only promotes pages whose
  // re-reference happens *after* they age out of A1in (correlated-reference
  // filtering).
}

void TwoQPolicy::OnMiss(PageId page, FrameId frame) {
  Node& node = nodes_[frame];
  node.page = page;
  auto ghost = a1out_index_.find(page);
  if (ghost != a1out_index_.end()) {
    // Reclaimed from A1out: this page has a proven long-term re-reference
    // interval, so it enters the hot list.
    a1out_.Remove(&ghost->second);
    a1out_index_.erase(ghost);
    node.where = Where::kAm;
    am_.PushFront(&node);
  } else {
    node.where = Where::kA1in;
    a1in_.PushFront(&node);
  }
  SetPrefetchTarget(frame, &node);
}

TwoQPolicy::Node* TwoQPolicy::TakeVictimFrom(
    IntrusiveList<Node, &Node::link>& list, const EvictableFn& evictable) {
  for (Node* node = list.Back(); node != nullptr; node = list.Prev(node)) {
    const auto frame = static_cast<FrameId>(node - nodes_.data());
    if (evictable(frame)) {
      list.Remove(node);
      return node;
    }
  }
  return nullptr;
}

StatusOr<ReplacementPolicy::Victim> TwoQPolicy::ChooseVictim(
    const EvictableFn& evictable, PageId /*incoming*/) {
  // 2Q reclaim: drain A1in while it exceeds its target share; otherwise
  // evict the coldest Am page. Fall back to the other list when the
  // preferred one has no evictable page (pins).
  const bool prefer_a1in = a1in_.size() > kin_ || am_.empty();
  Node* node = nullptr;
  bool from_a1in = false;
  if (prefer_a1in) {
    node = TakeVictimFrom(a1in_, evictable);
    from_a1in = node != nullptr;
    if (node == nullptr) node = TakeVictimFrom(am_, evictable);
  } else {
    node = TakeVictimFrom(am_, evictable);
    if (node == nullptr) {
      node = TakeVictimFrom(a1in_, evictable);
      from_a1in = node != nullptr;
    }
  }
  if (node == nullptr) {
    return Status::ResourceExhausted("2q: no evictable frame");
  }
  const auto frame = static_cast<FrameId>(node - nodes_.data());
  const PageId page = node->page;
  node->where = Where::kNone;
  SetPrefetchTarget(frame, nullptr);
  if (from_a1in) {
    // Pages aging out of A1in are remembered in the ghost list so a later
    // re-reference promotes them to Am.
    AddGhost(page);
  }
  return Victim{page, frame};
}

void TwoQPolicy::AddGhost(PageId page) {
  auto [it, inserted] = a1out_index_.try_emplace(page);
  if (!inserted) {
    // Already a ghost (can happen if the same page cycles quickly); refresh
    // its position.
    a1out_.MoveToFront(&it->second);
    return;
  }
  it->second.page = page;
  a1out_.PushFront(&it->second);
  BPW_BOUNDED_BY(a1out_.size() - kout_);
  while (a1out_.size() > kout_) {
    GhostNode* oldest = a1out_.PopBack();
    a1out_index_.erase(oldest->page);
  }
}

void TwoQPolicy::OnErase(PageId page, FrameId frame) {
  auto ghost = a1out_index_.find(page);
  if (ghost != a1out_index_.end()) {
    a1out_.Remove(&ghost->second);
    a1out_index_.erase(ghost);
  }
  if (frame >= nodes_.size()) return;
  Node& node = nodes_[frame];
  if (node.where == Where::kNone || node.page != page) return;
  if (node.where == Where::kA1in) {
    a1in_.Remove(&node);
  } else {
    am_.Remove(&node);
  }
  node.where = Where::kNone;
  SetPrefetchTarget(frame, nullptr);
}

Status TwoQPolicy::CheckInvariants() const {
  size_t in_lists = 0;
  for (const Node* n = a1in_.Front(); n != nullptr; n = a1in_.Next(n)) {
    if (n->where != Where::kA1in) {
      return Status::Corruption("2q: wrong tag on a1in node");
    }
    ++in_lists;
  }
  for (const Node* n = am_.Front(); n != nullptr; n = am_.Next(n)) {
    if (n->where != Where::kAm) {
      return Status::Corruption("2q: wrong tag on am node");
    }
    ++in_lists;
  }
  size_t flagged = 0;
  for (const Node& n : nodes_) {
    if (n.where != Where::kNone) ++flagged;
  }
  if (flagged != in_lists) {
    return Status::Corruption("2q: node tags disagree with lists");
  }
  if (in_lists > num_frames()) {
    return Status::Corruption("2q: more resident nodes than frames");
  }
  if (a1out_.size() != a1out_index_.size()) {
    return Status::Corruption("2q: ghost list/index size mismatch");
  }
  if (a1out_.size() > kout_) {
    return Status::Corruption("2q: ghost list above kout");
  }
  for (const Node& n : nodes_) {
    if (n.where != Where::kNone && InA1out(n.page)) {
      return Status::Corruption("2q: resident page also on ghost list");
    }
  }
  return Status::OK();
}

bool TwoQPolicy::IsResident(PageId page) const {
  for (const Node& n : nodes_) {
    if (n.where != Where::kNone && n.page == page) return true;
  }
  return false;
}

}  // namespace bpw
