// ShardedPolicy: a generic adapter that splits any replacement policy into
// N independent shards, one per page-table partition slice.
//
// Motivation (ROADMAP scale axis): a single policy instance is one
// capability behind one lock, so even BP-Wrapper's batched commits
// serialize on it eventually. Sharding gives each slice of the page-id
// space its own policy instance — and therefore its own lock/capability —
// so commits from different slices proceed in parallel and the per-shard
// critical sections shrink.
//
// Routing: ShardOf() uses the page table's multiplicative hash family
// (page_table.h, the 0x9E3779B97F4A7C15 stream) taken from the same high
// bits. With a power-of-two shard count that matches the table's shard
// count, a page's policy shard IS its page-table partition — the
// partition↔shard binding: the thread that just touched a table shard's
// lock line commits into the policy shard with the same index.
//
// Capacity: every shard is built with the FULL frame capacity. Shards
// share the global frame supply, so the sum of resident pages can never
// exceed num_frames anyway; per-shard full capacity means a skewed hash
// can never trip a shard's OnMiss capacity precondition. The cost is that
// per-shard ghost budgets (2Q's kout, LIRS's non-resident bound, ...) are
// over-provisioned by ~N×; ghost memory stays bounded by O(N · frames).
//
// Shard count 1 is a pure pass-through: every method routes to shard 0
// unconditionally, so the adapter is bit-identical to the bare policy
// (asserted per-policy by tests/equivalence_test.cc).
//
// Capability model: the adapter is itself a ReplacementPolicy capability,
// and its routing methods REQUIRE it — holding the whole adapter
// exclusively (serialized coordinator, quiesced test) implies exclusive
// access to every shard, certified by the per-shard
// AssertExclusiveAccess() calls inside. The sharded coordinator does NOT
// use these routing methods on hot paths: it addresses shard(i) directly,
// asserting each shard's own capability under that shard's lock — the
// per-shard capability conversion this PR is about.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "policy/replacement_policy.h"
#include "util/thread_annotations.h"

namespace bpw {

class ShardedPolicy : public ReplacementPolicy {
 public:
  /// Builds `num_shards` instances of the policy named `inner`, each with
  /// full `num_frames` capacity (see capacity note above).
  static StatusOr<std::unique_ptr<ShardedPolicy>> Create(
      const std::string& inner, size_t num_shards, size_t num_frames);

  /// Home shard of a page: the page-table hash family's high bits. Static
  /// so tests can assert the partition↔shard binding without an instance.
  static size_t ShardOf(PageId page, size_t num_shards) {
    const uint64_t h = page * 0x9E3779B97F4A7C15ULL;
    return static_cast<size_t>(h >> 32) % num_shards;
  }

  size_t ShardFor(PageId page) const { return ShardOf(page, shards_.size()); }
  size_t shard_count() const { return shards_.size(); }
  ReplacementPolicy* shard(size_t i) { return shards_[i].get(); }
  const ReplacementPolicy* shard(size_t i) const { return shards_[i].get(); }

  // --- ReplacementPolicy interface: route by home shard -------------------

  void OnHit(PageId page, FrameId frame) override BPW_REQUIRES(this);
  void OnMiss(PageId page, FrameId frame) override BPW_REQUIRES(this);
  /// Victim search starts at `incoming`'s home shard (its ghost lists know
  /// the incoming page); on ResourceExhausted it borrows from the other
  /// shards round-robin — the global frame supply is shared, so a shard
  /// with nothing evictable must not fail the whole pool.
  StatusOr<Victim> ChooseVictim(const EvictableFn& evictable,
                                PageId incoming) override BPW_REQUIRES(this);
  void OnErase(PageId page, FrameId frame) override BPW_REQUIRES(this);
  Status CheckInvariants() const override BPW_REQUIRES_SHARED(this);
  size_t resident_count() const override BPW_REQUIRES_SHARED(this);
  bool IsResident(PageId page) const override BPW_REQUIRES_SHARED(this);
  std::string name() const override;
  size_t ghost_count() const override BPW_REQUIRES_SHARED(this);
  bool IsGhostPage(PageId page) const override BPW_REQUIRES_SHARED(this);
  bool RebalanceSupported() const override {
    return shards_[0]->RebalanceSupported();
  }
  bool StateFingerprintSupported() const override;
  uint64_t StateFingerprint() const override BPW_REQUIRES_SHARED(this);

  // --- Cross-shard conservation oracle ------------------------------------
  // The shard-sum invariant: every mapped page is tracked as resident by
  // exactly its home shard, and each shard's resident count equals the
  // number of mapped pages hashing to it (Σ per-shard == pool-mapped
  // total). A page resident in two shards (double-tracking) or in a
  // non-home shard (stale-shard eviction) breaks it. Shared by the unit
  // tests, the sharded coordinator's CheckQuiescedInvariants (stress
  // layer), and the model checker's integrity diagnosis.

  /// `frame_page(f)` returns the page mapped in frame f, or kInvalidPageId.
  Status CheckShardConservation(
      const std::function<PageId(FrameId)>& frame_page,
      size_t frame_count) const BPW_REQUIRES_SHARED(this);

  /// Ghost half of the oracle, for unit tests that know the page universe:
  /// no page id in [0, universe) may be ghost-tracked by a non-home shard.
  /// (The Σ-ghost side is ghost_count(), which sums the shards; tests
  /// compare it against the unsharded policy's count.)
  Status CheckGhostDisjointness(PageId universe) const
      BPW_REQUIRES_SHARED(this);

 private:
  ShardedPolicy(std::vector<std::unique_ptr<ReplacementPolicy>> shards,
                size_t num_frames);

  std::vector<std::unique_ptr<ReplacementPolicy>> shards_;
};

}  // namespace bpw
