#include "policy/lirs.h"

#include <algorithm>

namespace bpw {

LirsPolicy::LirsPolicy(size_t num_frames, Params params)
    : ReplacementPolicy(num_frames), frame_nodes_(num_frames, nullptr) {
  size_t hir = params.hir_capacity != 0
                   ? params.hir_capacity
                   : std::max<size_t>(2, num_frames / 100);
  hir = std::min(hir, num_frames > 1 ? num_frames - 1 : 1);
  hir_capacity_ = std::max<size_t>(1, hir);
  lir_capacity_ = num_frames > hir_capacity_ ? num_frames - hir_capacity_ : 1;
  max_nonresident_ =
      params.max_nonresident != 0 ? params.max_nonresident : 2 * num_frames;
}

void LirsPolicy::PruneStack() {
  BPW_BOUNDED_BY(s_.size());
  while (!s_.empty()) {
    Node* bottom = s_.Back();
    if (bottom->state == State::kLir) return;
    s_.Remove(bottom);
    bottom->in_s = false;
    if (bottom->state == State::kHirNonResident) {
      // A non-resident entry that leaves S carries no information anymore.
      nr_.Remove(bottom);
      DropNode(bottom);
    }
    // Resident HIR entries stay in Q; they just lose their stack position.
  }
}

void LirsPolicy::DemoteBottomLir() {
  Node* bottom = s_.Back();
  if (bottom == nullptr || bottom->state != State::kLir) return;
  s_.Remove(bottom);
  bottom->in_s = false;
  bottom->state = State::kHirResident;
  --num_lir_;
  q_.PushBack(bottom);
  PruneStack();
}

void LirsPolicy::DropNode(Node* node) {
  if (node->frame != kInvalidFrameId && node->frame < frame_nodes_.size() &&
      frame_nodes_[node->frame] == node) {
    frame_nodes_[node->frame] = nullptr;
    SetPrefetchTarget(node->frame, nullptr);
  }
  index_.erase(node->page);  // destroys *node
}

void LirsPolicy::EnforceNonResidentBound() {
  BPW_BOUNDED_BY(nr_.size() - max_nonresident_);
  while (nr_.size() > max_nonresident_) {
    Node* oldest = nr_.PopFront();
    if (oldest->in_s) {
      s_.Remove(oldest);
      oldest->in_s = false;
    }
    DropNode(oldest);
  }
  PruneStack();
}

void LirsPolicy::OnHit(PageId page, FrameId frame) {
  if (frame >= frame_nodes_.size()) return;
  Node* node = frame_nodes_[frame];
  if (node == nullptr || node->page != page) return;  // stale batched access

  if (node->state == State::kLir) {
    s_.MoveToFront(node);
    PruneStack();
    return;
  }
  // Resident HIR hit.
  if (node->in_s) {
    // Its inter-reference recency beat some LIR page: promote.
    node->state = State::kLir;
    ++num_lir_;
    q_.Remove(node);
    s_.MoveToFront(node);
    if (num_lir_ > lir_capacity_) DemoteBottomLir();
    PruneStack();
  } else {
    // Not in S: keep HIR status, refresh recency in both structures.
    s_.PushFront(node);
    node->in_s = true;
    q_.MoveToBack(node);
    // Degenerate case (only after mass erases): with zero LIR pages the
    // bottom-is-LIR invariant demands an empty stack; pruning strips the
    // node straight back out and the LIR set regrows through misses.
    PruneStack();
  }
}

void LirsPolicy::OnMiss(PageId page, FrameId frame) {
  auto it = index_.find(page);
  Node* node;
  if (it != index_.end()) {
    node = it->second.get();
    // Only non-resident entries can miss.
    if (node->state != State::kHirNonResident) return;  // stale; ignore
    // Non-resident HIR re-referenced while still in S: its reuse distance
    // is within the LIR working set, so it enters LIR.
    nr_.Remove(node);
    node->state = State::kLir;
    node->frame = frame;
    ++num_lir_;
    s_.MoveToFront(node);
    if (num_lir_ > lir_capacity_) DemoteBottomLir();
    PruneStack();
  } else {
    auto owned = std::make_unique<Node>();
    node = owned.get();
    node->page = page;
    node->frame = frame;
    index_.emplace(page, std::move(owned));
    if (num_lir_ < lir_capacity_) {
      // Warm-up: fill the LIR set first.
      node->state = State::kLir;
      ++num_lir_;
      s_.PushFront(node);
      node->in_s = true;
    } else {
      node->state = State::kHirResident;
      s_.PushFront(node);
      node->in_s = true;
      q_.PushBack(node);
    }
  }
  frame_nodes_[frame] = node;
  SetPrefetchTarget(frame, node);
}

StatusOr<ReplacementPolicy::Victim> LirsPolicy::ChooseVictim(
    const EvictableFn& evictable, PageId /*incoming*/) {
  // Normal case: the front of Q (the oldest resident HIR page).
  for (Node* node = q_.Front(); node != nullptr; node = q_.Next(node)) {
    if (!evictable(node->frame)) continue;
    const FrameId frame = node->frame;
    const PageId page = node->page;
    q_.Remove(node);
    frame_nodes_[frame] = nullptr;
    SetPrefetchTarget(frame, nullptr);
    if (node->in_s) {
      node->state = State::kHirNonResident;
      node->frame = kInvalidFrameId;
      nr_.PushBack(node);
      EnforceNonResidentBound();
    } else {
      DropNode(node);
    }
    return Victim{page, frame};
  }
  // Fallback (every resident HIR is pinned): sacrifice the coldest
  // evictable LIR page. Pure LIRS never does this; it is required for
  // correctness under pinning.
  for (Node* node = s_.Back(); node != nullptr; node = s_.Prev(node)) {
    if (node->state != State::kLir) continue;
    if (!evictable(node->frame)) continue;
    const FrameId frame = node->frame;
    const PageId page = node->page;
    s_.Remove(node);
    node->in_s = false;
    --num_lir_;
    DropNode(node);
    PruneStack();
    return Victim{page, frame};
  }
  return Status::ResourceExhausted("lirs: no evictable frame");
}

void LirsPolicy::OnErase(PageId page, FrameId frame) {
  auto it = index_.find(page);
  if (it == index_.end()) return;
  Node* node = it->second.get();
  if (node->state != State::kHirNonResident && node->frame != frame) return;
  if (node->in_s) {
    s_.Remove(node);
    node->in_s = false;
  }
  switch (node->state) {
    case State::kLir:
      --num_lir_;
      break;
    case State::kHirResident:
      q_.Remove(node);
      break;
    case State::kHirNonResident:
      nr_.Remove(node);
      break;
  }
  DropNode(node);
  PruneStack();
}

Status LirsPolicy::CheckInvariants() const {
  // Bottom of S must be LIR.
  if (!s_.empty() && s_.Back()->state != State::kLir) {
    return Status::Corruption("lirs: bottom of stack not LIR");
  }
  size_t lir = 0;
  size_t hir_res = 0;
  size_t hir_nonres = 0;
  for (const auto& [page, node] : index_) {
    if (node->page != page) {
      return Status::Corruption("lirs: index key/page mismatch");
    }
    switch (node->state) {
      case State::kLir:
        ++lir;
        if (!node->in_s) return Status::Corruption("lirs: LIR not in S");
        if (node->frame == kInvalidFrameId) {
          return Status::Corruption("lirs: LIR without frame");
        }
        break;
      case State::kHirResident:
        ++hir_res;
        if (node->frame == kInvalidFrameId) {
          return Status::Corruption("lirs: resident HIR without frame");
        }
        break;
      case State::kHirNonResident:
        ++hir_nonres;
        if (!node->in_s) {
          return Status::Corruption("lirs: non-resident HIR not in S");
        }
        if (node->frame != kInvalidFrameId) {
          return Status::Corruption("lirs: non-resident HIR with frame");
        }
        break;
    }
    if (node->state != State::kHirNonResident) {
      if (node->frame >= frame_nodes_.size() ||
          frame_nodes_[node->frame] != node.get()) {
        return Status::Corruption("lirs: frame binding broken");
      }
    }
  }
  if (lir != num_lir_) return Status::Corruption("lirs: LIR count mismatch");
  if (hir_res != q_.size()) {
    return Status::Corruption("lirs: Q size mismatch");
  }
  if (hir_nonres != nr_.size()) {
    return Status::Corruption("lirs: non-resident count mismatch");
  }
  if (num_lir_ > lir_capacity_) {
    return Status::Corruption("lirs: LIR set above capacity");
  }
  if (lir + hir_res > num_frames()) {
    return Status::Corruption("lirs: resident pages above frame count");
  }
  if (nr_.size() > max_nonresident_) {
    return Status::Corruption("lirs: non-resident bound violated");
  }
  return Status::OK();
}

bool LirsPolicy::IsResident(PageId page) const {
  auto it = index_.find(page);
  return it != index_.end() &&
         it->second->state != State::kHirNonResident;
}

}  // namespace bpw
