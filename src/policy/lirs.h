// LIRS replacement (Jiang & Zhang, SIGMETRICS 2002) — Low Inter-reference
// Recency Set. One of the advanced algorithms the paper evaluated under
// BP-Wrapper ("We also implemented systems by replacing the 2Q algorithm
// ... with the LIRS and MQ replacement algorithms", §IV-A). LIRS keeps
// richer ordering information than clock approximations can represent,
// which is exactly why it needs the lock on every hit.
//
// State:
//   Stack S — recency stack: LIR pages, resident HIR pages, and
//             *non-resident* HIR pages, most recent on top. The bottom of
//             S is always a LIR page (maintained by "stack pruning").
//   Queue Q — FIFO of resident HIR pages; its front is the eviction victim.
//
// The cache is partitioned into Llirs (LIR capacity, ~99%) and Lhirs
// (resident-HIR capacity, the rest). Non-resident HIR entries in S are
// bounded at `max_nonresident` to keep memory proportional to the cache.
#pragma once

#include <memory>
#include <unordered_map>

#include "policy/intrusive_list.h"
#include "policy/replacement_policy.h"
#include "util/thread_annotations.h"

namespace bpw {

class LirsPolicy : public ReplacementPolicy {
 public:
  struct Params {
    /// Resident-HIR share of the cache; 0 means max(2, num_frames/100),
    /// the 1% recommended by the LIRS paper.
    size_t hir_capacity = 0;
    /// Cap on non-resident HIR entries kept in S; 0 means 2*num_frames.
    size_t max_nonresident = 0;
  };

  explicit LirsPolicy(size_t num_frames) : LirsPolicy(num_frames, Params()) {}
  LirsPolicy(size_t num_frames, Params params);

  void OnHit(PageId page, FrameId frame) override BPW_REQUIRES(this);
  void OnMiss(PageId page, FrameId frame) override BPW_REQUIRES(this)
      BPW_HOLD_EFFECT_OK(alloc, "directory node for the loaded page; the "
                                "directory is bounded by the ghost caps");
  StatusOr<Victim> ChooseVictim(const EvictableFn& evictable,
                                PageId incoming) override BPW_REQUIRES(this)
      BPW_HOLD_EFFECT_OK(indirect, "evictable is the pool pin check: it "
                                   "reads frame state and never blocks");
  void OnErase(PageId page, FrameId frame) override BPW_REQUIRES(this);
  Status CheckInvariants() const override BPW_REQUIRES_SHARED(this);
  size_t resident_count() const override BPW_REQUIRES_SHARED(this) {
    return num_lir_ + q_.size();
  }
  bool IsResident(PageId page) const override BPW_REQUIRES_SHARED(this);
  std::string name() const override { return "lirs"; }
  size_t ghost_count() const override BPW_REQUIRES_SHARED(this) {
    return nr_.size();
  }
  bool IsGhostPage(PageId page) const override BPW_REQUIRES_SHARED(this) {
    auto it = index_.find(page);
    return it != index_.end() &&
           it->second->state == State::kHirNonResident;
  }

  // Introspection for tests.
  size_t lir_count() const { return num_lir_; }
  size_t resident_hir_count() const { return q_.size(); }
  size_t nonresident_count() const { return nr_.size(); }
  size_t stack_size() const { return s_.size(); }
  size_t lir_capacity() const { return lir_capacity_; }
  size_t hir_capacity() const { return hir_capacity_; }

 private:
  enum class State : uint8_t { kLir, kHirResident, kHirNonResident };

  struct Node {
    PageId page = kInvalidPageId;
    FrameId frame = kInvalidFrameId;  // kInvalidFrameId when non-resident
    State state = State::kHirResident;
    bool in_s = false;
    Link s_link;   // position in stack S
    Link q_link;   // position in queue Q (resident HIR only)
    Link nr_link;  // position in the non-resident bound FIFO
  };

  /// Removes non-LIR entries from the bottom of S until the bottom is LIR.
  void PruneStack();

  /// Demotes the bottom LIR page of S to resident HIR (tail of Q).
  void DemoteBottomLir();

  /// Deletes bookkeeping for a node entirely.
  void DropNode(Node* node);

  /// Enforces the non-resident entry bound.
  void EnforceNonResidentBound();

  std::unordered_map<PageId, std::unique_ptr<Node>> index_;
  std::vector<Node*> frame_nodes_;  // frame -> resident node (or nullptr)

  IntrusiveList<Node, &Node::s_link> s_;   // front = most recent (top)
  IntrusiveList<Node, &Node::q_link> q_;   // front = eviction candidate
  IntrusiveList<Node, &Node::nr_link> nr_;  // front = oldest non-resident

  size_t lir_capacity_;
  size_t hir_capacity_;
  size_t max_nonresident_;
  size_t num_lir_ = 0;
};

}  // namespace bpw
