// MQ replacement (Zhou, Philbin & Li, USENIX ATC 2001) — Multi-Queue.
// The third advanced algorithm the paper ran under BP-Wrapper (§IV-A):
// "In the MQ algorithm, it is moved among multiple FIFO queues" on every
// access, so like 2Q/LIRS it needs the lock per access.
//
// State: m LRU queues Q0..Qm-1; a page with reference count r sits in
// queue floor(log2(r)) (capped). Each resident page carries an expiry time
// (logical, in accesses); when the head of a queue expires it is demoted one
// level. Evicted pages go to the Qout ghost FIFO remembering their
// reference counts.
#pragma once

#include <unordered_map>

#include "policy/intrusive_list.h"
#include "policy/replacement_policy.h"
#include "util/thread_annotations.h"

namespace bpw {

class MqPolicy : public ReplacementPolicy {
 public:
  struct Params {
    size_t num_queues = 8;   ///< m
    uint64_t life_time = 0;  ///< demotion timeout in accesses; 0 = frames*2
    size_t qout_capacity = 0;  ///< ghost capacity; 0 = 4*frames (paper's rec)
  };

  explicit MqPolicy(size_t num_frames) : MqPolicy(num_frames, Params()) {}
  MqPolicy(size_t num_frames, Params params);

  void OnHit(PageId page, FrameId frame) override BPW_REQUIRES(this);
  void OnMiss(PageId page, FrameId frame) override BPW_REQUIRES(this);
  StatusOr<Victim> ChooseVictim(const EvictableFn& evictable,
                                PageId incoming) override BPW_REQUIRES(this)
      BPW_HOLD_EFFECT_OK(indirect, "evictable is the pool pin check: it "
                                   "reads frame state and never blocks");
  void OnErase(PageId page, FrameId frame) override BPW_REQUIRES(this);
  Status CheckInvariants() const override BPW_REQUIRES_SHARED(this);
  size_t resident_count() const override BPW_REQUIRES_SHARED(this) {
    return resident_;
  }
  bool IsResident(PageId page) const override BPW_REQUIRES_SHARED(this);
  std::string name() const override { return "mq"; }
  size_t ghost_count() const override BPW_REQUIRES_SHARED(this) {
    return qout_.size();
  }
  bool IsGhostPage(PageId page) const override BPW_REQUIRES_SHARED(this) {
    return qout_index_.find(page) != qout_index_.end();
  }

  // Introspection for tests.
  size_t queue_size(size_t k) const { return queues_[k].size(); }
  size_t num_queues() const { return queues_.size(); }
  size_t qout_size() const { return qout_.size(); }
  uint64_t life_time() const { return life_time_; }
  /// Reference count of a resident page, or 0 if not resident.
  uint64_t RefCountOf(PageId page) const;

 private:
  struct Node {
    PageId page = kInvalidPageId;
    bool resident = false;
    uint64_t ref_count = 0;
    uint64_t expire = 0;
    uint8_t queue = 0;
    Link link;
  };

  struct GhostNode {
    PageId page = kInvalidPageId;
    uint64_t ref_count = 0;
    Link link;
  };

  using List = IntrusiveList<Node, &Node::link>;

  /// Queue index for a reference count: min(m-1, floor(log2(r))).
  uint8_t QueueFor(uint64_t ref_count) const;

  /// Demotes expired queue heads one level (the paper's Adjust step, run
  /// once per access).
  void Adjust();

  void AddGhost(PageId page, uint64_t ref_count)
      BPW_HOLD_EFFECT_OK(alloc,
                         "ghost-index node insert; bounded by qout_capacity_");

  std::vector<Node> nodes_;  // indexed by FrameId
  std::vector<List> queues_;  // front = LRU end (victim side)

  std::unordered_map<PageId, GhostNode> qout_index_;
  IntrusiveList<GhostNode, &GhostNode::link> qout_;  // front = newest

  uint64_t life_time_;
  size_t qout_capacity_;
  uint64_t time_ = 0;  // logical clock: one tick per access
  size_t resident_ = 0;
};

}  // namespace bpw
