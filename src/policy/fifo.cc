#include "policy/fifo.h"

#include "util/fingerprint.h"

namespace bpw {

FifoPolicy::FifoPolicy(size_t num_frames)
    : ReplacementPolicy(num_frames), nodes_(num_frames) {}

void FifoPolicy::OnHit(PageId /*page*/, FrameId /*frame*/) {
  // FIFO ignores hits by definition.
}

void FifoPolicy::OnMiss(PageId page, FrameId frame) {
  Node& node = nodes_[frame];
  node.page = page;
  node.resident = true;
  list_.PushFront(&node);
  SetPrefetchTarget(frame, &node);
}

StatusOr<ReplacementPolicy::Victim> FifoPolicy::ChooseVictim(
    const EvictableFn& evictable, PageId /*incoming*/) {
  for (Node* node = list_.Back(); node != nullptr; node = list_.Prev(node)) {
    const auto frame = static_cast<FrameId>(node - nodes_.data());
    if (!evictable(frame)) continue;
    list_.Remove(node);
    node->resident = false;
    SetPrefetchTarget(frame, nullptr);
    return Victim{node->page, frame};
  }
  return Status::ResourceExhausted("fifo: no evictable frame");
}

void FifoPolicy::OnErase(PageId page, FrameId frame) {
  if (frame >= nodes_.size()) return;
  Node& node = nodes_[frame];
  if (!node.resident || node.page != page) return;
  list_.Remove(&node);
  node.resident = false;
  SetPrefetchTarget(frame, nullptr);
}

Status FifoPolicy::CheckInvariants() const {
  size_t linked = 0;
  for (const Node* n = list_.Front(); n != nullptr; n = list_.Next(n)) {
    if (!n->resident) return Status::Corruption("fifo: non-resident in list");
    if (++linked > nodes_.size()) {
      return Status::Corruption("fifo: list longer than frame count");
    }
  }
  if (linked != list_.size()) {
    return Status::Corruption("fifo: list size counter mismatch");
  }
  return Status::OK();
}

bool FifoPolicy::IsResident(PageId page) const {
  for (const Node& n : nodes_) {
    if (n.resident && n.page == page) return true;
  }
  return false;
}

uint64_t FifoPolicy::StateFingerprint() const {
  // Arrival order, newest first; node index stands in for frame id.
  Fingerprint fp;
  for (const Node* n = list_.Front(); n != nullptr; n = list_.Next(n)) {
    fp.Combine(n->page);
    fp.Combine(static_cast<uint64_t>(n - nodes_.data()));
  }
  return fp.value();
}

}  // namespace bpw
